//! Property-based tests for the node OS model.

use msweb_ossim::{node::run_to_idle, DemandSpec, Node, OsParams};
use msweb_simcore::{SimDuration, SimTime};
use proptest::prelude::*;

/// Arbitrary small demand specs.
fn demand() -> impl Strategy<Value = DemandSpec> {
    (
        1u64..200_000, // service microseconds
        0.0f64..=1.0,  // cpu fraction
        0u32..64,      // memory pages
        any::<bool>(), // cgi?
    )
        .prop_map(|(us, w, pages, cgi)| DemandSpec {
            service: SimDuration::from_micros(us),
            cpu_fraction: w,
            memory_pages: pages,
            is_cgi: cgi,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every submitted process eventually completes, exactly once, and
    /// resources return to their initial state.
    #[test]
    fn all_processes_complete_and_resources_return(
        specs in prop::collection::vec(demand(), 1..25)
    ) {
        let mut n = Node::new(0, OsParams::default());
        for (i, spec) in specs.iter().enumerate() {
            n.submit(spec, SimTime::ZERO, i as u64);
        }
        let done = run_to_idle(&mut n, 2_000_000);
        prop_assert_eq!(done.len(), specs.len());
        let mut tags: Vec<u64> = done.iter().map(|c| c.tag).collect();
        tags.sort_unstable();
        prop_assert_eq!(tags, (0..specs.len() as u64).collect::<Vec<_>>());
        prop_assert!(n.is_idle());
        prop_assert_eq!(n.load().mem_free_ratio, 1.0);
        prop_assert_eq!(n.load().ready_len, 0);
        prop_assert_eq!(n.load().disk_queue_len, 0);
    }

    /// Response time is never less than the contention-free demand
    /// (causality), and with a single process it is demand plus bounded
    /// overhead.
    #[test]
    fn response_at_least_demand(spec in demand()) {
        let mut n = Node::new(0, OsParams::default());
        n.submit(&spec, SimTime::ZERO, 0);
        let done = run_to_idle(&mut n, 2_000_000);
        prop_assert_eq!(done.len(), 1);
        let resp = done[0].finished - done[0].arrived;
        // The node quantises I/O into whole pages, so demand may round
        // down by up to one page.
        let params = OsParams::default();
        let floor = spec.service.saturating_sub(params.page_io);
        prop_assert!(
            resp + SimDuration::from_micros(1) >= floor,
            "response {resp} below demand {}",
            spec.service
        );
        // Overheads for a lone process: fork (if CGI) + one ctx switch +
        // one page of I/O rounding.
        let mut ceiling = spec.service + params.context_switch + params.page_io;
        if spec.is_cgi {
            ceiling += params.fork_overhead;
        }
        // Extra context switches can occur around I/O transitions: allow
        // one per quantum of service as slack.
        let slack_switches = spec.service.as_micros() / params.quantum.as_micros() + 2;
        ceiling += params.context_switch.mul(slack_switches);
        prop_assert!(
            resp <= ceiling,
            "lone process response {resp} exceeds ceiling {ceiling}"
        );
    }

    /// CPU busy time equals total CPU demand plus exactly the charged
    /// context switches (work conservation).
    #[test]
    fn cpu_work_conservation(specs in prop::collection::vec(demand(), 1..15)) {
        let params = OsParams::default();
        let mut n = Node::new(0, params.clone());
        // Give everyone ample memory by using few pages (deficits add I/O,
        // not CPU, so conservation still holds; keep as-is).
        for (i, spec) in specs.iter().enumerate() {
            n.submit(spec, SimTime::ZERO, i as u64);
        }
        run_to_idle(&mut n, 2_000_000);
        let busy = n.load().cpu_busy;
        let demand_cpu: SimDuration = specs
            .iter()
            .map(|s| {
                // CPU demand plus the sub-page I/O remainder the compiler
                // folds back into CPU to conserve total demand.
                let whole_pages = s.io_time().as_micros() / params.page_io.as_micros();
                let io_executed = params.page_io.mul(whole_pages);
                let mut c = s.cpu_time() + (s.io_time() - io_executed);
                if s.is_cgi {
                    c += params.fork_overhead;
                }
                c
            })
            .fold(SimDuration::ZERO, |a, b| a + b);
        let ctx = SimDuration::from_micros(n.context_switches() * 50);
        let expect = demand_cpu + ctx;
        // Compiling demands into bursts rounds each CPU burst to integer
        // microseconds; allow one microsecond per burst of drift.
        let drift = if busy >= expect { busy - expect } else { expect - busy };
        prop_assert!(
            drift <= SimDuration::from_micros(64 * specs.len() as u64),
            "cpu busy {busy} vs demand+ctx {expect}"
        );
    }

    /// Disk busy time equals pages served times page time.
    #[test]
    fn disk_work_is_page_quantised(specs in prop::collection::vec(demand(), 1..15)) {
        let params = OsParams::default();
        let mut n = Node::new(0, params.clone());
        for (i, spec) in specs.iter().enumerate() {
            n.submit(spec, SimTime::ZERO, i as u64);
        }
        run_to_idle(&mut n, 2_000_000);
        let busy = n.load().disk_busy.as_micros();
        prop_assert_eq!(busy % params.page_io.as_micros(), 0);
    }

    /// Killing a random subset never wedges the node; survivors complete.
    #[test]
    fn kill_subset_leaves_consistent_node(
        specs in prop::collection::vec(demand(), 2..12),
        kill_mask in prop::collection::vec(any::<bool>(), 2..12),
    ) {
        let mut n = Node::new(0, OsParams::default());
        let pids: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| n.submit(s, SimTime::ZERO, i as u64))
            .collect();
        let mut killed = std::collections::HashSet::new();
        for (pid, &k) in pids.iter().zip(kill_mask.iter().cycle()) {
            if k && n.kill(*pid).is_some() {
                killed.insert(*pid);
            }
        }
        let done = run_to_idle(&mut n, 2_000_000);
        prop_assert_eq!(done.len(), specs.len() - killed.len());
        prop_assert!(n.is_idle());
        prop_assert_eq!(n.load().mem_free_ratio, 1.0);
    }

    /// Short CPU jobs always finish before long CPU hogs that arrived
    /// with them (MLFQ priority separation), and no hog starves.
    #[test]
    fn mlfq_short_jobs_overtake_hogs(
        n_hogs in 1usize..4,
        n_short in 1usize..8,
        hog_ms in 60u64..200,
        short_us in 200u64..2_000,
    ) {
        let mut node = Node::new(0, OsParams::default());
        for i in 0..n_hogs {
            node.submit(
                &DemandSpec::static_fetch(SimDuration::from_millis(hog_ms), 1.0, 0),
                SimTime::ZERO,
                i as u64,
            );
        }
        for i in 0..n_short {
            node.submit(
                &DemandSpec::static_fetch(SimDuration::from_micros(short_us), 1.0, 0),
                SimTime::ZERO,
                (100 + i) as u64,
            );
        }
        let done = run_to_idle(&mut node, 2_000_000);
        prop_assert_eq!(done.len(), n_hogs + n_short);
        let last_short = done
            .iter()
            .filter(|c| c.tag >= 100)
            .map(|c| c.finished)
            .max()
            .expect("shorts exist");
        let first_hog = done
            .iter()
            .filter(|c| c.tag < 100)
            .map(|c| c.finished)
            .min()
            .expect("hogs exist");
        prop_assert!(
            last_short <= first_hog,
            "short jobs must all finish before any hog: {last_short:?} vs {first_hog:?}"
        );
        // No starvation: every hog finishes within (total work + slack).
        let total_ms = n_hogs as u64 * hog_ms + 20;
        for c in done.iter().filter(|c| c.tag < 100) {
            prop_assert!(c.finished <= SimTime::from_millis(total_ms));
        }
    }

    /// Identical CPU-bound jobs submitted together finish within one
    /// quantum-round of each other (round-robin fairness).
    #[test]
    fn mlfq_round_robin_fairness(n in 2usize..6, work_ms in 20u64..80) {
        let mut node = Node::new(0, OsParams::default());
        for i in 0..n {
            node.submit(
                &DemandSpec::static_fetch(SimDuration::from_millis(work_ms), 1.0, 0),
                SimTime::ZERO,
                i as u64,
            );
        }
        let done = run_to_idle(&mut node, 2_000_000);
        let first = done.iter().map(|c| c.finished).min().unwrap();
        let last = done.iter().map(|c| c.finished).max().unwrap();
        // Peers can differ by at most ~one quantum each plus overheads.
        let bound = SimDuration::from_millis(10 * n as u64 + 5);
        prop_assert!(
            last - first <= bound,
            "fairness spread {} exceeds {}",
            last - first,
            bound
        );
    }

    /// Identical I/O-bound jobs submitted together also finish within a
    /// bounded spread (round-robin disk fairness).
    #[test]
    fn disk_round_robin_fairness(n in 2usize..6, pages in 3u32..12) {
        let params = OsParams::default();
        let mut node = Node::new(0, params.clone());
        let io_ms = pages as u64 * 2;
        for i in 0..n {
            node.submit(
                &DemandSpec::static_fetch(SimDuration::from_millis(io_ms), 0.0, 0),
                SimTime::ZERO,
                i as u64,
            );
        }
        let done = run_to_idle(&mut node, 2_000_000);
        let first = done.iter().map(|c| c.finished).min().unwrap();
        let last = done.iter().map(|c| c.finished).max().unwrap();
        // Page-level round robin: peers finish within ~n pages of each other.
        let bound = params.page_io.mul(2 * n as u64 * 5);
        prop_assert!(last - first <= bound, "disk spread {}", last - first);
    }

    /// Determinism: identical submissions produce identical histories.
    #[test]
    fn node_is_deterministic(specs in prop::collection::vec(demand(), 1..10)) {
        let run = || {
            let mut n = Node::new(0, OsParams::default());
            for (i, spec) in specs.iter().enumerate() {
                n.submit(spec, SimTime::ZERO, i as u64);
            }
            run_to_idle(&mut n, 2_000_000)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b);
    }
}
