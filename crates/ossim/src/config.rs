//! Operating-system model parameters.
//!
//! Defaults are the paper's Section 5.2.1 settings, used verbatim for the
//! simulation experiments: BSD-style scheduling constants, the 8 KB page,
//! and the 2 ms per-page I/O burst.

use msweb_simcore::SimDuration;

/// Tunable constants of the simulated node OS.
#[derive(Debug, Clone, PartialEq)]
pub struct OsParams {
    /// CPU scheduling quantum (paper: 10 ms).
    pub quantum: SimDuration,
    /// Priority decay/update period (paper: 100 ms).
    pub priority_update_period: SimDuration,
    /// Context-switch overhead charged when the CPU switches between
    /// distinct processes (paper: 50 µs).
    pub context_switch: SimDuration,
    /// `fork()` overhead charged as an initial CPU burst of every CGI
    /// process (paper: 3 ms).
    pub fork_overhead: SimDuration,
    /// Time to read or write one page from disk (paper: 2 ms for an 8 KB
    /// page, justified by cached/block transfer rates of the era).
    pub page_io: SimDuration,
    /// Page size in bytes (paper: 8 KB). Used to convert file sizes to
    /// page counts.
    pub page_bytes: u64,
    /// Number of physical memory pages on the node. Default 8192 pages
    /// (64 MB at 8 KB/page — a well-provisioned 1999 server).
    pub memory_pages: u32,
    /// Number of multilevel-feedback priority levels (4.3BSD groups user
    /// priorities into run queues; 32 levels is the classic layout).
    pub priority_levels: u8,
    /// Multiplicative decay applied to each process's CPU-usage estimate
    /// at every priority update (4.3BSD's load-dependent filter; ~2/3 at
    /// moderate load).
    pub estcpu_decay: f64,
    /// Extra paging I/O (in page reads) charged per page of working-set
    /// deficit when a process cannot get its full resident set. This is
    /// the knob that reproduces "CGI memory pressure slows everything
    /// down" without a full per-access VM trace.
    pub fault_pages_per_deficit_page: f64,
}

impl Default for OsParams {
    fn default() -> Self {
        OsParams {
            quantum: SimDuration::from_millis(10),
            priority_update_period: SimDuration::from_millis(100),
            context_switch: SimDuration::from_micros(50),
            fork_overhead: SimDuration::from_millis(3),
            page_io: SimDuration::from_millis(2),
            page_bytes: 8 * 1024,
            memory_pages: 8192,
            priority_levels: 32,
            estcpu_decay: 2.0 / 3.0,
            fault_pages_per_deficit_page: 2.0,
        }
    }
}

impl OsParams {
    /// Convert a byte count into whole pages (rounding up; zero bytes is
    /// zero pages).
    pub fn bytes_to_pages(&self, bytes: u64) -> u32 {
        bytes.div_ceil(self.page_bytes) as u32
    }

    /// Basic sanity checks; call after hand-constructing parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.quantum.is_zero() {
            return Err("quantum must be positive".into());
        }
        if self.priority_update_period.is_zero() {
            return Err("priority update period must be positive".into());
        }
        if self.page_io.is_zero() {
            return Err("page I/O time must be positive".into());
        }
        if self.page_bytes == 0 {
            return Err("page size must be positive".into());
        }
        if self.priority_levels == 0 {
            return Err("need at least one priority level".into());
        }
        if !(0.0..1.0).contains(&self.estcpu_decay) {
            return Err(format!("estcpu decay {} not in [0,1)", self.estcpu_decay));
        }
        if self.fault_pages_per_deficit_page < 0.0 {
            return Err("fault pages per deficit page must be non-negative".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = OsParams::default();
        assert_eq!(p.quantum, SimDuration::from_millis(10));
        assert_eq!(p.priority_update_period, SimDuration::from_millis(100));
        assert_eq!(p.context_switch, SimDuration::from_micros(50));
        assert_eq!(p.fork_overhead, SimDuration::from_millis(3));
        assert_eq!(p.page_io, SimDuration::from_millis(2));
        assert_eq!(p.page_bytes, 8 * 1024);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn bytes_to_pages_rounds_up() {
        let p = OsParams::default();
        assert_eq!(p.bytes_to_pages(0), 0);
        assert_eq!(p.bytes_to_pages(1), 1);
        assert_eq!(p.bytes_to_pages(8 * 1024), 1);
        assert_eq!(p.bytes_to_pages(8 * 1024 + 1), 2);
        assert_eq!(p.bytes_to_pages(80 * 1024), 10);
    }

    #[test]
    fn validate_rejects_nonsense() {
        let p = OsParams {
            quantum: SimDuration::ZERO,
            ..OsParams::default()
        };
        assert!(p.validate().is_err());

        let p = OsParams {
            estcpu_decay: 1.0,
            ..OsParams::default()
        };
        assert!(p.validate().is_err());

        let p = OsParams {
            fault_pages_per_deficit_page: -1.0,
            ..OsParams::default()
        };
        assert!(p.validate().is_err());

        let p = OsParams {
            priority_levels: 0,
            ..OsParams::default()
        };
        assert!(p.validate().is_err());
    }
}
