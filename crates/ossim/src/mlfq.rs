//! Multilevel-feedback ready queues (4.3BSD style).
//!
//! "The process ready queue is a multilevel feedback queue divided into
//! multiple lists according to process priority. Processes are scheduled
//! based on priority and may be preempted following quantum expiration."
//! (§5.1). This module is the pure queue structure; timing, quantum
//! accounting and decay live in [`crate::node`].

use std::collections::VecDeque;

use crate::process::Pid;

/// Ready queues: one FIFO per priority level; level 0 is the highest
/// priority.
#[derive(Debug, Clone)]
pub struct ReadyQueues {
    queues: Vec<VecDeque<Pid>>,
    len: usize,
}

impl ReadyQueues {
    /// Create with `levels` priority levels.
    pub fn new(levels: u8) -> Self {
        assert!(levels > 0, "need at least one priority level");
        ReadyQueues {
            queues: (0..levels).map(|_| VecDeque::new()).collect(),
            len: 0,
        }
    }

    /// Number of levels.
    pub fn levels(&self) -> u8 {
        self.queues.len() as u8
    }

    /// Enqueue at the back of `level`'s FIFO (normal admission).
    pub fn push_back(&mut self, pid: Pid, level: u8) {
        self.queues[level as usize].push_back(pid);
        self.len += 1;
    }

    /// Enqueue at the front of `level`'s FIFO (used when a running process
    /// is preempted mid-quantum: BSD puts it back at the head of its queue
    /// so it resumes before its peers).
    pub fn push_front(&mut self, pid: Pid, level: u8) {
        self.queues[level as usize].push_front(pid);
        self.len += 1;
    }

    /// Remove and return the highest-priority ready process.
    pub fn pop_highest(&mut self) -> Option<(Pid, u8)> {
        for (level, q) in self.queues.iter_mut().enumerate() {
            if let Some(pid) = q.pop_front() {
                self.len -= 1;
                return Some((pid, level as u8));
            }
        }
        None
    }

    /// The level of the best ready process without removing it.
    pub fn highest_level(&self) -> Option<u8> {
        self.queues
            .iter()
            .position(|q| !q.is_empty())
            .map(|l| l as u8)
    }

    /// Total ready processes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no process is ready.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Re-bucket every ready process according to `level_of` (called after
    /// a priority-decay tick). FIFO order within each destination level
    /// follows (old level, old position) order, matching a sequential
    /// rescan of the proc table.
    pub fn rebucket(&mut self, mut level_of: impl FnMut(Pid) -> u8) {
        let levels = self.queues.len();
        let mut all: Vec<Pid> = Vec::with_capacity(self.len);
        for q in &mut self.queues {
            all.extend(q.drain(..));
        }
        for pid in all {
            let lvl = (level_of(pid) as usize).min(levels - 1);
            self.queues[lvl].push_back(pid);
        }
        // len unchanged: rebucket moves, never adds or drops.
    }

    /// Remove a specific pid wherever it is queued (used by failure
    /// injection when a node kills a process). Returns true if found.
    pub fn remove(&mut self, pid: Pid) -> bool {
        for q in &mut self.queues {
            if let Some(idx) = q.iter().position(|&p| p == pid) {
                q.remove(idx);
                self.len -= 1;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_by_priority_then_fifo() {
        let mut q = ReadyQueues::new(4);
        q.push_back(Pid(1), 2);
        q.push_back(Pid(2), 0);
        q.push_back(Pid(3), 0);
        q.push_back(Pid(4), 3);
        assert_eq!(q.pop_highest(), Some((Pid(2), 0)));
        assert_eq!(q.pop_highest(), Some((Pid(3), 0)));
        assert_eq!(q.pop_highest(), Some((Pid(1), 2)));
        assert_eq!(q.pop_highest(), Some((Pid(4), 3)));
        assert_eq!(q.pop_highest(), None);
    }

    #[test]
    fn push_front_jumps_the_fifo() {
        let mut q = ReadyQueues::new(2);
        q.push_back(Pid(1), 0);
        q.push_front(Pid(2), 0);
        assert_eq!(q.pop_highest(), Some((Pid(2), 0)));
        assert_eq!(q.pop_highest(), Some((Pid(1), 0)));
    }

    #[test]
    fn highest_level_peeks() {
        let mut q = ReadyQueues::new(4);
        assert_eq!(q.highest_level(), None);
        q.push_back(Pid(1), 3);
        assert_eq!(q.highest_level(), Some(3));
        q.push_back(Pid(2), 1);
        assert_eq!(q.highest_level(), Some(1));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn rebucket_moves_everyone() {
        let mut q = ReadyQueues::new(4);
        q.push_back(Pid(1), 3);
        q.push_back(Pid(2), 3);
        q.push_back(Pid(3), 0);
        // Everyone decays to level 1.
        q.rebucket(|_| 1);
        assert_eq!(q.len(), 3);
        assert_eq!(q.highest_level(), Some(1));
        // Scan order: level 0 first (Pid 3), then level 3 (1, 2).
        assert_eq!(q.pop_highest(), Some((Pid(3), 1)));
        assert_eq!(q.pop_highest(), Some((Pid(1), 1)));
        assert_eq!(q.pop_highest(), Some((Pid(2), 1)));
    }

    #[test]
    fn rebucket_clamps_out_of_range_levels() {
        let mut q = ReadyQueues::new(4);
        q.push_back(Pid(1), 0);
        q.rebucket(|_| 200);
        assert_eq!(q.pop_highest(), Some((Pid(1), 3)));
    }

    #[test]
    fn remove_finds_and_removes() {
        let mut q = ReadyQueues::new(4);
        q.push_back(Pid(1), 1);
        q.push_back(Pid(2), 1);
        assert!(q.remove(Pid(1)));
        assert!(!q.remove(Pid(1)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_highest(), Some((Pid(2), 1)));
    }
}
