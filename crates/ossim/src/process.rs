//! Simulated processes: demand specifications and burst scripts.
//!
//! The paper's simulator models "each request job ... as a sequence of CPU
//! bursts and I/O bursts, submitted to the CPU queue and I/O queue". A
//! [`DemandSpec`] describes a request's contention-free resource needs
//! (total service demand, CPU/I-O split `w`, memory footprint); it is
//! compiled into a [`BurstScript`] — the alternating CPU/I-O sequence the
//! node executes.

use std::collections::VecDeque;

use msweb_simcore::{SimDuration, SimTime};

use crate::config::OsParams;

/// Process identifier, unique within one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u64);

/// What a request needs from the OS, measured on an unloaded node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandSpec {
    /// Total contention-free service demand (CPU + I/O time).
    pub service: SimDuration,
    /// Fraction of the demand that is CPU work (`w` in the paper's
    /// Equation 5); the rest is disk I/O.
    pub cpu_fraction: f64,
    /// Working-set size in pages. Memory pressure converts deficit pages
    /// into extra paging I/O.
    pub memory_pages: u32,
    /// Whether this is a CGI/dynamic request: charges `fork()` overhead
    /// and is eligible for remote placement.
    pub is_cgi: bool,
}

impl DemandSpec {
    /// A static file-fetch request: `service` split per `cpu_fraction`,
    /// footprint just the file pages, no fork.
    pub fn static_fetch(service: SimDuration, cpu_fraction: f64, file_pages: u32) -> Self {
        DemandSpec {
            service,
            cpu_fraction,
            memory_pages: file_pages,
            is_cgi: false,
        }
    }

    /// A CGI/dynamic request.
    pub fn cgi(service: SimDuration, cpu_fraction: f64, memory_pages: u32) -> Self {
        DemandSpec {
            service,
            cpu_fraction,
            memory_pages,
            is_cgi: true,
        }
    }

    /// CPU portion of the demand (excluding fork overhead).
    pub fn cpu_time(&self) -> SimDuration {
        self.service.mul_f64(self.cpu_fraction.clamp(0.0, 1.0))
    }

    /// I/O portion of the demand.
    pub fn io_time(&self) -> SimDuration {
        self.service.saturating_sub(self.cpu_time())
    }
}

/// One step of a process's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Burst {
    /// Compute for this long.
    Cpu(SimDuration),
    /// Read/write this many pages from disk.
    Io {
        /// Number of 8 KB pages to transfer.
        pages: u32,
    },
}

/// The compiled alternating burst sequence for one process.
#[derive(Debug, Clone, Default)]
pub struct BurstScript {
    bursts: VecDeque<Burst>,
}

impl BurstScript {
    /// Compile a demand spec into bursts.
    ///
    /// Layout: an optional fork CPU burst (CGI only), then the I/O pages
    /// interleaved with equal CPU slices so that CPU and I/O alternate —
    /// the paper's "sequence of CPU bursts and I/O bursts". `extra_fault_pages`
    /// (from memory pressure) are appended to the I/O page budget before
    /// interleaving.
    pub fn compile(spec: &DemandSpec, params: &OsParams, extra_fault_pages: u32) -> Self {
        let mut bursts = VecDeque::new();
        if spec.is_cgi && !params.fork_overhead.is_zero() {
            bursts.push_back(Burst::Cpu(params.fork_overhead));
        }
        // Whole pages of I/O; the sub-page remainder is folded back into
        // CPU time so the total executed demand equals the specification
        // exactly (otherwise small requests would under-execute and the
        // measured stretch could dip below 1).
        let io_time = spec.io_time();
        let whole_pages = (io_time.as_micros() / params.page_io.as_micros()) as u32;
        let remainder = io_time.saturating_sub(params.page_io.mul(whole_pages as u64));
        let cpu_total = spec.cpu_time() + remainder;
        let io_pages = whole_pages + extra_fault_pages;

        if io_pages == 0 {
            if !cpu_total.is_zero() {
                bursts.push_back(Burst::Cpu(cpu_total));
            }
        } else {
            // Split the I/O into groups no larger than one quantum's worth
            // of pages so CPU and I/O genuinely interleave, and divide the
            // CPU evenly between the groups (CPU first: a request must
            // parse before it can read).
            let pages_per_group =
                (params.quantum.as_micros() / params.page_io.as_micros()).max(1) as u32;
            let groups = io_pages.div_ceil(pages_per_group).max(1);
            let cpu_slice = SimDuration::from_micros(cpu_total.as_micros() / groups as u64);
            let mut remaining_cpu = cpu_total;
            let mut remaining_pages = io_pages;
            for g in 0..groups {
                let cpu = if g + 1 == groups {
                    remaining_cpu
                } else {
                    cpu_slice
                };
                if !cpu.is_zero() {
                    bursts.push_back(Burst::Cpu(cpu));
                }
                remaining_cpu -= cpu;
                let pages = remaining_pages.min(pages_per_group);
                if pages > 0 {
                    bursts.push_back(Burst::Io { pages });
                }
                remaining_pages -= pages;
            }
        }
        BurstScript { bursts }
    }

    /// Next burst, removing it from the script.
    pub fn pop(&mut self) -> Option<Burst> {
        self.bursts.pop_front()
    }

    /// Peek without removing.
    pub fn peek(&self) -> Option<&Burst> {
        self.bursts.front()
    }

    /// Remaining burst count.
    pub fn len(&self) -> usize {
        self.bursts.len()
    }

    /// True if no bursts remain.
    pub fn is_empty(&self) -> bool {
        self.bursts.is_empty()
    }

    /// Total CPU time across remaining bursts.
    pub fn total_cpu(&self) -> SimDuration {
        self.bursts
            .iter()
            .map(|b| match b {
                Burst::Cpu(d) => *d,
                Burst::Io { .. } => SimDuration::ZERO,
            })
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Total I/O pages across remaining bursts.
    pub fn total_io_pages(&self) -> u32 {
        self.bursts
            .iter()
            .map(|b| match b {
                Burst::Cpu(_) => 0,
                Burst::Io { pages } => *pages,
            })
            .sum()
    }
}

/// Scheduling state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Waiting in a CPU ready queue.
    Ready,
    /// Currently holding the CPU.
    Running,
    /// Waiting for or performing disk I/O.
    BlockedIo,
    /// Finished all bursts.
    Done,
}

/// A live process on a simulated node.
#[derive(Debug, Clone)]
pub struct Process {
    /// Node-local identifier.
    pub pid: Pid,
    /// Remaining execution script.
    pub script: BurstScript,
    /// Remaining time in the current CPU burst (valid in Ready/Running
    /// when the current step is CPU work).
    pub cpu_remaining: SimDuration,
    /// Remaining pages in the current I/O burst (valid in BlockedIo).
    pub io_pages_remaining: u32,
    /// Scheduling state.
    pub state: ProcState,
    /// 4.3BSD-style CPU usage estimate, in quantum units; decayed
    /// periodically, drives the priority level.
    pub estcpu: f64,
    /// Pages of physical memory held.
    pub resident_pages: u32,
    /// When the process was submitted to the node.
    pub arrived: SimTime,
    /// Opaque tag the cluster layer uses to map completions back to
    /// requests.
    pub tag: u64,
}

impl Process {
    /// Create a process from a compiled script, loading the first burst.
    pub fn new(pid: Pid, mut script: BurstScript, arrived: SimTime, tag: u64) -> Self {
        let (cpu_remaining, io_pages_remaining, state) = match script.pop() {
            Some(Burst::Cpu(d)) => (d, 0, ProcState::Ready),
            Some(Burst::Io { pages }) => (SimDuration::ZERO, pages, ProcState::BlockedIo),
            None => (SimDuration::ZERO, 0, ProcState::Done),
        };
        Process {
            pid,
            script,
            cpu_remaining,
            io_pages_remaining,
            state,
            estcpu: 0.0,
            resident_pages: 0,
            arrived,
            tag,
        }
    }

    /// Advance to the next burst after finishing the current one.
    /// Returns the new state.
    pub fn advance_burst(&mut self) -> ProcState {
        debug_assert!(self.cpu_remaining.is_zero() && self.io_pages_remaining == 0);
        match self.script.pop() {
            Some(Burst::Cpu(d)) => {
                self.cpu_remaining = d;
                self.state = ProcState::Ready;
            }
            Some(Burst::Io { pages }) => {
                self.io_pages_remaining = pages;
                self.state = ProcState::BlockedIo;
            }
            None => {
                self.state = ProcState::Done;
            }
        }
        self.state
    }

    /// Priority level for the MLFQ given the configured level count:
    /// higher `estcpu` ⇒ numerically larger level ⇒ lower priority.
    /// This is the shape of 4.3BSD's `p_usrpri = PUSER + p_estcpu/4 + ...`
    /// folded onto `levels` run queues.
    pub fn priority_level(&self, levels: u8) -> u8 {
        let lvl = (self.estcpu / 2.0).floor();
        (lvl as u8).min(levels - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OsParams {
        OsParams::default()
    }

    #[test]
    fn demand_split() {
        let d = DemandSpec::cgi(SimDuration::from_millis(100), 0.9, 10);
        assert_eq!(d.cpu_time(), SimDuration::from_millis(90));
        assert_eq!(d.io_time(), SimDuration::from_millis(10));
    }

    #[test]
    fn pure_cpu_script() {
        let d = DemandSpec::static_fetch(SimDuration::from_millis(10), 1.0, 1);
        let s = BurstScript::compile(&d, &params(), 0);
        assert_eq!(s.total_cpu(), SimDuration::from_millis(10));
        assert_eq!(s.total_io_pages(), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn pure_io_script() {
        let d = DemandSpec::static_fetch(SimDuration::from_millis(10), 0.0, 5);
        let s = BurstScript::compile(&d, &params(), 0);
        assert_eq!(s.total_cpu(), SimDuration::ZERO);
        // 10ms of I/O at 2ms/page = 5 pages.
        assert_eq!(s.total_io_pages(), 5);
    }

    #[test]
    fn compile_conserves_total_demand() {
        // Sub-page I/O remainders must reappear as CPU time.
        for (ms_total, w) in [(1u64, 0.5), (7, 0.3), (33, 0.8), (100, 0.05)] {
            let d = DemandSpec::static_fetch(SimDuration::from_millis(ms_total), w, 1);
            let s = BurstScript::compile(&d, &params(), 0);
            let executed =
                s.total_cpu() + SimDuration::from_millis(2).mul(s.total_io_pages() as u64);
            let total = SimDuration::from_millis(ms_total);
            let drift = executed.as_micros().abs_diff(total.as_micros());
            assert!(drift <= 2, "demand {total} executed {executed}");
        }
    }

    #[test]
    fn script_conserves_demand() {
        let d = DemandSpec::static_fetch(SimDuration::from_millis(40), 0.5, 4);
        let s = BurstScript::compile(&d, &params(), 0);
        assert_eq!(s.total_cpu(), SimDuration::from_millis(20));
        // 20ms I/O = 10 pages.
        assert_eq!(s.total_io_pages(), 10);
    }

    #[test]
    fn cgi_charges_fork() {
        let d = DemandSpec::cgi(SimDuration::from_millis(40), 0.5, 4);
        let s = BurstScript::compile(&d, &params(), 0);
        // fork (3ms) + cpu 20ms split across groups.
        assert_eq!(
            s.total_cpu(),
            SimDuration::from_millis(23),
            "fork overhead must be added"
        );
        assert_eq!(s.total_io_pages(), 10);
    }

    #[test]
    fn fault_pages_appended() {
        let d = DemandSpec::static_fetch(SimDuration::from_millis(10), 1.0, 1);
        let s = BurstScript::compile(&d, &params(), 7);
        assert_eq!(s.total_io_pages(), 7);
        assert_eq!(s.total_cpu(), SimDuration::from_millis(10));
    }

    #[test]
    fn bursts_alternate() {
        let d = DemandSpec::cgi(SimDuration::from_millis(200), 0.5, 10);
        let mut s = BurstScript::compile(&d, &params(), 0);
        // No two consecutive bursts of the same kind after the fork burst
        // (the compiler may emit fork-CPU then group-CPU back to back only
        // if the group CPU slice is zero, which it is not here).
        let mut kinds = vec![];
        while let Some(b) = s.pop() {
            kinds.push(matches!(b, Burst::Cpu(_)));
        }
        // At least one I/O in between.
        assert!(kinds.iter().any(|&k| !k));
        // Ends with I/O (CPU first within each group).
        assert!(!kinds.last().unwrap());
    }

    #[test]
    fn io_groups_bounded_by_quantum_worth() {
        let d = DemandSpec::static_fetch(SimDuration::from_millis(100), 0.0, 1);
        let mut s = BurstScript::compile(&d, &params(), 0);
        // quantum 10ms / page 2ms = max 5 pages per group.
        while let Some(b) = s.pop() {
            if let Burst::Io { pages } = b {
                assert!(pages <= 5, "group of {pages} pages too large");
            }
        }
    }

    #[test]
    fn process_initial_state_from_script() {
        let d = DemandSpec::cgi(SimDuration::from_millis(10), 1.0, 1);
        let s = BurstScript::compile(&d, &params(), 0);
        let p = Process::new(Pid(1), s, SimTime::ZERO, 7);
        assert_eq!(p.state, ProcState::Ready);
        assert_eq!(p.cpu_remaining, SimDuration::from_millis(3)); // fork burst
        assert_eq!(p.tag, 7);
    }

    #[test]
    fn process_empty_script_is_done() {
        let p = Process::new(Pid(1), BurstScript::default(), SimTime::ZERO, 0);
        assert_eq!(p.state, ProcState::Done);
    }

    #[test]
    fn advance_burst_walks_script() {
        let d = DemandSpec::static_fetch(SimDuration::from_millis(4), 0.5, 1);
        let s = BurstScript::compile(&d, &params(), 0);
        let mut p = Process::new(Pid(1), s, SimTime::ZERO, 0);
        assert_eq!(p.state, ProcState::Ready);
        p.cpu_remaining = SimDuration::ZERO;
        assert_eq!(p.advance_burst(), ProcState::BlockedIo);
        assert_eq!(p.io_pages_remaining, 1);
        p.io_pages_remaining = 0;
        assert_eq!(p.advance_burst(), ProcState::Done);
    }

    #[test]
    fn priority_level_monotone_in_estcpu() {
        let d = DemandSpec::static_fetch(SimDuration::from_millis(1), 1.0, 1);
        let s = BurstScript::compile(&d, &params(), 0);
        let mut p = Process::new(Pid(1), s, SimTime::ZERO, 0);
        let mut last = 0;
        for e in 0..200 {
            p.estcpu = e as f64;
            let lvl = p.priority_level(32);
            assert!(lvl >= last);
            assert!(lvl <= 31);
            last = lvl;
        }
        assert_eq!(last, 31, "estcpu saturation should reach the bottom queue");
    }
}
