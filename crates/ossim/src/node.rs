//! A simulated server node: CPU (MLFQ), disk (round-robin), memory
//! (demand paging) coordinated into one discrete-event state machine.
//!
//! The node exposes the interface the cluster driver needs:
//!
//! * [`Node::submit`] — admit a request's process at the current time;
//! * [`Node::next_event`] — when the node next changes state on its own;
//! * [`Node::advance`] — process exactly one internal event (CPU slice
//!   end, disk page completion, or priority-decay tick);
//! * [`Node::drain_completed`] — collect finished requests;
//! * [`Node::load`] — the rstat-style counters the scheduler samples.
//!
//! The driver interleaves node events with request arrivals in global
//! timestamp order; the node only requires that the times it sees never
//! decrease.

use std::collections::HashMap;

use msweb_simcore::{SimDuration, SimTime};

use crate::config::OsParams;
use crate::disk::{Disk, DiskEvent};
use crate::memory::MemoryManager;
use crate::mlfq::ReadyQueues;
use crate::process::{BurstScript, DemandSpec, Pid, ProcState, Process};

/// A finished request, as reported by the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The tag supplied at `submit` (the cluster's request id).
    pub tag: u64,
    /// When the process was admitted to this node.
    pub arrived: SimTime,
    /// When its last burst finished.
    pub finished: SimTime,
}

/// Cumulative load counters, sampled by the cluster's load monitor. All
/// counters are monotone; the monitor differences successive samples to
/// get windowed CPU-idle and disk-available ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSnapshot {
    /// When the snapshot was taken.
    pub at: SimTime,
    /// Cumulative CPU busy time (slices + context switches).
    pub cpu_busy: SimDuration,
    /// Cumulative disk busy time (completed page operations).
    pub disk_busy: SimDuration,
    /// Fraction of physical memory currently free.
    pub mem_free_ratio: f64,
    /// Ready-queue length right now.
    pub ready_len: usize,
    /// Disk-queue length right now (processes).
    pub disk_queue_len: usize,
    /// Live processes on the node.
    pub processes: usize,
}

/// The slice currently holding the CPU.
#[derive(Debug, Clone, Copy)]
struct Running {
    pid: Pid,
    level: u8,
    /// When the slice (including any context-switch overhead) began.
    started: SimTime,
    /// When the context-switch overhead ends and useful work begins.
    ctx_until: SimTime,
    /// When the slice will end if not preempted.
    slice_end: SimTime,
    /// CPU progress the process makes if the slice runs to `slice_end`.
    planned_progress: SimDuration,
}

/// One simulated server node.
#[derive(Debug)]
pub struct Node {
    /// Diagnostic identifier (the cluster's node index).
    pub id: usize,
    params: OsParams,
    /// Relative CPU speed; CPU bursts take `duration / speed` wall time.
    speed: f64,
    now: SimTime,
    procs: HashMap<Pid, Process>,
    ready: ReadyQueues,
    running: Option<Running>,
    /// Last process to hold the CPU, for context-switch charging.
    last_run: Option<Pid>,
    disk: Disk,
    memory: MemoryManager,
    next_decay: Option<SimTime>,
    next_pid: u64,
    completed: Vec<Completion>,
    cpu_busy: SimDuration,
    ctx_switches: u64,
    submitted: u64,
    finished: u64,
    fault_pages: u64,
}

impl Node {
    /// A new idle node with the given parameters.
    pub fn new(id: usize, params: OsParams) -> Self {
        params.validate().expect("invalid OS parameters");
        let levels = params.priority_levels;
        let memory = MemoryManager::new(params.memory_pages);
        let disk = Disk::new(params.page_io);
        Node {
            id,
            params,
            speed: 1.0,
            now: SimTime::ZERO,
            procs: HashMap::new(),
            ready: ReadyQueues::new(levels),
            running: None,
            last_run: None,
            disk,
            memory,
            next_decay: None,
            next_pid: 0,
            completed: Vec::new(),
            cpu_busy: SimDuration::ZERO,
            ctx_switches: 0,
            submitted: 0,
            finished: 0,
            fault_pages: 0,
        }
    }

    /// A node whose CPU runs `speed`× the baseline (heterogeneous
    /// clusters; the paper's Section 6 extension).
    pub fn with_speed(id: usize, params: OsParams, speed: f64) -> Self {
        assert!(speed > 0.0 && speed.is_finite(), "bad node speed {speed}");
        let mut n = Node::new(id, params);
        n.speed = speed;
        n
    }

    /// This node's CPU speed factor.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// The node's current local time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The OS parameters in force.
    pub fn params(&self) -> &OsParams {
        &self.params
    }

    /// Admit a request at time `now`. Returns the process id.
    pub fn submit(&mut self, spec: &DemandSpec, now: SimTime, tag: u64) -> Pid {
        debug_assert!(now >= self.now, "node time went backwards on submit");
        self.now = now;
        self.submitted += 1;
        let pid = Pid(self.next_pid);
        self.next_pid += 1;

        let alloc = self.memory.allocate(pid, spec.memory_pages);
        let extra_faults =
            (alloc.deficit as f64 * self.params.fault_pages_per_deficit_page).round() as u32;
        self.fault_pages += u64::from(extra_faults);
        let script = BurstScript::compile(spec, &self.params, extra_faults);
        let mut proc = Process::new(pid, script, now, tag);
        proc.resident_pages = alloc.resident;
        let state = proc.state;
        self.procs.insert(pid, proc);

        if self.next_decay.is_none() {
            self.next_decay = Some(now + self.params.priority_update_period);
        }

        match state {
            ProcState::Ready => {
                let level = self.procs[&pid].priority_level(self.ready.levels());
                self.make_ready(pid, level, false);
            }
            ProcState::BlockedIo => {
                let pages = self.procs[&pid].io_pages_remaining;
                self.disk.submit(pid, pages, now);
            }
            ProcState::Done => self.finish(pid),
            ProcState::Running => unreachable!("fresh process cannot be running"),
        }
        self.dispatch(now);
        pid
    }

    /// The time of the node's next internal event, if any.
    pub fn next_event(&self) -> Option<SimTime> {
        let mut t = self.running.map(|r| r.slice_end);
        for cand in [self.disk.next_event(), self.next_decay] {
            t = match (t, cand) {
                (None, c) => c,
                (Some(a), None) => Some(a),
                (Some(a), Some(b)) => Some(a.min(b)),
            };
        }
        t
    }

    /// Process exactly one internal event due at `t` (which must equal
    /// [`Node::next_event`]). The driver loops while more events share the
    /// same timestamp.
    pub fn advance(&mut self, t: SimTime) {
        debug_assert_eq!(
            Some(t),
            self.next_event(),
            "advance called for a time that is not the next event"
        );
        self.now = t;
        // Deterministic tie order: disk, CPU, decay.
        if self.disk.next_event() == Some(t) {
            self.handle_disk(t);
        } else if self.running.map(|r| r.slice_end) == Some(t) {
            self.handle_slice_end(t);
        } else if self.next_decay == Some(t) {
            self.handle_decay(t);
        }
    }

    /// Collect completions recorded since the last drain.
    pub fn drain_completed(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completed)
    }

    /// The rstat-style load counters.
    pub fn load(&self) -> LoadSnapshot {
        LoadSnapshot {
            at: self.now,
            cpu_busy: self.cpu_busy,
            disk_busy: self.disk.busy_accum(),
            mem_free_ratio: self.memory.free_ratio(),
            ready_len: self.ready.len() + usize::from(self.running.is_some()),
            disk_queue_len: self.disk.queue_len(),
            processes: self.procs.len(),
        }
    }

    /// Number of live processes.
    pub fn live_processes(&self) -> usize {
        self.procs.len()
    }

    /// Total context switches charged so far.
    pub fn context_switches(&self) -> u64 {
        self.ctx_switches
    }

    /// Total extra paging I/O (in pages) injected for working-set
    /// deficits — the memory-pressure signal.
    pub fn fault_pages(&self) -> u64 {
        self.fault_pages
    }

    /// Requests admitted / finished so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.submitted, self.finished)
    }

    /// Kill a process (failure injection): remove it from every queue,
    /// free its memory, report nothing. Returns the request tag if the
    /// process existed.
    pub fn kill(&mut self, pid: Pid) -> Option<u64> {
        let proc = self.procs.remove(&pid)?;
        self.ready.remove(pid);
        self.disk.abort(pid);
        if let Some(r) = self.running {
            if r.pid == pid {
                // Account the CPU time burned so far, then drop the slice.
                let burned = self.now.max(r.started) - r.started;
                self.cpu_busy += burned;
                self.running = None;
                self.dispatch(self.now);
            }
        }
        self.memory.release(pid);
        if self.procs.is_empty() {
            self.next_decay = None;
        }
        Some(proc.tag)
    }

    /// Kill every live process (whole-node crash). Returns the request
    /// tags that were lost, for the cluster's failure-recovery path.
    pub fn kill_all(&mut self) -> Vec<u64> {
        let pids: Vec<Pid> = self.procs.keys().copied().collect();
        let mut tags = Vec::with_capacity(pids.len());
        for pid in pids {
            if let Some(tag) = self.kill(pid) {
                tags.push(tag);
            }
        }
        tags.sort_unstable();
        tags
    }

    /// True when nothing is running, ready, or blocked.
    pub fn is_idle(&self) -> bool {
        self.procs.is_empty()
    }

    // ---- internal machinery -------------------------------------------------

    /// Queue `pid` at `level`, preempting the running slice if this
    /// process has strictly higher priority (smaller level).
    fn make_ready(&mut self, pid: Pid, level: u8, at_front: bool) {
        if at_front {
            self.ready.push_front(pid, level);
        } else {
            self.ready.push_back(pid, level);
        }
        if let Some(r) = self.running {
            if level < r.level {
                self.preempt(self.now);
            }
        }
    }

    /// Stop the running slice at `t`, crediting partial progress, and
    /// requeue the process at the *front* of its level (it keeps its
    /// claim to the remainder of its quantum's worth of service). A
    /// preemption landing exactly at the slice's natural end (e.g. a
    /// same-timestamp disk completion waking a higher-priority process)
    /// completes the burst instead of requeueing an empty one.
    fn preempt(&mut self, t: SimTime) {
        let Some(r) = self.running.take() else {
            return;
        };
        let executed_wall = t.max(r.ctx_until) - r.ctx_until;
        let progress = executed_wall.mul_f64(self.speed).min(r.planned_progress);
        let proc = self
            .procs
            .get_mut(&r.pid)
            .expect("running process vanished");
        proc.cpu_remaining -= progress;
        proc.estcpu += progress.as_secs_f64() / self.params.quantum.as_secs_f64();
        self.cpu_busy += t - r.started;
        self.last_run = Some(r.pid);
        if self.procs[&r.pid].cpu_remaining.is_zero() {
            self.finish_cpu_burst(r.pid, t);
        } else {
            let proc = self
                .procs
                .get_mut(&r.pid)
                .expect("running process vanished");
            proc.state = ProcState::Ready;
            self.ready.push_front(r.pid, r.level);
        }
        self.dispatch(t);
    }

    /// A process's current CPU burst is exhausted: advance its script.
    fn finish_cpu_burst(&mut self, pid: Pid, t: SimTime) {
        let proc = self.procs.get_mut(&pid).expect("process vanished");
        debug_assert!(proc.cpu_remaining.is_zero());
        match proc.advance_burst() {
            ProcState::Ready => {
                let level = proc.priority_level(self.ready.levels());
                self.make_ready(pid, level, false);
            }
            ProcState::BlockedIo => {
                let pages = proc.io_pages_remaining;
                self.disk.submit(pid, pages, t);
            }
            ProcState::Done => self.finish(pid),
            ProcState::Running => unreachable!(),
        }
    }

    /// Give the CPU to the best ready process if the CPU is free.
    fn dispatch(&mut self, t: SimTime) {
        if self.running.is_some() {
            return;
        }
        let Some((pid, level)) = self.ready.pop_highest() else {
            return;
        };
        let proc = self.procs.get_mut(&pid).expect("ready process vanished");
        proc.state = ProcState::Running;
        let ctx = if self.last_run == Some(pid) {
            SimDuration::ZERO
        } else {
            self.ctx_switches += 1;
            self.params.context_switch
        };
        let planned = self.params.quantum.min(proc.cpu_remaining);
        debug_assert!(!planned.is_zero(), "dispatching a process with no CPU work");
        let run_wall = planned
            .mul_f64(1.0 / self.speed)
            .max(SimDuration::from_micros(1));
        let ctx_until = t + ctx;
        self.running = Some(Running {
            pid,
            level,
            started: t,
            ctx_until,
            slice_end: ctx_until + run_wall,
            planned_progress: planned,
        });
    }

    /// A CPU slice ran to its natural end.
    fn handle_slice_end(&mut self, t: SimTime) {
        let r = self
            .running
            .take()
            .expect("slice end with no running process");
        self.cpu_busy += t - r.started;
        self.last_run = Some(r.pid);
        let proc = self
            .procs
            .get_mut(&r.pid)
            .expect("running process vanished");
        proc.cpu_remaining -= r.planned_progress.min(proc.cpu_remaining);
        proc.estcpu += r.planned_progress.as_secs_f64() / self.params.quantum.as_secs_f64();

        if proc.cpu_remaining.is_zero() {
            // Burst finished: move to the next burst.
            self.finish_cpu_burst(r.pid, t);
        } else {
            // Quantum expiry: requeue at the (possibly lower) priority.
            proc.state = ProcState::Ready;
            let level = proc.priority_level(self.ready.levels());
            self.make_ready(r.pid, level, false);
        }
        self.dispatch(t);
    }

    /// A disk page completed.
    fn handle_disk(&mut self, t: SimTime) {
        match self.disk.complete_or_discard(t) {
            None | Some(DiskEvent::PageDone(_)) => {}
            Some(DiskEvent::BurstDone(pid)) => {
                let proc = self.procs.get_mut(&pid).expect("I/O process vanished");
                proc.io_pages_remaining = 0;
                match proc.advance_burst() {
                    ProcState::Ready => {
                        let level = proc.priority_level(self.ready.levels());
                        self.make_ready(pid, level, false);
                        self.dispatch(t);
                    }
                    ProcState::BlockedIo => {
                        let pages = proc.io_pages_remaining;
                        self.disk.submit(pid, pages, t);
                    }
                    ProcState::Done => self.finish(pid),
                    ProcState::Running => unreachable!(),
                }
            }
        }
    }

    /// Priority-update tick: decay every estcpu and re-bucket the ready
    /// queues (4.3BSD's schedcpu()).
    fn handle_decay(&mut self, t: SimTime) {
        let decay = self.params.estcpu_decay;
        for proc in self.procs.values_mut() {
            proc.estcpu *= decay;
        }
        let levels = self.ready.levels();
        let procs = &self.procs;
        self.ready.rebucket(|pid| {
            procs
                .get(&pid)
                .map_or(levels - 1, |p| p.priority_level(levels))
        });
        self.next_decay = if self.procs.is_empty() {
            None
        } else {
            Some(t + self.params.priority_update_period)
        };
    }

    /// Record completion, free resources.
    fn finish(&mut self, pid: Pid) {
        let proc = self.procs.remove(&pid).expect("finishing unknown process");
        self.memory.release(pid);
        self.finished += 1;
        self.completed.push(Completion {
            tag: proc.tag,
            arrived: proc.arrived,
            finished: self.now,
        });
        if self.last_run == Some(pid) {
            // The next dispatch is necessarily a switch.
            self.last_run = None;
        }
        if self.procs.is_empty() {
            self.next_decay = None;
        }
    }
}

/// Run a node in isolation until it is idle (or `limit` events elapse),
/// returning all completions. Test/diagnostic helper.
pub fn run_to_idle(node: &mut Node, limit: u64) -> Vec<Completion> {
    let mut out = Vec::new();
    let mut steps = 0;
    while let Some(t) = node.next_event() {
        node.advance(t);
        out.extend(node.drain_completed());
        steps += 1;
        assert!(steps < limit, "node did not go idle within {limit} events");
    }
    out.extend(node.drain_completed());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    fn node() -> Node {
        Node::new(0, OsParams::default())
    }

    #[test]
    fn single_cpu_process_timing() {
        let mut n = node();
        // 25ms pure CPU: ctx 50us + 3 slices (10+10+5).
        let spec = DemandSpec::static_fetch(ms(25), 1.0, 0);
        n.submit(&spec, SimTime::ZERO, 1);
        let done = run_to_idle(&mut n, 100);
        assert_eq!(done.len(), 1);
        let c = done[0];
        assert_eq!(c.tag, 1);
        // One context switch only (same pid keeps the CPU across quanta).
        assert_eq!(n.context_switches(), 1);
        let expect = SimDuration::from_micros(25_000 + 50);
        assert_eq!(c.finished - c.arrived, expect);
        assert!(n.is_idle());
    }

    #[test]
    fn cgi_charges_fork_overhead() {
        let mut n = node();
        let spec = DemandSpec::cgi(ms(20), 1.0, 0);
        n.submit(&spec, SimTime::ZERO, 9);
        let done = run_to_idle(&mut n, 100);
        // 3ms fork + 20ms CPU + 50us ctx.
        assert_eq!(
            done[0].finished - done[0].arrived,
            SimDuration::from_micros(23_000 + 50)
        );
    }

    #[test]
    fn io_process_timing() {
        let mut n = node();
        // 10ms demand, all I/O -> 5 pages * 2ms.
        let spec = DemandSpec::static_fetch(ms(10), 0.0, 0);
        n.submit(&spec, SimTime::ZERO, 2);
        let done = run_to_idle(&mut n, 100);
        assert_eq!(done[0].finished - done[0].arrived, ms(10));
        // CPU untouched.
        assert_eq!(n.load().cpu_busy, SimDuration::ZERO);
        assert_eq!(n.load().disk_busy, ms(10));
    }

    #[test]
    fn two_cpu_processes_round_robin() {
        let mut n = node();
        let spec = DemandSpec::static_fetch(ms(30), 1.0, 0);
        n.submit(&spec, SimTime::ZERO, 1);
        n.submit(&spec, SimTime::ZERO, 2);
        let done = run_to_idle(&mut n, 1000);
        assert_eq!(done.len(), 2);
        // Total CPU work = 60ms; with overheads both finish close to 60ms,
        // and the two completions are distinct (interleaved service).
        let spread = done[1].finished - done[0].finished;
        assert!(spread <= ms(11), "completions too far apart: {spread}");
        let total = done.iter().map(|c| c.finished).max().unwrap();
        assert!(total >= SimTime::from_millis(60));
        assert!(
            total <= SimTime::from_millis(62),
            "too much overhead: {total}"
        );
    }

    #[test]
    fn cpu_work_conservation() {
        let mut n = node();
        let demands = [5u64, 12, 33, 7, 28];
        for (i, &d) in demands.iter().enumerate() {
            n.submit(
                &DemandSpec::static_fetch(ms(d), 1.0, 0),
                SimTime::ZERO,
                i as u64,
            );
        }
        let done = run_to_idle(&mut n, 10_000);
        assert_eq!(done.len(), demands.len());
        let total_demand: u64 = demands.iter().sum();
        let busy = n.load().cpu_busy;
        let overhead = busy - ms(total_demand);
        // Busy = demand + context switches; each switch is 50us.
        assert_eq!(
            overhead,
            SimDuration::from_micros(n.context_switches() * 50),
            "CPU busy must equal demand plus context-switch overhead"
        );
    }

    #[test]
    fn fresh_short_job_preempts_cpu_hog() {
        let mut n = node();
        // A CPU hog that has been running long enough to sink in priority.
        n.submit(&DemandSpec::static_fetch(ms(500), 1.0, 0), SimTime::ZERO, 1);
        // Let it burn 200ms (priority decays it downward).
        while let Some(t) = n.next_event() {
            if t > SimTime::from_millis(200) {
                break;
            }
            n.advance(t);
        }
        // Now a short job arrives; it should finish long before the hog.
        let t0 = n.now();
        n.submit(&DemandSpec::static_fetch(ms(5), 1.0, 0), t0, 2);
        let done = run_to_idle(&mut n, 10_000);
        let short = done.iter().find(|c| c.tag == 2).unwrap();
        let hog = done.iter().find(|c| c.tag == 1).unwrap();
        assert!(short.finished < hog.finished);
        let short_resp = short.finished - short.arrived;
        assert!(
            short_resp < ms(30),
            "short job should run promptly, took {short_resp}"
        );
    }

    #[test]
    fn mixed_cpu_io_overlap() {
        let mut n = node();
        // One CPU-bound and one I/O-bound job overlap almost perfectly.
        n.submit(&DemandSpec::static_fetch(ms(40), 1.0, 0), SimTime::ZERO, 1);
        n.submit(&DemandSpec::static_fetch(ms(40), 0.0, 0), SimTime::ZERO, 2);
        let done = run_to_idle(&mut n, 10_000);
        let end = done.iter().map(|c| c.finished).max().unwrap();
        // Perfect overlap would be 40ms; allow a little scheduling slack.
        assert!(
            end <= SimTime::from_millis(45),
            "CPU and disk should overlap, finished at {end}"
        );
    }

    #[test]
    fn memory_deficit_adds_paging_io() {
        let params = OsParams {
            memory_pages: 10,
            ..OsParams::default()
        };
        let mut n = Node::new(0, params);
        // First process takes all memory.
        n.submit(&DemandSpec::cgi(ms(50), 1.0, 10), SimTime::ZERO, 1);
        // Second wants 10 pages but gets none: 10 * 2 fault pages = 20
        // pages = 40ms extra I/O.
        n.submit(&DemandSpec::cgi(ms(50), 1.0, 10), SimTime::ZERO, 2);
        let done = run_to_idle(&mut n, 100_000);
        let starved = done.iter().find(|c| c.tag == 2).unwrap();
        let fed = done.iter().find(|c| c.tag == 1).unwrap();
        assert!(
            starved.finished > fed.finished,
            "memory-starved process must finish later"
        );
        assert!(n.load().disk_busy >= ms(40), "paging I/O missing");
    }

    #[test]
    fn fault_page_counter_tracks_memory_pressure() {
        let params = OsParams {
            memory_pages: 10,
            ..OsParams::default()
        };
        let mut n = Node::new(0, params);
        n.submit(&DemandSpec::cgi(ms(5), 1.0, 10), SimTime::ZERO, 1);
        assert_eq!(n.fault_pages(), 0, "first process fits");
        n.submit(&DemandSpec::cgi(ms(5), 1.0, 10), SimTime::ZERO, 2);
        assert_eq!(n.fault_pages(), 20, "10-page deficit x 2 faults/page");
        run_to_idle(&mut n, 10_000);
    }

    #[test]
    fn memory_released_at_completion() {
        let mut n = node();
        n.submit(&DemandSpec::cgi(ms(5), 1.0, 100), SimTime::ZERO, 1);
        assert!(n.load().mem_free_ratio < 1.0);
        run_to_idle(&mut n, 100);
        assert_eq!(n.load().mem_free_ratio, 1.0);
    }

    #[test]
    fn kill_releases_everything() {
        let mut n = node();
        let spec = DemandSpec::cgi(ms(100), 0.5, 50);
        let pid = n.submit(&spec, SimTime::ZERO, 77);
        // Let it get going.
        for _ in 0..3 {
            if let Some(t) = n.next_event() {
                n.advance(t);
            }
        }
        assert_eq!(n.kill(pid), Some(77));
        assert_eq!(n.kill(pid), None);
        // Remaining events (an orphaned disk page at most) drain without
        // producing completions.
        let done = run_to_idle(&mut n, 100);
        assert!(done.is_empty());
        assert_eq!(n.load().mem_free_ratio, 1.0);
        assert!(n.is_idle());
    }

    #[test]
    fn load_snapshot_counts() {
        let mut n = node();
        n.submit(&DemandSpec::static_fetch(ms(50), 1.0, 0), SimTime::ZERO, 1);
        n.submit(&DemandSpec::static_fetch(ms(50), 1.0, 0), SimTime::ZERO, 2);
        n.submit(&DemandSpec::static_fetch(ms(50), 0.0, 0), SimTime::ZERO, 3);
        let l = n.load();
        assert_eq!(l.processes, 3);
        assert_eq!(l.ready_len, 2); // one running + one ready
        assert_eq!(l.disk_queue_len, 1);
        assert_eq!(n.counters(), (3, 0));
    }

    #[test]
    fn decay_tick_stops_when_idle() {
        let mut n = node();
        n.submit(&DemandSpec::static_fetch(ms(5), 1.0, 0), SimTime::ZERO, 1);
        run_to_idle(&mut n, 100);
        assert_eq!(n.next_event(), None, "idle node must not tick forever");
    }

    #[test]
    fn speed_scales_cpu_time() {
        let mut fast = Node::with_speed(0, OsParams::default(), 2.0);
        let spec = DemandSpec::static_fetch(ms(20), 1.0, 0);
        fast.submit(&spec, SimTime::ZERO, 1);
        let done = run_to_idle(&mut fast, 100);
        // 20ms of demand at 2x speed = 10ms wall + ctx.
        assert_eq!(
            done[0].finished - done[0].arrived,
            SimDuration::from_micros(10_000 + 50)
        );
    }

    #[test]
    fn submissions_at_increasing_times() {
        // Drive the node the way the cluster does: interleave arrivals
        // with node events in timestamp order.
        let mut n = node();
        n.submit(&DemandSpec::static_fetch(ms(5), 1.0, 0), SimTime::ZERO, 1);
        let first = run_to_idle(&mut n, 100);
        assert_eq!(first.len(), 1);
        n.submit(
            &DemandSpec::static_fetch(ms(5), 1.0, 0),
            SimTime::from_millis(100),
            2,
        );
        let second = run_to_idle(&mut n, 100);
        assert_eq!(second.len(), 1);
        // Second arrival found an idle node: response = demand + ctx.
        assert_eq!(
            second[0].finished - second[0].arrived,
            SimDuration::from_micros(5_000 + 50)
        );
        assert_eq!(second[0].arrived, SimTime::from_millis(100));
    }
}
