//! # msweb-ossim
//!
//! The per-node operating-system model from Section 5.1 of *Scheduling
//! Optimization for Resource-Intensive Web Requests on Server Clusters*
//! (Zhu, Smith, Yang; SPAA 1999): "a simulator of a Web server cluster
//! which approximates the behavior of OS management for CPU, memory and
//! disk storage".
//!
//! Each [`Node`] combines:
//!
//! * a **4.3BSD-style multilevel-feedback CPU scheduler** ([`mlfq`]) —
//!   10 ms quantum, 100 ms priority decay, 50 µs context switch, 3 ms
//!   `fork()` charge for CGI processes;
//! * a **round-robin disk scheduler** ([`disk`]) serving 8 KB pages at
//!   2 ms per page;
//! * a **demand-paging memory manager** ([`memory`]) that converts
//!   working-set deficits into extra paging I/O;
//! * a **process model** ([`process`]) compiling each request's demand
//!   (total service time, CPU fraction `w`, memory footprint) into the
//!   alternating CPU/I-O burst script the paper describes.
//!
//! Nodes are pure state machines with an explicit next-event interface,
//! so the cluster layer can interleave many nodes and the arrival process
//! in one global timestamp order. Everything is deterministic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod disk;
pub mod memory;
pub mod mlfq;
pub mod node;
pub mod process;

pub use config::OsParams;
pub use disk::{Disk, DiskEvent};
pub use memory::{Allocation, MemoryManager};
pub use mlfq::ReadyQueues;
pub use node::{run_to_idle, Completion, LoadSnapshot, Node};
pub use process::{Burst, BurstScript, DemandSpec, Pid, ProcState, Process};
