//! Round-robin disk scheduler.
//!
//! "The I/O queue also maintains a set of I/O processes and is scheduled
//! using round-robin." (§5.1). Service is round-robin at page granularity:
//! the disk serves one page (a fixed [`OsParams::page_io`] interval) for
//! the process at the head of the ring, then rotates it to the tail if it
//! still has pages outstanding in its current burst.
//!
//! [`OsParams::page_io`]: crate::config::OsParams::page_io

use std::collections::VecDeque;

use msweb_simcore::{SimDuration, SimTime};

use crate::process::Pid;

/// The per-node disk: a ring of processes with outstanding page I/O.
#[derive(Debug, Clone)]
pub struct Disk {
    /// Time to serve one page.
    page_io: SimDuration,
    /// Processes waiting for disk service: (pid, pages left in burst).
    ring: VecDeque<(Pid, u32)>,
    /// The operation in flight: (pid, completion time). The pid is *not*
    /// in `ring` while being served.
    current: Option<(Pid, SimTime)>,
    /// Cumulative busy time, for DiskAvailRatio sampling.
    busy_accum: SimDuration,
}

/// What happened when a page completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskEvent {
    /// A page finished but the process still has pages left in this burst.
    PageDone(Pid),
    /// The process's current I/O burst is fully served.
    BurstDone(Pid),
}

impl Disk {
    /// A new idle disk.
    pub fn new(page_io: SimDuration) -> Self {
        assert!(!page_io.is_zero(), "page I/O time must be positive");
        Disk {
            page_io,
            ring: VecDeque::new(),
            current: None,
            busy_accum: SimDuration::ZERO,
        }
    }

    /// Submit an I/O burst of `pages` pages for `pid`, starting service
    /// immediately if the disk is idle.
    pub fn submit(&mut self, pid: Pid, pages: u32, now: SimTime) {
        debug_assert!(pages > 0, "zero-page burst");
        self.ring.push_back((pid, pages));
        self.maybe_start(now);
    }

    /// Completion time of the operation in flight, if any.
    pub fn next_event(&self) -> Option<SimTime> {
        self.current.map(|(_, t)| t)
    }

    /// Handle the completion due at `now`. Panics if called when nothing
    /// completes at `now` (driver bug).
    pub fn complete(&mut self, now: SimTime) -> DiskEvent {
        let (pid, end) = self
            .current
            .take()
            .expect("disk completion with no op in flight");
        debug_assert_eq!(end, now, "disk completion at wrong time");
        self.busy_accum += self.page_io;

        // The served process is the ring head (service never rotates until
        // its page completes, so late arrivals queue *behind* it and get
        // their turn next).
        let head = self
            .ring
            .front_mut()
            .expect("served process missing from ring");
        debug_assert_eq!(head.0, pid, "ring head changed during service");
        head.1 -= 1;
        let event = if head.1 == 0 {
            self.ring.pop_front();
            DiskEvent::BurstDone(pid)
        } else {
            // Round-robin at page granularity: rotate to the back.
            let entry = self.ring.pop_front().expect("head vanished");
            self.ring.push_back(entry);
            DiskEvent::PageDone(pid)
        };
        self.maybe_start(now);
        event
    }

    /// Start serving the head of the ring if idle.
    fn maybe_start(&mut self, now: SimTime) {
        if self.current.is_some() {
            return;
        }
        if let Some(&(pid, _)) = self.ring.front() {
            self.current = Some((pid, now + self.page_io));
        }
    }

    /// Abort all queued and in-flight I/O for `pid` (failure injection).
    /// Returns true if anything was removed. An in-flight page completes
    /// wasted (the disk stays busy until its scheduled end) — matching a
    /// real controller that cannot recall a command — but the burst is
    /// forgotten.
    pub fn abort(&mut self, pid: Pid) -> bool {
        let before = self.ring.len();
        self.ring.retain(|(p, _)| *p != pid);
        let mut removed = before != self.ring.len();
        if let Some((cur, end)) = self.current {
            if cur == pid {
                // Let the disk finish the page but deliver it to nobody.
                self.current = Some((Pid(u64::MAX), end));
                removed = true;
            }
        }
        removed
    }

    /// Number of processes with outstanding I/O (including the one being
    /// served).
    pub fn queue_len(&self) -> usize {
        self.ring.len()
    }

    /// Total pages outstanding.
    pub fn pending_pages(&self) -> u32 {
        self.ring.iter().map(|&(_, c)| c).sum()
    }

    /// True when neither serving nor queueing anything.
    pub fn is_idle(&self) -> bool {
        self.current.is_none() && self.ring.is_empty()
    }

    /// Cumulative busy time (completed operations only).
    pub fn busy_accum(&self) -> SimDuration {
        self.busy_accum
    }

    /// Handle a completion for an aborted op: the sentinel pid. Returns
    /// `None` for sentinel completions, `Some(event)` otherwise.
    pub fn complete_or_discard(&mut self, now: SimTime) -> Option<DiskEvent> {
        if let Some((pid, _)) = self.current {
            if pid == Pid(u64::MAX) {
                self.current = None;
                self.busy_accum += self.page_io;
                self.maybe_start(now);
                return None;
            }
        }
        Some(self.complete(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn single_burst_serves_page_by_page() {
        let mut d = Disk::new(ms(2));
        d.submit(Pid(1), 3, SimTime::ZERO);
        assert_eq!(d.next_event(), Some(SimTime::from_millis(2)));
        assert_eq!(
            d.complete(SimTime::from_millis(2)),
            DiskEvent::PageDone(Pid(1))
        );
        assert_eq!(
            d.complete(SimTime::from_millis(4)),
            DiskEvent::PageDone(Pid(1))
        );
        assert_eq!(
            d.complete(SimTime::from_millis(6)),
            DiskEvent::BurstDone(Pid(1))
        );
        assert!(d.is_idle());
        assert_eq!(d.busy_accum(), ms(6));
    }

    #[test]
    fn round_robin_interleaves_processes() {
        let mut d = Disk::new(ms(2));
        d.submit(Pid(1), 2, SimTime::ZERO);
        d.submit(Pid(2), 2, SimTime::ZERO);
        // Service order should alternate: 1, 2, 1, 2.
        let mut order = vec![];
        let mut t = SimTime::ZERO;
        while let Some(next) = d.next_event() {
            t = next;
            match d.complete(t) {
                DiskEvent::PageDone(p) | DiskEvent::BurstDone(p) => order.push(p.0),
            }
        }
        assert_eq!(order, vec![1, 2, 1, 2]);
        assert_eq!(t, SimTime::from_millis(8));
    }

    #[test]
    fn late_arrival_joins_rotation() {
        let mut d = Disk::new(ms(2));
        d.submit(Pid(1), 3, SimTime::ZERO);
        d.complete(SimTime::from_millis(2)); // page 1 of pid 1
        d.submit(Pid(2), 1, SimTime::from_millis(2));
        let mut order = vec![];
        while let Some(next) = d.next_event() {
            match d.complete(next) {
                DiskEvent::PageDone(p) | DiskEvent::BurstDone(p) => order.push(p.0),
            }
        }
        // pid 2 arrived while pid 1's second page was in flight; round
        // robin gives pid 2 the next page, then pid 1 finishes.
        assert_eq!(order, vec![1, 2, 1]);
    }

    #[test]
    fn queue_accounting() {
        let mut d = Disk::new(ms(2));
        d.submit(Pid(1), 5, SimTime::ZERO);
        d.submit(Pid(2), 3, SimTime::ZERO);
        assert_eq!(d.queue_len(), 2);
        assert_eq!(d.pending_pages(), 8);
        assert!(!d.is_idle());
    }

    #[test]
    fn abort_removes_queued_work() {
        let mut d = Disk::new(ms(2));
        d.submit(Pid(1), 5, SimTime::ZERO);
        d.submit(Pid(2), 3, SimTime::ZERO);
        assert!(d.abort(Pid(2)));
        assert!(!d.abort(Pid(2)));
        // Only pid 1 events remain.
        let mut count = 0;
        while let Some(next) = d.next_event() {
            if let Some(DiskEvent::PageDone(p) | DiskEvent::BurstDone(p)) =
                d.complete_or_discard(next)
            {
                assert_eq!(p, Pid(1));
                count += 1;
            }
        }
        assert_eq!(count, 5);
    }

    #[test]
    fn abort_in_flight_discards_completion() {
        let mut d = Disk::new(ms(2));
        d.submit(Pid(1), 1, SimTime::ZERO);
        assert!(d.abort(Pid(1)));
        // The page still completes (disk busy) but yields no event.
        let t = d.next_event().unwrap();
        assert_eq!(d.complete_or_discard(t), None);
        assert!(d.is_idle());
    }
}
