//! Demand-paging memory manager.
//!
//! "The memory management maintains a set of free pages and allocates a
//! number of pages to a new process. For each request, a memory size
//! requirement is provided and the system generates working-set oriented
//! access patterns to stress the demand-based paging scheme." (§5.1).
//!
//! The model: a process asks for its working set at admission. Whatever
//! cannot be granted from the free pool becomes a *working-set deficit*;
//! the node converts each deficit page into extra paging I/O
//! ([`OsParams::fault_pages_per_deficit_page`] page reads folded into the
//! process's burst script). This reproduces the paper's observation that
//! memory-hungry CGI requests steal file-cache pages and slow static
//! processing, without simulating per-access reference strings.
//!
//! Pages are also the file cache: the pool tracks how much of memory is
//! free so the load monitor can report cache pressure.
//!
//! [`OsParams::fault_pages_per_deficit_page`]: crate::config::OsParams::fault_pages_per_deficit_page

use std::collections::HashMap;

use crate::process::Pid;

/// A grant from the memory manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// Pages actually made resident.
    pub resident: u32,
    /// Pages requested but unavailable (the working-set deficit).
    pub deficit: u32,
}

/// The per-node page pool.
#[derive(Debug, Clone)]
pub struct MemoryManager {
    total_pages: u32,
    free_pages: u32,
    held: HashMap<Pid, u32>,
}

impl MemoryManager {
    /// A pool of `total_pages` free pages.
    pub fn new(total_pages: u32) -> Self {
        MemoryManager {
            total_pages,
            free_pages: total_pages,
            held: HashMap::new(),
        }
    }

    /// Admit a process wanting `requested` pages. Grants what the free
    /// pool allows; the caller converts the deficit into paging I/O.
    /// A process may hold at most one allocation (re-admission is a bug).
    pub fn allocate(&mut self, pid: Pid, requested: u32) -> Allocation {
        assert!(
            !self.held.contains_key(&pid),
            "process {pid:?} already holds memory"
        );
        let granted = requested.min(self.free_pages);
        self.free_pages -= granted;
        self.held.insert(pid, granted);
        Allocation {
            resident: granted,
            deficit: requested - granted,
        }
    }

    /// Release a process's pages (at completion or kill). Returns the
    /// number of pages freed; zero if the process held nothing.
    pub fn release(&mut self, pid: Pid) -> u32 {
        let pages = self.held.remove(&pid).unwrap_or(0);
        self.free_pages += pages;
        debug_assert!(self.free_pages <= self.total_pages, "page pool overflow");
        pages
    }

    /// Pages currently free.
    pub fn free_pages(&self) -> u32 {
        self.free_pages
    }

    /// Total physical pages.
    pub fn total_pages(&self) -> u32 {
        self.total_pages
    }

    /// Fraction of memory free, in [0, 1]. This stands in for available
    /// file-cache headroom in the load reports.
    pub fn free_ratio(&self) -> f64 {
        if self.total_pages == 0 {
            0.0
        } else {
            self.free_pages as f64 / self.total_pages as f64
        }
    }

    /// Number of processes holding memory.
    pub fn holders(&self) -> usize {
        self.held.len()
    }

    /// Pages held by a specific process.
    pub fn held_by(&self, pid: Pid) -> u32 {
        self.held.get(&pid).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_from_free_pool() {
        let mut m = MemoryManager::new(100);
        let a = m.allocate(Pid(1), 30);
        assert_eq!(
            a,
            Allocation {
                resident: 30,
                deficit: 0
            }
        );
        assert_eq!(m.free_pages(), 70);
        assert_eq!(m.held_by(Pid(1)), 30);
    }

    #[test]
    fn deficit_when_pool_short() {
        let mut m = MemoryManager::new(100);
        m.allocate(Pid(1), 90);
        let a = m.allocate(Pid(2), 30);
        assert_eq!(
            a,
            Allocation {
                resident: 10,
                deficit: 20
            }
        );
        assert_eq!(m.free_pages(), 0);
    }

    #[test]
    fn release_returns_pages() {
        let mut m = MemoryManager::new(100);
        m.allocate(Pid(1), 40);
        assert_eq!(m.release(Pid(1)), 40);
        assert_eq!(m.free_pages(), 100);
        assert_eq!(m.release(Pid(1)), 0, "double release is a no-op");
    }

    #[test]
    fn conservation_under_churn() {
        let mut m = MemoryManager::new(1000);
        for i in 0..50 {
            m.allocate(Pid(i), (i as u32 * 7) % 100 + 1);
        }
        let held: u32 = (0..50).map(|i| m.held_by(Pid(i))).sum();
        assert_eq!(held + m.free_pages(), 1000);
        for i in 0..50 {
            m.release(Pid(i));
        }
        assert_eq!(m.free_pages(), 1000);
        assert_eq!(m.holders(), 0);
    }

    #[test]
    fn free_ratio() {
        let mut m = MemoryManager::new(200);
        assert_eq!(m.free_ratio(), 1.0);
        m.allocate(Pid(1), 50);
        assert!((m.free_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(MemoryManager::new(0).free_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "already holds memory")]
    fn double_allocation_panics() {
        let mut m = MemoryManager::new(100);
        m.allocate(Pid(1), 10);
        m.allocate(Pid(1), 10);
    }
}
