//! A dependency-free Prometheus scrape endpoint for live runs.
//!
//! [`MetricsServer::bind`] opens a `std::net::TcpListener` and spawns
//! one poll thread that answers `GET /metrics` with the most recently
//! [`MetricsServer::publish`]ed exposition text (Prometheus text
//! format 0.0.4 — the same text `TelemetrySnapshot::to_prometheus`
//! renders). The server never touches the dispatch path: the run loop
//! publishes a fresh snapshot once per monitor tick, scrapes read the
//! shared string under a mutex held only for the copy.
//!
//! The protocol support is deliberately minimal — enough for
//! `curl`/Prometheus: one request per connection, the request line is
//! parsed for method and path, everything else is ignored, and the
//! response closes the connection. Anything that is not
//! `GET /metrics` gets a 404.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the poll thread sleeps between accept attempts. Scrape
/// latency is bounded by this plus the response write.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Per-connection socket timeout: a stalled scraper cannot wedge the
/// poll thread for longer than this.
const CONN_TIMEOUT: Duration = Duration::from_millis(500);

/// A live `/metrics` endpoint backed by one poll thread.
///
/// Dropping the server stops the thread and closes the listener.
#[derive(Debug)]
pub struct MetricsServer {
    text: Arc<Mutex<String>>,
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9100`; port 0 picks a free port)
    /// and start serving. The endpoint answers immediately — with an
    /// empty body until the first [`MetricsServer::publish`].
    pub fn bind(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let text = Arc::new(Mutex::new(String::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let text2 = Arc::clone(&text);
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // Serve inline: scrapers are few and the body is
                        // small, so one connection at a time is plenty.
                        let body = text2.lock().map(|t| t.clone()).unwrap_or_default();
                        serve_one(stream, &body);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
        });
        Ok(MetricsServer {
            text,
            stop,
            addr,
            handle: Some(handle),
        })
    }

    /// The bound address (with the resolved port when 0 was asked for).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replace the exposition text served to the next scrape.
    pub fn publish(&self, text: String) {
        if let Ok(mut t) = self.text.lock() {
            *t = text;
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Answer one connection: parse the request line, respond, close.
fn serve_one(mut stream: TcpStream, body: &str) {
    let _ = stream.set_read_timeout(Some(CONN_TIMEOUT));
    let _ = stream.set_write_timeout(Some(CONN_TIMEOUT));
    let _ = stream.set_nonblocking(false);
    // Read until the end of the request head (or timeout/overflow).
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 256];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8192 {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or_default();
    let request_line = String::from_utf8_lossy(request_line);
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method == "GET" && (path == "/metrics" || path.starts_with("/metrics?"))
    {
        ("200 OK", body)
    } else {
        ("404 Not Found", "not found\n")
    };
    let response = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr, request: &str) -> String {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(request.as_bytes()).expect("write");
        let mut out = String::new();
        conn.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_published_text_and_404s_elsewhere() {
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.addr();
        // Before any publish: 200 with an empty body.
        let early = scrape(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(early.starts_with("HTTP/1.1 200 OK\r\n"), "{early}");
        server.publish("msweb_stretch 1.25\n".to_string());
        let ok = scrape(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(ok.contains("text/plain; version=0.0.4"), "{ok}");
        assert!(ok.ends_with("msweb_stretch 1.25\n"), "{ok}");
        // Publishing again replaces the body.
        server.publish("msweb_stretch 2.5\n".to_string());
        let again = scrape(addr, "GET /metrics?x=1 HTTP/1.1\r\n\r\n");
        assert!(again.ends_with("msweb_stretch 2.5\n"), "{again}");
        let missing = scrape(addr, "GET /other HTTP/1.1\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let post = scrape(addr, "POST /metrics HTTP/1.1\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 404"), "{post}");
    }
}
