//! Job and message types exchanged between the live cluster's threads.

use std::time::{Duration, Instant};

/// One request, as handed to a node worker.
#[derive(Debug, Clone)]
pub struct Job {
    /// Trace index (completion tag).
    pub id: u64,
    /// CPU portion of the demand, already time-scaled.
    pub cpu: Duration,
    /// Disk portion of the demand, already time-scaled.
    pub io: Duration,
    /// Whether this is a dynamic (CGI) request — charged fork overhead.
    pub dynamic: bool,
    /// When the request arrived at the cluster front end.
    pub arrived: Instant,
}

/// A finished request, reported back to the driver.
#[derive(Debug, Clone, Copy)]
pub struct Done {
    /// Trace index.
    pub id: u64,
    /// When the request arrived at the cluster front end.
    pub arrived: Instant,
    /// When the node finished it.
    pub finished: Instant,
}

/// Control messages to a node worker.
#[derive(Debug)]
pub enum NodeMsg {
    /// Run this job.
    Run(Job),
    /// Drain and exit.
    Shutdown,
}
