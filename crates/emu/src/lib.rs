//! # msweb-emu
//!
//! Live cluster emulation — the workspace's stand-in for the paper's
//! six-node Sun Ultra-1 prototype (§5.2.2). Node workers are real OS
//! threads that time-slice their queued requests in real wall-clock time;
//! the dispatcher, RSRC predictor, reservation controller and metrics are
//! *the same code* the simulator runs, so the Table 3 validation compares
//! identical scheduling logic against two execution substrates.
//!
//! Timing is implemented by precise waiting (sleep + short spin-trim)
//! rather than busy-burning CPU, so the emulation behaves identically on
//! single-core containers — see [`timing`] for the rationale and
//! calibration helpers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod job;
pub mod metrics_http;
pub mod node;
pub mod timing;

pub use cluster::{
    emulate, emulate_source, emulate_with, live_priors, live_scheduler, live_stats, LiveConfig,
    LiveOutcome, LiveRunOptions,
};
pub use job::{Done, Job, NodeMsg};
pub use metrics_http::MetricsServer;
pub use node::{node_worker, NodeParams, NodeStats};
pub use timing::{calibrate, wait_for, wait_until, Calibration};
