//! Precise waiting and calibration for the live emulation.
//!
//! The original validation ran on a six-node Sun Ultra-1 cluster where
//! CGI scripts genuinely burned CPU. Inside a container (often with a
//! single core) concurrent busy-spin loops would contend with each other
//! and corrupt every measurement, so the emulation *waits* with real-time
//! precision instead of burning cycles: each node worker still serialises
//! its jobs, still time-slices them, and still takes real wall-clock time
//! per unit of demand — which is what produces genuine queueing,
//! blocking, and load-imbalance behaviour — but the waiting is
//! implemented as `sleep(d − ε)` plus a short spin-trim, so any number of
//! emulated nodes coexist on any number of host cores.

use std::time::{Duration, Instant};

/// How much of the tail of each wait is spun rather than slept, to absorb
/// sleep overshoot. Kept short so spinning never meaningfully contends.
const SPIN_TRIM: Duration = Duration::from_micros(200);

/// Wait until `deadline` with sub-millisecond precision.
pub fn wait_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > SPIN_TRIM {
            std::thread::sleep(remaining - SPIN_TRIM);
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Wait for a duration (see [`wait_until`]).
pub fn wait_for(d: Duration) {
    wait_until(Instant::now() + d);
}

/// Measured timing quality of the host.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Mean absolute error of a 2 ms precise wait.
    pub wait_error: Duration,
    /// Mean overshoot of a bare 1 ms `thread::sleep`.
    pub sleep_overshoot: Duration,
}

/// Measure how precisely this host can wait. Used by tests to skip
/// assertions on hopelessly noisy machines and recorded in experiment
/// reports.
pub fn calibrate() -> Calibration {
    let trials = 20;

    let mut wait_err = Duration::ZERO;
    for _ in 0..trials {
        let target = Duration::from_millis(2);
        let t0 = Instant::now();
        wait_for(target);
        let got = t0.elapsed();
        wait_err += got.abs_diff(target);
    }

    let mut overshoot = Duration::ZERO;
    for _ in 0..trials {
        let target = Duration::from_millis(1);
        let t0 = Instant::now();
        std::thread::sleep(target);
        let got = t0.elapsed();
        overshoot += got.saturating_sub(target);
    }

    Calibration {
        wait_error: wait_err / trials,
        sleep_overshoot: overshoot / trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_for_is_at_least_the_duration() {
        let t0 = Instant::now();
        wait_for(Duration::from_millis(5));
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn wait_until_past_deadline_returns_immediately() {
        let t0 = Instant::now();
        wait_until(t0); // already passed
        assert!(t0.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn calibration_reports_something() {
        let c = calibrate();
        // Precise waits should beat bare sleeps on any functioning host.
        assert!(c.wait_error <= c.sleep_overshoot + Duration::from_micros(500));
    }
}
