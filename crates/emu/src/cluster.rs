//! The live cluster: real threads, real time, the *same* scheduler
//! value as the simulator.
//!
//! [`emulate`] replays a workload against `p` node worker threads using
//! `msweb-cluster`'s scheduling pipeline, [`LoadMonitor`] and
//! [`Metrics`] unchanged — so the validation experiment (the paper's
//! Table 3) compares the *same scheduling code* executing against the
//! simulated OS model versus real wall-clock execution, exactly as the
//! paper compared its simulator against the Sun-cluster prototype.
//! [`emulate_with`] accepts any [`Schedule`] implementation (e.g. a
//! registry composition, or a [`PolicyScheduler`] with a
//! `DecisionObserver` installed), built via [`live_scheduler`];
//! [`emulate_source`] drives a streaming [`RequestSource`], holding
//! only in-flight bookkeeping, so live runs scale to workloads too long
//! to materialize.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use msweb_cluster::{
    render_top, ClusterConfig, DropRecord, Level, LoadMonitor, Metrics, NodeSample, PolicyKind,
    PolicyScheduler, ReqKnowledge, RunMeta, RunSummary, SchedTelemetry, Schedule, SeriesMeta,
    SeriesRecorder, SeriesWindowInput, SloEngine, TelemetryProbe, TelemetrySnapshot, TraceEvent,
    WindowSample, WorkloadStats,
};
use msweb_ossim::LoadSnapshot;
use msweb_simcore::{SimDuration, SimTime};
use msweb_workload::{RequestSource, Trace};

use crate::job::{Done, Job, NodeMsg};
use crate::metrics_http::MetricsServer;
use crate::node::{node_worker, NodeParams, NodeStats};
use crate::timing::wait_until;

/// Configuration of a live run.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Number of emulated nodes (the paper's prototype: 6).
    pub p: usize,
    /// Number of masters.
    pub m: usize,
    /// Scheduling policy (same set as the simulator).
    pub policy: PolicyKind,
    /// Time scale applied to demands *and* arrival spacing: 1.0 replays
    /// in real time, 0.1 runs ten times faster at identical utilisation.
    pub time_scale: f64,
    /// Real-time load-monitor period (unscaled; the paper's rstat
    /// sampling).
    pub monitor_period: Duration,
    /// Master capacity reserve, as in the simulator.
    pub master_reserve: f64,
    /// Dispatch RNG seed.
    pub seed: u64,
    /// Stage-spec label recorded in the decision log's meta line when
    /// the caller drives [`emulate_with`] with a registry composition
    /// (`None` for plain policy runs).
    pub spec: Option<String>,
}

impl LiveConfig {
    /// The paper's §5.2.2 prototype shape: six Ultra-1-class nodes.
    pub fn sun_cluster(policy: PolicyKind, m: usize) -> Self {
        LiveConfig {
            p: 6,
            m,
            policy,
            time_scale: 1.0,
            monitor_period: Duration::from_millis(250),
            master_reserve: 0.5,
            seed: 0x50e5,
            spec: None,
        }
    }

    /// Record a stage-spec label in the decision log's meta line
    /// (builder style).
    pub fn with_spec(mut self, spec: impl Into<String>) -> Self {
        self.spec = Some(spec.into());
        self
    }

    /// The simulator-side configuration this live cluster mirrors; the
    /// scheduler is built from it so both substrates share one
    /// composition.
    pub fn cluster_config(&self) -> ClusterConfig {
        ClusterConfig::simulation(self.p, self.policy)
            .with_masters(self.m.max(1))
            .with_master_reserve(self.master_reserve)
            .with_seed(self.seed)
            .with_monitor_period(to_sim(self.monitor_period))
    }

    fn scale(&self, d: SimDuration) -> Duration {
        Duration::from_nanos((d.as_micros() as f64 * 1000.0 * self.time_scale) as u64)
    }
}

fn to_sim(d: Duration) -> SimDuration {
    SimDuration::from_micros(d.as_micros() as u64)
}

/// Class demand means of `trace` in unscaled seconds: (static, dynamic).
fn class_means(trace: &Trace) -> (f64, f64) {
    let (mut ds, mut nd, mut ss, mut ns) = (0.0f64, 0u64, 0.0f64, 0u64);
    for r in &trace.requests {
        if r.class.is_dynamic() {
            ds += r.demand.service.as_secs_f64();
            nd += 1;
        } else {
            ss += r.demand.service.as_secs_f64();
            ns += 1;
        }
    }
    let stat_mean = if ns > 0 { ss / ns as f64 } else { 1.0 / 110.0 };
    let dyn_mean = if nd > 0 { ds / nd as f64 } else { stat_mean };
    (stat_mean, dyn_mean)
}

/// Build the scheduler a live run of `config` over `trace` uses —
/// exactly the value [`emulate`] constructs internally. Build it
/// yourself (to install an observer, or to substitute a registry
/// composition for the same `ClusterConfig`) and hand it to
/// [`emulate_with`].
pub fn live_scheduler(config: &LiveConfig, trace: &Trace) -> PolicyScheduler {
    let cc = config.cluster_config();
    let (a0, r0) = live_priors(trace);
    PolicyScheduler::new(&cc, a0, r0)
}

/// The reservation-controller priors a live run derives from `trace` —
/// the same `(a0, r0)` pair [`live_scheduler`] seeds the scheduler with,
/// recorded in the decision log's meta line so replay can rebuild an
/// identical composition.
pub fn live_priors(trace: &Trace) -> (f64, f64) {
    let summary = trace.summary();
    let a0 = if summary.arrival_ratio_a.is_finite() && summary.arrival_ratio_a > 0.0 {
        summary.arrival_ratio_a.clamp(0.01, 10.0)
    } else {
        0.5
    };
    let (stat_mean, dyn_mean) = class_means(trace);
    let r0 = (stat_mean / dyn_mean).clamp(1e-4, 1.0);
    (a0, r0)
}

/// The workload statistics a live run derives from `trace`: the
/// [`live_priors`] pair plus the class demand means used to charge the
/// stale load view. [`emulate_source`] takes this value directly so
/// streaming callers can compute it from a measuring pass (or
/// analytically) without materializing the workload.
pub fn live_stats(trace: &Trace) -> WorkloadStats {
    let (a0, r0) = live_priors(trace);
    let (stat_mean, dyn_mean) = class_means(trace);
    WorkloadStats {
        a0,
        r0,
        static_mean: SimDuration::from_secs_f64(stat_mean),
        dynamic_mean: SimDuration::from_secs_f64(dyn_mean),
    }
}

/// Options for one live run: the builder-style entry point that replaced
/// the `run_live` / `run_live_with` / `run_live_telemetry` triplet.
#[derive(Debug, Default)]
pub struct LiveRunOptions {
    /// Enable live telemetry: scheduler per-stage counters, controller
    /// samples each monitor tick, and a sampler thread turning node
    /// counters into busy gauges. The snapshot comes back in
    /// [`LiveOutcome::telemetry`].
    pub telemetry: bool,
    /// Also render a `top`-style table to stderr each monitor period
    /// (implies nothing unless `telemetry` is set).
    pub top: bool,
    /// Windowed time-series recorder: one JSONL record per monitor
    /// tick, same schema as the simulator's (only `at_us` and the busy
    /// gauges are wall-clock-derived). Implies the telemetry probe and
    /// sampler thread.
    pub series: Option<SeriesRecorder>,
    /// SLO burn-rate rules evaluated at every monitor tick; fired
    /// alerts go to stderr and — when decision tracing is active — to
    /// the log as `alert` events.
    pub slo: Option<SloEngine>,
    /// A bound `/metrics` endpoint to publish live Prometheus text to,
    /// once per monitor tick. Implies the telemetry probe. Binding is
    /// the caller's job ([`MetricsServer::bind`]) so address errors
    /// surface before the run starts.
    pub metrics: Option<MetricsServer>,
}

impl LiveRunOptions {
    /// No telemetry, no `top` rendering, nothing attached.
    pub fn new() -> Self {
        LiveRunOptions::default()
    }

    /// Enable telemetry collection (builder style).
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Enable the `top`-style stderr rendering (builder style; only
    /// effective together with telemetry).
    pub fn top(mut self, on: bool) -> Self {
        self.top = on;
        self
    }

    /// Attach a windowed time-series recorder (builder style).
    pub fn series(mut self, recorder: SeriesRecorder) -> Self {
        self.series = Some(recorder);
        self
    }

    /// Attach SLO burn-rate rules (builder style).
    pub fn slo(mut self, engine: SloEngine) -> Self {
        self.slo = Some(engine);
        self
    }

    /// Attach a bound live `/metrics` endpoint (builder style).
    pub fn metrics(mut self, server: MetricsServer) -> Self {
        self.metrics = Some(server);
        self
    }
}

/// What one live run produced.
#[derive(Debug)]
pub struct LiveOutcome {
    /// The run summary (same type as the simulator's).
    pub summary: RunSummary,
    /// The telemetry snapshot (substrate `"live"`), when
    /// [`LiveRunOptions::telemetry`] was set.
    pub telemetry: Option<TelemetrySnapshot>,
    /// The series recorder, flushed, when [`LiveRunOptions::series`]
    /// was set.
    pub series: Option<SeriesRecorder>,
    /// The SLO engine after the run, when [`LiveRunOptions::slo`] was
    /// set (e.g. to read [`SloEngine::alerts_fired`]).
    pub slo: Option<SloEngine>,
}

/// Replay `trace` on a live thread-backed cluster; blocks until every
/// request completes and returns the same summary type the simulator
/// produces. Response times and demands are reported in *scaled* time,
/// so stretch factors are directly comparable with simulation runs of
/// the same workload.
pub fn emulate(config: &LiveConfig, trace: &Trace, opts: LiveRunOptions) -> LiveOutcome {
    let scheduler = live_scheduler(config, trace);
    emulate_with(config, trace, scheduler, opts)
}

/// [`emulate`] with an explicit scheduler value — the same [`Schedule`]
/// surface `ClusterSim` drives, so simulator and live emulation
/// literally share the scheduler.
pub fn emulate_with<S: Schedule>(
    config: &LiveConfig,
    trace: &Trace,
    scheduler: S,
    opts: LiveRunOptions,
) -> LiveOutcome {
    emulate_source(config, trace.source(), live_stats(trace), scheduler, opts)
}

/// Drive a streaming [`RequestSource`] on the live cluster. The caller
/// supplies [`WorkloadStats`] (see [`live_stats`] for the materialized
/// equivalent); per-request bookkeeping is dropped on completion, so
/// memory stays O(in-flight requests) regardless of stream length.
pub fn emulate_source<S: Schedule, Src: RequestSource>(
    config: &LiveConfig,
    source: Src,
    stats: WorkloadStats,
    scheduler: S,
    opts: LiveRunOptions,
) -> LiveOutcome {
    run_live_inner(config, source, stats, scheduler, opts)
}

/// Per-request bookkeeping for a live request between placement and
/// completion. Map membership replaces the old trace-length vectors:
/// entries are dropped on completion, so the working set tracks the
/// number of requests actually in flight.
#[derive(Debug, Clone, Copy)]
struct LiveFlight {
    dynamic: bool,
    service: SimDuration,
    on_master: bool,
    node: usize,
    arrived: Instant,
    /// When the job reaches its node (dispatch, or transfer delivery
    /// for remote placements) — the origin for attained-service
    /// progress reports.
    started: Instant,
}

fn run_live_inner<S: Schedule, Src: RequestSource>(
    config: &LiveConfig,
    mut source: Src,
    stats: WorkloadStats,
    mut scheduler: S,
    mut opts: LiveRunOptions,
) -> LiveOutcome {
    assert!(config.p >= 1);
    assert!(
        config.time_scale > 0.0 && config.time_scale.is_finite(),
        "bad time scale"
    );
    // The series recorder and the metrics endpoint both read the probe
    // (busy gauges) and the scheduler counters, so they imply them even
    // when the caller did not ask for a snapshot back.
    let want_snapshot = opts.telemetry;
    let probe_needed = opts.telemetry || opts.series.is_some() || opts.metrics.is_some();
    let telemetry = if probe_needed {
        Some((TelemetryProbe::new(), opts.top && opts.telemetry))
    } else {
        None
    };
    let mut series = opts.series.take();
    let mut slo = opts.slo.take();
    let metrics_server = opts.metrics.take();
    if telemetry.is_some() {
        scheduler.set_telemetry_enabled(true);
    }
    let probe_ref = telemetry.as_ref().map(|(p, _)| p);

    let cc = config.cluster_config();
    if scheduler.tracing() {
        scheduler.emit(&TraceEvent::Meta(RunMeta {
            substrate: "live".to_string(),
            p: cc.p(),
            m: scheduler.masters(),
            policy: cc.policy().slug().to_string(),
            spec: config.spec.clone(),
            seed: cc.seed(),
            a0: stats.a0,
            r0: stats.r0,
            master_reserve: cc.master_reserve(),
            dns_skew: cc.dns_skew(),
            monitor_period_us: cc.monitor_period().as_micros(),
            remote_latency_us: cc.remote_latency().as_micros(),
            redirect_rtt_us: cc.redirect_rtt().as_micros(),
            speeds: cc.speeds().map(<[f64]>::to_vec),
            regions: scheduler.region_topology().cloned(),
        }));
    }
    if let Some(rec) = &mut series {
        let policy = match &config.spec {
            Some(spec) => spec.clone(),
            None => cc.policy().slug().to_string(),
        };
        rec.begin(&SeriesMeta {
            substrate: "live",
            policy: &policy,
            p: cc.p(),
            m: scheduler.masters(),
            seed: cc.seed(),
        });
    }
    // Charges are in wall (scaled) time, matching the monitor's window.
    let stat_charge = to_sim(config.scale(stats.static_mean));
    let dyn_charge = to_sim(config.scale(stats.dynamic_mean));

    // Spawn the node workers.
    let params = NodeParams {
        quantum: config.scale(SimDuration::from_millis(10)),
        fork: config.scale(SimDuration::from_millis(3)),
        decay_period: config.scale(SimDuration::from_millis(100)),
    };
    let (done_tx, done_rx): (Sender<Done>, Receiver<Done>) = unbounded();
    let mut senders: Vec<Sender<NodeMsg>> = Vec::with_capacity(config.p);
    let mut stats_shared: Vec<Arc<NodeStats>> = Vec::with_capacity(config.p);
    let mut handles = Vec::with_capacity(config.p);
    for _ in 0..config.p {
        let (tx, rx) = unbounded();
        let st = Arc::new(NodeStats::default());
        let st2 = Arc::clone(&st);
        let dtx = done_tx.clone();
        let p = params.clone();
        handles.push(std::thread::spawn(move || node_worker(rx, dtx, st2, p)));
        senders.push(tx);
        stats_shared.push(st);
    }
    drop(done_tx);

    // Sampler thread: converts NodeStats counters into busy-ratio
    // gauges once per monitor period (and optionally renders `top`).
    // It only ever reads the shared atomics and writes to the probe, so
    // it stays entirely off the dispatch path.
    let sampler = telemetry.as_ref().map(|(probe, top)| {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let probe = probe.clone();
        let stats: Vec<Arc<NodeStats>> = stats_shared.iter().map(Arc::clone).collect();
        let interval = config.monitor_period;
        let top = *top;
        let handle = std::thread::spawn(move || {
            let step = interval.min(Duration::from_millis(25));
            let mut prev_busy = vec![0u64; stats.len()];
            let mut prev_t = Instant::now();
            let mut next = prev_t + interval;
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(step);
                let now = Instant::now();
                if now < next {
                    continue;
                }
                next = now + interval;
                let wall = now.duration_since(prev_t).as_nanos().max(1) as f64;
                prev_t = now;
                let mut busy = Vec::with_capacity(stats.len());
                let mut in_flight = Vec::with_capacity(stats.len());
                let mut finished = Vec::with_capacity(stats.len());
                for (i, s) in stats.iter().enumerate() {
                    let b = s.cpu_busy_ns.load(Ordering::Relaxed)
                        + s.io_busy_ns.load(Ordering::Relaxed);
                    busy.push(((b.saturating_sub(prev_busy[i])) as f64 / wall).clamp(0.0, 1.0));
                    prev_busy[i] = b;
                    in_flight.push(s.in_flight.load(Ordering::Relaxed));
                    finished.push(s.finished.load(Ordering::Relaxed));
                }
                probe.set_node_busy(&busy);
                if top {
                    eprint!(
                        "{}",
                        render_top(probe.last_window().as_ref(), &busy, &in_flight, &finished)
                    );
                }
            }
        });
        (stop, handle)
    });

    let t0 = Instant::now();
    let mut monitor = LoadMonitor::new(config.p, cc.monitor_period(), SimTime::ZERO);
    let mut metrics = Metrics::new();

    // Per-request bookkeeping, dropped on completion: placement
    // level/node for attribution and connection-count release.
    let mut in_flight: HashMap<u64, LiveFlight> = HashMap::new();
    let mut next_monitor = t0 + config.monitor_period;
    // Pending remote transfers: (send-at, node, job).
    let mut transfers: Vec<(Instant, usize, Job)> = Vec::new();
    let mut admitted = 0usize;
    let mut completed = 0usize;
    let mut dropped = 0usize;

    let deliver_due =
        |transfers: &mut Vec<(Instant, usize, Job)>, senders: &[Sender<NodeMsg>], now: Instant| {
            let mut i = 0;
            while i < transfers.len() {
                if transfers[i].0 <= now {
                    let (_, node, job) = transfers.swap_remove(i);
                    let _ = senders[node].send(NodeMsg::Run(job));
                } else {
                    i += 1;
                }
            }
        };

    let snapshot = |stats: &[Arc<NodeStats>], at: SimTime| -> Vec<LoadSnapshot> {
        stats
            .iter()
            .map(|s| LoadSnapshot {
                at,
                cpu_busy: SimDuration::from_micros(
                    s.cpu_busy_ns.load(std::sync::atomic::Ordering::Relaxed) / 1000,
                ),
                disk_busy: SimDuration::from_micros(
                    s.io_busy_ns.load(std::sync::atomic::Ordering::Relaxed) / 1000,
                ),
                mem_free_ratio: 1.0,
                ready_len: s.in_flight.load(std::sync::atomic::Ordering::Relaxed) as usize,
                disk_queue_len: 0,
                processes: s.in_flight.load(std::sync::atomic::Ordering::Relaxed) as usize,
            })
            .collect()
    };

    let time_scale = config.time_scale;
    let handle_done = |d: Done,
                       in_flight: &mut HashMap<u64, LiveFlight>,
                       metrics: &mut Metrics,
                       scheduler: &mut S,
                       completed: &mut usize| {
        let fl = in_flight
            .remove(&d.id)
            .expect("completion for request not in flight");
        let response = to_sim(d.finished - fl.arrived);
        let demand = to_sim(Duration::from_nanos(
            (fl.service.as_micros() as f64 * 1000.0 * time_scale) as u64,
        ));
        let level = if fl.dynamic {
            Some(if fl.on_master {
                Level::Master
            } else {
                Level::Slave
            })
        } else {
            None
        };
        metrics.record(response, demand, level);
        if let Some(probe) = probe_ref {
            probe.record_response(fl.dynamic, response.as_micros());
        }
        // Release the connection slot — keeps switch-style counts
        // truthful, matching the simulator's completion path.
        scheduler.note_completion(fl.node);
        scheduler.note_service_end(fl.node, d.id, demand);
        scheduler
            .reservation_mut()
            .note_response(fl.dynamic, response);
        if scheduler.tracing() {
            scheduler.emit(&TraceEvent::Complete {
                req: d.id,
                node: fl.node,
                dynamic: fl.dynamic,
                response_us: response.as_micros(),
            });
        }
        *completed += 1;
    };

    // Replay loop.
    let mut next_req = source.next();
    while let Some(req) = next_req {
        let idx = admitted as u64;
        let target = t0 + config.scale(req.arrival - SimTime::ZERO);
        // Until the arrival is due: collect completions, tick the
        // monitor, flush transfers.
        loop {
            while let Ok(d) = done_rx.try_recv() {
                handle_done(
                    d,
                    &mut in_flight,
                    &mut metrics,
                    &mut scheduler,
                    &mut completed,
                );
            }
            let now = Instant::now();
            deliver_due(&mut transfers, &senders, now);
            if now >= next_monitor {
                let at = to_sim(now - t0);
                let snaps = snapshot(&stats_shared, SimTime(at.as_micros()));
                monitor.tick(SimTime(at.as_micros()), &snaps);
                // Feed attained service: wall-clock time on-node (which
                // *is* scaled time), capped at the scaled demand —
                // mirrors the simulator's per-tick progress reports.
                for (&id, fl) in in_flight.iter() {
                    if now < fl.started {
                        continue;
                    }
                    let cap = to_sim(Duration::from_nanos(
                        (fl.service.as_micros() as f64 * 1000.0 * time_scale) as u64,
                    ));
                    let attained = to_sim(now - fl.started).min(cap);
                    scheduler.note_service_progress(fl.node, id, attained);
                }
                let rho = monitor.mean_utilisation();
                // Capture the windowed master fraction before update()
                // resets it (same ordering as the simulator).
                let theta_hat = scheduler.reservation().master_fraction();
                scheduler.reservation_mut().update(rho);
                let mut window = None;
                if probe_ref.is_some() {
                    let res = scheduler.reservation();
                    let (a_hat, r_hat) = res.measured();
                    let sample = WindowSample {
                        at_us: at.as_micros(),
                        theta2_star: res.theta2_star(),
                        a_hat,
                        r_hat,
                        rho,
                        theta_hat,
                        clamp_events: res.clamp_events(),
                    };
                    if let Some(probe) = probe_ref {
                        probe.record_window(sample);
                    }
                    window = Some(sample);
                }
                let window_stretch = metrics.close_window();
                if let Some(rec) = &mut series {
                    let sample = window.as_ref().expect("series implies the probe");
                    // Busy gauges come from the sampler thread's latest
                    // pass (wall-clock, like `at_us`).
                    let busy = probe_ref.map(TelemetryProbe::node_busy).unwrap_or_default();
                    rec.record(&SeriesWindowInput {
                        window: sample,
                        sched: scheduler.telemetry(),
                        node_busy: &busy,
                        window_stretch,
                        drops: metrics.dropped(),
                    });
                }
                if scheduler.tracing() {
                    scheduler.emit(&TraceEvent::Tick {
                        at_us: at.as_micros(),
                        rho,
                        nodes: snaps.iter().map(NodeSample::from_snapshot).collect(),
                    });
                }
                if let Some(engine) = &mut slo {
                    let alerts = engine.observe_cumulative(
                        at.as_micros(),
                        window_stretch,
                        metrics.completed(),
                        metrics.dropped(),
                        scheduler.reservation().clamp_events(),
                    );
                    for alert in &alerts {
                        eprintln!("{}", alert.to_line());
                        if scheduler.tracing() {
                            scheduler.emit(&alert.to_trace_event());
                        }
                    }
                }
                if let (Some(server), Some(probe)) = (&metrics_server, probe_ref) {
                    let sched_tel = scheduler
                        .telemetry()
                        .cloned()
                        .unwrap_or_else(|| SchedTelemetry::new(cc.p()));
                    let snap = TelemetrySnapshot::assemble(
                        "live",
                        cc.policy().slug(),
                        cc.seed(),
                        scheduler.masters(),
                        &sched_tel,
                        scheduler.scorer_path_counts(),
                        scheduler.reservation().clamp_events(),
                        probe,
                    );
                    server.publish(snap.to_prometheus());
                }
                next_monitor += config.monitor_period;
                continue;
            }
            if now >= target {
                break;
            }
            let mut wake = target.min(next_monitor);
            for &(at, _, _) in &transfers {
                wake = wake.min(at);
            }
            wait_until(wake);
        }

        // Place the request.
        let now = Instant::now();
        admitted += 1;
        next_req = source.next();
        let dynamic = req.class.is_dynamic();
        let expected = if dynamic { dyn_charge } else { stat_charge };
        let at_us = to_sim(now - t0).as_micros();
        let scaled_demand = to_sim(Duration::from_nanos(
            (req.demand.service.as_micros() as f64 * 1000.0 * config.time_scale) as u64,
        ));
        scheduler.note_request(idx, SimTime(at_us), scaled_demand);
        scheduler.note_origin(req.origin);
        // The live front-end only ever knows the class-mean charge, not
        // the request's true demand — declare it as a sampled estimate.
        let know = ReqKnowledge::sampled(req.demand.cpu_fraction, expected);
        let Ok(placement) = scheduler.place(dynamic, know, &mut monitor) else {
            // Whole cluster dead: degrade gracefully, as the simulator
            // does.
            scheduler.emit(&TraceEvent::Drop(DropRecord {
                req: idx,
                at_us,
                dynamic,
                w: know.w,
                expected_us: know.expected.as_micros(),
                redrive: true,
                restart: false,
                origin: req.origin,
            }));
            metrics.note_dropped();
            dropped += 1;
            continue;
        };
        // Scale the placement's own transfer latency (remote hop plus
        // any region round-trip) instead of a fixed constant, so the
        // live substrate charges the same delay the simulator does.
        let started = if placement.latency.is_zero() {
            now
        } else {
            now + config.scale(placement.latency)
        };
        in_flight.insert(
            idx,
            LiveFlight {
                dynamic,
                service: req.demand.service,
                on_master: placement.on_master,
                node: placement.node,
                arrived: now,
                started,
            },
        );
        scheduler.note_service_start(placement.node, idx);
        let cpu = config.scale(req.demand.service.mul_f64(req.demand.cpu_fraction));
        let io = config.scale(req.demand.service).saturating_sub(cpu);
        let job = Job {
            id: idx,
            cpu,
            io,
            dynamic,
            arrived: now,
        };
        if placement.latency.is_zero() {
            let _ = senders[placement.node].send(NodeMsg::Run(job));
        } else {
            transfers.push((now + config.scale(placement.latency), placement.node, job));
        }
    }

    // Drain: flush transfers, then wait for all completions.
    while completed + dropped < admitted {
        let now = Instant::now();
        deliver_due(&mut transfers, &senders, now);
        match done_rx.recv_timeout(Duration::from_millis(5)) {
            Ok(d) => handle_done(
                d,
                &mut in_flight,
                &mut metrics,
                &mut scheduler,
                &mut completed,
            ),
            Err(_) => {
                // Timeout: loop to flush any transfer that became due.
                if transfers.is_empty() && now.elapsed() > Duration::from_secs(300) {
                    panic!("live cluster wedged waiting for completions");
                }
            }
        }
    }

    for tx in &senders {
        let _ = tx.send(NodeMsg::Shutdown);
    }
    for h in handles {
        let _ = h.join();
    }
    if let Some((stop, handle)) = sampler {
        stop.store(true, Ordering::Relaxed);
        let _ = handle.join();
    }
    if let Some(probe) = probe_ref {
        // A replay shorter than one monitor period never ticks; leave
        // at least one controller sample so the series is never empty.
        if probe.window_count() == 0 {
            let res = scheduler.reservation();
            let (a_hat, r_hat) = res.measured();
            probe.record_window(WindowSample {
                at_us: to_sim(t0.elapsed()).as_micros(),
                theta2_star: res.theta2_star(),
                a_hat,
                r_hat,
                rho: monitor.mean_utilisation(),
                theta_hat: res.master_fraction(),
                clamp_events: res.clamp_events(),
            });
        }
        // Leave a whole-run busy average in the gauges so even runs
        // shorter than one sampler interval report `p` entries.
        let wall = t0.elapsed().as_nanos().max(1) as f64;
        let busy: Vec<f64> = stats_shared
            .iter()
            .map(|s| {
                let b =
                    s.cpu_busy_ns.load(Ordering::Relaxed) + s.io_busy_ns.load(Ordering::Relaxed);
                (b as f64 / wall).clamp(0.0, 1.0)
            })
            .collect();
        probe.set_node_busy(&busy);
        // The same guarantee for the series: a replay shorter than one
        // monitor period still yields one (whole-run) record.
        if let Some(rec) = &mut series {
            if rec.records() == 0 {
                let sample = probe.last_window().expect("fallback window recorded");
                rec.record(&SeriesWindowInput {
                    window: &sample,
                    sched: scheduler.telemetry(),
                    node_busy: &busy,
                    window_stretch: metrics.close_window(),
                    drops: metrics.dropped(),
                });
            }
        }
    }
    // Feed the per-node busy time into the shared metrics type so the
    // live path fills the same balance fields (CV, peak-to-mean) the
    // simulator does — Table 3 rows then compare two complete
    // `RunSummary` values instead of a hand-picked subset.
    let busy: Vec<f64> = stats_shared
        .iter()
        .map(|s| {
            (s.cpu_busy_ns.load(std::sync::atomic::Ordering::Relaxed)
                + s.io_busy_ns.load(std::sync::atomic::Ordering::Relaxed)) as f64
                / 1e9
        })
        .collect();
    metrics.set_node_busy(busy);
    let snapshot = telemetry.filter(|_| want_snapshot).map(|(probe, _)| {
        let sched_tel = scheduler
            .telemetry()
            .cloned()
            .unwrap_or_else(|| SchedTelemetry::new(cc.p()));
        TelemetrySnapshot::assemble(
            "live",
            cc.policy().slug(),
            cc.seed(),
            scheduler.masters(),
            &sched_tel,
            scheduler.scorer_path_counts(),
            scheduler.reservation().clamp_events(),
            &probe,
        )
    });
    if let Some(rec) = &mut series {
        rec.flush();
    }
    // One last publish so a scrape racing the run's end sees the final
    // numbers (the endpoint itself lives until the server is dropped).
    if let Some(server) = &metrics_server {
        if let Some(snap) = &snapshot {
            server.publish(snap.to_prometheus());
        }
    }
    LiveOutcome {
        summary: metrics.summary(),
        telemetry: snapshot,
        series,
        slo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msweb_workload::{ucb, DemandModel};

    fn tiny_trace(n: usize, lambda: f64) -> Trace {
        ucb()
            .generate(n, &DemandModel::sun_cluster(40.0), 5)
            .scaled_to_rate(lambda)
    }

    #[test]
    fn live_flat_completes_everything() {
        let trace = tiny_trace(60, 40.0);
        let mut cfg = LiveConfig::sun_cluster(PolicyKind::Flat, 1);
        cfg.time_scale = 0.05;
        cfg.monitor_period = Duration::from_millis(50);
        let s = emulate(&cfg, &trace, LiveRunOptions::new()).summary;
        assert_eq!(s.completed, 60);
        assert!(s.stretch >= 1.0, "stretch {}", s.stretch);
    }

    #[test]
    fn live_ms_completes_everything() {
        let trace = tiny_trace(60, 40.0);
        let mut cfg = LiveConfig::sun_cluster(PolicyKind::MasterSlave, 3);
        cfg.time_scale = 0.05;
        cfg.monitor_period = Duration::from_millis(50);
        let s = emulate(&cfg, &trace, LiveRunOptions::new()).summary;
        assert_eq!(s.completed, 60);
        assert!(s.stretch >= 1.0);
        assert!(s.completed_static > 0);
        // The live path populates the same node-balance fields as the
        // simulator; six real nodes never end up with bit-identical busy
        // time, so a populated vector shows up as a strictly positive CV.
        assert!(
            s.node_busy_cv > 0.0,
            "live run should report per-node busy balance, cv = {}",
            s.node_busy_cv
        );
    }

    #[test]
    fn idle_cluster_stretch_near_one() {
        // Very light load: responses should be close to demands. The
        // bound is loose because on a single-core host every thread
        // wake-up adds milliseconds of latency to millisecond-scale
        // demands.
        let trace = tiny_trace(12, 4.0);
        let mut cfg = LiveConfig::sun_cluster(PolicyKind::Flat, 1);
        cfg.time_scale = 0.5;
        let s = emulate(&cfg, &trace, LiveRunOptions::new()).summary;
        assert_eq!(s.completed, 12);
        assert!(
            s.stretch < 3.0,
            "idle live cluster should not queue: stretch {}",
            s.stretch
        );
    }

    #[test]
    fn emulate_with_accepts_an_explicit_scheduler() {
        let trace = tiny_trace(24, 30.0);
        let mut cfg = LiveConfig::sun_cluster(PolicyKind::MasterSlave, 2);
        cfg.time_scale = 0.05;
        cfg.monitor_period = Duration::from_millis(50);
        let scheduler = live_scheduler(&cfg, &trace);
        let s = emulate_with(&cfg, &trace, scheduler, LiveRunOptions::new()).summary;
        assert_eq!(s.completed, 24);
    }

    #[test]
    fn emulate_source_streams_the_workload() {
        let trace = tiny_trace(24, 30.0);
        let mut cfg = LiveConfig::sun_cluster(PolicyKind::MasterSlave, 2);
        cfg.time_scale = 0.05;
        cfg.monitor_period = Duration::from_millis(50);
        let scheduler = live_scheduler(&cfg, &trace);
        let stats = live_stats(&trace);
        let s = emulate_source(
            &cfg,
            trace.clone().into_source(),
            stats,
            scheduler,
            LiveRunOptions::new(),
        )
        .summary;
        assert_eq!(s.completed, 24);
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn live_region_run_charges_regions_and_completes() {
        use msweb_cluster::{RegionTopology, SchedulerRegistry, StageSpec};
        let trace = tiny_trace(40, 40.0);
        let mut cfg = LiveConfig::sun_cluster(PolicyKind::MasterSlave, 2);
        cfg.time_scale = 0.05;
        cfg.monitor_period = Duration::from_millis(50);
        let slug = "region-nearest/rotation-masters/reservation/level-split/\
                    rsrc-indexed-reserve/split-demand";
        cfg = cfg.with_spec(slug);
        let cc = cfg
            .cluster_config()
            .with_regions(RegionTopology::even(6, 2, 2));
        let spec = StageSpec::parse(slug).unwrap();
        let (a0, r0) = live_priors(&trace);
        let scheduler = SchedulerRegistry::builtin()
            .compose(&cc, &spec, a0, r0)
            .unwrap();
        let outcome = emulate_with(
            &cfg,
            &trace,
            scheduler,
            LiveRunOptions::new().telemetry(true),
        );
        assert_eq!(outcome.summary.completed, 40);
        let snap = outcome.telemetry.expect("telemetry requested");
        assert_eq!(snap.sched.region_charges.len(), 2);
        assert_eq!(snap.sched.region_charges.iter().sum::<u64>(), 40);
    }

    #[test]
    fn live_telemetry_produces_a_complete_snapshot() {
        let trace = tiny_trace(40, 40.0);
        let mut cfg = LiveConfig::sun_cluster(PolicyKind::MasterSlave, 2);
        cfg.time_scale = 0.25;
        cfg.monitor_period = Duration::from_millis(50);
        let scheduler = live_scheduler(&cfg, &trace);
        let outcome = emulate_with(
            &cfg,
            &trace,
            scheduler,
            LiveRunOptions::new().telemetry(true),
        );
        let s = outcome.summary;
        let snap = outcome.telemetry.expect("telemetry requested");
        assert_eq!(s.completed, 40);
        assert_eq!(snap.substrate, "live");
        assert_eq!(snap.sched.place_calls, 40);
        assert_eq!(snap.node_busy.len(), 6, "whole-run busy gauges");
        assert!(
            !snap.windows.is_empty(),
            "a 50 ms monitor period must tick during the replay"
        );
        // The snapshot round-trips through its own JSON encoding.
        let v = serde::Value::parse(&snap.to_json()).expect("parse own JSON");
        let back = TelemetrySnapshot::from_value(&v).expect("decode own JSON");
        assert_eq!(back, snap);
        // The Prometheus rendering carries the headline series.
        let prom = snap.to_prometheus();
        for needle in [
            "msweb_place_decisions_total",
            "msweb_reservation_theta2_star",
            "msweb_node_busy_ratio",
            "msweb_stage_span_ns_total",
        ] {
            assert!(prom.contains(needle), "missing {needle}");
        }
    }
}
