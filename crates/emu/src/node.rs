//! The emulated node: one worker thread running a multilevel-feedback
//! CPU scheduler, with the node's disk modelled as a *deadline calendar*
//! so compute and I/O genuinely overlap without extra threads.
//!
//! The CPU worker serves the highest-priority job for one (scaled)
//! quantum at a time; a job's priority sinks as it accumulates CPU
//! (estcpu, decayed periodically), so fresh short requests overtake
//! long-running CGI — matching `msweb-ossim`'s 4.3BSD-style scheduler,
//! which is essential for the live-vs-simulated validation to compare
//! like with like.
//!
//! When a job's CPU portion finishes, its I/O is booked on the node's
//! serial disk as a *deadline calendar*: the burst occupies the disk for
//! its full I/O time and the job completes at a wall-clock deadline,
//! which the worker collects opportunistically. The disk therefore takes
//! real elapsed time and serialises correctly *without a thread that
//! must wake per slice* — crucial on small/single-core hosts where
//! sub-millisecond sleep-wake cycles across a dozen threads would drown
//! the measurement in scheduler noise.
//!
//! A pure FIFO calendar would let one 300 ms CGI burst block a 5 ms
//! static read — the simulator's page-level round-robin disk interleaves
//! them instead. The calendar approximates that by letting a short burst
//! jump ahead of *not-yet-started* bursts at least 4× its size
//! (shortest-burst priority, the standard disk-scheduler treatment of
//! small synchronous reads). Cumulative busy time is published through
//! atomics for the load monitor.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};

use crate::job::{Done, Job, NodeMsg};
use crate::timing::wait_for;

/// Shared, monotone counters a node publishes for the monitor.
#[derive(Debug, Default)]
pub struct NodeStats {
    /// Nanoseconds of CPU-portion work completed.
    pub cpu_busy_ns: AtomicU64,
    /// Nanoseconds of I/O-portion work completed.
    pub io_busy_ns: AtomicU64,
    /// Jobs currently queued or in progress.
    pub in_flight: AtomicU64,
    /// Jobs finished.
    pub finished: AtomicU64,
}

/// Per-node tunables, already time-scaled.
#[derive(Debug, Clone)]
pub struct NodeParams {
    /// Scheduling slice (the scaled 10 ms quantum).
    pub quantum: Duration,
    /// Fork overhead charged to dynamic jobs (scaled 3 ms).
    pub fork: Duration,
    /// Priority-decay period (the scaled 100 ms estcpu update).
    pub decay_period: Duration,
}

struct Running {
    job: Job,
    cpu_left: Duration,
    io_left: Duration,
    /// CPU used, in quantum units; drives the priority level.
    estcpu: f64,
    /// FIFO tie-breaker within a level.
    seq: u64,
}

impl Running {
    fn level(&self) -> u8 {
        ((self.estcpu / 2.0).floor() as u8).min(31)
    }
}

/// The body of a node worker thread. Runs until `Shutdown` arrives and
/// both the CPU queue and the disk calendar drain.
pub fn node_worker(
    rx: Receiver<NodeMsg>,
    done_tx: Sender<Done>,
    stats: Arc<NodeStats>,
    params: NodeParams,
) {
    let mut queue: Vec<Running> = Vec::new();
    let mut disk = DiskCalendar::default();
    let mut shutdown = false;
    let mut seq: u64 = 0;
    let mut next_decay = Instant::now() + params.decay_period;

    loop {
        // Ingest everything pending without blocking.
        loop {
            match rx.try_recv() {
                Ok(NodeMsg::Run(job)) => {
                    seq += 1;
                    queue.push(admit(job, &params, &stats, seq));
                }
                Ok(NodeMsg::Shutdown) => shutdown = true,
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    shutdown = true;
                    break;
                }
            }
        }

        let now = Instant::now();

        // Collect disk completions that are due.
        for job in disk.due(now) {
            finish(job, &stats, &done_tx);
        }

        // Book jobs whose CPU portion is done onto the disk.
        let mut i = 0;
        while i < queue.len() {
            if queue[i].cpu_left.is_zero() {
                let job = queue.swap_remove(i);
                if job.io_left.is_zero() {
                    finish(job, &stats, &done_tx);
                } else {
                    stats
                        .io_busy_ns
                        .fetch_add(job.io_left.as_nanos() as u64, Ordering::Relaxed);
                    disk.book(job, now);
                }
            } else {
                i += 1;
            }
        }

        if queue.is_empty() {
            if disk.is_empty() && shutdown {
                return;
            }
            // Nothing to compute: sleep until the next disk completion or
            // the next message, whichever comes first.
            let timeout = disk
                .next_completion()
                .map(|t| t.saturating_duration_since(now))
                .unwrap_or(Duration::from_millis(50));
            match rx.recv_timeout(timeout) {
                Ok(NodeMsg::Run(job)) => {
                    seq += 1;
                    queue.push(admit(job, &params, &stats, seq));
                    next_decay = Instant::now() + params.decay_period;
                }
                Ok(NodeMsg::Shutdown) => shutdown = true,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => shutdown = true,
            }
            continue;
        }

        // Priority decay (4.3BSD schedcpu): halve-ish everyone's usage
        // estimate periodically so sunk jobs eventually rise again.
        if now >= next_decay {
            for r in queue.iter_mut() {
                r.estcpu *= 2.0 / 3.0;
            }
            next_decay = now + params.decay_period;
        }

        // Serve one quantum of the best (lowest level, FIFO) job.
        let best = queue
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| (r.level(), r.seq))
            .map(|(i, _)| i)
            .expect("non-empty queue");
        let running = &mut queue[best];
        let run = running.cpu_left.min(params.quantum);
        wait_for(run);
        running.cpu_left -= run;
        running.estcpu += run.as_secs_f64() / params.quantum.as_secs_f64();
        stats
            .cpu_busy_ns
            .fetch_add(run.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// The serial-disk deadline calendar with shortest-burst priority.
#[derive(Default)]
struct DiskCalendar {
    /// Chained bookings: `start`/`end` are wall-clock; entries are
    /// sequential (`entries[i].end == entries[i+1].start` once chained).
    entries: VecDeque<DiskEntry>,
}

struct DiskEntry {
    start: Instant,
    end: Instant,
    io: Duration,
    job: Running,
}

/// A short burst may jump bursts at least this many times its size.
const JUMP_FACTOR: u32 = 4;

impl DiskCalendar {
    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn next_completion(&self) -> Option<Instant> {
        self.entries.front().map(|e| e.end)
    }

    /// Pop every booking whose deadline has passed.
    fn due(&mut self, now: Instant) -> Vec<Running> {
        let mut out = Vec::new();
        while self.entries.front().is_some_and(|e| e.end <= now) {
            out.push(self.entries.pop_front().expect("peeked").job);
        }
        out
    }

    /// Book a burst: append, unless it is short enough to jump ahead of
    /// longer bursts. A long *in-service* burst is preempted-and-resumed
    /// (the simulator's page-level round-robin serves a 2-page static
    /// read within milliseconds even while a 150-page CGI burst is in
    /// progress); long *unstarted* bursts are simply jumped. The tail is
    /// re-chained either way.
    fn book(&mut self, job: Running, now: Instant) {
        let io = job.io_left;
        // Preemptive resume of a long in-service burst.
        if let Some(front) = self.entries.front_mut() {
            if front.start <= now && front.end > now && front.io >= io * JUMP_FACTOR {
                // Shrink the in-service burst to its remaining time; it
                // resumes after the short burst.
                front.io = front.end.saturating_duration_since(now);
                self.entries.insert(
                    0,
                    DiskEntry {
                        start: now,
                        end: now + io,
                        io,
                        job,
                    },
                );
                let mut prev_end = self.entries[0].end;
                for e in self.entries.iter_mut().skip(1) {
                    e.start = prev_end;
                    e.end = e.start + e.io;
                    prev_end = e.end;
                }
                return;
            }
        }
        // Find the insertion point among unstarted bursts.
        let mut pos = self.entries.len();
        for (i, e) in self.entries.iter().enumerate() {
            if e.start <= now {
                continue; // in service (or already due)
            }
            if e.io >= io * JUMP_FACTOR {
                pos = i;
                break;
            }
        }
        let start_base = if pos == 0 {
            now
        } else {
            self.entries[pos - 1].end.max(now)
        };
        self.entries.insert(
            pos,
            DiskEntry {
                start: start_base,
                end: start_base + io,
                io,
                job,
            },
        );
        // Re-chain everything after the insertion.
        let mut prev_end = self.entries[pos].end;
        for e in self.entries.iter_mut().skip(pos + 1) {
            e.start = prev_end;
            e.end = e.start + e.io;
            prev_end = e.end;
        }
    }
}

fn admit(job: Job, params: &NodeParams, stats: &NodeStats, seq: u64) -> Running {
    stats.in_flight.fetch_add(1, Ordering::Relaxed);
    let fork = if job.dynamic {
        params.fork
    } else {
        Duration::ZERO
    };
    Running {
        cpu_left: job.cpu + fork,
        io_left: job.io,
        estcpu: 0.0,
        seq,
        job,
    }
}

fn finish(job: Running, stats: &NodeStats, done_tx: &Sender<Done>) {
    stats.in_flight.fetch_sub(1, Ordering::Relaxed);
    stats.finished.fetch_add(1, Ordering::Relaxed);
    let _ = done_tx.send(Done {
        id: job.job.id,
        arrived: job.job.arrived,
        finished: Instant::now(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn params() -> NodeParams {
        NodeParams {
            quantum: Duration::from_millis(2),
            fork: Duration::from_micros(300),
            decay_period: Duration::from_millis(20),
        }
    }

    fn spawn_node() -> (
        Sender<NodeMsg>,
        Receiver<Done>,
        Arc<NodeStats>,
        std::thread::JoinHandle<()>,
    ) {
        let (tx, rx) = unbounded();
        let (dtx, drx) = unbounded();
        let stats = Arc::new(NodeStats::default());
        let s2 = Arc::clone(&stats);
        let p = params();
        let h = std::thread::spawn(move || node_worker(rx, dtx, s2, p));
        (tx, drx, stats, h)
    }

    #[test]
    fn single_job_takes_its_demand() {
        let (tx, drx, stats, h) = spawn_node();
        let t0 = Instant::now();
        tx.send(NodeMsg::Run(Job {
            id: 1,
            cpu: Duration::from_millis(4),
            io: Duration::from_millis(2),
            dynamic: false,
            arrived: t0,
        }))
        .unwrap();
        let done = drx.recv_timeout(Duration::from_secs(5)).unwrap();
        let resp = done.finished - done.arrived;
        assert!(resp >= Duration::from_millis(6), "resp {resp:?}");
        assert!(resp < Duration::from_millis(60), "resp {resp:?}");
        tx.send(NodeMsg::Shutdown).unwrap();
        h.join().unwrap();
        assert_eq!(stats.finished.load(Ordering::Relaxed), 1);
        assert!(stats.cpu_busy_ns.load(Ordering::Relaxed) >= 4_000_000);
        assert!(stats.io_busy_ns.load(Ordering::Relaxed) >= 2_000_000);
    }

    #[test]
    fn fresh_short_job_overtakes_cpu_hog() {
        let (tx, drx, _stats, h) = spawn_node();
        let t0 = Instant::now();
        tx.send(NodeMsg::Run(Job {
            id: 1,
            cpu: Duration::from_millis(40),
            io: Duration::ZERO,
            dynamic: false,
            arrived: t0,
        }))
        .unwrap();
        std::thread::sleep(Duration::from_millis(10));
        tx.send(NodeMsg::Run(Job {
            id: 2,
            cpu: Duration::from_millis(2),
            io: Duration::ZERO,
            dynamic: false,
            arrived: Instant::now(),
        }))
        .unwrap();
        let first = drx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(first.id, 2, "short job must finish before the sunk hog");
        let second = drx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(second.id, 1);
        tx.send(NodeMsg::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn cpu_and_disk_overlap() {
        // A pure-CPU job and a pure-I/O job together should take about
        // max(cpu, io), not the sum.
        let (tx, drx, _stats, h) = spawn_node();
        let t0 = Instant::now();
        tx.send(NodeMsg::Run(Job {
            id: 1,
            cpu: Duration::from_millis(30),
            io: Duration::ZERO,
            dynamic: false,
            arrived: t0,
        }))
        .unwrap();
        tx.send(NodeMsg::Run(Job {
            id: 2,
            cpu: Duration::ZERO,
            io: Duration::from_millis(30),
            dynamic: false,
            arrived: t0,
        }))
        .unwrap();
        let mut last = t0;
        for _ in 0..2 {
            let d = drx.recv_timeout(Duration::from_secs(5)).unwrap();
            last = last.max(d.finished);
        }
        let total = last - t0;
        assert!(
            total < Duration::from_millis(48),
            "CPU and disk should overlap: took {total:?}"
        );
        tx.send(NodeMsg::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn dynamic_jobs_pay_fork() {
        let (tx, drx, _stats, h) = spawn_node();
        let t0 = Instant::now();
        tx.send(NodeMsg::Run(Job {
            id: 1,
            cpu: Duration::from_millis(1),
            io: Duration::ZERO,
            dynamic: true,
            arrived: t0,
        }))
        .unwrap();
        let done = drx.recv_timeout(Duration::from_secs(5)).unwrap();
        let resp = done.finished - done.arrived;
        assert!(
            resp >= Duration::from_micros(1300),
            "fork missing: {resp:?}"
        );
        tx.send(NodeMsg::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn shutdown_drains_everything() {
        let (tx, drx, stats, h) = spawn_node();
        let t0 = Instant::now();
        for i in 0..5 {
            tx.send(NodeMsg::Run(Job {
                id: i,
                cpu: Duration::from_millis(1),
                io: Duration::from_millis(1),
                dynamic: false,
                arrived: t0,
            }))
            .unwrap();
        }
        tx.send(NodeMsg::Shutdown).unwrap();
        let mut got = 0;
        while drx.recv_timeout(Duration::from_secs(5)).is_ok() {
            got += 1;
            if got == 5 {
                break;
            }
        }
        assert_eq!(got, 5);
        h.join().unwrap();
        assert_eq!(stats.finished.load(Ordering::Relaxed), 5);
        assert_eq!(stats.in_flight.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn short_io_jumps_long_unstarted_bursts() {
        // Two 300ms CGI bursts then a 5ms static burst: the static must
        // complete right after the in-service burst, not after both.
        let (tx, drx, _stats, h) = spawn_node();
        let t0 = Instant::now();
        for i in 0..2 {
            tx.send(NodeMsg::Run(Job {
                id: i,
                cpu: Duration::ZERO,
                io: Duration::from_millis(300),
                dynamic: false,
                arrived: t0,
            }))
            .unwrap();
        }
        std::thread::sleep(Duration::from_millis(20));
        tx.send(NodeMsg::Run(Job {
            id: 9,
            cpu: Duration::ZERO,
            io: Duration::from_millis(5),
            dynamic: false,
            arrived: Instant::now(),
        }))
        .unwrap();
        let first = drx.recv_timeout(Duration::from_secs(5)).unwrap();
        let second = drx.recv_timeout(Duration::from_secs(5)).unwrap();
        let third = drx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(first.id, 9, "short burst preempts the in-service CGI");
        assert_eq!(second.id, 0, "preempted burst resumes and finishes next");
        assert_eq!(third.id, 1);
        let static_resp = first.finished - first.arrived;
        assert!(
            static_resp < Duration::from_millis(40),
            "static waited {static_resp:?}"
        );
        tx.send(NodeMsg::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn decay_lets_sunk_jobs_recover() {
        let (tx, drx, _stats, h) = spawn_node();
        let t0 = Instant::now();
        for i in 0..2 {
            tx.send(NodeMsg::Run(Job {
                id: i,
                cpu: Duration::from_millis(20),
                io: Duration::ZERO,
                dynamic: false,
                arrived: t0,
            }))
            .unwrap();
        }
        let a = drx.recv_timeout(Duration::from_secs(5)).unwrap();
        let b = drx.recv_timeout(Duration::from_secs(5)).unwrap();
        let gap = b.finished.saturating_duration_since(a.finished);
        assert!(gap < Duration::from_millis(25), "gap {gap:?}");
        tx.send(NodeMsg::Shutdown).unwrap();
        h.join().unwrap();
    }
}
