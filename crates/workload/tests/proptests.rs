//! Property-based tests for trace generation and replay scaling.

use msweb_simcore::SimTime;
use msweb_workload::{adl, ksu, ucb, DemandModel, FileSet, Trace, TraceSpec};
use proptest::prelude::*;

fn specs() -> Vec<TraceSpec> {
    vec![ucb(), ksu(), adl()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated traces are sorted, ids are sequential, demands positive.
    #[test]
    fn generated_traces_are_well_formed(
        which in 0usize..3,
        n in 1usize..2000,
        inv_r in 10.0f64..200.0,
        seed in any::<u64>(),
    ) {
        let spec = &specs()[which];
        let t = spec.generate(n, &DemandModel::simulation(inv_r), seed);
        prop_assert_eq!(t.len(), n);
        let mut last = SimTime::ZERO;
        for (i, r) in t.requests.iter().enumerate() {
            prop_assert_eq!(r.id, i as u64);
            prop_assert!(r.arrival >= last);
            last = r.arrival;
            prop_assert!(r.demand.service.as_micros() >= 1);
            prop_assert!((0.0..=1.0).contains(&r.demand.cpu_fraction));
            prop_assert!(r.bytes > 0);
        }
    }

    /// Rate scaling hits its target for any positive rate and preserves
    /// request payloads.
    #[test]
    fn scaling_is_exact_and_payload_preserving(
        n in 3usize..500,
        lambda in 0.5f64..10_000.0,
        seed in any::<u64>(),
    ) {
        let t = ucb().generate(n, &DemandModel::simulation(40.0), seed);
        let s = t.scaled_to_rate(lambda);
        let measured = s.mean_rate();
        prop_assert!(
            (measured - lambda).abs() / lambda < 0.01,
            "target {lambda}, measured {measured}"
        );
        for (a, b) in t.requests.iter().zip(&s.requests) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.class, b.class);
            prop_assert_eq!(a.bytes, b.bytes);
            prop_assert_eq!(a.demand, b.demand);
        }
    }

    /// Double scaling composes: scaling twice equals scaling once.
    #[test]
    fn scaling_composes(seed in any::<u64>(), l1 in 1.0f64..1000.0, l2 in 1.0f64..1000.0) {
        let t = ksu().generate(100, &DemandModel::simulation(20.0), seed);
        let once = t.scaled_to_rate(l2);
        let twice = t.scaled_to_rate(l1).scaled_to_rate(l2);
        for (a, b) in once.requests.iter().zip(&twice.requests) {
            let d = a.arrival.as_micros().abs_diff(b.arrival.as_micros());
            // Each intermediate arrival rounds to a whole microsecond and
            // the re-expansion amplifies that absolute error by up to
            // l1/l2 (arrivals scale independently, so errors do not
            // accumulate); the relative term covers the rescale factor
            // being re-derived from the rounded intermediate span.
            prop_assert!(
                d <= 2 + (l1 / l2).ceil() as u64 + a.arrival.as_micros() / 1_000,
                "d={} at arrival={} (l1={}, l2={})",
                d, a.arrival.as_micros(), l1, l2,
            );
        }
    }

    /// The closest-file snap never finds a closer file than it returns.
    #[test]
    fn fileset_snap_optimality(probe in 1u64..5_000_000) {
        let fs = FileSet::specweb96();
        let got = fs.closest(probe);
        for &s in fs.sizes() {
            prop_assert!(got.abs_diff(probe) <= s.abs_diff(probe));
        }
    }

    /// Summaries are consistent: percentages in range, ratio consistent
    /// with the mix.
    #[test]
    fn summaries_are_consistent(n in 10usize..1000, seed in any::<u64>()) {
        let t = adl().generate(n, &DemandModel::simulation(40.0), seed);
        let s = t.summary();
        prop_assert!((0.0..=100.0).contains(&s.cgi_pct));
        if s.cgi_pct > 0.0 && s.cgi_pct < 100.0 {
            let expect_a = s.cgi_pct / (100.0 - s.cgi_pct);
            prop_assert!((s.arrival_ratio_a - expect_a).abs() < 1e-9);
        }
    }

    /// Truncation is a prefix.
    #[test]
    fn truncation_is_prefix(n in 10usize..200, k in 1usize..250, seed in any::<u64>()) {
        let t = ucb().generate(n, &DemandModel::simulation(20.0), seed);
        let k = k.min(n);
        let tr: Trace = t.truncated(k);
        prop_assert_eq!(tr.len(), k);
        for (a, b) in tr.requests.iter().zip(&t.requests) {
            prop_assert_eq!(a, b);
        }
    }
}
