//! Traces: ordered request sequences with summary statistics and the
//! replay-rate scaling from §5.1.

use msweb_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::request::Request;

/// An ordered sequence of requests plus provenance.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Human-readable source name ("UCB", "KSU", ...).
    pub name: String,
    /// Requests in non-decreasing arrival order.
    pub requests: Vec<Request>,
}

/// The Table 1 columns for a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Trace name.
    pub name: String,
    /// Number of requests.
    pub requests: usize,
    /// Percentage of CGI (dynamic) requests.
    pub cgi_pct: f64,
    /// Mean inter-arrival interval in seconds.
    pub mean_interval_s: f64,
    /// Mean static ("HTML") transfer size in bytes.
    pub mean_static_bytes: f64,
    /// Mean CGI transfer size in bytes.
    pub mean_cgi_bytes: f64,
    /// Arrival ratio `a = λ_c / λ_h` implied by the class mix.
    pub arrival_ratio_a: f64,
}

impl Trace {
    /// Construct, checking arrival-order and id invariants.
    pub fn new(name: impl Into<String>, requests: Vec<Request>) -> Self {
        let name = name.into();
        debug_assert!(
            requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "trace {name} not sorted by arrival"
        );
        Trace { name, requests }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Wall-clock span from first to last arrival.
    pub fn span(&self) -> SimDuration {
        match (self.requests.first(), self.requests.last()) {
            (Some(f), Some(l)) => l.arrival - f.arrival,
            _ => SimDuration::ZERO,
        }
    }

    /// Mean arrival rate over the span, requests/second.
    pub fn mean_rate(&self) -> f64 {
        let span = self.span().as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            // n arrivals span n-1 intervals.
            (self.len().saturating_sub(1)) as f64 / span
        }
    }

    /// Rescale arrival intervals so the mean rate becomes `lambda`
    /// requests/second — the paper's replay acceleration ("we scale
    /// intervals among requests so that requests in each log are issued to
    /// the cluster at various fast rates"). Relative spacing (burstiness)
    /// is preserved; ids, classes, sizes, demands are untouched.
    ///
    /// The transform is shared with [`Trace::scaled_source`], which
    /// applies it on the fly without materializing a second vector.
    pub fn scaled_to_rate(&self, lambda: f64) -> Trace {
        let t0 = self
            .requests
            .first()
            .map(|r| r.arrival)
            .unwrap_or(SimTime::ZERO);
        let scaling = crate::source::RateScaling::to_rate(self.mean_rate(), t0, lambda);
        let requests = self
            .requests
            .iter()
            .enumerate()
            .map(|(i, r)| scaling.apply(i as u64, *r))
            .collect();
        Trace::new(self.name.clone(), requests)
    }

    /// Keep only the first `n` requests (the paper extracts a 128 668-
    /// request segment of the UCB log the same way).
    pub fn truncated(&self, n: usize) -> Trace {
        Trace::new(
            self.name.clone(),
            self.requests.iter().take(n).copied().collect(),
        )
    }

    /// Overlay another trace onto this one: arrivals interleave on the
    /// common timeline, ids are renumbered sequentially. Useful for
    /// consolidating several sites' logs onto one cluster (the paper's
    /// motivation for recruiting shared infrastructure).
    pub fn merged(&self, other: &Trace) -> Trace {
        let mut requests: Vec<Request> = self
            .requests
            .iter()
            .chain(&other.requests)
            .copied()
            .collect();
        requests.sort_by_key(|r| r.arrival);
        for (i, r) in requests.iter_mut().enumerate() {
            r.id = i as u64;
        }
        Trace::new(format!("{}+{}", self.name, other.name), requests)
    }

    /// Compute the Table 1 summary.
    pub fn summary(&self) -> TraceSummary {
        let n = self.len();
        let cgi: Vec<&Request> = self
            .requests
            .iter()
            .filter(|r| r.class.is_dynamic())
            .collect();
        let stat_count = n - cgi.len();
        let mean_static = if stat_count > 0 {
            self.requests
                .iter()
                .filter(|r| !r.class.is_dynamic())
                .map(|r| r.bytes as f64)
                .sum::<f64>()
                / stat_count as f64
        } else {
            0.0
        };
        let mean_cgi = if !cgi.is_empty() {
            cgi.iter().map(|r| r.bytes as f64).sum::<f64>() / cgi.len() as f64
        } else {
            0.0
        };
        let mean_interval = if n > 1 {
            self.span().as_secs_f64() / (n - 1) as f64
        } else {
            0.0
        };
        let cgi_frac = if n > 0 {
            cgi.len() as f64 / n as f64
        } else {
            0.0
        };
        TraceSummary {
            name: self.name.clone(),
            requests: n,
            cgi_pct: cgi_frac * 100.0,
            mean_interval_s: mean_interval,
            mean_static_bytes: mean_static,
            mean_cgi_bytes: mean_cgi,
            arrival_ratio_a: if cgi_frac < 1.0 {
                cgi_frac / (1.0 - cgi_frac)
            } else {
                f64::INFINITY
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RequestClass, ServiceDemand};

    fn req(id: u64, at_ms: u64, class: RequestClass, bytes: u64) -> Request {
        Request::new(
            id,
            SimTime::from_millis(at_ms),
            class,
            bytes,
            ServiceDemand::ZERO,
        )
    }

    fn sample_trace() -> Trace {
        Trace::new(
            "T",
            vec![
                req(0, 0, RequestClass::Static, 1000),
                req(1, 100, RequestClass::Dynamic, 5000),
                req(2, 200, RequestClass::Static, 3000),
                req(3, 300, RequestClass::Static, 2000),
            ],
        )
    }

    #[test]
    fn summary_columns() {
        let s = sample_trace().summary();
        assert_eq!(s.requests, 4);
        assert!((s.cgi_pct - 25.0).abs() < 1e-9);
        assert!((s.mean_interval_s - 0.1).abs() < 1e-9);
        assert!((s.mean_static_bytes - 2000.0).abs() < 1e-9);
        assert!((s.mean_cgi_bytes - 5000.0).abs() < 1e-9);
        assert!((s.arrival_ratio_a - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn mean_rate() {
        // 4 requests over 300ms -> 3 intervals / 0.3 s = 10/s.
        assert!((sample_trace().mean_rate() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_hits_target_rate() {
        let t = sample_trace().scaled_to_rate(100.0);
        assert!(
            (t.mean_rate() - 100.0).abs() < 0.1,
            "rate {}",
            t.mean_rate()
        );
        assert_eq!(t.len(), 4);
        // Relative spacing preserved: uniform intervals stay uniform.
        let gaps: Vec<_> = t
            .requests
            .windows(2)
            .map(|w| (w[1].arrival - w[0].arrival).as_micros())
            .collect();
        assert!(gaps.windows(2).all(|g| g[0].abs_diff(g[1]) <= 1));
    }

    #[test]
    fn scaling_preserves_everything_but_arrivals() {
        let orig = sample_trace();
        let t = orig.scaled_to_rate(1000.0);
        for (a, b) in orig.requests.iter().zip(&t.requests) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.class, b.class);
            assert_eq!(a.bytes, b.bytes);
        }
    }

    #[test]
    fn scaling_zero_span_trace() {
        let t = Trace::new(
            "Z",
            vec![
                req(0, 0, RequestClass::Static, 1),
                req(1, 0, RequestClass::Static, 1),
                req(2, 0, RequestClass::Static, 1),
            ],
        )
        .scaled_to_rate(10.0);
        assert!((t.mean_rate() - 10.0).abs() < 0.1);
    }

    #[test]
    fn truncation() {
        let t = sample_trace().truncated(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.requests[1].id, 1);
    }

    #[test]
    fn merged_interleaves_and_renumbers() {
        let a = Trace::new(
            "A",
            vec![
                req(0, 0, RequestClass::Static, 10),
                req(1, 200, RequestClass::Static, 10),
            ],
        );
        let b = Trace::new(
            "B",
            vec![
                req(0, 100, RequestClass::Dynamic, 20),
                req(1, 300, RequestClass::Dynamic, 20),
            ],
        );
        let m = a.merged(&b);
        assert_eq!(m.name, "A+B");
        assert_eq!(m.len(), 4);
        let ids: Vec<u64> = m.requests.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        let classes: Vec<bool> = m.requests.iter().map(|r| r.class.is_dynamic()).collect();
        assert_eq!(classes, vec![false, true, false, true]);
        assert!((m.summary().cgi_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_summary_is_sane() {
        let t = Trace::new("E", vec![]);
        let s = t.summary();
        assert_eq!(s.requests, 0);
        assert_eq!(s.cgi_pct, 0.0);
        assert_eq!(t.mean_rate(), 0.0);
    }
}
