//! The SPECweb96-style static file set.
//!
//! "We replace all file fetches from the logs with the 40 representative
//! files from SPECWeb96. For each file request in the log, the file in
//! this set with the closest size is returned." (§5.1).
//!
//! SPECweb96 defines four size classes with a fixed access mix — tiny
//! (≤1 KB, 35 %), small (1–10 KB, 50 %), medium (10–100 KB, 14 %) and
//! large (0.1–1 MB, 1 %) — with files spread across each class. We build
//! the 40-file set as ten log-spaced sizes per class.

use msweb_simcore::SimRng;

/// The static file set used to replay file fetches.
#[derive(Debug, Clone)]
pub struct FileSet {
    /// File sizes in bytes, ascending.
    sizes: Vec<u64>,
    /// Per-class access weights aligned with `class_bounds`.
    class_weights: [f64; 4],
}

/// Class boundaries in bytes (upper bounds, inclusive).
const CLASS_BOUNDS: [(u64, u64); 4] = [
    (102, 1_024),         // class 0: up to 1 KB
    (1_025, 10_240),      // class 1: 1–10 KB
    (10_241, 102_400),    // class 2: 10–100 KB
    (102_401, 1_024_000), // class 3: 0.1–1 MB
];

/// SPECweb96 access mix per class.
const CLASS_WEIGHTS: [f64; 4] = [0.35, 0.50, 0.14, 0.01];

impl FileSet {
    /// The 40-file SPECweb96-like set: ten log-spaced sizes per class.
    pub fn specweb96() -> Self {
        let mut sizes = Vec::with_capacity(40);
        for &(lo, hi) in &CLASS_BOUNDS {
            let (lo_f, hi_f) = (lo as f64, hi as f64);
            for i in 0..10 {
                // Log-spaced across the class.
                let frac = (i as f64 + 0.5) / 10.0;
                let s = lo_f * (hi_f / lo_f).powf(frac);
                sizes.push(s.round() as u64);
            }
        }
        sizes.sort_unstable();
        FileSet {
            sizes,
            class_weights: CLASS_WEIGHTS,
        }
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// True when the set has no files (never for the built-in set).
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// All sizes, ascending.
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// The file in the set whose size is closest to `bytes` — the paper's
    /// replay rule for static requests.
    pub fn closest(&self, bytes: u64) -> u64 {
        match self.sizes.binary_search(&bytes) {
            Ok(i) => self.sizes[i],
            Err(i) => {
                let after = self.sizes.get(i);
                let before = if i > 0 { Some(self.sizes[i - 1]) } else { None };
                match (before, after) {
                    (Some(b), Some(&a)) => {
                        if bytes - b <= a - bytes {
                            b
                        } else {
                            a
                        }
                    }
                    (Some(b), None) => b,
                    (None, Some(&a)) => a,
                    (None, None) => 0,
                }
            }
        }
    }

    /// Draw a file size from the SPECweb96 access mix (for generating
    /// synthetic static requests from scratch).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.next_f64();
        let mut acc = 0.0;
        let mut class = 3;
        for (c, &w) in self.class_weights.iter().enumerate() {
            acc += w;
            if u < acc {
                class = c;
                break;
            }
        }
        let per_class = self.sizes.len() / 4;
        let idx = class * per_class + rng.gen_index(per_class);
        self.sizes[idx]
    }

    /// Mean size under the access mix (for calibration checks).
    pub fn mean_accessed_size(&self) -> f64 {
        let per_class = self.sizes.len() / 4;
        let mut mean = 0.0;
        for (c, &w) in self.class_weights.iter().enumerate() {
            let class_mean: f64 = self.sizes[c * per_class..(c + 1) * per_class]
                .iter()
                .map(|&s| s as f64)
                .sum::<f64>()
                / per_class as f64;
            mean += w * class_mean;
        }
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_files_in_four_classes() {
        let fs = FileSet::specweb96();
        assert_eq!(fs.len(), 40);
        assert!(fs.sizes().windows(2).all(|w| w[0] <= w[1]));
        // Ten per class.
        for (c, &(lo, hi)) in CLASS_BOUNDS.iter().enumerate() {
            let in_class = fs.sizes().iter().filter(|&&s| s >= lo && s <= hi).count();
            assert_eq!(in_class, 10, "class {c} has {in_class} files");
        }
    }

    #[test]
    fn closest_matches_exact_and_between() {
        let fs = FileSet::specweb96();
        let some = fs.sizes()[7];
        assert_eq!(fs.closest(some), some);
        // Far below the smallest.
        assert_eq!(fs.closest(1), fs.sizes()[0]);
        // Far above the largest.
        assert_eq!(fs.closest(10_000_000), *fs.sizes().last().unwrap());
    }

    #[test]
    fn closest_is_actually_closest() {
        let fs = FileSet::specweb96();
        for probe in [100u64, 500, 5_000, 77_777, 300_000, 999_999] {
            let got = fs.closest(probe);
            let best = fs
                .sizes()
                .iter()
                .min_by_key(|&&s| s.abs_diff(probe))
                .copied()
                .unwrap();
            assert_eq!(got.abs_diff(probe), best.abs_diff(probe), "probe {probe}");
        }
    }

    #[test]
    fn sample_respects_mix() {
        let fs = FileSet::specweb96();
        let mut rng = SimRng::seed_from_u64(42);
        let n = 100_000;
        let mut tiny = 0;
        for _ in 0..n {
            if fs.sample(&mut rng) <= 1024 {
                tiny += 1;
            }
        }
        let frac = tiny as f64 / n as f64;
        assert!((frac - 0.35).abs() < 0.01, "tiny-class frequency {frac}");
    }

    #[test]
    fn mean_accessed_size_close_to_empirical() {
        let fs = FileSet::specweb96();
        let analytic = fs.mean_accessed_size();
        let mut rng = SimRng::seed_from_u64(7);
        let n = 200_000;
        let emp: f64 = (0..n).map(|_| fs.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!(
            (emp - analytic).abs() / analytic < 0.05,
            "analytic {analytic} vs empirical {emp}"
        );
    }
}
