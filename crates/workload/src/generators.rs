//! Synthetic trace generators calibrated to the paper's Table 1.
//!
//! The real logs (DEC, UCB Home-IP, KSU library, ADL) are proprietary and
//! partly scrambled; the paper itself replays them with *replaced*
//! request bodies (SPECweb96 files for static requests, synthetic CGI for
//! dynamic ones). We generate traces whose published characteristics —
//! class mix, mean inter-arrival interval, mean static and CGI transfer
//! sizes — match Table 1, then attach demands per the experiment's demand
//! ratio `r`, exactly as §5.1 describes.
//!
//! | trace | year | requests | %CGI | interval | HTML bytes | CGI bytes |
//! |-------|------|----------|------|----------|------------|-----------|
//! | DEC   | 1996 | 24.5 M   |  8.7 | 0.09 s   | 8821       | 5735      |
//! | UCB   | 1996 |  9.2 M   | 11.2 | 0.139 s  | 7519       | 4591      |
//! | KSU   | 1998 | 47 364   | 29.1 | 18.48 s  |  482       | 8730      |
//! | ADL   | 1997 | 73 610   | 44.3 | 22.4 s   | 2186       | 2027      |

use msweb_simcore::{Distribution, LogNormal, ShiftedExponential, SimDuration, SimRng, SimTime};

use serde::Serialize;

use crate::cgi::{CgiKind, CgiModel};
use crate::fileset::FileSet;
use crate::request::{Request, RequestClass, ServiceDemand};
use crate::source::RequestSource;
use crate::trace::Trace;

/// Published characteristics of one source log (a Table 1 row).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceSpec {
    /// Log name.
    pub name: &'static str,
    /// Year the log was gathered.
    pub year: u16,
    /// Request count of the full original log.
    pub paper_requests: u64,
    /// Percentage of CGI requests.
    pub cgi_pct: f64,
    /// Mean inter-arrival interval in seconds.
    pub mean_interval_s: f64,
    /// Mean static (HTML) transfer size in bytes.
    pub mean_html_bytes: u64,
    /// Mean CGI transfer size in bytes.
    pub mean_cgi_bytes: u64,
    /// Which synthetic CGI load replays this trace's dynamic requests.
    pub cgi_kind: CgiKind,
}

/// The UC Berkeley Home-IP log (CPU-intensive CGI replay).
pub fn ucb() -> TraceSpec {
    TraceSpec {
        name: "UCB",
        year: 1996,
        paper_requests: 9_200_000,
        cgi_pct: 11.2,
        mean_interval_s: 0.139,
        mean_html_bytes: 7519,
        mean_cgi_bytes: 4591,
        cgi_kind: CgiKind::CpuIntensive,
    }
}

/// The Kansas State University online-library log (WebGlimpse replay).
pub fn ksu() -> TraceSpec {
    TraceSpec {
        name: "KSU",
        year: 1998,
        paper_requests: 47_364,
        cgi_pct: 29.1,
        mean_interval_s: 18.48,
        mean_html_bytes: 482,
        mean_cgi_bytes: 8730,
        cgi_kind: CgiKind::MixedIndexSearch,
    }
}

/// The Alexandria Digital Library testbed log (I/O-intensive replay).
pub fn adl() -> TraceSpec {
    TraceSpec {
        name: "ADL",
        year: 1997,
        paper_requests: 73_610,
        cgi_pct: 44.3,
        mean_interval_s: 22.4,
        mean_html_bytes: 2186,
        mean_cgi_bytes: 2027,
        cgi_kind: CgiKind::IoIntensive,
    }
}

/// The DEC proxy log (characterised in Table 1 but not replayed by the
/// paper because its CGI mix resembles UCB's).
pub fn dec() -> TraceSpec {
    TraceSpec {
        name: "DEC",
        year: 1996,
        paper_requests: 24_500_000,
        cgi_pct: 8.7,
        mean_interval_s: 0.09,
        mean_html_bytes: 8821,
        mean_cgi_bytes: 5735,
        cgi_kind: CgiKind::CpuIntensive,
    }
}

/// The three traces the paper replays, in its reporting order.
pub fn replayed_traces() -> Vec<TraceSpec> {
    vec![ucb(), ksu(), adl()]
}

/// All four characterised traces (Table 1 order).
pub fn all_traces() -> Vec<TraceSpec> {
    vec![dec(), ucb(), ksu(), adl()]
}

/// Arrival-process shape for generated traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Memoryless arrivals at the trace's mean rate — the §3 analysis
    /// regime and the default.
    Poisson,
    /// Two-state Markov-modulated Poisson process: ON phases arrive at
    /// `burst_mult ×` the base rate, OFF phases at a reduced rate chosen
    /// so the long-run mean equals the base rate. Models flash-crowd
    /// peaks, the situation the paper's adaptive reservation targets.
    OnOff {
        /// Rate multiplier during ON phases (must satisfy
        /// `burst_mult ≤ 1 / on_fraction`).
        burst_mult: f64,
        /// Long-run fraction of time spent in the ON phase, in (0, 1).
        on_fraction: f64,
        /// Mean ON+OFF cycle length in seconds.
        mean_cycle_s: f64,
    },
}

impl ArrivalModel {
    fn validate(&self) {
        if let ArrivalModel::OnOff {
            burst_mult,
            on_fraction,
            mean_cycle_s,
        } = *self
        {
            assert!((0.0..1.0).contains(&on_fraction) && on_fraction > 0.0);
            assert!(burst_mult >= 1.0, "bursts must not be slower than the mean");
            assert!(
                burst_mult <= 1.0 / on_fraction + 1e-12,
                "burst_mult {burst_mult} leaves a negative OFF rate at on_fraction {on_fraction}"
            );
            assert!(mean_cycle_s > 0.0 && mean_cycle_s.is_finite());
        }
    }
}

/// Client-origin region mix for multi-region workloads: a
/// piecewise-constant schedule of per-region arrival weights.
///
/// The phase active at arrival time `t` is
/// `(t / phase_len_s) % phases.len()`; each arriving request draws its
/// origin from that phase's weights, from a dedicated RNG stream
/// (split label 6) so enabling a mix perturbs none of the other
/// generator streams — region-free traces stay byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionMix {
    /// Per-phase origin weights; every row is one phase, `regions()`
    /// long, nonnegative with a positive sum.
    phases: Vec<Vec<f64>>,
    /// Phase length in seconds.
    phase_len_s: f64,
}

impl RegionMix {
    /// A mix with explicit phase weights. Panics on an empty schedule,
    /// ragged rows, negative weights or a non-positive row sum.
    pub fn new(phases: Vec<Vec<f64>>, phase_len_s: f64) -> Self {
        assert!(!phases.is_empty(), "region mix needs at least one phase");
        let k = phases[0].len();
        assert!(k > 0, "region mix needs at least one region");
        assert!(
            phase_len_s > 0.0 && phase_len_s.is_finite(),
            "bad phase length {phase_len_s}"
        );
        for row in &phases {
            assert_eq!(row.len(), k, "ragged region-mix phase");
            assert!(
                row.iter().all(|w| *w >= 0.0 && w.is_finite()),
                "negative or non-finite region weight"
            );
            assert!(row.iter().sum::<f64>() > 0.0, "all-zero region-mix phase");
        }
        RegionMix {
            phases,
            phase_len_s,
        }
    }

    /// A time-invariant uniform mix over `k` regions.
    pub fn uniform(k: usize) -> Self {
        RegionMix::new(vec![vec![1.0; k]], 1.0)
    }

    /// A diurnal rotation: `k` phases of `phase_len_s` seconds, phase
    /// `i` sending `hot_weight` from region `i` and weight 1 from each
    /// other region — traffic's centre of gravity walks around the
    /// region ring.
    pub fn rotating(k: usize, hot_weight: f64, phase_len_s: f64) -> Self {
        assert!(hot_weight >= 1.0 && hot_weight.is_finite());
        let phases = (0..k)
            .map(|hot| {
                (0..k)
                    .map(|r| if r == hot { hot_weight } else { 1.0 })
                    .collect()
            })
            .collect();
        RegionMix::new(phases, phase_len_s)
    }

    /// Number of origin regions.
    pub fn regions(&self) -> usize {
        self.phases[0].len()
    }

    /// Draw the origin for an arrival at `t_s` seconds.
    pub fn origin_at(&self, t_s: f64, rng: &mut SimRng) -> usize {
        let phase = ((t_s / self.phase_len_s).max(0.0) as usize) % self.phases.len();
        let weights = &self.phases[phase];
        let total: f64 = weights.iter().sum();
        let mut u = rng.next_f64() * total;
        for (r, w) in weights.iter().enumerate() {
            u -= w;
            if u < 0.0 {
                return r;
            }
        }
        weights.len() - 1
    }
}

/// How much of a request's demand the *scheduler* is allowed to see.
///
/// Generation always attaches the true demand to every request — the
/// simulated OS needs it to execute the work. Visibility describes what
/// the scheduling pipeline should be *told* about that demand, and
/// travels with the workload (on [`DemandModel`]) so a trace advertises
/// the information regime it was meant to be scheduled under. The
/// cluster driver applies it when it declares each request to the
/// scheduler (see `msweb-cluster`'s `RunOptions`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DemandVisibility {
    /// Declarations are the true per-request values (the paper's
    /// idealised off-line sampling). The default.
    #[default]
    Exact,
    /// Declarations come from per-class sampling tables: right on
    /// average, carrying the same values as `Exact` here but flagged so
    /// schedulers know not to over-trust them.
    Sampled,
    /// Declarations are corrupted by uniform relative noise of the
    /// given half-width (e.g. `Noisy(0.5)` = ±50% mis-estimation).
    Noisy(f64),
    /// No per-request declaration at all: the scheduler sees only
    /// population fallbacks (`w = 0.5`, the class mean demand).
    Hidden,
}

/// How demands are attached to generated requests.
#[derive(Debug, Clone)]
pub struct DemandModel {
    /// Nominal mean static service demand (paper: 1/1200 s in simulation,
    /// 1/110 s on the Sun cluster).
    pub static_mean: SimDuration,
    /// CGI demand ratio `1/r`: mean CGI demand = `static_mean × inv_r`.
    pub inv_r: f64,
    /// CPU weight of static requests (parse + send vs file read).
    pub static_w: f64,
    /// Whether CGI service times are exponential (the analysis regime) or
    /// constant (WebSTONE controlled-time mode).
    pub cgi_exponential: bool,
    /// Query-popularity model for dynamic requests: `Some((q, s))` draws
    /// each CGI's content key Zipf(s)-distributed over `q` distinct
    /// queries (enabling dynamic-content caching experiments); `None`
    /// leaves requests keyless.
    pub query_popularity: Option<(usize, f64)>,
    /// Arrival-process shape.
    pub arrivals: ArrivalModel,
    /// How much of the attached demands schedulers should be shown.
    pub visibility: DemandVisibility,
    /// Client-origin region mix; `None` (the default) tags every
    /// request with origin 0 and draws nothing from the region stream.
    pub region_mix: Option<RegionMix>,
}

impl DemandModel {
    /// The simulation default: 1200 req/s static capability and the given
    /// demand ratio.
    pub fn simulation(inv_r: f64) -> Self {
        DemandModel {
            static_mean: SimDuration::from_secs_f64(1.0 / 1200.0),
            inv_r,
            static_w: 0.5,
            cgi_exponential: true,
            query_popularity: None,
            arrivals: ArrivalModel::Poisson,
            visibility: DemandVisibility::Exact,
            region_mix: None,
        }
    }

    /// The live-emulation default: Ultra-1-class 110 req/s static
    /// capability (§5.2.2) and the given demand ratio.
    pub fn sun_cluster(inv_r: f64) -> Self {
        DemandModel {
            static_mean: SimDuration::from_secs_f64(1.0 / 110.0),
            inv_r,
            static_w: 0.5,
            cgi_exponential: true,
            query_popularity: None,
            arrivals: ArrivalModel::Poisson,
            visibility: DemandVisibility::Exact,
            region_mix: None,
        }
    }

    /// Mean CGI demand implied by this model.
    pub fn cgi_mean(&self) -> SimDuration {
        self.static_mean.mul_f64(self.inv_r)
    }

    /// Enable Zipf(`s`) query popularity over `q` distinct queries
    /// (builder style).
    pub fn with_query_popularity(mut self, q: usize, s: f64) -> Self {
        assert!(q > 0, "need at least one distinct query");
        assert!(s >= 0.0 && s.is_finite(), "bad Zipf exponent {s}");
        self.query_popularity = Some((q, s));
        self
    }

    /// Declare what schedulers may see of the attached demands (builder
    /// style). Generation itself is unaffected — the truth is always
    /// attached; this travels as workload metadata for the driver.
    pub fn with_visibility(mut self, visibility: DemandVisibility) -> Self {
        if let DemandVisibility::Noisy(sigma) = visibility {
            assert!(
                sigma >= 0.0 && sigma.is_finite(),
                "bad noise half-width {sigma}"
            );
        }
        self.visibility = visibility;
        self
    }

    /// The visibility regime this workload was generated for.
    pub fn visibility(&self) -> DemandVisibility {
        self.visibility
    }

    /// Tag generated requests with client-origin regions drawn from
    /// `mix` (builder style).
    pub fn with_region_mix(mut self, mix: RegionMix) -> Self {
        self.region_mix = Some(mix);
        self
    }

    /// Use a bursty ON/OFF arrival process (builder style).
    pub fn with_bursty_arrivals(
        mut self,
        burst_mult: f64,
        on_fraction: f64,
        mean_cycle_s: f64,
    ) -> Self {
        let m = ArrivalModel::OnOff {
            burst_mult,
            on_fraction,
            mean_cycle_s,
        };
        m.validate();
        self.arrivals = m;
        self
    }
}

/// Stateful arrival-interval sampler for [`ArrivalModel`].
struct ArrivalSampler {
    model: ArrivalModel,
    base_rate: f64,
    /// Current phase: true = ON.
    on: bool,
    /// Absolute end of the current phase, seconds.
    phase_end_s: f64,
}

impl ArrivalSampler {
    fn new(model: ArrivalModel, mean_interval_s: f64) -> Self {
        model.validate();
        ArrivalSampler {
            model,
            base_rate: 1.0 / mean_interval_s,
            on: false,
            phase_end_s: 0.0,
        }
    }

    fn phase_rate(&self) -> f64 {
        match self.model {
            ArrivalModel::Poisson => self.base_rate,
            ArrivalModel::OnOff {
                burst_mult,
                on_fraction,
                ..
            } => {
                if self.on {
                    self.base_rate * burst_mult
                } else {
                    self.base_rate * (1.0 - on_fraction * burst_mult).max(0.0) / (1.0 - on_fraction)
                }
            }
        }
    }

    fn phase_mean_s(&self) -> f64 {
        match self.model {
            ArrivalModel::Poisson => f64::INFINITY,
            ArrivalModel::OnOff {
                on_fraction,
                mean_cycle_s,
                ..
            } => {
                if self.on {
                    on_fraction * mean_cycle_s
                } else {
                    (1.0 - on_fraction) * mean_cycle_s
                }
            }
        }
    }

    /// Next arrival time (absolute seconds) after `t_s`. Memorylessness
    /// lets us re-draw the interval whenever a phase boundary is crossed.
    fn next_after(&mut self, mut t_s: f64, rng: &mut SimRng) -> f64 {
        if matches!(self.model, ArrivalModel::Poisson) {
            let u = rng.next_f64_open();
            return t_s - u.ln() / self.base_rate;
        }
        loop {
            if t_s >= self.phase_end_s {
                self.on = !self.on;
                let u = rng.next_f64_open();
                self.phase_end_s = t_s - u.ln() * self.phase_mean_s();
            }
            let rate = self.phase_rate();
            if rate <= 0.0 {
                // Silent OFF phase: jump to its end.
                t_s = self.phase_end_s;
                continue;
            }
            let u = rng.next_f64_open();
            let candidate = t_s - u.ln() / rate;
            if candidate <= self.phase_end_s {
                return candidate;
            }
            t_s = self.phase_end_s;
        }
    }
}

/// Draw a Zipf(s)-distributed rank in `[0, q)` by inverse CDF over
/// precomputed cumulative weights.
struct ZipfKeys {
    cumulative: Vec<f64>,
}

impl ZipfKeys {
    fn new(q: usize, s: f64) -> Self {
        let mut cumulative = Vec::with_capacity(q);
        let mut acc = 0.0;
        for k in 1..=q {
            acc += 1.0 / (k as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        ZipfKeys { cumulative }
    }

    fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.next_f64();
        self.cumulative.partition_point(|&c| c <= u) as u64
    }
}

impl TraceSpec {
    /// Arrival ratio `a = λ_c/λ_h` implied by the class mix.
    pub fn arrival_ratio_a(&self) -> f64 {
        let f = self.cgi_pct / 100.0;
        f / (1.0 - f)
    }

    /// Generate `n` requests with demands from `demand`, deterministically
    /// from `seed`.
    ///
    /// Arrivals follow [`DemandModel::arrivals`] at the log's native rate
    /// (scale afterwards with [`Trace::scaled_to_rate`]). Static sizes are
    /// drawn log-normally around the log's mean HTML size and snapped to
    /// the closest SPECweb96 file (the paper's replay rule); CGI sizes are
    /// drawn log-normally around the mean CGI size.
    ///
    /// ```
    /// use msweb_workload::{ksu, DemandModel};
    ///
    /// let trace = ksu()
    ///     .generate(1_000, &DemandModel::simulation(40.0), 42)
    ///     .scaled_to_rate(500.0);
    /// assert_eq!(trace.len(), 1_000);
    /// assert!((trace.mean_rate() - 500.0).abs() < 5.0);
    /// ```
    pub fn generate(&self, n: usize, demand: &DemandModel, seed: u64) -> Trace {
        Trace::new(self.name, self.stream(n, demand, seed).collect())
    }

    /// Stream `n` requests without materializing them: the same sequence
    /// [`TraceSpec::generate`] produces (`generate` is defined as
    /// `stream(...).collect()`), but in O(1) memory. Use this for runs
    /// too long to hold in RAM; see [`RequestSource`] for the contract.
    pub fn stream(&self, n: usize, demand: &DemandModel, seed: u64) -> GenSource {
        let mut master = SimRng::seed_from_u64(seed ^ 0x6d73_7765_625f_7472);
        let arrivals_rng = master.split(1);
        let class_rng = master.split(2);
        let size_rng = master.split(3);
        let demand_rng = master.split(4);

        let fileset = FileSet::specweb96();
        let arrivals = ArrivalSampler::new(demand.arrivals, self.mean_interval_s);
        // Web transfer sizes are heavy-tailed; CV ~ 1.5 is typical of the
        // era's logs.
        let html_size = LogNormal::from_mean_cv(self.mean_html_bytes as f64, 1.5);
        let cgi_size = LogNormal::from_mean_cv(self.mean_cgi_bytes as f64, 1.0);
        let cgi_frac = self.cgi_pct / 100.0;

        let cgi_model = if demand.cgi_exponential {
            CgiModel::exponential(self.cgi_kind, demand.cgi_mean())
        } else {
            CgiModel::constant(self.cgi_kind, demand.cgi_mean())
        };
        // Per-request floor: 30% of the mean is fixed protocol/syscall
        // cost. Without the floor, exponential demands put mass near zero
        // where the stretch metric (response/demand) is unboundedly
        // sensitive to any queueing delay.
        let static_service = ShiftedExponential::from_mean(demand.static_mean.as_secs_f64(), 0.3);

        let zipf = demand
            .query_popularity
            .map(|(q, s_exp)| ZipfKeys::new(q, s_exp));
        let key_rng = master.split(5);
        // Split unconditionally (splitting costs one master draw after
        // every other stream is already fixed), draw only when a mix is
        // configured — so region-free traces stay byte-identical.
        let region_rng = master.split(6);

        GenSource {
            name: self.name,
            arrivals_rng,
            class_rng,
            size_rng,
            demand_rng,
            key_rng,
            fileset,
            arrivals,
            html_size,
            cgi_size,
            cgi_frac,
            cgi_model,
            static_service,
            static_w: demand.static_w,
            zipf,
            region_mix: demand.region_mix.clone(),
            region_rng,
            t: SimTime::ZERO,
            t_s: 0.0,
            next_id: 0,
            remaining: n,
        }
    }
}

/// The streaming generator behind [`TraceSpec::stream`]: a few hundred
/// bytes of RNG and sampler state standing in for the whole request
/// vector. Yields exactly the sequence `generate` would collect.
pub struct GenSource {
    name: &'static str,
    arrivals_rng: SimRng,
    class_rng: SimRng,
    size_rng: SimRng,
    demand_rng: SimRng,
    key_rng: SimRng,
    fileset: FileSet,
    arrivals: ArrivalSampler,
    html_size: LogNormal,
    cgi_size: LogNormal,
    cgi_frac: f64,
    cgi_model: CgiModel,
    static_service: ShiftedExponential,
    static_w: f64,
    zipf: Option<ZipfKeys>,
    region_mix: Option<RegionMix>,
    region_rng: SimRng,
    t: SimTime,
    t_s: f64,
    next_id: u64,
    remaining: usize,
}

impl Iterator for GenSource {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let id = self.next_id;
        self.next_id += 1;

        if id > 0 {
            self.t_s = self.arrivals.next_after(self.t_s, &mut self.arrivals_rng);
            self.t = SimTime::from_secs_f64(self.t_s);
        }
        let is_cgi = self.class_rng.gen_bool(self.cgi_frac);
        let (class, bytes, dem) = if is_cgi {
            let bytes = self.cgi_size.sample(&mut self.size_rng).max(64.0) as u64;
            let service = self.cgi_model.sample_service(&mut self.demand_rng);
            (
                RequestClass::Dynamic,
                bytes,
                ServiceDemand {
                    service,
                    cpu_fraction: self.cgi_model.cpu_weight(),
                    memory_bytes: self.cgi_model.sample_memory(&mut self.demand_rng),
                },
            )
        } else {
            let raw = self.html_size.sample(&mut self.size_rng).max(64.0) as u64;
            let bytes = self.fileset.closest(raw);
            let service = SimDuration::from_secs_f64(
                self.static_service.sample(&mut self.demand_rng).max(1e-6),
            );
            (
                RequestClass::Static,
                bytes,
                ServiceDemand {
                    service,
                    cpu_fraction: self.static_w,
                    memory_bytes: bytes,
                },
            )
        };
        let mut req = Request::new(id, self.t, class, bytes, dem);
        if is_cgi {
            if let Some(z) = &self.zipf {
                req = req.with_cache_key(z.sample(&mut self.key_rng));
            }
        }
        if let Some(mix) = &self.region_mix {
            req = req.with_origin(mix.origin_at(self.t_s, &mut self.region_rng));
        }
        Some(req)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl RequestSource for GenSource {
    fn source_name(&self) -> &str {
        self.name
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table1_constants() {
        let rows = all_traces();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].name, "DEC");
        assert!((ucb().cgi_pct - 11.2).abs() < 1e-9);
        assert!((ksu().mean_interval_s - 18.48).abs() < 1e-9);
        assert_eq!(adl().mean_html_bytes, 2186);
        assert!((adl().arrival_ratio_a() - 0.443 / 0.557).abs() < 1e-3);
    }

    #[test]
    fn generated_trace_matches_spec() {
        let spec = ksu();
        let t = spec.generate(20_000, &DemandModel::simulation(40.0), 7);
        let s = t.summary();
        assert_eq!(s.requests, 20_000);
        assert!(
            (s.cgi_pct - spec.cgi_pct).abs() < 1.5,
            "CGI% {} vs {}",
            s.cgi_pct,
            spec.cgi_pct
        );
        assert!(
            (s.mean_interval_s - spec.mean_interval_s).abs() / spec.mean_interval_s < 0.05,
            "interval {} vs {}",
            s.mean_interval_s,
            spec.mean_interval_s
        );
        // CGI sizes are drawn directly around the target mean.
        assert!(
            ((s.mean_cgi_bytes - spec.mean_cgi_bytes as f64).abs() / spec.mean_cgi_bytes as f64)
                < 0.15,
            "CGI bytes {} vs {}",
            s.mean_cgi_bytes,
            spec.mean_cgi_bytes
        );
        // Static sizes pass through the SPECweb96 snap, which distorts the
        // mean some; stay within 40%.
        assert!(
            ((s.mean_static_bytes - spec.mean_html_bytes as f64).abs()
                / spec.mean_html_bytes as f64)
                < 0.4,
            "HTML bytes {} vs {}",
            s.mean_static_bytes,
            spec.mean_html_bytes
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = ucb();
        let d = DemandModel::simulation(80.0);
        let a = spec.generate(1000, &d, 42);
        let b = spec.generate(1000, &d, 42);
        assert_eq!(a.requests, b.requests);
        let c = spec.generate(1000, &d, 43);
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn demand_means_track_inv_r() {
        let spec = adl();
        let d = DemandModel::simulation(40.0);
        let t = spec.generate(30_000, &d, 11);
        let (mut cgi_sum, mut cgi_n, mut st_sum, mut st_n) = (0.0, 0u64, 0.0, 0u64);
        for r in &t.requests {
            if r.class.is_dynamic() {
                cgi_sum += r.demand.service.as_secs_f64();
                cgi_n += 1;
            } else {
                st_sum += r.demand.service.as_secs_f64();
                st_n += 1;
            }
        }
        let cgi_mean = cgi_sum / cgi_n as f64;
        let st_mean = st_sum / st_n as f64;
        let measured_inv_r = cgi_mean / st_mean;
        assert!(
            (measured_inv_r - 40.0).abs() / 40.0 < 0.1,
            "measured 1/r = {measured_inv_r}"
        );
        assert!((st_mean - 1.0 / 1200.0).abs() / (1.0 / 1200.0) < 0.05);
    }

    #[test]
    fn cgi_weights_assigned_per_kind() {
        let t = adl().generate(5_000, &DemandModel::simulation(20.0), 3);
        for r in &t.requests {
            if r.class.is_dynamic() {
                assert!((r.demand.cpu_fraction - 0.10).abs() < 1e-12);
            } else {
                assert!((r.demand.cpu_fraction - 0.5).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn static_bytes_come_from_fileset() {
        let fs = FileSet::specweb96();
        let t = ucb().generate(2_000, &DemandModel::simulation(20.0), 9);
        for r in &t.requests {
            if !r.class.is_dynamic() {
                assert!(
                    fs.sizes().contains(&r.bytes),
                    "unknown file size {}",
                    r.bytes
                );
            }
        }
    }

    #[test]
    fn query_popularity_assigns_zipf_keys() {
        let d = DemandModel::simulation(40.0).with_query_popularity(100, 0.9);
        let t = adl().generate(10_000, &d, 4);
        let mut counts = std::collections::HashMap::new();
        for r in &t.requests {
            match (r.class.is_dynamic(), r.cache_key) {
                (true, Some(k)) => {
                    assert!(k < 100);
                    *counts.entry(k).or_insert(0u32) += 1;
                }
                (true, None) => panic!("dynamic request without key"),
                (false, k) => assert!(k.is_none(), "static request with key {k:?}"),
            }
        }
        // Zipf: rank 0 much more popular than rank 50.
        let top = counts.get(&0).copied().unwrap_or(0);
        let mid = counts.get(&50).copied().unwrap_or(0);
        assert!(top > mid * 5, "Zipf skew missing: top {top}, mid {mid}");
    }

    #[test]
    fn no_popularity_means_no_keys() {
        let t = ucb().generate(500, &DemandModel::simulation(40.0), 4);
        assert!(t.requests.iter().all(|r| r.cache_key.is_none()));
    }

    #[test]
    fn bursty_arrivals_conserve_mean_rate() {
        let spec = ucb();
        let d = DemandModel::simulation(40.0).with_bursty_arrivals(3.0, 0.2, 30.0);
        let t = spec.generate(60_000, &d, 9);
        let measured = t.mean_rate();
        let base = 1.0 / spec.mean_interval_s;
        assert!(
            ((measured - base) / base).abs() < 0.1,
            "bursty mean rate {measured} vs base {base}"
        );
    }

    #[test]
    fn bursty_arrivals_are_burstier_than_poisson() {
        // Index of dispersion of per-bucket counts: ~1 for Poisson,
        // substantially larger for the ON/OFF process.
        let spec = ucb();
        let dispersion = |trace: &crate::trace::Trace| {
            let bucket_s = 5.0;
            let mut counts = std::collections::HashMap::new();
            for r in &trace.requests {
                *counts
                    .entry((r.arrival.as_secs_f64() / bucket_s) as u64)
                    .or_insert(0u32) += 1;
            }
            let n = counts.len() as f64;
            let mean = counts.values().map(|&c| c as f64).sum::<f64>() / n;
            let var = counts
                .values()
                .map(|&c| (c as f64 - mean) * (c as f64 - mean))
                .sum::<f64>()
                / n;
            var / mean
        };
        let poisson = spec.generate(40_000, &DemandModel::simulation(40.0), 10);
        let bursty = spec.generate(
            40_000,
            &DemandModel::simulation(40.0).with_bursty_arrivals(4.0, 0.2, 60.0),
            10,
        );
        let dp = dispersion(&poisson);
        let db = dispersion(&bursty);
        assert!(dp < 2.0, "Poisson dispersion {dp}");
        assert!(db > dp * 2.0, "bursty dispersion {db} vs poisson {dp}");
    }

    #[test]
    #[should_panic(expected = "negative OFF rate")]
    fn bursty_validation_rejects_impossible_mult() {
        let _ = DemandModel::simulation(40.0).with_bursty_arrivals(10.0, 0.5, 30.0);
    }

    #[test]
    fn region_mix_draws_origins_without_perturbing_the_trace() {
        let spec = ucb();
        let plain = spec.generate(5_000, &DemandModel::simulation(40.0), 21);
        assert!(plain.requests.iter().all(|r| r.origin == 0));

        let mixed = spec.generate(
            5_000,
            &DemandModel::simulation(40.0).with_region_mix(RegionMix::uniform(3)),
            21,
        );
        // Everything except the origin tag is byte-identical: the mix
        // draws only from its own dedicated stream.
        for (a, b) in plain.requests.iter().zip(&mixed.requests) {
            assert_eq!(a, &Request { origin: 0, ..*b });
        }
        let mut seen = [0u32; 3];
        for r in &mixed.requests {
            seen[r.origin] += 1;
        }
        assert!(
            seen.iter().all(|&c| c > 1_000),
            "uniform mix skewed: {seen:?}"
        );
    }

    #[test]
    fn rotating_mix_walks_the_hot_region() {
        let mix = RegionMix::rotating(3, 50.0, 10.0);
        let mut rng = SimRng::seed_from_u64(5);
        for phase in 0..3 {
            let t_s = phase as f64 * 10.0 + 5.0;
            let mut counts = [0u32; 3];
            for _ in 0..500 {
                counts[mix.origin_at(t_s, &mut rng)] += 1;
            }
            let hot = counts[phase];
            assert!(
                counts
                    .iter()
                    .enumerate()
                    .all(|(r, &c)| r == phase || hot > c * 5),
                "phase {phase}: {counts:?}"
            );
        }
        // The schedule wraps around.
        let mut rng2 = SimRng::seed_from_u64(5);
        let mut counts = [0u32; 3];
        for _ in 0..500 {
            counts[mix.origin_at(35.0, &mut rng2)] += 1;
        }
        assert!(counts[0] > counts[1] * 5 && counts[0] > counts[2] * 5);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn region_mix_rejects_ragged_phases() {
        let _ = RegionMix::new(vec![vec![1.0, 1.0], vec![1.0]], 10.0);
    }

    #[test]
    fn sun_cluster_demand_model() {
        let d = DemandModel::sun_cluster(40.0);
        // Microsecond clock resolution bounds the error.
        assert!((d.static_mean.as_secs_f64() - 1.0 / 110.0).abs() < 1e-6);
        // The rounding of static_mean is amplified by inv_r.
        assert!((d.cgi_mean().as_secs_f64() - 40.0 / 110.0).abs() < 40e-6);
    }
}
