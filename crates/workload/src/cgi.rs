//! CGI load models: how dynamic requests consume CPU, disk and memory.
//!
//! The paper replaces unreplayable CGI bodies with synthetic loads (§5.1):
//!
//! * **UCB** — a WebSTONE-derived script that busy-spins the CPU for a
//!   controlled time: *CPU-intensive* (`w ≈ 0.95`);
//! * **KSU** — WebGlimpse searches over a ~10 000-item index: *mixed*,
//!   "on average 90 % of service time is spent searching index
//!   information in memory" (`w = 0.9`);
//! * **ADL** — Alexandria Digital Library catalog queries: *I/O-intensive*,
//!   "about 90 % of the servicing time consumed by disk accesses"
//!   (`w = 0.1`).
//!
//! A [`CgiModel`] carries the CPU weight `w`, a memory footprint, and a
//! service-time distribution shape. The absolute service scale comes from
//! the experiment's demand ratio `r` (CGI demand = static demand / r).

use msweb_simcore::{Dist, Distribution, SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// Kind of synthetic CGI load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CgiKind {
    /// WebSTONE-style busy-spin (UCB replay).
    CpuIntensive,
    /// WebGlimpse-style index search, 90 % CPU (KSU replay).
    MixedIndexSearch,
    /// ADL-style catalog lookup, 90 % disk (ADL replay).
    IoIntensive,
}

impl CgiKind {
    /// The average CPU weight `w` used by the RSRC predictor for this
    /// class when sampling is enabled (paper Eq. 5; obtained "by off-line
    /// sampling ... on an unloaded system").
    pub fn cpu_weight(self) -> f64 {
        match self {
            CgiKind::CpuIntensive => 0.95,
            CgiKind::MixedIndexSearch => 0.90,
            CgiKind::IoIntensive => 0.10,
        }
    }

    /// Typical working-set footprint in bytes. Index searches hold large
    /// in-memory indices; catalog queries stream from disk with a modest
    /// buffer; spin scripts are small.
    pub fn memory_bytes(self) -> u64 {
        match self {
            CgiKind::CpuIntensive => 512 * 1024,
            CgiKind::MixedIndexSearch => 2 * 1024 * 1024,
            CgiKind::IoIntensive => 1024 * 1024,
        }
    }
}

/// The full demand model for a trace's dynamic requests.
#[derive(Debug, Clone)]
pub struct CgiModel {
    /// Which synthetic load stands in for the trace's real CGI.
    pub kind: CgiKind,
    /// Mean service demand (set from the experiment's `r`).
    pub mean_service: SimDuration,
    /// Service-time distribution around that mean.
    dist: Dist,
    /// Memory footprint distribution mean (bytes).
    pub mean_memory: u64,
}

impl CgiModel {
    /// Floored-exponential service times with the given mean — the §3
    /// analysis regime, with 20 % of the mean as the fixed per-request
    /// cost (fork/exec/setup) that bounds demands away from zero.
    pub fn exponential(kind: CgiKind, mean_service: SimDuration) -> Self {
        CgiModel {
            kind,
            mean_service,
            dist: Dist::shifted_exp(mean_service.as_secs_f64(), 0.2),
            mean_memory: kind.memory_bytes(),
        }
    }

    /// Deterministic service times (every CGI takes exactly the mean) —
    /// the WebSTONE "controlled running time" mode.
    pub fn constant(kind: CgiKind, mean_service: SimDuration) -> Self {
        CgiModel {
            kind,
            mean_service,
            dist: Dist::constant(mean_service.as_secs_f64()),
            mean_memory: kind.memory_bytes(),
        }
    }

    /// Draw one request's service demand.
    pub fn sample_service(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(self.dist.sample(rng).max(1e-6))
    }

    /// Draw one request's memory footprint (±50 % uniform around the mean,
    /// floor one page's worth).
    pub fn sample_memory(&self, rng: &mut SimRng) -> u64 {
        let lo = self.mean_memory / 2;
        let hi = self.mean_memory + self.mean_memory / 2;
        lo + rng.gen_range(hi - lo + 1)
    }

    /// The CPU weight for demand splitting.
    pub fn cpu_weight(&self) -> f64 {
        self.kind.cpu_weight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_match_paper() {
        assert!((CgiKind::CpuIntensive.cpu_weight() - 0.95).abs() < 1e-12);
        assert!((CgiKind::MixedIndexSearch.cpu_weight() - 0.90).abs() < 1e-12);
        assert!((CgiKind::IoIntensive.cpu_weight() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn exponential_mean_calibrated() {
        let m = CgiModel::exponential(CgiKind::IoIntensive, SimDuration::from_millis(40));
        let mut rng = SimRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| m.sample_service(&mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.040).abs() / 0.040 < 0.02, "mean {mean}");
    }

    #[test]
    fn constant_model_is_constant() {
        let m = CgiModel::constant(CgiKind::CpuIntensive, SimDuration::from_millis(33));
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(m.sample_service(&mut rng), SimDuration::from_millis(33));
        }
    }

    #[test]
    fn memory_samples_bounded() {
        let m = CgiModel::exponential(CgiKind::MixedIndexSearch, SimDuration::from_millis(10));
        let mut rng = SimRng::seed_from_u64(3);
        let mean = m.mean_memory;
        for _ in 0..10_000 {
            let b = m.sample_memory(&mut rng);
            assert!(b >= mean / 2 && b <= mean + mean / 2);
        }
    }

    #[test]
    fn service_samples_never_zero() {
        let m = CgiModel::exponential(CgiKind::CpuIntensive, SimDuration::from_micros(10));
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(m.sample_service(&mut rng).as_micros() >= 1);
        }
    }
}
