//! Streaming request sources.
//!
//! A [`RequestSource`] is a seeded, deterministic iterator of
//! time-ordered [`Request`]s. It replaces the materialize-everything
//! `Vec<Request>` contract for consumers that only need one pass: the
//! simulator, the live emulation and the benchmark sweeps all accept
//! sources, so peak memory is bounded by the number of *in-flight*
//! requests rather than the run length. A 10-million-request run streams
//! through a few kilobytes of generator state instead of ~800 MB of
//! materialized trace.
//!
//! ## Contract
//!
//! * **Ordering** — `next()` yields requests in non-decreasing arrival
//!   order. Consumers may rely on this (the simulator admits each request
//!   the moment it is drawn).
//! * **Determinism** — a source built from the same constructor arguments
//!   (spec, demand model, seed) yields the identical request sequence on
//!   every run and platform. [`TraceSpec::generate`] is defined as
//!   `stream(...).collect()`, so the streamed and materialized paths are
//!   request-for-request equal by construction.
//! * **`len_hint`** — the number of requests still to be yielded, when
//!   known (`None` for open-ended sources). When `Some(n)` it is exact,
//!   not an estimate; consumers may use it to pre-size buffers but must
//!   still terminate on `next() == None`.
//!
//! [`TraceSpec::generate`]: crate::generators::TraceSpec::generate
//! [`TraceSpec`]: crate::generators::TraceSpec

use msweb_simcore::{SimDuration, SimTime};

use crate::request::Request;
use crate::trace::Trace;

/// A seeded, deterministic stream of time-ordered requests.
///
/// See the [module docs](self) for the ordering/seeding/`len_hint`
/// contract.
pub trait RequestSource: Iterator<Item = Request> {
    /// Human-readable provenance ("UCB", "KSU", an imported log name...).
    fn source_name(&self) -> &str;

    /// Exact number of requests still to be yielded, when known.
    fn len_hint(&self) -> Option<usize>;
}

/// The replay-rate transform from §5.1, factored out so the materialized
/// ([`Trace::scaled_to_rate`]) and streamed ([`ScaledSource`]) paths apply
/// the byte-identical arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateScaling {
    /// Leave arrivals untouched.
    Identity,
    /// Multiply each arrival's offset from `t0` by `factor`
    /// (`factor = current_rate / target_rate`).
    Factor {
        /// Interval scale factor.
        factor: f64,
        /// First arrival of the unscaled stream.
        t0: SimTime,
    },
    /// Zero-span input: space arrivals uniformly at the target rate.
    UniformGap {
        /// Gap between consecutive arrivals.
        gap: SimDuration,
    },
}

impl RateScaling {
    /// The transform that takes a stream whose measured mean rate is
    /// `current_rate` (first arrival `t0`) to mean rate `lambda`.
    pub fn to_rate(current_rate: f64, t0: SimTime, lambda: f64) -> RateScaling {
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "bad target rate {lambda}"
        );
        if current_rate <= 0.0 {
            RateScaling::UniformGap {
                gap: SimDuration::from_secs_f64(1.0 / lambda),
            }
        } else {
            RateScaling::Factor {
                factor: current_rate / lambda,
                t0,
            }
        }
    }

    /// Measure a stream's mean rate by draining it (O(1) memory), then
    /// build the transform to `lambda`. The caller re-constructs the
    /// source for the actual replay pass — sources are cheap to build
    /// and deterministic, so two passes cost only CPU.
    pub fn measure<S: RequestSource>(source: S, lambda: f64) -> RateScaling {
        let mut first: Option<SimTime> = None;
        let mut last = SimTime::ZERO;
        let mut n = 0usize;
        for r in source {
            if first.is_none() {
                first = Some(r.arrival);
            }
            last = r.arrival;
            n += 1;
        }
        let t0 = first.unwrap_or(SimTime::ZERO);
        // Same arithmetic as Trace::mean_rate: n arrivals span n-1
        // intervals.
        let span = (last - t0).as_secs_f64();
        let current = if span <= 0.0 {
            0.0
        } else {
            (n.saturating_sub(1)) as f64 / span
        };
        RateScaling::to_rate(current, t0, lambda)
    }

    /// Apply the transform to the `index`-th request of the stream.
    pub fn apply(&self, index: u64, r: Request) -> Request {
        match *self {
            RateScaling::Identity => r,
            RateScaling::Factor { factor, t0 } => Request {
                arrival: SimTime::ZERO + (r.arrival - t0).mul_f64(factor),
                ..r
            },
            RateScaling::UniformGap { gap } => Request {
                arrival: SimTime::ZERO + gap.mul(index),
                ..r
            },
        }
    }
}

/// A source with the §5.1 replay-rate transform applied on the fly.
#[derive(Debug, Clone)]
pub struct ScaledSource<S> {
    inner: S,
    scaling: RateScaling,
    index: u64,
}

impl<S: RequestSource> ScaledSource<S> {
    /// Wrap `inner`, applying `scaling` to each yielded request.
    pub fn new(inner: S, scaling: RateScaling) -> Self {
        ScaledSource {
            inner,
            scaling,
            index: 0,
        }
    }
}

impl<S: RequestSource> Iterator for ScaledSource<S> {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        let r = self.inner.next()?;
        let i = self.index;
        self.index += 1;
        Some(self.scaling.apply(i, r))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<S: RequestSource> RequestSource for ScaledSource<S> {
    fn source_name(&self) -> &str {
        self.inner.source_name()
    }

    fn len_hint(&self) -> Option<usize> {
        self.inner.len_hint()
    }
}

/// A source that borrows a materialized [`Trace`] — the zero-copy
/// backward-compatibility adapter.
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    name: &'a str,
    iter: std::iter::Copied<std::slice::Iter<'a, Request>>,
}

impl<'a> SliceSource<'a> {
    /// Borrow `trace`'s requests as a source.
    pub fn new(trace: &'a Trace) -> Self {
        SliceSource {
            name: &trace.name,
            iter: trace.requests.iter().copied(),
        }
    }
}

impl Iterator for SliceSource<'_> {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        self.iter.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

impl RequestSource for SliceSource<'_> {
    fn source_name(&self) -> &str {
        self.name
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.iter.len())
    }
}

/// A source that owns a materialized [`Trace`] (no clone of the request
/// vector — the trace is consumed).
#[derive(Debug)]
pub struct TraceSource {
    name: String,
    iter: std::vec::IntoIter<Request>,
}

impl TraceSource {
    /// Consume `trace` into a source.
    pub fn new(trace: Trace) -> Self {
        TraceSource {
            name: trace.name,
            iter: trace.requests.into_iter(),
        }
    }
}

impl Iterator for TraceSource {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        self.iter.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

impl RequestSource for TraceSource {
    fn source_name(&self) -> &str {
        &self.name
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.iter.len())
    }
}

impl Trace {
    /// Borrow this trace as a [`RequestSource`] (no copy).
    pub fn source(&self) -> SliceSource<'_> {
        SliceSource::new(self)
    }

    /// Consume this trace into an owning [`RequestSource`] (no copy of
    /// the request vector).
    pub fn into_source(self) -> TraceSource {
        TraceSource::new(self)
    }

    /// Stream this trace rescaled to mean rate `lambda` without cloning
    /// the request vector — the streaming twin of
    /// [`Trace::scaled_to_rate`]; the two produce identical requests.
    pub fn scaled_source(&self, lambda: f64) -> ScaledSource<SliceSource<'_>> {
        let t0 = self
            .requests
            .first()
            .map(|r| r.arrival)
            .unwrap_or(SimTime::ZERO);
        let scaling = RateScaling::to_rate(self.mean_rate(), t0, lambda);
        ScaledSource::new(self.source(), scaling)
    }
}

impl IntoIterator for Trace {
    type Item = Request;
    type IntoIter = TraceSource;

    fn into_iter(self) -> TraceSource {
        self.into_source()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Request;
    type IntoIter = std::slice::Iter<'a, Request>;

    fn into_iter(self) -> Self::IntoIter {
        self.requests.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{ucb, DemandModel};
    use crate::request::{RequestClass, ServiceDemand};

    fn small_trace() -> Trace {
        let mk = |id: u64, ms: u64| {
            Request::new(
                id,
                SimTime::from_millis(ms),
                RequestClass::Static,
                100,
                ServiceDemand::ZERO,
            )
        };
        Trace::new("T", vec![mk(0, 0), mk(1, 100), mk(2, 250)])
    }

    #[test]
    fn slice_source_yields_all_requests() {
        let t = small_trace();
        let s = t.source();
        assert_eq!(s.source_name(), "T");
        assert_eq!(s.len_hint(), Some(3));
        let collected: Vec<Request> = s.collect();
        assert_eq!(collected, t.requests);
    }

    #[test]
    fn trace_source_consumes_without_clone() {
        let t = small_trace();
        let expect = t.requests.clone();
        let mut s = t.into_source();
        assert_eq!(s.len_hint(), Some(3));
        s.next();
        assert_eq!(s.len_hint(), Some(2), "len_hint tracks remaining");
        let rest: Vec<Request> = s.collect();
        assert_eq!(rest, expect[1..]);
    }

    #[test]
    fn into_iterator_sugar() {
        let t = small_trace();
        let ids: Vec<u64> = (&t).into_iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let ids: Vec<u64> = t.into_iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn scaled_source_matches_scaled_to_rate() {
        let t = ucb().generate(500, &DemandModel::simulation(40.0), 9);
        for lambda in [50.0, 300.0, 1200.0] {
            let materialized = t.scaled_to_rate(lambda);
            let streamed: Vec<Request> = t.scaled_source(lambda).collect();
            assert_eq!(materialized.requests, streamed, "lambda {lambda}");
        }
    }

    #[test]
    fn scaled_source_zero_span_matches() {
        let mk = |id: u64| {
            Request::new(
                id,
                SimTime::ZERO,
                RequestClass::Static,
                1,
                ServiceDemand::ZERO,
            )
        };
        let t = Trace::new("Z", vec![mk(0), mk(1), mk(2)]);
        let materialized = t.scaled_to_rate(10.0);
        let streamed: Vec<Request> = t.scaled_source(10.0).collect();
        assert_eq!(materialized.requests, streamed);
    }

    #[test]
    fn measure_agrees_with_trace_mean_rate() {
        let t = ucb().generate(300, &DemandModel::simulation(40.0), 4);
        let measured = RateScaling::measure(t.source(), 500.0);
        let direct = RateScaling::to_rate(t.mean_rate(), t.requests[0].arrival, 500.0);
        assert_eq!(measured, direct);
    }
}
