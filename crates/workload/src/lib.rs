//! # msweb-workload
//!
//! Workload modelling for the SPAA'99 master/slave Web-cluster
//! reproduction: the request/trace data model, synthetic trace generators
//! calibrated to the paper's Table 1 (DEC / UCB / KSU / ADL logs), the
//! SPECweb96-style 40-file static set, the synthetic CGI load models
//! (WebSTONE CPU-spin, WebGlimpse index search, ADL catalog lookup), and
//! the replay-rate scaling used to stress clusters of different sizes.
//!
//! The original logs are proprietary; see DESIGN.md §2 for why synthetic
//! regeneration preserves the behaviours the experiments measure.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cgi;
pub mod clf;
pub mod fileset;
pub mod generators;
pub mod request;
pub mod source;
pub mod trace;

pub use cgi::{CgiKind, CgiModel};
pub use clf::{parse_clf, trace_from_clf, trace_to_clf, ClfError, ClfRecord};
pub use fileset::FileSet;
pub use generators::{
    adl, all_traces, dec, ksu, replayed_traces, ucb, ArrivalModel, DemandModel, DemandVisibility,
    GenSource, RegionMix, TraceSpec,
};
pub use request::{Request, RequestClass, ServiceDemand};
pub use source::{RateScaling, RequestSource, ScaledSource, SliceSource, TraceSource};
pub use trace::{Trace, TraceSummary};
