//! The request model shared by the simulator and the live emulation.
//!
//! A [`Request`] is one line of a (synthetic) access log: an arrival time,
//! a class (static file fetch vs dynamic/CGI), a transfer size, and the
//! resource demand the replay engine assigned to it. Demands are kept in
//! workload-level terms (service seconds, CPU fraction, memory bytes) so
//! this crate stays independent of any particular execution substrate.

use msweb_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Request class: the paper's two customer classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestClass {
    /// Plain file fetch ("HTML" in the paper's Table 1).
    Static,
    /// Dynamic content generation ("CGI").
    Dynamic,
}

impl RequestClass {
    /// True for dynamic/CGI requests.
    pub fn is_dynamic(self) -> bool {
        matches!(self, RequestClass::Dynamic)
    }
}

/// Contention-free resource demand of one request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceDemand {
    /// Total service time on an unloaded baseline node.
    pub service: SimDuration,
    /// Fraction of the service that is CPU work (the paper's `w`).
    pub cpu_fraction: f64,
    /// Working-set size in bytes.
    pub memory_bytes: u64,
}

impl ServiceDemand {
    /// A zero demand (placeholder before the demand model runs).
    pub const ZERO: ServiceDemand = ServiceDemand {
        service: SimDuration::ZERO,
        cpu_fraction: 0.5,
        memory_bytes: 0,
    };
}

/// One replayable request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Position in the trace (also the completion tag downstream).
    pub id: u64,
    /// Arrival time at the cluster front end.
    pub arrival: SimTime,
    /// Static or dynamic.
    pub class: RequestClass,
    /// Response size in bytes (file size for static, generated content
    /// size for dynamic) — the Table 1 "size" columns.
    pub bytes: u64,
    /// Assigned resource demand.
    pub demand: ServiceDemand,
    /// Content identity of a dynamic request (same key = same query =
    /// same generated result), for dynamic-content caching. `None` for
    /// static requests and for workloads generated without query
    /// popularity modelling.
    pub cache_key: Option<u64>,
    /// Client origin region index (multi-region front tier). Workloads
    /// generated without a region mix leave it 0; schedulers without a
    /// region stage ignore it.
    pub origin: usize,
}

impl Request {
    /// Shorthand used in tests and examples.
    pub fn new(
        id: u64,
        arrival: SimTime,
        class: RequestClass,
        bytes: u64,
        demand: ServiceDemand,
    ) -> Self {
        Request {
            id,
            arrival,
            class,
            bytes,
            demand,
            cache_key: None,
            origin: 0,
        }
    }

    /// Attach a content key (builder style).
    pub fn with_cache_key(mut self, key: u64) -> Self {
        self.cache_key = Some(key);
        self
    }

    /// Tag the request with a client origin region (builder style).
    pub fn with_origin(mut self, origin: usize) -> Self {
        self.origin = origin;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_predicates() {
        assert!(RequestClass::Dynamic.is_dynamic());
        assert!(!RequestClass::Static.is_dynamic());
    }

    #[test]
    fn request_roundtrips_serde() {
        let r = Request::new(
            3,
            SimTime::from_millis(5),
            RequestClass::Dynamic,
            1024,
            ServiceDemand {
                service: SimDuration::from_millis(40),
                cpu_fraction: 0.9,
                memory_bytes: 1 << 20,
            },
        );
        // serde support is exercised through the experiment reports; here
        // just check Debug/PartialEq plumbing.
        let copy = r;
        assert_eq!(r, copy);
    }
}
