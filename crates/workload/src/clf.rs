//! Common Log Format import/export.
//!
//! The paper's experiments replay real access logs (UCB, KSU, ADL). This
//! module lets downstream users do the same with their own logs: parse
//! NCSA Common Log Format (the format every 1990s server — and still
//! nginx/Apache by default — emits) into a [`Trace`], classify each line
//! as static or dynamic, attach demands from a [`DemandModel`], and write
//! traces back out for archiving.
//!
//! ```text
//! 127.0.0.1 - frank [10/Oct/1999:13:55:36 -0700] "GET /apache_pb.gif HTTP/1.0" 200 2326
//! ```
//!
//! Classification follows the paper's convention: a request is *dynamic*
//! when its path hits a CGI location (`/cgi-bin/`, or a `?` query, or an
//! extension like `.cgi`/`.pl`) and *static* otherwise.

use msweb_simcore::{Distribution, Exponential, ShiftedExponential, SimDuration, SimRng, SimTime};

use crate::cgi::{CgiKind, CgiModel};
use crate::generators::DemandModel;
use crate::request::{Request, RequestClass, ServiceDemand};
use crate::trace::Trace;

/// A parse failure for one log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClfError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for ClfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CLF line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ClfError {}

/// One parsed log line, before demands are attached.
#[derive(Debug, Clone, PartialEq)]
pub struct ClfRecord {
    /// Seconds since the first request in the log.
    pub offset_s: f64,
    /// Request path (first token after the method).
    pub path: String,
    /// HTTP status code.
    pub status: u16,
    /// Response bytes (`-` parses as 0).
    pub bytes: u64,
}

impl ClfRecord {
    /// The paper's static/dynamic classification for this record.
    pub fn class(&self) -> RequestClass {
        let p = &self.path;
        let is_cgi = p.contains("/cgi-bin/")
            || p.contains('?')
            || [".cgi", ".pl", ".php", ".asp"]
                .iter()
                .any(|ext| p.split('?').next().unwrap_or(p).ends_with(ext));
        if is_cgi {
            RequestClass::Dynamic
        } else {
            RequestClass::Static
        }
    }
}

/// Month-name lookup for CLF timestamps.
fn month_number(m: &str) -> Option<u32> {
    match m {
        "Jan" => Some(1),
        "Feb" => Some(2),
        "Mar" => Some(3),
        "Apr" => Some(4),
        "May" => Some(5),
        "Jun" => Some(6),
        "Jul" => Some(7),
        "Aug" => Some(8),
        "Sep" => Some(9),
        "Oct" => Some(10),
        "Nov" => Some(11),
        "Dec" => Some(12),
        _ => None,
    }
}

/// Days from a civil date to an arbitrary fixed epoch (proleptic
/// Gregorian; Howard Hinnant's algorithm). Only *differences* matter
/// here, so the epoch choice is irrelevant.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m as i64 + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe
}

/// Parse a CLF timestamp `[10/Oct/1999:13:55:36 -0700]` into absolute
/// seconds (UTC).
fn parse_timestamp(s: &str) -> Option<f64> {
    let s = s.strip_prefix('[')?;
    let s = s.strip_suffix(']')?;
    let (datetime, tz) = s.split_once(' ')?;
    let mut parts = datetime.splitn(4, [':', '/']);
    // day/Mon/year:HH:MM:SS — splitn(4) gives day, Mon, year, HH:MM:SS.
    let day: u32 = parts.next()?.parse().ok()?;
    let mon = month_number(parts.next()?)?;
    let year: i64 = parts.next()?.parse().ok()?;
    let hms = parts.next()?;
    let mut hms_it = hms.split(':');
    let h: i64 = hms_it.next()?.parse().ok()?;
    let mi: i64 = hms_it.next()?.parse().ok()?;
    let sec: i64 = hms_it.next()?.parse().ok()?;

    let tz_sign = if tz.starts_with('-') { -1i64 } else { 1 };
    let tz_h: i64 = tz.get(1..3)?.parse().ok()?;
    let tz_m: i64 = tz.get(3..5)?.parse().ok()?;
    let tz_offset = tz_sign * (tz_h * 3600 + tz_m * 60);

    let days = days_from_civil(year, mon, day);
    Some((days * 86_400 + h * 3600 + mi * 60 + sec - tz_offset) as f64)
}

/// Parse CLF text into records, skipping blank lines. Errors carry line
/// numbers; the first malformed line aborts the parse (garbage logs
/// should be cleaned, not silently skipped).
pub fn parse_clf(text: &str) -> Result<Vec<ClfRecord>, ClfError> {
    let mut out = Vec::new();
    let mut t0: Option<f64> = None;
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let err = |reason: &str| ClfError {
            line: line_no,
            reason: reason.to_string(),
        };
        // host ident user [timestamp] "request" status bytes
        let ts_start = line.find('[').ok_or_else(|| err("missing timestamp"))?;
        let ts_end = line
            .find(']')
            .ok_or_else(|| err("missing timestamp close"))?;
        let abs = parse_timestamp(&line[ts_start..=ts_end]).ok_or_else(|| err("bad timestamp"))?;
        let rest = &line[ts_end + 1..];
        let q1 = rest.find('"').ok_or_else(|| err("missing request"))?;
        let q2 = rest[q1 + 1..]
            .find('"')
            .map(|o| q1 + 1 + o)
            .ok_or_else(|| err("unterminated request"))?;
        let request = &rest[q1 + 1..q2];
        let mut req_parts = request.split_whitespace();
        let _method = req_parts.next().ok_or_else(|| err("empty request"))?;
        let path = req_parts.next().ok_or_else(|| err("request has no path"))?;
        let tail = rest[q2 + 1..].trim();
        let mut tail_parts = tail.split_whitespace();
        let status: u16 = tail_parts
            .next()
            .ok_or_else(|| err("missing status"))?
            .parse()
            .map_err(|_| err("bad status"))?;
        let bytes_tok = tail_parts.next().ok_or_else(|| err("missing bytes"))?;
        let bytes: u64 = if bytes_tok == "-" {
            0
        } else {
            bytes_tok.parse().map_err(|_| err("bad byte count"))?
        };

        let t0 = *t0.get_or_insert(abs);
        out.push(ClfRecord {
            offset_s: (abs - t0).max(0.0),
            path: path.to_string(),
            status,
            bytes,
        });
    }
    Ok(out)
}

/// Turn parsed records into a replayable [`Trace`], attaching demands
/// from `demand` (the paper's §5.1 replacement methodology: real bodies
/// are unavailable, so demands come from the model). `cgi_kind` selects
/// the synthetic CGI load used for dynamic requests.
///
/// CLF timestamps have one-second resolution, so every request in a busy
/// second would otherwise arrive simultaneously and the replay would see
/// artificial burst storms. Imported arrivals therefore get deterministic
/// uniform jitter within their second (the standard treatment), and the
/// trace is re-sorted.
pub fn records_to_trace(
    name: &str,
    records: &[ClfRecord],
    demand: &DemandModel,
    cgi_kind: CgiKind,
    seed: u64,
) -> Trace {
    let mut rng = SimRng::seed_from_u64(seed ^ 0xc1f);
    let static_service = ShiftedExponential::from_mean(demand.static_mean.as_secs_f64(), 0.3);
    let cgi_model = if demand.cgi_exponential {
        CgiModel::exponential(cgi_kind, demand.cgi_mean())
    } else {
        CgiModel::constant(cgi_kind, demand.cgi_mean())
    };
    let mut requests: Vec<Request> = records
        .iter()
        .map(|r| {
            let class = r.class();
            let dem = match class {
                RequestClass::Static => ServiceDemand {
                    service: SimDuration::from_secs_f64(static_service.sample(&mut rng).max(1e-6)),
                    cpu_fraction: demand.static_w,
                    memory_bytes: r.bytes.max(512),
                },
                RequestClass::Dynamic => ServiceDemand {
                    service: cgi_model.sample_service(&mut rng),
                    cpu_fraction: cgi_model.cpu_weight(),
                    memory_bytes: cgi_model.sample_memory(&mut rng),
                },
            };
            // Sub-second jitter against CLF's 1 s timestamp resolution.
            let jitter = rng.next_f64();
            Request::new(
                0, // ids assigned after sorting
                SimTime::from_secs_f64(r.offset_s + jitter),
                class,
                r.bytes.max(1),
                dem,
            )
        })
        .collect();
    requests.sort_by_key(|r| r.arrival);
    for (i, r) in requests.iter_mut().enumerate() {
        r.id = i as u64;
    }
    Trace::new(name, requests)
}

/// Parse CLF text straight into a trace (see [`parse_clf`] and
/// [`records_to_trace`]).
pub fn trace_from_clf(
    name: &str,
    text: &str,
    demand: &DemandModel,
    cgi_kind: CgiKind,
    seed: u64,
) -> Result<Trace, ClfError> {
    let records = parse_clf(text)?;
    Ok(records_to_trace(name, &records, demand, cgi_kind, seed))
}

/// Render a trace as CLF text (for archiving or feeding other tools).
/// Timestamps are emitted as offsets from a fixed epoch date; demands are
/// not representable in CLF and are regenerated on re-import.
pub fn trace_to_clf(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.len() * 80);
    for r in &trace.requests {
        let secs = r.arrival.as_secs_f64() as u64;
        let (h, m, s) = (secs / 3600 % 24, secs / 60 % 60, secs % 60);
        let day = 1 + secs / 86_400;
        let path = match r.class {
            RequestClass::Static => format!("/files/f{}.html", r.id % 40),
            RequestClass::Dynamic => format!("/cgi-bin/query?id={}", r.id),
        };
        out.push_str(&format!(
            "10.0.0.{} - - [{:02}/Jan/1999:{:02}:{:02}:{:02} +0000] \"GET {} HTTP/1.0\" 200 {}\n",
            r.id % 250 + 1,
            day,
            h,
            m,
            s,
            path,
            r.bytes
        ));
    }
    out
}

/// Infer a dominant CGI kind for a log by path inspection: search-like
/// query strings suggest index search; everything else defaults to
/// CPU-intensive scripts. (Heuristic; callers with knowledge of their
/// site should pass the kind explicitly.)
pub fn guess_cgi_kind(records: &[ClfRecord]) -> CgiKind {
    let mut searchy = 0usize;
    let mut total = 0usize;
    for r in records {
        if r.class() == RequestClass::Dynamic {
            total += 1;
            let p = r.path.to_ascii_lowercase();
            if p.contains("search") || p.contains("query") || p.contains("find") {
                searchy += 1;
            }
        }
    }
    if total > 0 && searchy * 2 >= total {
        CgiKind::MixedIndexSearch
    } else {
        CgiKind::CpuIntensive
    }
}

/// The mean inter-arrival interval of parsed records, seconds.
pub fn mean_interval_s(records: &[ClfRecord]) -> f64 {
    if records.len() < 2 {
        return 0.0;
    }
    let span = records.last().expect("non-empty").offset_s - records[0].offset_s;
    span / (records.len() - 1) as f64
}

/// Exponential helper re-exported for custom importers that need it.
pub fn exp_interval(mean_s: f64) -> Exponential {
    Exponential::from_mean(mean_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"127.0.0.1 - frank [10/Oct/1999:13:55:36 -0700] "GET /apache_pb.gif HTTP/1.0" 200 2326
127.0.0.1 - - [10/Oct/1999:13:55:37 -0700] "GET /cgi-bin/search?q=web HTTP/1.0" 200 5120
10.0.0.2 - - [10/Oct/1999:13:55:39 -0700] "POST /index.html HTTP/1.0" 304 -
"#;

    #[test]
    fn parses_sample_lines() {
        let recs = parse_clf(SAMPLE).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].offset_s, 0.0);
        assert_eq!(recs[1].offset_s, 1.0);
        assert_eq!(recs[2].offset_s, 3.0);
        assert_eq!(recs[0].bytes, 2326);
        assert_eq!(recs[2].bytes, 0, "dash bytes parse as zero");
        assert_eq!(recs[0].status, 200);
        assert_eq!(recs[2].status, 304);
        assert_eq!(recs[0].path, "/apache_pb.gif");
    }

    #[test]
    fn classification_matches_paper_convention() {
        let recs = parse_clf(SAMPLE).unwrap();
        assert_eq!(recs[0].class(), RequestClass::Static);
        assert_eq!(recs[1].class(), RequestClass::Dynamic);
        assert_eq!(recs[2].class(), RequestClass::Static);
    }

    #[test]
    fn timezone_is_respected() {
        let a = parse_timestamp("[10/Oct/1999:13:55:36 -0700]").unwrap();
        let b = parse_timestamp("[10/Oct/1999:20:55:36 +0000]").unwrap();
        assert_eq!(a, b, "same instant in different zones");
    }

    #[test]
    fn midnight_and_month_boundaries() {
        let a = parse_timestamp("[31/Jan/1999:23:59:59 +0000]").unwrap();
        let b = parse_timestamp("[01/Feb/1999:00:00:00 +0000]").unwrap();
        assert_eq!(b - a, 1.0);
    }

    #[test]
    fn bad_lines_report_line_numbers() {
        let err = parse_clf("garbage without brackets\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse_clf(&format!("{SAMPLE}not a log line\n")).unwrap_err();
        assert_eq!(err.line, 4);
    }

    #[test]
    fn clf_to_trace_attaches_demands() {
        let t = trace_from_clf(
            "sample",
            SAMPLE,
            &DemandModel::simulation(40.0),
            CgiKind::MixedIndexSearch,
            7,
        )
        .unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.requests[1].class, RequestClass::Dynamic);
        assert!((t.requests[1].demand.cpu_fraction - 0.9).abs() < 1e-12);
        assert!(t.requests.iter().all(|r| r.demand.service.as_micros() >= 1));
        // Arrival offsets preserved to within the 1s jitter window.
        let a2 = t.requests[2].arrival.as_secs_f64();
        assert!((3.0..4.0).contains(&a2), "arrival {a2}");
    }

    #[test]
    fn roundtrip_through_clf_preserves_structure() {
        let orig = crate::generators::ucb()
            .generate(200, &DemandModel::simulation(40.0), 3)
            .scaled_to_rate(50.0);
        let text = trace_to_clf(&orig);
        let back = trace_from_clf(
            "back",
            &text,
            &DemandModel::simulation(40.0),
            CgiKind::CpuIntensive,
            3,
        )
        .unwrap();
        assert_eq!(back.len(), orig.len());
        // With jitter the order of same-second requests can change; check
        // aggregate structure instead of per-index identity.
        let so = orig.summary();
        let sb = back.summary();
        assert!(
            (so.cgi_pct - sb.cgi_pct).abs() < 1e-9,
            "class mix preserved"
        );
        assert!((so.mean_interval_s - sb.mean_interval_s).abs() < 0.1);
        let mut last = SimTime::ZERO;
        for r in &back.requests {
            assert!(r.arrival >= last, "re-import must stay sorted");
            last = r.arrival;
        }
    }

    #[test]
    fn combined_log_format_with_referrer_and_agent() {
        // nginx/Apache "combined" format appends quoted referrer and
        // user-agent after the byte count; the parser must ignore them.
        let line = r#"203.0.113.9 - - [01/Feb/2000:00:10:00 +0100] "GET /cgi-bin/a.cgi HTTP/1.1" 200 512 "http://example.com/" "Mozilla/4.0 (compatible)""#;
        let recs = parse_clf(line).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].bytes, 512);
        assert_eq!(recs[0].status, 200);
        assert_eq!(recs[0].class(), RequestClass::Dynamic);
    }

    #[test]
    fn ipv6_hosts_and_https_paths() {
        let line =
            r#"2001:db8::1 - - [01/Jan/1999:12:00:00 +0000] "GET /a/b/c.html HTTP/1.1" 200 99"#;
        let recs = parse_clf(line).unwrap();
        assert_eq!(recs[0].path, "/a/b/c.html");
        assert_eq!(recs[0].class(), RequestClass::Static);
    }

    #[test]
    fn leap_year_february() {
        let a = parse_timestamp("[28/Feb/2000:23:59:59 +0000]").unwrap();
        let b = parse_timestamp("[29/Feb/2000:00:00:00 +0000]").unwrap();
        let c = parse_timestamp("[01/Mar/2000:00:00:00 +0000]").unwrap();
        assert_eq!(b - a, 1.0);
        assert_eq!(c - b, 86_400.0);
    }

    #[test]
    fn out_of_order_timestamps_clamp_to_zero_offset() {
        // A log whose second line predates the first (clock skew): the
        // offset saturates at zero rather than going negative.
        let text = r#"h - - [01/Jan/1999:12:00:10 +0000] "GET /a.html HTTP/1.0" 200 1
h - - [01/Jan/1999:12:00:05 +0000] "GET /b.html HTTP/1.0" 200 1
"#;
        let recs = parse_clf(text).unwrap();
        assert_eq!(recs[1].offset_s, 0.0);
    }

    #[test]
    fn guess_cgi_kind_heuristic() {
        let recs = parse_clf(SAMPLE).unwrap();
        assert_eq!(guess_cgi_kind(&recs), CgiKind::MixedIndexSearch);
        let cpu = parse_clf(
            r#"h - - [10/Oct/1999:13:55:36 +0000] "GET /cgi-bin/render.cgi HTTP/1.0" 200 10
"#,
        )
        .unwrap();
        assert_eq!(guess_cgi_kind(&cpu), CgiKind::CpuIntensive);
    }

    #[test]
    fn mean_interval() {
        let recs = parse_clf(SAMPLE).unwrap();
        assert!((mean_interval_s(&recs) - 1.5).abs() < 1e-9);
        assert_eq!(mean_interval_s(&recs[..1]), 0.0);
    }
}
