//! Multi-region scenario harness: drive the region front tier
//! (`cluster::sched::region`) through three named scenarios and compare
//! the two built-in region selectors on latency-weighted placement
//! quality.
//!
//! The scenarios stress exactly the axes a geo-scheduler must care
//! about:
//!
//! * **diurnal** — the traffic centre of gravity rotates around the
//!   region ring (a `RegionMix::rotating` schedule) while a per-region
//!   cost/carbon series rotates out of phase, so the cost-aware greedy
//!   selector has something to trade latency against;
//! * **flash-crowd** — a migrating hot spot concentrates most arrivals
//!   in one region at a time; `region-nearest` holds traffic home until
//!   the hard capacity guard trips and then dumps the overflow on a
//!   single neighbour, while `region-greedy`'s headroom term spreads it
//!   across both remote regions *before* saturation — the acceptance
//!   headline of this harness;
//! * **outage** — a whole region (masters and slaves) dies mid-run and
//!   recovers later, exercising the node-down/up path through the
//!   region guard and the decision log.
//!
//! Every cell replays the same per-scenario trace under the same seed
//! (common random numbers), through the deterministic simulator, and
//! the report serialises through the deterministic vendored `serde`
//! writer — `msweb experiments --regions --test` runs the bounded grid
//! twice and fails on any byte difference.
//!
//! The headline metric is **latency-weighted model stretch**: the
//! processor-sharing model stretch of the placements
//! ([`msweb_cluster::sched::model_stretch`]) plus the mean
//! origin→region network latency normalised by each request's demand —
//! i.e. `mean((model_response + region_latency) / demand)`, which
//! decomposes exactly into those two terms because both average over
//! the same placement set.

use msweb_cluster::{
    ClusterConfig, ClusterSim, CollectingObserver, FailureEvent, FailurePlan, PolicyKind,
    RegionTopology, SchedulerRegistry, StageSpec,
};
use msweb_simcore::SimTime;
use msweb_workload::{ucb, DemandModel, RegionMix, Trace};
use serde::Serialize;
use std::cell::RefCell;
use std::rc::Rc;

use crate::experiments::ExpConfig;
use crate::report::{f, Table};

/// Cluster shape every scenario runs on: three regions of eight nodes
/// (two masters + six slaves each).
const P: usize = 24;
const MASTERS: usize = 6;
const REGIONS: usize = 3;
/// Per-node in-flight capacity for the region guard; low enough that a
/// flash crowd actually saturates its home region.
const NODE_CAPACITY: u32 = 6;
const INV_R: f64 = 40.0;
/// Replay arrival rate, requests/second: ~60% of the cluster's service
/// rate in the calm phases, a ~1.6x overload inside a flash-crowd hot
/// region — enough to drive the hot region into the capacity guard.
const LAMBDA: f64 = 3000.0;
/// Hot-region weight of the flash-crowd mix: the hot phase sends
/// `HOT/(HOT+2)` of all arrivals from one origin region.
const FLASH_HOT_WEIGHT: f64 = 24.0;
/// Hot-region weight of the diurnal rotation (milder than the flash
/// crowd — a daily swing, not an incident).
const DIURNAL_HOT_WEIGHT: f64 = 6.0;

/// The two region selectors under comparison, in report order.
pub const REGION_POLICIES: [&str; 2] = ["region-nearest", "region-greedy"];

/// The scenario names, in report order.
pub const SCENARIOS: [&str; 3] = ["diurnal", "flash-crowd", "outage"];

/// One (scenario, region policy) cell's measured outcome.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RegionScenarioRow {
    /// Scenario name (`diurnal`, `flash-crowd`, `outage`).
    pub scenario: String,
    /// Region-selector stage name.
    pub region_policy: String,
    /// Full six-part stage spec the cell composed.
    pub spec: String,
    /// Requests completed.
    pub completed: u64,
    /// Requests dropped (cluster dead or every region at capacity).
    pub dropped: u64,
    /// End-to-end mean stretch from the simulator.
    pub stretch: f64,
    /// Eq. 5 processor-sharing model stretch of the placements.
    pub model_stretch: f64,
    /// Mean origin→serving-region network latency per placement, ms.
    pub mean_region_latency_ms: f64,
    /// Headline objective: model stretch plus the demand-normalised
    /// region latency term (lower is better).
    pub lw_model_stretch: f64,
    /// Placements charged to each region, indexed by region.
    pub region_charges: Vec<u64>,
    /// Fraction of placements served outside the request's origin
    /// region.
    pub remote_fraction: f64,
}

/// Per-scenario comparison of the two selectors on the headline metric.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioVerdict {
    /// Scenario name.
    pub scenario: String,
    /// `region-nearest`'s latency-weighted model stretch.
    pub nearest_lw_stretch: f64,
    /// `region-greedy`'s latency-weighted model stretch.
    pub greedy_lw_stretch: f64,
    /// The selector with the lower latency-weighted model stretch.
    pub winner: String,
}

/// The complete scenario-grid result.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RegionsReport {
    /// Requests per scenario replay.
    pub requests: usize,
    /// Root seed (shared by every cell — common random numbers).
    pub seed: u64,
    /// Cluster size.
    pub p: usize,
    /// Master count.
    pub masters: usize,
    /// Region count.
    pub regions: usize,
    /// Per-node in-flight capacity of the region guard.
    pub node_capacity: u32,
    /// Replay arrival rate, requests/second.
    pub lambda: f64,
    /// Every cell, scenario-major in [`SCENARIOS`] ×
    /// [`REGION_POLICIES`] order.
    pub rows: Vec<RegionScenarioRow>,
    /// Per-scenario nearest-vs-greedy comparison.
    pub verdicts: Vec<ScenarioVerdict>,
}

/// One scenario's full driving input.
struct Scenario {
    name: &'static str,
    trace: Trace,
    topo: RegionTopology,
    failures: FailurePlan,
}

/// Build the three scenarios for one configuration. The region mix
/// draws from the workload generator's dedicated stream (split label
/// 6), so the arrival/demand streams are identical across scenarios —
/// only the origin tags and the injected failures differ.
fn scenarios(exp: &ExpConfig) -> Vec<Scenario> {
    let spec = ucb();
    // RegionMix phases are anchored to the generator's natural
    // timeline; the trace is rescaled to LAMBDA afterwards, which maps
    // phases onto the replay monotonically.
    let natural_s = exp.requests as f64 * spec.mean_interval_s;
    // Scaled (replay) duration, for failure timing and cost phases.
    let replay_us = (exp.requests as f64 / LAMBDA * 1e6) as u64;
    let base_topo = RegionTopology::even(P, MASTERS, REGIONS).with_node_capacity(NODE_CAPACITY);

    let gen = |mix: RegionMix| {
        spec.generate(
            exp.requests,
            &DemandModel::simulation(INV_R).with_region_mix(mix),
            exp.seed,
        )
        .scaled_to_rate(LAMBDA)
    };

    // Diurnal: traffic rotates around the ring twice; the cost series
    // rotates against it so the cheap region is never the hot one.
    let diurnal_mix = RegionMix::rotating(REGIONS, DIURNAL_HOT_WEIGHT, natural_s / 6.0);
    let diurnal_topo = base_topo.clone().with_cost(
        vec![
            vec![0.5, 1.0, 1.5],
            vec![1.5, 0.5, 1.0],
            vec![1.0, 1.5, 0.5],
        ],
        (replay_us / 6).max(1),
    );

    // Flash crowd: a warm-up phase, then the hot spot visits each
    // region in turn.
    let flash_mix = RegionMix::new(
        vec![
            vec![1.0, 1.0, 1.0],
            vec![FLASH_HOT_WEIGHT, 1.0, 1.0],
            vec![1.0, FLASH_HOT_WEIGHT, 1.0],
            vec![1.0, 1.0, FLASH_HOT_WEIGHT],
        ],
        natural_s / 4.0,
    );

    // Outage: uniform traffic; region 0 (masters and slaves) dies a
    // quarter into the run and recovers past the midpoint.
    let outage_mix = RegionMix::uniform(REGIONS);
    let kill_at = SimTime(replay_us / 4);
    let recover_at = SimTime(replay_us * 6 / 10);
    let (ms, me) = base_topo.master_range(0);
    let (ss, se) = base_topo.slave_range(0);
    let outage = FailurePlan::new(
        (ms..me)
            .chain(ss..se)
            .map(|node| FailureEvent {
                at: kill_at,
                node,
                restart_dynamic: true,
                recover_at: Some(recover_at),
            })
            .collect(),
    );

    vec![
        Scenario {
            name: "diurnal",
            trace: gen(diurnal_mix),
            topo: diurnal_topo,
            failures: FailurePlan::none(),
        },
        Scenario {
            name: "flash-crowd",
            trace: gen(flash_mix),
            topo: base_topo.clone(),
            failures: FailurePlan::none(),
        },
        Scenario {
            name: "outage",
            trace: gen(outage_mix),
            topo: base_topo,
            failures: outage,
        },
    ]
}

/// Run one (scenario, region policy) cell and score it.
fn run_cell(sc: &Scenario, region_policy: &str, seed: u64) -> RegionScenarioRow {
    let spec = StageSpec::for_policy(PolicyKind::MasterSlave).with_region(region_policy);
    let a0 = ucb().arrival_ratio_a();
    let r0 = 1.0 / INV_R;
    let cfg = ClusterConfig::simulation(P, PolicyKind::MasterSlave)
        .with_masters(MASTERS)
        .with_seed(seed)
        .with_regions(sc.topo.clone());
    let scheduler = SchedulerRegistry::builtin()
        .compose(&cfg, &spec, a0, r0)
        .expect("the built-in region compositions compose");
    let observer: Rc<RefCell<CollectingObserver>> = Rc::default();
    let mut sim = {
        let mut scheduler = scheduler;
        scheduler.set_observer(Some(Box::new(Rc::clone(&observer))));
        ClusterSim::with_scheduler(cfg, scheduler)
            .with_priors(a0, r0)
            .with_spec_label(spec.render())
            .with_failures(sc.failures.clone())
    };
    let summary = sim.run(&sc.trace);

    let records = observer.borrow();
    let placements: Vec<(usize, u64, u64)> = records
        .records
        .iter()
        .map(|r| (r.chosen, r.at_us, r.demand_us))
        .collect();
    let model_stretch = msweb_cluster::sched::model_stretch(&placements, P, None);

    // The latency term averages over exactly the placements the model
    // scores (in-range node, known demand), so the sum below is the
    // mean of (model response + latency) / demand.
    let mut latency_sum = 0.0f64;
    let mut latency_us_sum = 0u64;
    let mut counted = 0u64;
    let mut remote = 0u64;
    let mut region_charges = vec![0u64; sc.topo.regions()];
    for r in records.records.iter() {
        let region = r.region.unwrap_or_else(|| sc.topo.region_of(r.chosen));
        region_charges[region] += 1;
        if region != r.origin % sc.topo.regions() {
            remote += 1;
        }
        if r.chosen < P && r.demand_us > 0 {
            let lat = sc.topo.latency_us(r.origin, region);
            latency_sum += lat as f64 / r.demand_us as f64;
            latency_us_sum += lat;
            counted += 1;
        }
    }
    let total = records.records.len() as u64;
    let latency_term = if counted == 0 {
        0.0
    } else {
        latency_sum / counted as f64
    };
    RegionScenarioRow {
        scenario: sc.name.to_string(),
        region_policy: region_policy.to_string(),
        spec: spec.render(),
        completed: summary.completed,
        dropped: summary.dropped,
        stretch: summary.stretch,
        model_stretch,
        mean_region_latency_ms: if counted == 0 {
            0.0
        } else {
            latency_us_sum as f64 / counted as f64 / 1e3
        },
        lw_model_stretch: model_stretch + latency_term,
        region_charges,
        remote_fraction: if total == 0 {
            0.0
        } else {
            remote as f64 / total as f64
        },
    }
}

/// Run the full scenario grid: [`SCENARIOS`] × [`REGION_POLICIES`],
/// every cell under the shared seed.
pub fn regions(exp: &ExpConfig) -> RegionsReport {
    let mut rows = Vec::new();
    let mut verdicts = Vec::new();
    for sc in scenarios(exp) {
        let mut by_policy = Vec::new();
        for policy in REGION_POLICIES {
            let row = run_cell(&sc, policy, exp.seed);
            by_policy.push((policy, row.lw_model_stretch));
            rows.push(row);
        }
        let nearest = by_policy[0].1;
        let greedy = by_policy[1].1;
        verdicts.push(ScenarioVerdict {
            scenario: sc.name.to_string(),
            nearest_lw_stretch: nearest,
            greedy_lw_stretch: greedy,
            winner: if greedy < nearest {
                "region-greedy"
            } else {
                "region-nearest"
            }
            .to_string(),
        });
    }
    RegionsReport {
        requests: exp.requests,
        seed: exp.seed,
        p: P,
        masters: MASTERS,
        regions: REGIONS,
        node_capacity: NODE_CAPACITY,
        lambda: LAMBDA,
        rows,
        verdicts,
    }
}

impl RegionsReport {
    /// Serialise as pretty-printed JSON (byte-deterministic for a fixed
    /// configuration; ends with a newline).
    pub fn to_json(&self) -> String {
        serde::to_json_string_pretty(self) + "\n"
    }

    /// Render the human-readable scenario table the CLI prints.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== REGIONS: multi-region scenario grid ==\n\
             UCB x {} requests at λ={}/s, p={}, m={}, {} regions \
             (node capacity {}), seed {}\n",
            self.requests,
            self.lambda,
            self.p,
            self.masters,
            self.regions,
            self.node_capacity,
            self.seed,
        );
        let mut t = Table::new(vec![
            "scenario",
            "region policy",
            "lw stretch",
            "model stretch",
            "net ms",
            "remote%",
            "drops",
            "charges by region",
        ]);
        for row in &self.rows {
            t.row(vec![
                row.scenario.clone(),
                row.region_policy.clone(),
                f(row.lw_model_stretch, 4),
                f(row.model_stretch, 4),
                f(row.mean_region_latency_ms, 2),
                f(row.remote_fraction * 100.0, 1),
                row.dropped.to_string(),
                row.region_charges
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join("/"),
            ]);
        }
        out.push_str(&t.render());
        for v in &self.verdicts {
            let _ = writeln!(
                out,
                "{}: nearest {:.4} vs greedy {:.4} -> {}",
                v.scenario, v.nearest_lw_stretch, v.greedy_lw_stretch, v.winner
            );
        }
        out
    }
}

/// The `--test` gate: every scenario must run both selectors to
/// completion, and the greedy selector must beat `region-nearest` on
/// latency-weighted model stretch in the flash-crowd scenario (the
/// acceptance headline).
pub fn regions_check(report: &RegionsReport) -> Result<(), String> {
    if report.rows.is_empty() {
        return Err("empty regions report".to_string());
    }
    for scenario in SCENARIOS {
        for policy in REGION_POLICIES {
            let row = report
                .rows
                .iter()
                .find(|r| r.scenario == scenario && r.region_policy == policy)
                .ok_or_else(|| format!("missing cell {scenario}/{policy}"))?;
            if row.completed == 0 {
                return Err(format!("{scenario}/{policy}: zero completions"));
            }
            if !row.lw_model_stretch.is_finite() {
                return Err(format!("{scenario}/{policy}: non-finite headline metric"));
            }
        }
    }
    let flash = report
        .verdicts
        .iter()
        .find(|v| v.scenario == "flash-crowd")
        .ok_or_else(|| "missing flash-crowd verdict".to_string())?;
    if flash.greedy_lw_stretch >= flash.nearest_lw_stretch {
        return Err(format!(
            "flash-crowd: region-greedy ({:.4}) does not beat region-nearest ({:.4}) \
             on latency-weighted model stretch",
            flash.greedy_lw_stretch, flash.nearest_lw_stretch
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpConfig {
        ExpConfig {
            requests: 2_000,
            live_requests: 0,
            seed: 42,
            jobs: 1,
        }
    }

    #[test]
    fn scenario_grid_is_complete_and_deterministic() {
        let report = regions(&quick());
        assert_eq!(report.rows.len(), SCENARIOS.len() * REGION_POLICIES.len());
        regions_check(&report).unwrap();
        let again = regions(&quick());
        assert_eq!(report.to_json(), again.to_json());
    }

    #[test]
    fn outage_cells_keep_region_zero_dark_while_down() {
        let report = regions(&quick());
        for row in report.rows.iter().filter(|r| r.scenario == "outage") {
            // Region 0 was dead for ~a third of the run: it must be
            // charged visibly less than the survivors.
            assert!(
                (row.region_charges[0] as f64) < 0.8 * row.region_charges[1] as f64,
                "{}: charges {:?}",
                row.region_policy,
                row.region_charges
            );
            assert!(row.completed > 0);
        }
    }

    #[test]
    fn flash_crowd_spills_more_under_greedy() {
        let report = regions(&quick());
        let frac = |policy: &str| {
            report
                .rows
                .iter()
                .find(|r| r.scenario == "flash-crowd" && r.region_policy == policy)
                .map(|r| r.remote_fraction)
                .unwrap()
        };
        // The headroom term moves traffic off the hot region before the
        // hard guard does.
        assert!(
            frac("region-greedy") >= frac("region-nearest"),
            "greedy {} vs nearest {}",
            frac("region-greedy"),
            frac("region-nearest")
        );
    }
}
