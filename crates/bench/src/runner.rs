//! The unified experiment runner: one typed entry point shared by the
//! CLI binaries, the criterion benches and the integration tests.
//!
//! ```no_run
//! use msweb_bench::{ExpConfig, ExperimentId, ExperimentRunner};
//!
//! let report = ExperimentRunner::new(ExpConfig::quick())
//!     .parallelism(4)
//!     .run(ExperimentId::Fig4a);
//! println!("{}", report.render());
//! println!("{}", report.to_json());
//! ```
//!
//! [`ExperimentRunner::run`] executes one experiment through the
//! [`Sweep`](crate::Sweep) executor and returns an [`ExperimentReport`] —
//! a serialisable value holding the full result rows, not a printout.
//! Rendering ([`ExperimentReport::render`]) and JSON export
//! ([`ExperimentReport::to_json`]) are derived views of the same value,
//! so "what the CLI prints", "what lands in the JSON file" and "what the
//! determinism test compares" can never drift apart.
//!
//! The report deliberately excludes the parallelism level: for a fixed
//! root seed the report is identical at any worker count (enforced by
//! `tests/determinism.rs`), so recording it would only break equality
//! between runs that are byte-identical where it matters.

use std::fmt::Write as _;

use msweb_cluster::{
    simulate, ClusterConfig, PolicyKind, RunOptions, SeriesRecorder, TelemetrySnapshot,
};
use msweb_queueing::Fig3Point;
use msweb_workload::{ksu, DemandModel};
use serde::Serialize;

use crate::experiments::{
    ablation_bursty, ablation_cache, ablation_frontend, ablation_hetero, ablation_redirect,
    ablation_reserve, ablation_staleness, ablation_theta_rule, fig3, fig4, fig5, tab1, tab2,
    tab3_traced, ExpConfig, Fig4Row, Fig5Row, Tab1Row, Tab2Row, Tab3Row,
};
use crate::report::{f, pct, Table};

/// Identifier of one experiment (one table or figure of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum ExperimentId {
    /// Figure 3(a): analytic M/S vs the flat model.
    Fig3a,
    /// Figure 3(b): analytic M/S vs M/S′.
    Fig3b,
    /// Table 1: trace characteristics, paper vs regenerated.
    Tab1,
    /// Table 2: the workload parameter grid.
    Tab2,
    /// Figure 4(a): simulated improvement of M/S, p = 32.
    Fig4a,
    /// Figure 4(b): simulated improvement of M/S, p = 128.
    Fig4b,
    /// Figure 5: fixed-m sensitivity.
    Fig5,
    /// Table 3: live-vs-simulated validation.
    Tab3,
    /// The design-choice ablation suite.
    Ablation,
}

impl ExperimentId {
    /// Every experiment, in the paper's presentation order.
    pub const ALL: [ExperimentId; 9] = [
        ExperimentId::Fig3a,
        ExperimentId::Fig3b,
        ExperimentId::Tab1,
        ExperimentId::Tab2,
        ExperimentId::Fig4a,
        ExperimentId::Fig4b,
        ExperimentId::Fig5,
        ExperimentId::Tab3,
        ExperimentId::Ablation,
    ];

    /// The CLI name of this experiment.
    pub fn name(self) -> &'static str {
        match self {
            ExperimentId::Fig3a => "fig3a",
            ExperimentId::Fig3b => "fig3b",
            ExperimentId::Tab1 => "tab1",
            ExperimentId::Tab2 => "tab2",
            ExperimentId::Fig4a => "fig4a",
            ExperimentId::Fig4b => "fig4b",
            ExperimentId::Fig5 => "fig5",
            ExperimentId::Tab3 => "tab3",
            ExperimentId::Ablation => "ablation",
        }
    }

    /// Parse a CLI name (`"fig4a"`, `"tab3"`, ...).
    pub fn parse(s: &str) -> Option<Self> {
        ExperimentId::ALL.into_iter().find(|id| id.name() == s)
    }
}

/// A serialisable mirror of [`Fig3Point`]. `msweb-queueing` is kept
/// dependency-free (its analytic results are checked against closed
/// forms), so the serde impl lives here instead of on the point itself.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig3Row {
    /// Arrival ratio `a`.
    pub a: f64,
    /// Demand ratio `1/r`.
    pub inv_r: f64,
    /// Analytic M/S stretch.
    pub stretch_ms: f64,
    /// Analytic flat stretch.
    pub stretch_flat: f64,
    /// Analytic M/S′ stretch.
    pub stretch_msprime: f64,
    /// M/S′ restricted to few nodes, when feasible.
    pub stretch_msprime_few: Option<f64>,
    /// Improvement of M/S over flat, percent.
    pub improvement_over_flat_pct: f64,
    /// Improvement of M/S over M/S′, percent.
    pub improvement_over_msprime_pct: f64,
    /// Improvement over the few-nodes M/S′, when feasible.
    pub improvement_over_msprime_few_pct: Option<f64>,
    /// Optimal master count.
    pub m: usize,
    /// Optimal split point θ.
    pub theta: f64,
}

impl From<&Fig3Point> for Fig3Row {
    fn from(p: &Fig3Point) -> Self {
        Fig3Row {
            a: p.a,
            inv_r: p.inv_r,
            stretch_ms: p.stretch_ms,
            stretch_flat: p.stretch_flat,
            stretch_msprime: p.stretch_msprime,
            stretch_msprime_few: p.stretch_msprime_few,
            improvement_over_flat_pct: p.improvement_over_flat_pct,
            improvement_over_msprime_pct: p.improvement_over_msprime_pct,
            improvement_over_msprime_few_pct: p.improvement_over_msprime_few_pct,
            m: p.m,
            theta: p.theta,
        }
    }
}

/// All ablation results in one bundle.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AblationReport {
    /// `(monitor period ms, M/S stretch)`.
    pub staleness: Vec<(u64, f64)>,
    /// `(master reserve, M/S stretch)`.
    pub reserve: Vec<(f64, f64)>,
    /// `(configuration label, stretch, node-busy CV)`.
    pub frontend: Vec<(&'static str, f64, f64)>,
    /// `(uncached stretch, cached stretch, hit ratio)`.
    pub cache: (f64, f64, f64),
    /// `(M/S stretch, Redirect stretch)`.
    pub redirect: (f64, f64),
    /// `(policy label, Poisson stretch, bursty stretch)`.
    pub bursty: Vec<(&'static str, f64, f64)>,
    /// `(analytic, slow-masters, fast-masters)` stretch.
    pub hetero: (f64, f64, f64),
    /// `(mean midpoint stretch, mean numeric stretch)`.
    pub theta_rule: (f64, f64),
}

/// The typed result rows of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum ReportData {
    /// Figure 3 points (shared by 3(a) and 3(b); rendering differs).
    Fig3(Vec<Fig3Row>),
    /// Table 1 rows.
    Tab1(Vec<Tab1Row>),
    /// Table 2 rows.
    Tab2(Vec<Tab2Row>),
    /// Figure 4 bar groups.
    Fig4(Vec<Fig4Row>),
    /// Figure 5 bars.
    Fig5(Vec<Fig5Row>),
    /// Table 3 rows.
    Tab3(Vec<Tab3Row>),
    /// The ablation bundle.
    Ablation(AblationReport),
}

/// One experiment's complete result: identity, sizing, and data rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Which experiment this is.
    pub experiment: ExperimentId,
    /// Requests per simulated replay used to produce it.
    pub requests: usize,
    /// Requests per live replay used to produce it.
    pub live_requests: usize,
    /// Root RNG seed.
    pub seed: u64,
    /// The result rows.
    pub data: ReportData,
    /// Telemetry snapshot of the instrumented companion replay, when
    /// [`ExperimentRunner::telemetry`] was enabled.
    pub telemetry: Option<TelemetrySnapshot>,
}

// Hand-written (rather than derived) so the `telemetry` key appears
// only when a snapshot was attached: existing report JSON stays
// byte-identical for runs without telemetry.
impl Serialize for ExperimentReport {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("experiment".to_string(), self.experiment.to_value()),
            ("requests".to_string(), self.requests.to_value()),
            ("live_requests".to_string(), self.live_requests.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("data".to_string(), self.data.to_value()),
        ];
        if let Some(t) = &self.telemetry {
            fields.push(("telemetry".to_string(), t.to_value()));
        }
        serde::Value::Object(fields)
    }
}

/// Runs experiments against one [`ExpConfig`].
#[derive(Debug, Clone)]
pub struct ExperimentRunner {
    exp: ExpConfig,
    live_time_scale: f64,
    trace_decisions: Option<std::path::PathBuf>,
    telemetry: bool,
}

impl ExperimentRunner {
    /// A runner over the given sizing configuration (live replays at the
    /// paper's real-time scale).
    pub fn new(exp: ExpConfig) -> Self {
        ExperimentRunner {
            exp,
            live_time_scale: 1.0,
            trace_decisions: None,
            telemetry: false,
        }
    }

    /// Set the sweep worker budget: `0` = all cores, `1` = sequential.
    /// Reports are identical at any setting; only wall-clock time moves.
    pub fn parallelism(mut self, jobs: usize) -> Self {
        self.exp.jobs = jobs;
        self
    }

    /// Compress the live (Table 3) replay by this factor. `1.0` replays
    /// in real time like the paper's prototype; smaller values are faster
    /// but noisier.
    pub fn live_time_scale(mut self, scale: f64) -> Self {
        self.live_time_scale = scale;
        self
    }

    /// Log every scheduling decision of the Table 3 replays (live *and*
    /// simulated) to a JSONL file — the `--trace-decisions PATH` flag of
    /// the `experiments` binary. The file is truncated when Table 3
    /// starts, then appended to by each replay. Other experiments ignore
    /// the setting (their sweeps run replays in parallel, where a shared
    /// append-mode log would interleave).
    pub fn trace_decisions(mut self, path: Option<std::path::PathBuf>) -> Self {
        self.trace_decisions = path;
        self
    }

    /// Attach a telemetry snapshot to every produced report — the
    /// `--telemetry` flag of `msweb experiments`. Experiments sweep
    /// many cells (in parallel), so instead of instrumenting them all,
    /// the runner executes one *canonical companion replay* — the KSU
    /// master/slave cell at p = 32, λ = 1000/s, 1/r = 40, sized and
    /// seeded like this configuration — with telemetry enabled, and
    /// embeds its deterministic snapshot as the report's `telemetry`
    /// block. Reports without telemetry serialise exactly as before
    /// (the key is simply absent).
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// The configuration this runner executes with.
    pub fn config(&self) -> &ExpConfig {
        &self.exp
    }

    /// Execute one experiment and return its typed report.
    pub fn run(&self, id: ExperimentId) -> ExperimentReport {
        let exp = &self.exp;
        let data = match id {
            ExperimentId::Fig3a | ExperimentId::Fig3b => {
                ReportData::Fig3(fig3().iter().map(Fig3Row::from).collect())
            }
            ExperimentId::Tab1 => {
                // Table 1 wants enough requests for stable trace
                // statistics even under --quick sizing.
                ReportData::Tab1(tab1(exp.requests.max(10_000), exp.seed))
            }
            ExperimentId::Tab2 => ReportData::Tab2(tab2(exp)),
            ExperimentId::Fig4a => ReportData::Fig4(fig4(32, exp)),
            ExperimentId::Fig4b => ReportData::Fig4(fig4(128, exp)),
            ExperimentId::Fig5 => ReportData::Fig5(fig5(exp)),
            ExperimentId::Tab3 => {
                if let Some(path) = &self.trace_decisions {
                    // Start each Table 3 run from an empty log; replays
                    // then append their records in order.
                    if let Err(e) = std::fs::File::create(path) {
                        eprintln!("trace-decisions: cannot create {}: {e}", path.display());
                    }
                }
                ReportData::Tab3(tab3_traced(
                    exp,
                    self.live_time_scale,
                    self.trace_decisions.as_deref(),
                ))
            }
            ExperimentId::Ablation => ReportData::Ablation(AblationReport {
                staleness: ablation_staleness(exp),
                reserve: ablation_reserve(exp),
                frontend: ablation_frontend(exp),
                cache: ablation_cache(exp),
                redirect: ablation_redirect(exp),
                bursty: ablation_bursty(exp),
                hetero: ablation_hetero(exp),
                theta_rule: ablation_theta_rule(),
            }),
        };
        ExperimentReport {
            experiment: id,
            requests: exp.requests,
            live_requests: exp.live_requests,
            seed: exp.seed,
            data,
            telemetry: self.telemetry.then(|| companion_telemetry(exp)),
        }
    }

    /// Execute every experiment in presentation order.
    pub fn run_all(&self) -> Vec<ExperimentReport> {
        ExperimentId::ALL
            .into_iter()
            .map(|id| self.run(id))
            .collect()
    }

    /// Run the canonical companion replay once with a windowed series
    /// recorder streaming to `path` — the `--telemetry-series` flag of
    /// `msweb experiments`. Returns the number of window records
    /// written. The replay is the same one `--telemetry` snapshots, so
    /// for a fixed [`ExpConfig`] the file is byte-deterministic.
    pub fn write_telemetry_series(&self, path: &str) -> std::io::Result<u64> {
        let recorder = SeriesRecorder::create(path)?;
        let outcome = companion_run(
            &self.exp,
            RunOptions::new().telemetry(true).series(recorder),
        );
        Ok(outcome.series.map(|r| r.records()).unwrap_or(0))
    }
}

/// The canonical instrumented companion replay: KSU trace, master/slave
/// policy, p = 32, λ = 1000/s, 1/r = 40, at this configuration's request
/// count and seed. Deterministic for a fixed `ExpConfig`, so reports
/// with telemetry enabled stay byte-stable across re-runs.
fn companion_run(exp: &ExpConfig, opts: RunOptions) -> msweb_cluster::RunOutcome {
    let trace = ksu()
        .generate(exp.requests, &DemandModel::simulation(40.0), exp.seed)
        .scaled_to_rate(1000.0);
    let cfg = ClusterConfig::simulation(32, PolicyKind::MasterSlave).with_seed(exp.seed);
    simulate(cfg, &trace, opts)
}

/// The companion replay's telemetry snapshot (see [`companion_run`]).
fn companion_telemetry(exp: &ExpConfig) -> TelemetrySnapshot {
    companion_run(exp, RunOptions::new().telemetry(true))
        .telemetry
        .expect("telemetry enabled")
}

impl ExperimentReport {
    /// Serialise the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde::to_json_string_pretty(self)
    }

    /// Render the report as the human-readable table the CLI prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match (&self.experiment, &self.data) {
            (ExperimentId::Fig3a, ReportData::Fig3(points)) => {
                out.push_str("== FIG 3(a): analytic improvement of M/S over the flat model ==\n");
                out.push_str("   (λ=1000/s, p=32, μ_h=1200/s; paper reports up to ~60%)\n\n");
                let mut t = Table::new(vec!["a", "1/r", "m*", "θ*", "S_M", "S_F", "improvement"]);
                for pt in points {
                    t.row(vec![
                        f(pt.a, 3),
                        f(pt.inv_r, 0),
                        pt.m.to_string(),
                        f(pt.theta, 3),
                        f(pt.stretch_ms, 3),
                        f(pt.stretch_flat, 3),
                        pct(pt.improvement_over_flat_pct),
                    ]);
                }
                out.push_str(&t.render());
            }
            (ExperimentId::Fig3b, ReportData::Fig3(points)) => {
                out.push_str("== FIG 3(b): analytic improvement of M/S over M/S' ==\n");
                out.push_str("   (literal M/S' collapses to flat under exact PS analysis —\n");
                out.push_str("    see EXPERIMENTS.md; the few-nodes column caps k ≤ p/2)\n\n");
                let mut t = Table::new(vec![
                    "a",
                    "1/r",
                    "S_M",
                    "S_M'",
                    "improvement",
                    "S_M'(few)",
                    "improvement(few)",
                ]);
                for pt in points {
                    t.row(vec![
                        f(pt.a, 3),
                        f(pt.inv_r, 0),
                        f(pt.stretch_ms, 3),
                        f(pt.stretch_msprime, 3),
                        pct(pt.improvement_over_msprime_pct),
                        pt.stretch_msprime_few
                            .map(|s| f(s, 3))
                            .unwrap_or("-".into()),
                        pt.improvement_over_msprime_few_pct
                            .map(pct)
                            .unwrap_or("-".into()),
                    ]);
                }
                out.push_str(&t.render());
            }
            (ExperimentId::Tab1, ReportData::Tab1(rows)) => {
                out.push_str("== TAB 1: trace characteristics (paper vs regenerated) ==\n\n");
                let mut t = Table::new(vec![
                    "trace",
                    "year",
                    "paper %CGI",
                    "gen %CGI",
                    "paper intvl",
                    "gen intvl",
                    "paper HTML",
                    "gen HTML",
                    "paper CGI B",
                    "gen CGI B",
                ]);
                for row in rows {
                    t.row(vec![
                        row.spec.name.to_string(),
                        row.spec.year.to_string(),
                        f(row.spec.cgi_pct, 1),
                        f(row.generated.cgi_pct, 1),
                        format!("{}s", f(row.spec.mean_interval_s, 3)),
                        format!("{}s", f(row.generated.mean_interval_s, 3)),
                        row.spec.mean_html_bytes.to_string(),
                        f(row.generated.mean_static_bytes, 0),
                        row.spec.mean_cgi_bytes.to_string(),
                        f(row.generated.mean_cgi_bytes, 0),
                    ]);
                }
                out.push_str(&t.render());
                let n = rows.first().map(|r| r.generated.requests).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "(regenerated with n={n}; the paper's request counts are the full logs)"
                );
            }
            (ExperimentId::Tab2, ReportData::Tab2(rows)) => {
                out.push_str(
                    "== TAB 2: workload parameter grid (reconstructed; see DESIGN.md) ==\n\n",
                );
                let mut t = Table::new(vec!["trace", "p", "λ (req/s)", "1/r", "load/node", "m*"]);
                for row in rows {
                    t.row(vec![
                        row.cell.trace.to_string(),
                        row.cell.p.to_string(),
                        f(row.cell.lambda, 0),
                        f(row.cell.inv_r, 0),
                        f(row.offered_per_node, 2),
                        row.m.to_string(),
                    ]);
                }
                out.push_str(&t.render());
            }
            (id @ (ExperimentId::Fig4a | ExperimentId::Fig4b), ReportData::Fig4(rows)) => {
                let (letter, p) = if *id == ExperimentId::Fig4a {
                    ("a", 32)
                } else {
                    ("b", 128)
                };
                let _ = writeln!(
                    out,
                    "== FIG 4({letter}): % improvement of M/S over alternatives, p={p} =="
                );
                out.push_str(
                    "   (paper: vs M/S-nr up to 68%; vs M/S-1 up to 26%; vs M/S-ns 5-22%)\n\n",
                );
                let mut t = Table::new(vec![
                    "trace",
                    "λ",
                    "1/r",
                    "m",
                    "S(M/S)",
                    "vs M/S-ns",
                    "vs M/S-nr",
                    "vs M/S-1",
                ]);
                for row in rows {
                    t.row(vec![
                        row.cell.trace.to_string(),
                        f(row.cell.lambda, 0),
                        f(row.cell.inv_r, 0),
                        row.m.to_string(),
                        f(row.ms.stretch, 3),
                        pct(row.imp_ns_pct()),
                        pct(row.imp_nr_pct()),
                        pct(row.imp_m1_pct()),
                    ]);
                }
                out.push_str(&t.render());
            }
            (ExperimentId::Fig5, ReportData::Fig5(rows)) => {
                out.push_str("== FIG 5: degradation when using a fixed number of masters ==\n");
                out.push_str("   (paper: at most 9%, average 4%)\n\n");
                let mut t = Table::new(vec![
                    "trace",
                    "p",
                    "λ",
                    "1/r",
                    "m fixed",
                    "m adaptive",
                    "S fixed",
                    "S adaptive",
                    "degradation",
                ]);
                let mut sum = 0.0;
                let mut max: f64 = 0.0;
                for row in rows {
                    let d = row.degradation_pct();
                    sum += d.max(0.0);
                    max = max.max(d);
                    t.row(vec![
                        row.cell.trace.to_string(),
                        row.cell.p.to_string(),
                        f(row.cell.lambda, 0),
                        f(row.cell.inv_r, 0),
                        row.m_fixed.to_string(),
                        row.m_adaptive.to_string(),
                        f(row.fixed.stretch, 3),
                        f(row.adaptive.stretch, 3),
                        pct(d),
                    ]);
                }
                out.push_str(&t.render());
                let _ = writeln!(
                    out,
                    "max degradation {:.1}%, average {:.1}%",
                    max,
                    sum / rows.len().max(1) as f64
                );
            }
            (ExperimentId::Tab3, ReportData::Tab3(rows)) => {
                out.push_str("== TAB 3: live (actual) vs simulated improvement of M/S ==\n");
                out.push_str(
                    "   (6 nodes, masters UCB 3 / KSU 1 / ADL 1, r=1/40; paper: within a few points)\n\n",
                );
                let mut t = Table::new(vec![
                    "trace",
                    "rate",
                    "versus",
                    "actual",
                    "simulated",
                    "|Δ|",
                ]);
                let mut diff_sum = 0.0;
                for r in rows {
                    let (actual, simulated) = (r.actual_pct(), r.simulated_pct());
                    diff_sum += (actual - simulated).abs();
                    t.row(vec![
                        r.trace.to_string(),
                        format!("{}/s", f(r.rate, 0)),
                        r.versus.label().to_string(),
                        pct(actual),
                        pct(simulated),
                        f((actual - simulated).abs(), 1),
                    ]);
                }
                out.push_str(&t.render());
                let _ = writeln!(
                    out,
                    "mean |actual − simulated| = {:.1} percentage points (paper: ~3)",
                    diff_sum / rows.len().max(1) as f64
                );
            }
            (ExperimentId::Ablation, ReportData::Ablation(ab)) => {
                out.push_str("== ABLATIONS (beyond the paper's figures) ==\n\n");

                out.push_str("-- load-info staleness (KSU, λ=1000, 1/r=80, p=32) --\n");
                let mut t = Table::new(vec!["monitor period", "M/S stretch"]);
                for &(ms, s) in &ab.staleness {
                    t.row(vec![format!("{ms} ms"), f(s, 3)]);
                }
                out.push_str(&t.render());

                out.push_str("\n-- master capacity reserve (UCB, λ=2000, 1/r=80, p=32) --\n");
                let mut t = Table::new(vec!["reserve", "M/S stretch"]);
                for &(r, s) in &ab.reserve {
                    t.row(vec![f(r, 2), f(s, 3)]);
                }
                out.push_str(&t.render());

                out.push_str(
                    "\n-- front end: DNS skew and switch baselines (KSU, λ=1000, 1/r=40) --\n",
                );
                let mut t = Table::new(vec!["configuration", "stretch", "node-busy CV"]);
                for &(name, stretch, cv) in &ab.frontend {
                    t.row(vec![name.to_string(), f(stretch, 3), f(cv, 3)]);
                }
                out.push_str(&t.render());

                let (uncached, cached, hit_ratio) = ab.cache;
                let _ = writeln!(
                    out,
                    "\n-- dynamic-content cache (Swala extension; ADL + Zipf queries) --\n\
                     uncached stretch {:.3} -> cached {:.3} ({:+.1}%), hit ratio {:.1}%",
                    uncached,
                    cached,
                    (cached / uncached - 1.0) * 100.0,
                    hit_ratio * 100.0
                );

                let (ms, redirect) = ab.redirect;
                let _ = writeln!(
                    out,
                    "\n-- remote execution vs HTTP redirection (ADL, λ=1000, 1/r=40) --\n\
                     M/S (remote exec): {:.3}   Redirect: {:.3}   penalty {:+.1}%",
                    ms,
                    redirect,
                    (redirect / ms - 1.0) * 100.0
                );

                out.push_str(
                    "\n-- flash-crowd bursts (ON/OFF arrivals, 3x bursts at 25% duty) --\n",
                );
                let mut t = Table::new(vec!["policy", "Poisson", "bursty", "penalty"]);
                for &(name, poisson, bursty) in &ab.bursty {
                    t.row(vec![
                        name.to_string(),
                        f(poisson, 3),
                        f(bursty, 3),
                        pct((bursty / poisson - 1.0) * 100.0),
                    ]);
                }
                out.push_str(&t.render());

                let (analytic, slow, fast) = ab.hetero;
                let _ = writeln!(
                    out,
                    "\n-- heterogeneous fleet (§6 extension; 8 × 0.5x + 8 × 2.0x nodes) --\n\
                     analytic plan {analytic:.3} | simulated: slow boxes as masters {slow:.3}, \
                     fast boxes as masters {fast:.3}"
                );

                let (mid, num) = ab.theta_rule;
                let _ = writeln!(
                    out,
                    "\n-- θ rule: paper midpoint vs numerical optimum (Figure 3 grid) --\n\
                     mean S_M midpoint {:.4} vs numeric {:.4} ({:+.2}% heuristic cost)",
                    mid,
                    num,
                    (mid / num - 1.0) * 100.0
                );
            }
            // A report always pairs an id with its own data variant; the
            // runner is the only constructor.
            (id, _) => panic!("mismatched report: {id:?}"),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_names_roundtrip() {
        for id in ExperimentId::ALL {
            assert_eq!(ExperimentId::parse(id.name()), Some(id));
        }
        assert_eq!(ExperimentId::parse("nope"), None);
    }

    #[test]
    fn analytic_report_renders_and_serialises() {
        let runner = ExperimentRunner::new(ExpConfig::quick());
        let report = runner.run(ExperimentId::Fig3a);
        assert_eq!(report.experiment, ExperimentId::Fig3a);
        let text = report.render();
        assert!(text.contains("FIG 3(a)"), "{text}");
        let json = report.to_json();
        assert!(json.contains("\"Fig3a\""), "{json}");
        assert!(json.contains("stretch_ms"), "{json}");
        // Telemetry off by default: the key must be entirely absent so
        // pre-existing report JSON stays byte-identical.
        assert!(!json.contains("\"telemetry\""), "{json}");
        // Same config, same report.
        assert_eq!(report, runner.run(ExperimentId::Fig3a));
    }

    #[test]
    fn telemetry_report_carries_a_deterministic_block() {
        let mut exp = ExpConfig::quick();
        exp.requests = 500; // companion replay sizing; keep the test quick
        let runner = ExperimentRunner::new(exp).telemetry(true);
        let report = runner.run(ExperimentId::Fig3a);
        let snap = report.telemetry.as_ref().expect("telemetry attached");
        assert!(snap.sched.place_calls > 0);
        assert_eq!(snap.node_busy.len(), 32);
        let json = report.to_json();
        assert!(json.contains("\"telemetry\""), "{json}");
        // Re-run equality: the companion replay is deterministic.
        assert_eq!(report, runner.run(ExperimentId::Fig3a));
    }

    #[test]
    fn tab2_report_has_grid_shape() {
        let report = ExperimentRunner::new(ExpConfig::quick()).run(ExperimentId::Tab2);
        match &report.data {
            ReportData::Tab2(rows) => assert_eq!(rows.len(), 42),
            other => panic!("wrong data: {other:?}"),
        }
        assert!(report.render().contains("TAB 2"));
    }
}
