//! # msweb-bench
//!
//! The experiment harness: one function per table/figure of the paper's
//! evaluation, shared between the `experiments` binary (which prints the
//! paper-style rows) and the criterion benches (which time the same
//! code). See DESIGN.md §4 for the experiment index and EXPERIMENTS.md
//! for recorded paper-vs-measured results.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod report;

pub use experiments::*;
