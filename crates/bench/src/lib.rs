//! # msweb-bench
//!
//! The experiment harness: one function per table/figure of the paper's
//! evaluation, executed through a deterministic parallel [`Sweep`] and
//! exposed behind the typed [`ExperimentRunner`] API shared by the
//! `experiments` binary, the `msweb` CLI, the criterion benches and the
//! integration tests. See DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured results.
//!
//! ```no_run
//! use msweb_bench::{ExpConfig, ExperimentId, ExperimentRunner};
//!
//! let report = ExperimentRunner::new(ExpConfig::quick())
//!     .parallelism(0) // all cores; the report is the same at any level
//!     .run(ExperimentId::Fig4a);
//! println!("{}", report.render());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod pareto;
pub mod regions;
pub mod report;
pub mod runner;
pub mod sweep;

pub use experiments::*;
pub use pareto::{
    pareto, pareto_check, CellStatus, FrontierRow, ParetoReport, ParetoRow, StageGrid,
};
pub use regions::{
    regions, regions_check, RegionScenarioRow, RegionsReport, ScenarioVerdict, REGION_POLICIES,
    SCENARIOS,
};
pub use runner::{
    AblationReport, ExperimentId, ExperimentReport, ExperimentRunner, Fig3Row, ReportData,
};
pub use sweep::{SeedMode, Sweep};
