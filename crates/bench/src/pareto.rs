//! Stage-space Pareto sweep: search every registry-composable stage
//! combination and report the multi-objective frontier.
//!
//! The paper evaluates a handful of hand-picked policies; the
//! [`SchedulerRegistry`] can compose every `entry × admission ×
//! candidates × scorer × charge` combination from string specs. This
//! module enumerates that grid (a [`StageGrid`] with a pruning
//! predicate for nonsensical pairs), fans it out over the
//! [`Sweep`] engine under common random numbers, scores
//! each cell on three minimised objectives — **model stretch** (Eq. 5
//! placement quality replayed over the decision log), **node-busy CV**
//! (balance) and **drop rate** — and extracts the 3-D Pareto front with
//! a deterministic dominance pass.
//!
//! Determinism, spelled out (DESIGN.md §13 carries the argument):
//!
//! * every cell replays the *same* trace under the *same* seed
//!   (common random numbers) through the deterministic simulator;
//! * grid enumeration walks sorted stage names (the registry is
//!   `BTreeMap`-keyed), rows are slug-sorted, duplicate objective
//!   vectors keep the lexicographically smallest slug, and all float
//!   comparisons use [`f64::total_cmp`];
//! * the report serialises through the deterministic vendored `serde`
//!   writer, so two runs of the same configuration are byte-identical
//!   (`msweb experiments --pareto --test` runs the grid twice and
//!   diffs the JSON).
//!
//! Degenerate pipelines (all-drop runs, zero completions, NaN
//! metrics) are first-class: they classify as [`CellStatus::Degenerate`]
//! rows, excluded from the dominance pass, instead of panicking the
//! sweep.
//!
//! Each frontier point is finally re-driven through
//! [`analyze`] against an in-memory decision
//! log of the RSRC master/slave baseline, so the report names *which
//! pipeline stage* a winner first diverges at — not just that it wins.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use msweb_cluster::{
    analyze, ClusterConfig, ClusterSim, CollectingObserver, DecisionObserver, DecisionRecord,
    PolicyKind, ReplayOptions, SchedulerRegistry, StageSpec, TraceEvent, TraceLog,
};
use msweb_workload::{ucb, DemandModel, Trace};
use serde::Serialize;

use crate::experiments::ExpConfig;
use crate::report::{f, Table};
use crate::sweep::Sweep;

/// The fixed workload every cell replays (common random numbers): the
/// UCB trace at λ = 2000/s on p = 32 nodes, 1/r = 40 — the same cell
/// the unknown-sizes sweep uses, so frontier numbers are comparable
/// across experiments.
const P: usize = 32;
const MASTERS: usize = 8;
const INV_R: f64 = 40.0;
const LAMBDA: f64 = 2000.0;

/// A pruning verdict: `None` keeps the spec, `Some(reason)` skips it.
pub type PrunePredicate = fn(&StageSpec) -> Option<&'static str>;

/// The default pruning rules. Each removes compositions that cannot
/// add information to the search, never ones that are merely unusual —
/// hybrids are the point of the sweep:
///
/// 1. **Dense-scan duplicates** — `min-rsrc`/`min-rsrc-reserve`
///    produce byte-identical placements to `rsrc-indexed`/
///    `rsrc-indexed-reserve` by construction (pinned by the decision
///    index fixtures), so the dense twins are pure duplicates.
/// 2. **Dead scorer** — with `entry-only` candidates there is exactly
///    one candidate, so every scorer picks the same node; the scorer
///    axis is pinned to `rsrc-indexed` and the rest pruned.
/// 3. **Reserve without reservation** — the `*-reserve` scorers
///    discount master capacity to keep headroom for the reservation
///    admission's redirected traffic; without a reservation stage
///    (`none`/`attained`) they model a protection that does not exist.
pub fn default_prune(spec: &StageSpec) -> Option<&'static str> {
    if spec.scorer == "min-rsrc" || spec.scorer == "min-rsrc-reserve" {
        return Some("dense scan duplicates the indexed scorer byte-for-byte");
    }
    if spec.candidates == "entry-only" && spec.scorer != "rsrc-indexed" {
        return Some("a single-candidate set makes the scorer irrelevant");
    }
    if spec.scorer.ends_with("-reserve") && !spec.admission.starts_with("reservation") {
        return Some("reserve-aware scorer without a reservation admission stage");
    }
    None
}

/// One axis per pipeline stage; the cross product (minus pruning and
/// filtering) is the searched composition space.
#[derive(Debug, Clone)]
pub struct StageGrid {
    label: String,
    entries: Vec<String>,
    admissions: Vec<String>,
    candidates: Vec<String>,
    scorers: Vec<String>,
    charges: Vec<String>,
    filter: Option<String>,
    prune: PrunePredicate,
}

/// What [`StageGrid::enumerate`] produced, with the bookkeeping the
/// report records.
#[derive(Debug, Clone)]
pub struct GridEnumeration {
    /// The specs to run, in sorted-axis enumeration order.
    pub specs: Vec<StageSpec>,
    /// Raw cross-product size before pruning/filtering.
    pub enumerated: usize,
    /// Cells removed by the pruning predicate.
    pub pruned: usize,
    /// Cells removed by the `--grid` substring filter.
    pub filtered: usize,
}

impl StageGrid {
    /// The full grid over every stage the registry knows, with one
    /// bounded instance per parameterised scorer family (`rsrc-p2:2`)
    /// so the grid stays finite. Add more instances with
    /// [`StageGrid::add_scorer`].
    pub fn full(reg: &SchedulerRegistry) -> Self {
        let mut scorers = reg.scorer_names();
        for family in reg.scorer_family_names() {
            if family == "rsrc-p2" {
                scorers.push("rsrc-p2:2".to_string());
            }
        }
        scorers.sort();
        StageGrid {
            label: "full".to_string(),
            entries: reg.entry_names(),
            admissions: reg.admission_names(),
            candidates: reg.candidate_names(),
            scorers,
            charges: reg.charge_names(),
            filter: None,
            prune: default_prune,
        }
    }

    /// The bounded CI smoke grid: every entry and candidate stage, the
    /// two admission extremes (`reservation`, `none`), four
    /// representative scorers and one charge stage — 48 cells after
    /// pruning, small enough to run twice per CI job for the
    /// byte-determinism check.
    pub fn smoke() -> Self {
        let s = |names: &[&str]| names.iter().map(|n| n.to_string()).collect();
        StageGrid {
            label: "smoke".to_string(),
            entries: s(&["least-connections", "rotation", "rotation-masters"]),
            admissions: s(&["none", "reservation"]),
            candidates: s(&["entry-only", "level-split", "pinned-slaves"]),
            scorers: s(&["gittins", "random", "rsrc-indexed", "rsrc-indexed-reserve"]),
            charges: s(&["split-demand"]),
            filter: None,
            prune: default_prune,
        }
    }

    /// Keep only cells whose rendered slug contains `filter` (the
    /// `--grid <filter>` CLI knob).
    pub fn with_filter(mut self, filter: impl Into<String>) -> Self {
        let filter = filter.into();
        if !filter.is_empty() {
            self.filter = Some(filter);
        }
        self
    }

    /// Replace the pruning predicate ([`default_prune`] by default).
    pub fn with_prune(mut self, prune: PrunePredicate) -> Self {
        self.prune = prune;
        self
    }

    /// Add an explicit scorer name (e.g. another family instance such
    /// as `rsrc-p2:4`).
    pub fn add_scorer(mut self, name: impl Into<String>) -> Self {
        self.scorers.push(name.into());
        self.scorers.sort();
        self.scorers.dedup();
        self
    }

    /// The grid's display label (`full`, `smoke`, plus the filter).
    pub fn label(&self) -> String {
        match &self.filter {
            Some(f) => format!("{} (filter: {f})", self.label),
            None => self.label.clone(),
        }
    }

    /// Walk the cross product in sorted-axis order, applying the
    /// pruning predicate and the slug filter. Deterministic: axis
    /// vectors are sorted and the walk order is fixed.
    pub fn enumerate(&self) -> GridEnumeration {
        let mut out = GridEnumeration {
            specs: Vec::new(),
            enumerated: 0,
            pruned: 0,
            filtered: 0,
        };
        for entry in &self.entries {
            for admission in &self.admissions {
                for candidates in &self.candidates {
                    for scorer in &self.scorers {
                        for charge in &self.charges {
                            out.enumerated += 1;
                            let spec = StageSpec {
                                region: None,
                                entry: entry.clone(),
                                admission: admission.clone(),
                                candidates: candidates.clone(),
                                scorer: scorer.clone(),
                                charge: charge.clone(),
                            };
                            if (self.prune)(&spec).is_some() {
                                out.pruned += 1;
                                continue;
                            }
                            if let Some(f) = &self.filter {
                                if !spec.render().contains(f.as_str()) {
                                    out.filtered += 1;
                                    continue;
                                }
                            }
                            out.specs.push(spec);
                        }
                    }
                }
            }
        }
        out
    }
}

/// Whether a cell entered the dominance pass.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum CellStatus {
    /// Finite objectives; eligible for the front.
    Scored,
    /// Excluded from the front; the payload names why. Degenerate
    /// metrics serialise as `null` (NaN has no JSON literal).
    Degenerate(String),
}

/// One grid cell's measured outcome.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ParetoRow {
    /// Rendered stage spec (the slug).
    pub spec: String,
    /// End-to-end mean stretch (informational; not an objective).
    pub stretch: f64,
    /// Objective 1: Eq. 5 model stretch over the cell's placements.
    pub model_stretch: f64,
    /// Objective 2: coefficient of variation of per-node busy time.
    pub node_busy_cv: f64,
    /// Objective 3: `dropped / (completed + dropped)`.
    pub drop_rate: f64,
    /// Requests completed.
    pub completed: u64,
    /// Requests dropped.
    pub dropped: u64,
    /// Scored, or degenerate with a reason.
    pub status: CellStatus,
}

/// A frontier point, with its first-divergent-stage attribution
/// against the RSRC baseline log.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FrontierRow {
    /// Rendered stage spec.
    pub spec: String,
    /// Objective 1 (minimised).
    pub model_stretch: f64,
    /// Objective 2 (minimised).
    pub node_busy_cv: f64,
    /// Objective 3 (minimised).
    pub drop_rate: f64,
    /// True when the spec is not one of the paper's built-in policy
    /// compositions — a hybrid the paper never evaluated.
    pub hybrid: bool,
    /// Fraction of baseline decisions this spec re-drives differently.
    pub divergence_rate: f64,
    /// First pipeline stage whose output disagrees with the recorded
    /// baseline decision stream (`None`: the spec is a fixed point of
    /// the baseline log — in particular the baseline itself).
    pub first_divergent_stage: Option<String>,
    /// Decision sequence number of the first disagreement.
    pub first_divergence_seq: Option<u64>,
    /// Driver request id of the first disagreement.
    pub first_divergence_req: Option<u64>,
    /// Replay-model stretch delta vs the baseline (negative: better).
    pub model_stretch_delta: f64,
    /// Replay-model node-busy-CV delta vs the baseline.
    pub node_busy_cv_delta: f64,
}

/// The complete sweep result: every cell row plus the extracted front.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ParetoReport {
    /// Requests per replay.
    pub requests: usize,
    /// Root seed (every cell sees it verbatim — common random numbers).
    pub seed: u64,
    /// Cluster size.
    pub p: usize,
    /// Master count.
    pub masters: usize,
    /// Replay arrival rate, requests/second.
    pub lambda: f64,
    /// The RSRC baseline spec frontier points are attributed against.
    pub baseline: String,
    /// Grid label (`full`/`smoke` plus any filter).
    pub grid: String,
    /// Raw cross-product size.
    pub enumerated: usize,
    /// Cells the pruning predicate removed.
    pub pruned: usize,
    /// Cells the `--grid` filter removed.
    pub filtered: usize,
    /// Cells actually run.
    pub cells: usize,
    /// Cells that classified as degenerate.
    pub degenerate_cells: usize,
    /// Every cell, slug-sorted.
    pub rows: Vec<ParetoRow>,
    /// The Pareto front, sorted by model stretch then slug.
    pub front: Vec<FrontierRow>,
}

/// Shared-handle observer building an in-memory v2 event log.
/// [`CollectingObserver`] stores decisions and other events in
/// separate vectors, losing the interleaving `analyze` needs (meta
/// first, then decisions/ticks/completions in order) — this one keeps
/// a single stream.
#[derive(Clone, Default)]
struct EventLog(Rc<RefCell<Vec<TraceEvent>>>);

impl DecisionObserver for EventLog {
    fn observe(&mut self, record: &DecisionRecord) {
        self.0
            .borrow_mut()
            .push(TraceEvent::Decision(record.clone()));
    }
    fn event(&mut self, event: &TraceEvent) {
        self.0.borrow_mut().push(event.clone());
    }
}

/// The RSRC master/slave baseline every frontier point is attributed
/// against.
pub fn baseline_spec() -> StageSpec {
    StageSpec::for_policy(PolicyKind::MasterSlave)
}

/// Rendered specs of the paper's built-in policies (the 8 `PolicyKind`
/// variants; several share one composition). A frontier spec outside
/// this set is a hybrid the paper never evaluated.
pub fn builtin_policy_slugs() -> BTreeSet<String> {
    [
        PolicyKind::Flat,
        PolicyKind::MsPrime,
        PolicyKind::MsAllMasters,
        PolicyKind::Switch,
        PolicyKind::MsNoReservation,
        PolicyKind::MasterSlave,
        PolicyKind::MsNoSampling,
        PolicyKind::Redirect,
    ]
    .into_iter()
    .map(|p| StageSpec::for_policy(p).render())
    .collect()
}

/// Run one cell: compose the spec, replay the shared trace, and score
/// the three objectives. Never panics: compositions that fail to
/// build, complete nothing, or produce non-finite metrics come back as
/// [`CellStatus::Degenerate`] rows.
fn score_cell(trace: &Trace, a0: f64, r0: f64, spec: &StageSpec, seed: u64) -> ParetoRow {
    let slug = spec.render();
    let degenerate = |reason: String| ParetoRow {
        spec: slug.clone(),
        stretch: f64::NAN,
        model_stretch: f64::NAN,
        node_busy_cv: f64::NAN,
        drop_rate: f64::NAN,
        completed: 0,
        dropped: 0,
        status: CellStatus::Degenerate(reason),
    };
    let cfg = ClusterConfig::simulation(P, PolicyKind::MasterSlave)
        .with_masters(MASTERS)
        .with_seed(seed);
    let mut scheduler = match SchedulerRegistry::builtin().compose(&cfg, spec, a0, r0) {
        Ok(s) => s,
        Err(e) => return degenerate(format!("compose failed: {e}")),
    };
    let observer: Rc<RefCell<CollectingObserver>> = Rc::default();
    scheduler.set_observer(Some(Box::new(Rc::clone(&observer))));
    let mut sim = ClusterSim::with_scheduler(cfg, scheduler)
        .with_priors(a0, r0)
        .with_spec_label(slug.clone());
    let summary = sim.run(trace);

    let placements: Vec<(usize, u64, u64)> = observer
        .borrow()
        .records
        .iter()
        .map(|r| (r.chosen, r.at_us, r.demand_us))
        .collect();
    let model_stretch = msweb_cluster::sched::model_stretch(&placements, P, None);
    let attempted = summary.completed + summary.dropped;
    let drop_rate = if attempted == 0 {
        f64::NAN
    } else {
        summary.dropped as f64 / attempted as f64
    };
    let status = if summary.completed == 0 {
        CellStatus::Degenerate("zero completions".to_string())
    } else if !model_stretch.is_finite()
        || !summary.node_busy_cv.is_finite()
        || !summary.stretch.is_finite()
        || !drop_rate.is_finite()
    {
        CellStatus::Degenerate("non-finite metrics".to_string())
    } else {
        CellStatus::Scored
    };
    ParetoRow {
        spec: slug,
        stretch: summary.stretch,
        model_stretch,
        node_busy_cv: summary.node_busy_cv,
        drop_rate,
        completed: summary.completed,
        dropped: summary.dropped,
        status,
    }
}

/// Record the baseline replay into an in-memory event log (one `meta`
/// segment, replayable by [`analyze`]).
fn record_baseline(trace: &Trace, a0: f64, r0: f64, seed: u64) -> TraceLog {
    let spec = baseline_spec();
    let cfg = ClusterConfig::simulation(P, PolicyKind::MasterSlave)
        .with_masters(MASTERS)
        .with_seed(seed);
    let mut scheduler = SchedulerRegistry::builtin()
        .compose(&cfg, &spec, a0, r0)
        .expect("the RSRC baseline composes");
    let log = EventLog::default();
    scheduler.set_observer(Some(Box::new(log.clone())));
    let mut sim = ClusterSim::with_scheduler(cfg, scheduler)
        .with_priors(a0, r0)
        .with_spec_label(spec.render());
    sim.run(trace);
    TraceLog {
        events: log.0.take(),
        warnings: Vec::new(),
    }
}

/// `true` when `a` Pareto-dominates `b` under minimisation: no worse
/// on every objective, strictly better on at least one. Total order
/// via [`f64::total_cmp`], so NaN could never panic here even though
/// degenerate rows are filtered before this point.
fn dominates(a: &ParetoRow, b: &ParetoRow) -> bool {
    use std::cmp::Ordering::Greater;
    let pairs = [
        (a.model_stretch, b.model_stretch),
        (a.node_busy_cv, b.node_busy_cv),
        (a.drop_rate, b.drop_rate),
    ];
    if pairs.iter().any(|(x, y)| x.total_cmp(y) == Greater) {
        return false;
    }
    pairs.iter().any(|(x, y)| x.total_cmp(y).is_lt())
}

/// The deterministic dominance pass over slug-sorted scored rows:
/// exact-duplicate objective vectors keep the lexicographically
/// smallest slug (the tie-break), then every non-dominated survivor is
/// on the front.
fn pareto_front(rows: &[ParetoRow]) -> Vec<ParetoRow> {
    let mut seen = BTreeSet::new();
    let scored: Vec<&ParetoRow> = rows
        .iter()
        .filter(|r| r.status == CellStatus::Scored)
        .filter(|r| {
            seen.insert((
                r.model_stretch.to_bits(),
                r.node_busy_cv.to_bits(),
                r.drop_rate.to_bits(),
            ))
        })
        .collect();
    scored
        .iter()
        .filter(|a| !scored.iter().any(|b| dominates(b, a)))
        .map(|r| (*r).clone())
        .collect()
}

/// Attribute one frontier point against the baseline log: replay the
/// spec over the recorded decision stream and name the first pipeline
/// stage that disagrees.
fn attribute(log: &TraceLog, row: &ParetoRow, builtin: &BTreeSet<String>) -> FrontierRow {
    let spec = StageSpec::parse(&row.spec).expect("frontier slugs are rendered specs");
    let opts = ReplayOptions {
        spec: Some(spec),
        run: 0,
    };
    let rep = analyze(log, &opts).expect("the in-memory baseline log replays");
    FrontierRow {
        spec: row.spec.clone(),
        model_stretch: row.model_stretch,
        node_busy_cv: row.node_busy_cv,
        drop_rate: row.drop_rate,
        hybrid: !builtin.contains(&row.spec),
        divergence_rate: rep.divergence_rate,
        first_divergent_stage: rep
            .first_disagreement
            .as_ref()
            .map(|d| d.stage.as_str().to_string()),
        first_divergence_seq: rep.first_disagreement.as_ref().map(|d| d.seq),
        first_divergence_req: rep.first_disagreement.as_ref().map(|d| d.req),
        model_stretch_delta: rep.model_stretch_delta,
        node_busy_cv_delta: rep.node_busy_cv_delta,
    }
}

/// Run the sweep: enumerate `grid`, replay every cell under common
/// random numbers, extract the front, and attribute each frontier
/// point against the RSRC baseline.
pub fn pareto(exp: &ExpConfig, grid: &StageGrid) -> ParetoReport {
    let a0 = ucb().arrival_ratio_a();
    let r0 = 1.0 / INV_R;
    let trace = ucb()
        .generate(exp.requests, &DemandModel::simulation(INV_R), exp.seed)
        .scaled_to_rate(LAMBDA);
    pareto_on_trace(exp, grid, &trace, a0, r0)
}

/// [`pareto`] over an explicit trace (exposed for the degenerate-grid
/// tests, which drive an empty trace through the full machinery).
fn pareto_on_trace(
    exp: &ExpConfig,
    grid: &StageGrid,
    trace: &Trace,
    a0: f64,
    r0: f64,
) -> ParetoReport {
    let en = grid.enumerate();
    let log = record_baseline(trace, a0, r0, exp.seed);
    let mut rows = Sweep::new(en.specs, exp.seed)
        .common_seed()
        .parallelism(exp.jobs)
        .run(|spec, seed| score_cell(trace, a0, r0, spec, seed));
    rows.sort_by(|a, b| a.spec.cmp(&b.spec));
    let degenerate_cells = rows
        .iter()
        .filter(|r| r.status != CellStatus::Scored)
        .count();
    let builtin = builtin_policy_slugs();
    let mut front: Vec<FrontierRow> = pareto_front(&rows)
        .iter()
        .map(|row| attribute(&log, row, &builtin))
        .collect();
    front.sort_by(|a, b| {
        a.model_stretch
            .total_cmp(&b.model_stretch)
            .then_with(|| a.spec.cmp(&b.spec))
    });
    ParetoReport {
        requests: exp.requests,
        seed: exp.seed,
        p: P,
        masters: MASTERS,
        lambda: LAMBDA,
        baseline: baseline_spec().render(),
        grid: grid.label(),
        enumerated: en.enumerated,
        pruned: en.pruned,
        filtered: en.filtered,
        cells: rows.len(),
        degenerate_cells,
        rows,
        front,
    }
}

impl ParetoReport {
    /// Serialise as pretty-printed JSON (byte-deterministic for a
    /// fixed configuration; ends with a newline).
    pub fn to_json(&self) -> String {
        serde::to_json_string_pretty(self) + "\n"
    }

    /// Render the human-readable frontier table the CLI prints.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== PARETO: stage-space sweep ({} grid) ==\n\
             UCB x {} requests at λ={}/s, p={}, m={}, seed {} (common random numbers)\n\
             {} cells enumerated, {} pruned, {} filtered -> {} run ({} degenerate)\n\
             baseline: {}\n",
            self.grid,
            self.requests,
            self.lambda,
            self.p,
            self.masters,
            self.seed,
            self.enumerated,
            self.pruned,
            self.filtered,
            self.cells,
            self.degenerate_cells,
            self.baseline,
        );
        let mut t = Table::new(vec![
            "spec",
            "model stretch",
            "busy CV",
            "drop%",
            "hybrid",
            "div%",
            "first divergent stage",
        ]);
        for row in &self.front {
            t.row(vec![
                row.spec.clone(),
                f(row.model_stretch, 4),
                f(row.node_busy_cv, 3),
                f(row.drop_rate * 100.0, 2),
                if row.hybrid { "yes" } else { "" }.to_string(),
                f(row.divergence_rate * 100.0, 1),
                match &row.first_divergent_stage {
                    Some(stage) => {
                        format!("{} (seq {})", stage, row.first_divergence_seq.unwrap_or(0))
                    }
                    None => "- (fixed point of the baseline)".to_string(),
                },
            ]);
        }
        out.push_str(&t.render());
        let hybrids = self.front.iter().filter(|r| r.hybrid).count();
        let _ = writeln!(
            out,
            "front: {} points, {} hybrid (not among the paper's built-in policies)",
            self.front.len(),
            hybrids
        );
        for row in self.rows.iter().filter(|r| r.status != CellStatus::Scored) {
            if let CellStatus::Degenerate(reason) = &row.status {
                let _ = writeln!(out, "degenerate: {}  ({reason})", row.spec);
            }
        }
        out
    }
}

/// The `--test` gate: the front must be non-empty, contain at least
/// one hybrid, and carry first-divergent-stage attribution on every
/// point (a missing attribution is only legal for a fixed point of the
/// baseline log, i.e. zero divergence).
pub fn pareto_check(report: &ParetoReport) -> Result<(), String> {
    if report.front.is_empty() {
        return Err(format!(
            "empty Pareto front ({} cells run, {} degenerate)",
            report.cells, report.degenerate_cells
        ));
    }
    if !report.front.iter().any(|r| r.hybrid) {
        return Err("no hybrid composition on the front".to_string());
    }
    for row in &report.front {
        if row.first_divergent_stage.is_none() && row.divergence_rate != 0.0 {
            return Err(format!(
                "{}: diverges ({:.2}%) but carries no stage attribution",
                row.spec,
                row.divergence_rate * 100.0
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpConfig {
        ExpConfig {
            requests: 600,
            live_requests: 0,
            seed: 42,
            jobs: 1,
        }
    }

    #[test]
    fn grid_slugs_round_trip_through_parse() {
        for grid in [
            StageGrid::full(&SchedulerRegistry::builtin()),
            StageGrid::smoke(),
        ] {
            let en = grid.enumerate();
            assert!(!en.specs.is_empty());
            for spec in &en.specs {
                let slug = spec.render();
                assert_eq!(
                    &StageSpec::parse(&slug).unwrap(),
                    spec,
                    "slug <-> spec fixed point broken for {slug}"
                );
            }
        }
    }

    #[test]
    fn full_grid_shape_and_pruning() {
        let grid = StageGrid::full(&SchedulerRegistry::builtin());
        let en = grid.enumerate();
        // 3 entries x 4 admissions x 3 candidates x 10 scorers x 2 charges.
        assert_eq!(en.enumerated, 720);
        assert_eq!(en.enumerated - en.pruned, en.specs.len());
        assert_eq!(en.filtered, 0);
        // The baseline must be a grid point.
        assert!(en.specs.contains(&baseline_spec()));
        // Pruned families are really gone.
        for spec in &en.specs {
            assert!(default_prune(spec).is_none());
        }
        // Filtering is a pure subset.
        let filtered = StageGrid::full(&SchedulerRegistry::builtin())
            .with_filter("gittins")
            .enumerate();
        assert!(!filtered.specs.is_empty());
        assert!(filtered.specs.len() < en.specs.len());
        assert!(filtered.specs.iter().all(|s| s.scorer == "gittins"));
    }

    #[test]
    fn dominance_pass_is_deterministic_and_excludes_degenerates() {
        let row = |slug: &str, ms: f64, cv: f64, dr: f64, status: CellStatus| ParetoRow {
            spec: slug.to_string(),
            stretch: ms,
            model_stretch: ms,
            node_busy_cv: cv,
            drop_rate: dr,
            completed: 10,
            dropped: 0,
            status,
        };
        let rows = vec![
            row("a", 1.0, 0.5, 0.0, CellStatus::Scored),
            // Dominated by "a" on stretch.
            row("b", 2.0, 0.5, 0.0, CellStatus::Scored),
            // Trades stretch for balance: on the front.
            row("c", 1.5, 0.2, 0.0, CellStatus::Scored),
            // Duplicate vector of "a": slug tie-break keeps "a".
            row("d", 1.0, 0.5, 0.0, CellStatus::Scored),
            // NaN objectives never reach the pass.
            row(
                "e",
                f64::NAN,
                f64::NAN,
                f64::NAN,
                CellStatus::Degenerate("zero completions".into()),
            ),
        ];
        let front = pareto_front(&rows);
        let slugs: Vec<&str> = front.iter().map(|r| r.spec.as_str()).collect();
        assert_eq!(slugs, ["a", "c"]);
    }

    #[test]
    fn degenerate_grid_completes_without_panicking() {
        // An empty trace drives every composition to zero completions —
        // the whole grid is degenerate, the front is empty, nothing
        // panics, and the report still serialises to valid JSON.
        let empty = ucb().generate(0, &DemandModel::simulation(INV_R), 7);
        let grid = StageGrid::smoke().with_filter("reservation/level-split");
        let report = pareto_on_trace(
            &quick(),
            &grid,
            &empty,
            ucb().arrival_ratio_a(),
            1.0 / INV_R,
        );
        assert!(report.cells > 0);
        assert_eq!(report.degenerate_cells, report.cells);
        assert!(report.front.is_empty());
        assert!(report
            .rows
            .iter()
            .all(|r| r.status == CellStatus::Degenerate("zero completions".to_string())));
        // NaN metrics serialise as null, keeping the JSON valid.
        assert!(report.to_json().contains("null"));
        assert!(pareto_check(&report).is_err());
    }

    #[test]
    fn unknown_stages_degrade_gracefully() {
        let spec =
            StageSpec::parse("warp-drive/none/entry-only/rsrc-indexed/split-demand").unwrap();
        let trace = ucb().generate(50, &DemandModel::simulation(INV_R), 3);
        let row = score_cell(&trace, 0.4, 1.0 / INV_R, &spec, 3);
        match row.status {
            CellStatus::Degenerate(reason) => {
                assert!(reason.contains("compose failed"), "{reason}")
            }
            other => panic!("expected degenerate, got {other:?}"),
        }
    }

    #[test]
    fn smoke_sweep_has_attributed_hybrid_front_and_is_deterministic() {
        let exp = quick();
        let grid = StageGrid::smoke();
        let report = pareto(&exp, &grid);
        pareto_check(&report).unwrap();
        // The baseline replay is a fixed point of its own log, so any
        // frontier point that diverges must name a stage.
        for row in &report.front {
            if row.spec == report.baseline {
                assert_eq!(row.divergence_rate, 0.0, "baseline must self-replay");
                assert!(row.first_divergent_stage.is_none());
            } else {
                assert!(
                    row.first_divergent_stage.is_some() || row.divergence_rate == 0.0,
                    "{}: missing attribution",
                    row.spec
                );
            }
        }
        // Byte-determinism: an identical second run serialises
        // identically (the CI smoke runs the same check end to end).
        let again = pareto(&exp, &grid);
        assert_eq!(report.to_json(), again.to_json());
    }
}
