//! The parallel sweep executor behind every experiment grid.
//!
//! A [`Sweep`] owns a list of *cells* (one unit of work each — a grid
//! point, an ablation setting, a policy) plus a root seed, and maps a
//! worker function over them on up to `min(workers, cells)` scoped
//! threads via [`msweb_simcore::parallel_map`]. Two properties make the
//! parallelism invisible in the results:
//!
//! * **Pre-assigned seeds.** Each cell's seed is a pure function of
//!   `(root_seed, cell index)` — either [`split_seed`] (independent
//!   streams per cell) or the root seed verbatim (common random numbers
//!   for cross-cell comparisons). Nothing about scheduling order can leak
//!   into a cell's randomness.
//! * **Submission-order collection.** Results come back in cell order
//!   regardless of completion order.
//!
//! Together: the same root seed produces byte-identical results at any
//! parallelism level, which `tests/determinism.rs` pins down at the
//! [`ExperimentReport`](crate::runner::ExperimentReport) level.

use msweb_simcore::{parallel_map, split_seed};

/// How a sweep derives each cell's seed from the root seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedMode {
    /// Every cell gets an independent stream: `split_seed(root, index)`.
    /// The right choice when cells are compared *within themselves*
    /// (e.g. four policies replaying the same per-cell trace).
    Split,
    /// Every cell sees the root seed verbatim — common random numbers.
    /// The right choice when the sweep varies one knob and compares
    /// *across* cells, so the workload must be held fixed.
    Common,
}

/// A deterministic, optionally parallel map over experiment cells.
///
/// ```
/// use msweb_bench::Sweep;
///
/// let doubled = Sweep::new(vec![1u64, 2, 3], 42)
///     .parallelism(2)
///     .run(|&cell, _seed| cell * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
#[derive(Debug, Clone)]
pub struct Sweep<C> {
    cells: Vec<C>,
    root_seed: u64,
    mode: SeedMode,
    workers: usize,
}

impl<C: Sync> Sweep<C> {
    /// A sweep over `cells` rooted at `root_seed`, with split per-cell
    /// seeds and all-cores parallelism (`0`).
    pub fn new(cells: Vec<C>, root_seed: u64) -> Self {
        Sweep {
            cells,
            root_seed,
            mode: SeedMode::Split,
            workers: 0,
        }
    }

    /// Use common random numbers: every cell receives `root_seed` itself.
    pub fn common_seed(mut self) -> Self {
        self.mode = SeedMode::Common;
        self
    }

    /// Set the worker-thread budget: `0` means all available cores, `1`
    /// runs inline on the calling thread. The actual thread count is
    /// clamped to the number of cells.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The seed the `index`-th cell will receive.
    pub fn seed_for(&self, index: usize) -> u64 {
        match self.mode {
            SeedMode::Split => split_seed(self.root_seed, index as u64),
            SeedMode::Common => self.root_seed,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the sweep has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Execute `worker(cell, seed)` for every cell and collect the
    /// results in cell order. `worker` must be a pure function of its
    /// arguments (plus captured immutable state) for the determinism
    /// guarantee to hold.
    ///
    /// `worker` must also **not panic**: a panicking worker poisons the
    /// scoped thread pool and aborts the whole sweep, losing every
    /// other cell's result. Degenerate-prone workers (grid searches
    /// over compositions that may complete nothing or produce NaN
    /// metrics — see [`mod@crate::pareto`]) should classify failures
    /// into a typed row (e.g.
    /// [`CellStatus::Degenerate`](crate::pareto::CellStatus)) and
    /// return it, so one broken cell costs one row, not the sweep.
    pub fn run<R, F>(&self, worker: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&C, u64) -> R + Sync,
    {
        parallel_map(&self.cells, self.workers, |i, cell| {
            worker(cell, self.seed_for(i))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_cell_order_at_any_parallelism() {
        let cells: Vec<u64> = (0..37).collect();
        let reference = Sweep::new(cells.clone(), 7)
            .parallelism(1)
            .run(|&c, seed| (c, seed));
        for workers in [0, 2, 3, 8, 64] {
            let got = Sweep::new(cells.clone(), 7)
                .parallelism(workers)
                .run(|&c, seed| (c, seed));
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn split_seeds_are_distinct_and_stable() {
        let sweep = Sweep::new(vec![(); 100], 99);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            assert!(seen.insert(sweep.seed_for(i)), "seed collision at {i}");
            assert_eq!(sweep.seed_for(i), sweep.seed_for(i));
        }
    }

    #[test]
    fn common_seed_is_root_everywhere() {
        let sweep = Sweep::new(vec![(); 10], 1234).common_seed();
        for i in 0..10 {
            assert_eq!(sweep.seed_for(i), 1234);
        }
    }

    #[test]
    fn degenerate_cells_come_back_as_values_not_panics() {
        // The contract degenerate-prone workers rely on: a cell that
        // "fails" returns an Err value and the sweep carries it home in
        // cell order alongside the successes.
        let cells: Vec<u64> = (0..16).collect();
        let out: Vec<Result<u64, String>> = Sweep::new(cells, 5).parallelism(4).run(|&c, _| {
            if c % 3 == 0 {
                Err(format!("degenerate cell {c}"))
            } else {
                Ok(c)
            }
        });
        assert_eq!(out.len(), 16);
        assert_eq!(out[0], Err("degenerate cell 0".to_string()));
        assert_eq!(out[1], Ok(1));
        assert_eq!(out.iter().filter(|r| r.is_err()).count(), 6);
    }

    #[test]
    fn empty_sweep_runs() {
        let out: Vec<u64> = Sweep::new(Vec::<u8>::new(), 0).run(|_, s| s);
        assert!(out.is_empty());
        assert!(Sweep::new(Vec::<u8>::new(), 0).is_empty());
        assert_eq!(Sweep::new(vec![1, 2], 0).len(), 2);
    }
}
