//! Plain-text table formatting for the experiment reports.

/// A simple fixed-width text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (cells are pre-formatted strings).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with per-column widths; first column left-aligned, the rest
    /// right-aligned.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<width$}", c, width = widths[i]));
                } else {
                    line.push_str(&format!("  {:>width$}", c, width = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format a float with the given decimals. Non-finite values (the
/// signature of a degenerate cell) render as `-` instead of `NaN`/`inf`
/// so tables stay readable and width-stable.
pub fn f(x: f64, decimals: usize) -> String {
    if !x.is_finite() {
        return "-".to_string();
    }
    format!("{x:.decimals$}")
}

/// Format a percentage with sign; non-finite renders as `-`.
pub fn pct(x: f64) -> String {
    if !x.is_finite() {
        return "-".to_string();
    }
    format!("{x:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1.0"]);
        t.row(vec!["b", "12.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
        // Right-aligned numbers share the same end column.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(12.34), "+12.3%");
        assert_eq!(pct(-5.0), "-5.0%");
    }

    #[test]
    fn non_finite_renders_as_dash() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(f(x, 3), "-");
            assert_eq!(pct(x), "-");
        }
    }
}
