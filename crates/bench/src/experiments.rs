//! One function per table/figure of the paper's evaluation section.
//!
//! | function | paper artifact |
//! |----------|----------------|
//! | [`fig3`] | Figure 3 — analytic M/S vs Flat and vs M/S′ |
//! | [`tab1`] | Table 1 — trace characteristics |
//! | [`tab2`] | Table 2 — workload parameter grid |
//! | [`fig4`] | Figure 4 — % improvement of M/S over M/S-ns / M/S-nr / M/S-1 |
//! | [`fig5`] | Figure 5 — fixed-m sensitivity |
//! | [`tab3`] | Table 3 — live-vs-simulated validation |
//! | [`ablation_staleness`] / [`ablation_reserve`] / [`ablation_redirect`] / [`ablation_theta_rule`] | design-choice ablations |

use std::path::Path;
use std::time::Duration;

use msweb_cluster::{
    simulate, table2_grid, ClusterConfig, GridCell, JsonlSink, PolicyKind, RunOptions, RunSummary,
};
use msweb_emu::{emulate, emulate_with, live_scheduler, LiveConfig, LiveRunOptions};
use msweb_queueing::{plan, Fig3Config, Fig3Point, ThetaRule, Workload};
use msweb_workload::{adl, all_traces, ksu, ucb, DemandModel, Trace, TraceSpec, TraceSummary};
use serde::Serialize;

use crate::sweep::Sweep;

/// Global experiment sizing.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Requests per simulated replay.
    pub requests: usize,
    /// Requests per live (wall-clock) replay.
    pub live_requests: usize,
    /// Master RNG seed.
    pub seed: u64,
    /// Worker threads for the parallel sweeps: `0` = all cores, `1` =
    /// sequential. Results are independent of this value (see
    /// [`Sweep`]); only wall-clock time changes. The live Table 3 replay
    /// always runs sequentially regardless — concurrent wall-clock
    /// replays would contend for the same host CPUs and distort the
    /// measurement.
    pub jobs: usize,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            requests: 20_000,
            live_requests: 300,
            seed: 42,
            jobs: 0,
        }
    }
}

impl ExpConfig {
    /// A fast configuration for smoke tests and criterion benches.
    /// Sequential (`jobs = 1`) so criterion timings measure the work, not
    /// the pool.
    pub fn quick() -> Self {
        ExpConfig {
            requests: 2_000,
            live_requests: 120,
            seed: 42,
            jobs: 1,
        }
    }
}

fn spec_by_name(name: &str) -> TraceSpec {
    match name {
        "UCB" => ucb(),
        "KSU" => ksu(),
        "ADL" => adl(),
        other => panic!("unknown trace {other}"),
    }
}

/// Build the replay trace for a grid cell.
fn cell_trace(cell: &GridCell, n: usize, seed: u64) -> Trace {
    spec_by_name(cell.trace)
        .generate(n, &DemandModel::simulation(cell.inv_r), seed)
        .scaled_to_rate(cell.lambda)
}

/// Run one policy on one cell.
fn run_cell(cell: &GridCell, trace: &Trace, policy: PolicyKind, m: usize, seed: u64) -> RunSummary {
    let cfg = ClusterConfig::simulation(cell.p, policy)
        .with_masters(m)
        .with_seed(seed);
    simulate(cfg, trace, RunOptions::new()).summary
}

// ---------------------------------------------------------------- FIG 3

/// Figure 3: the analytic comparison grid (exact, no simulation).
pub fn fig3() -> Vec<Fig3Point> {
    msweb_queueing::figure3(&Fig3Config::default()).expect("paper sweep is feasible")
}

// ---------------------------------------------------------------- TAB 1

/// One Table 1 row: the paper's published characteristics next to the
/// measured characteristics of our synthetic regeneration.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Tab1Row {
    /// The published spec (paper constants).
    pub spec: TraceSpec,
    /// Summary of the generated trace.
    pub generated: TraceSummary,
}

/// Table 1: regenerate each trace and summarise it. Every trace is
/// generated from the same seed (common random numbers) so the rows stay
/// comparable to each other, as before the sweep rewiring.
pub fn tab1(n: usize, seed: u64) -> Vec<Tab1Row> {
    Sweep::new(all_traces(), seed)
        .common_seed()
        .parallelism(1)
        .run(|spec, seed| {
            let t = spec.generate(n, &DemandModel::simulation(40.0), seed);
            Tab1Row {
                generated: t.summary(),
                spec: spec.clone(),
            }
        })
}

// ---------------------------------------------------------------- TAB 2

/// One Table 2 row: a grid cell plus the analytic load it offers.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Tab2Row {
    /// The workload cell.
    pub cell: GridCell,
    /// Offered load per node, as a fraction of one node's capacity (the
    /// stability measure that decided which cells the grid keeps).
    pub offered_per_node: f64,
    /// Theorem-1 master count for the cell.
    pub m: usize,
}

/// Table 2: the reconstructed workload parameter grid, annotated with
/// each cell's analytic per-node load and planned master count.
pub fn tab2(exp: &ExpConfig) -> Vec<Tab2Row> {
    Sweep::new(table2_grid(), exp.seed)
        .common_seed()
        .parallelism(exp.jobs)
        .run(|cell, _seed| {
            let a = spec_by_name(cell.trace).arrival_ratio_a();
            let w = Workload::from_ratios(cell.lambda, a, 1200.0, 1.0 / cell.inv_r)
                .expect("grid keeps only stable cells");
            Tab2Row {
                offered_per_node: w.offered_load() / cell.p as f64,
                m: msweb_cluster::plan_masters(cell.p, cell.lambda, a, 1.0 / cell.inv_r, 1200.0),
                cell: cell.clone(),
            }
        })
}

// ---------------------------------------------------------------- FIG 4

/// One bar group of Figure 4.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig4Row {
    /// The workload cell.
    pub cell: GridCell,
    /// Theorem-1 master count used by all M/S variants.
    pub m: usize,
    /// Stretch under the full M/S optimisation.
    pub ms: RunSummary,
    /// Stretch without demand sampling.
    pub ns: RunSummary,
    /// Stretch without reservation.
    pub nr: RunSummary,
    /// Stretch with every node a master (no separation).
    pub m1: RunSummary,
}

impl Fig4Row {
    /// `(S(M/S-ns)/S(M/S) − 1) × 100` — the sampling benefit.
    pub fn imp_ns_pct(&self) -> f64 {
        self.ms.improvement_over_pct(&self.ns)
    }
    /// The reservation benefit.
    pub fn imp_nr_pct(&self) -> f64 {
        self.ms.improvement_over_pct(&self.nr)
    }
    /// The separation benefit.
    pub fn imp_m1_pct(&self) -> f64 {
        self.ms.improvement_over_pct(&self.m1)
    }
}

/// Figure 4 for one cluster size (`p` = 32 for (a), 128 for (b)).
///
/// Each grid cell gets an independent split seed: the four policies
/// within a cell still replay the identical trace (the comparison that
/// matters is within the cell), but cells no longer share arrival
/// randomness, and the sweep parallelises freely across `exp.jobs`
/// workers without changing any number.
pub fn fig4(p: usize, exp: &ExpConfig) -> Vec<Fig4Row> {
    let cells: Vec<GridCell> = table2_grid().into_iter().filter(|c| c.p == p).collect();
    Sweep::new(cells, exp.seed)
        .parallelism(exp.jobs)
        .run(|cell, seed| {
            fig4_cell(
                cell,
                &ExpConfig {
                    seed,
                    ..exp.clone()
                },
            )
        })
}

/// One Figure 4 bar group (exposed separately for the benches).
pub fn fig4_cell(cell: &GridCell, exp: &ExpConfig) -> Fig4Row {
    let spec = spec_by_name(cell.trace);
    let trace = cell_trace(cell, exp.requests, exp.seed);
    let m = msweb_cluster::plan_masters(
        cell.p,
        cell.lambda,
        spec.arrival_ratio_a(),
        1.0 / cell.inv_r,
        1200.0,
    );
    Fig4Row {
        m,
        ms: run_cell(cell, &trace, PolicyKind::MasterSlave, m, exp.seed),
        ns: run_cell(cell, &trace, PolicyKind::MsNoSampling, m, exp.seed),
        nr: run_cell(cell, &trace, PolicyKind::MsNoReservation, m, exp.seed),
        m1: run_cell(cell, &trace, PolicyKind::MsAllMasters, m, exp.seed),
        cell: cell.clone(),
    }
}

// ---------------------------------------------------------------- FIG 5

/// One bar of Figure 5.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig5Row {
    /// The workload cell.
    pub cell: GridCell,
    /// The fixed master count (from the paper's r=1/60, a=0.44 sampling).
    pub m_fixed: usize,
    /// The per-cell adaptive master count.
    pub m_adaptive: usize,
    /// Stretch with the fixed m.
    pub fixed: RunSummary,
    /// Stretch with the adaptive m.
    pub adaptive: RunSummary,
}

impl Fig5Row {
    /// Degradation of fixed-m relative to adaptive-m, percent (positive =
    /// fixed is worse).
    pub fn degradation_pct(&self) -> f64 {
        (self.fixed.stretch / self.adaptive.stretch - 1.0) * 100.0
    }
}

/// Figure 5: the twelve bar groups from the paper's caption. The master
/// count is fixed from sampling `r = 1/60, a = 0.44` at λ = 750 (p = 32)
/// and λ = 3000 (p = 128) — the paper derives 6 and 25; our cleaner root
/// derivation gives 5 and 20 — then the traces are replayed across their
/// full rate range with `1/r` varying inversely ({160, 80, 40, 20}) so
/// every group stays within the replayable load range (the paper's "r
/// varies from 1/20 to 1/160, λ varies" sensitivity sweep).
pub fn fig5(exp: &ExpConfig) -> Vec<Fig5Row> {
    let m32 = msweb_cluster::plan_masters(32, 750.0, 0.44, 1.0 / 60.0, 1200.0);
    let m128 = msweb_cluster::plan_masters(128, 3000.0, 0.44, 1.0 / 60.0, 1200.0);

    let groups: [(&'static str, [f64; 4]); 3] = [
        ("UCB", [1000.0, 2000.0, 4000.0, 8000.0]),
        ("KSU", [500.0, 1000.0, 2000.0, 4000.0]),
        ("ADL", [500.0, 1000.0, 2000.0, 4000.0]),
    ];
    let ratios = [160.0, 80.0, 40.0, 20.0];

    let mut cells = Vec::with_capacity(12);
    for (trace, rates) in groups {
        for (i, &lambda) in rates.iter().enumerate() {
            let p = if i < 2 { 32 } else { 128 };
            cells.push((
                GridCell {
                    trace,
                    p,
                    lambda,
                    inv_r: ratios[i],
                },
                if p == 32 { m32 } else { m128 },
            ));
        }
    }
    // Fixed and adaptive m replay the same per-cell trace; the comparison
    // is within each cell, so cells take independent split seeds.
    Sweep::new(cells, exp.seed)
        .parallelism(exp.jobs)
        .run(|(cell, m_fixed), seed| {
            let spec = spec_by_name(cell.trace);
            let trace_data = cell_trace(cell, exp.requests, seed);
            let m_adaptive = msweb_cluster::plan_masters(
                cell.p,
                cell.lambda,
                spec.arrival_ratio_a(),
                1.0 / cell.inv_r,
                1200.0,
            );
            Fig5Row {
                cell: cell.clone(),
                m_fixed: *m_fixed,
                m_adaptive,
                fixed: run_cell(cell, &trace_data, PolicyKind::MasterSlave, *m_fixed, seed),
                adaptive: run_cell(cell, &trace_data, PolicyKind::MasterSlave, m_adaptive, seed),
            }
        })
}

// ---------------------------------------------------------------- TAB 3

/// One Table 3 row: the live (wall-clock) and simulated runs of M/S and
/// one alternative, for one trace at one rate.
///
/// Both execution paths produce the same [`RunSummary`] type — the live
/// emulation fills the node-balance fields from its worker threads just
/// as the simulator fills them from its OS model — so the row carries the
/// four full summaries and derives the paper's headline percentages from
/// them, with no field-by-field translation layer between the paths.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Tab3Row {
    /// Trace name.
    pub trace: &'static str,
    /// Replay rate, requests/second.
    pub rate: f64,
    /// The alternative policy M/S is compared against.
    pub versus: PolicyKind,
    /// Live run under M/S.
    pub live_ms: RunSummary,
    /// Simulated run under M/S.
    pub sim_ms: RunSummary,
    /// Live run under the alternative.
    pub live_alt: RunSummary,
    /// Simulated run under the alternative.
    pub sim_alt: RunSummary,
}

impl Tab3Row {
    /// Live (wall-clock) improvement of M/S over the alternative, percent.
    pub fn actual_pct(&self) -> f64 {
        (self.live_alt.stretch / self.live_ms.stretch - 1.0) * 100.0
    }

    /// Simulated improvement of M/S over the alternative, percent.
    pub fn simulated_pct(&self) -> f64 {
        (self.sim_alt.stretch / self.sim_ms.stretch - 1.0) * 100.0
    }
}

/// Table 3: replay each trace on the six-node live cluster and on the
/// simulator, comparing M/S against M/S-ns, M/S-nr and M/S-1 — the
/// paper's §5.2.2 validation (masters: UCB 3, KSU 1, ADL 1; r = 1/40).
///
/// `time_scale` compresses the live replay. Use 1.0 (real time, like the
/// paper's prototype) for faithful numbers: compressed replays shrink the
/// demands toward the host's thread-wakeup latency and the measurement
/// drowns in scheduler noise, especially on single-core hosts.
pub fn tab3(exp: &ExpConfig, time_scale: f64) -> Vec<Tab3Row> {
    tab3_traced(exp, time_scale, None)
}

/// [`tab3`] with an optional per-decision JSONL log.
///
/// When `decision_log` is set, every placement of every replay — live
/// *and* simulated — is appended to the file through the same
/// [`JsonlSink`], demonstrating that both substrates drive one scheduler
/// and emit schema-identical records. The file is appended to, not
/// truncated; callers own lifecycle (the `experiments` binary truncates
/// it once up front).
pub fn tab3_traced(exp: &ExpConfig, time_scale: f64, decision_log: Option<&Path>) -> Vec<Tab3Row> {
    // The paper replays every trace at 20 and 40 req/s. On our substrate
    // the stable rate range depends strongly on the trace's CGI share
    // (ADL at 44% CGI saturates six 110-req/s nodes above ~36 req/s), so
    // each trace runs at rates giving ~30% and ~60% utilisation — the
    // same load levels the paper's pairs targeted (see EXPERIMENTS.md).
    let mut cells: Vec<(TraceSpec, usize, f64)> = Vec::with_capacity(6);
    for (spec, m, rates) in [
        (ucb(), 3, [40.0, 80.0]),
        (ksu(), 1, [20.0, 40.0]),
        (adl(), 1, [10.0, 20.0]),
    ] {
        for rate in rates {
            cells.push((spec.clone(), m, rate));
        }
    }
    // Common seed (the workload is the comparison axis), and parallelism
    // pinned to 1: live replays measure wall-clock time, so running two
    // at once on the same host would contaminate both.
    let groups = Sweep::new(cells, exp.seed)
        .common_seed()
        .parallelism(1)
        .run(|(spec, m, rate), seed| {
            let trace = spec
                .generate(exp.live_requests, &DemandModel::sun_cluster(40.0), seed)
                .scaled_to_rate(*rate);

            let run_one = |policy: PolicyKind| -> (RunSummary, RunSummary) {
                let mut live_cfg = LiveConfig::sun_cluster(policy, *m);
                live_cfg.time_scale = time_scale;
                live_cfg.monitor_period = Duration::from_secs_f64(0.25 * time_scale.max(0.02));
                live_cfg.seed = seed;
                let live = match decision_log {
                    Some(path) => {
                        let mut scheduler = live_scheduler(&live_cfg, &trace);
                        if let Ok(sink) = JsonlSink::append(path) {
                            scheduler.set_observer(Some(Box::new(sink)));
                        }
                        emulate_with(&live_cfg, &trace, scheduler, LiveRunOptions::new()).summary
                    }
                    None => emulate(&live_cfg, &trace, LiveRunOptions::new()).summary,
                };
                let sim_cfg = ClusterConfig::simulation(6, policy)
                    .with_masters(*m)
                    .with_mu_h(110.0)
                    .with_seed(seed);
                let sim = {
                    let mut opts = RunOptions::new();
                    if let Some(path) = decision_log {
                        if let Ok(sink) = JsonlSink::append(path) {
                            opts = opts.observer(Box::new(sink));
                        }
                    }
                    simulate(sim_cfg, &trace, opts).summary
                };
                (live, sim)
            };

            let (live_ms, sim_ms) = run_one(PolicyKind::MasterSlave);
            [
                PolicyKind::MsNoSampling,
                PolicyKind::MsNoReservation,
                PolicyKind::MsAllMasters,
            ]
            .into_iter()
            .map(|versus| {
                let (live_alt, sim_alt) = run_one(versus);
                Tab3Row {
                    trace: spec.name,
                    rate: *rate,
                    versus,
                    live_ms: live_ms.clone(),
                    sim_ms: sim_ms.clone(),
                    live_alt,
                    sim_alt,
                }
            })
            .collect::<Vec<_>>()
        });
    groups.into_iter().flatten().collect()
}

// ---------------------------------------------------------------- ablations

/// Staleness ablation: how the load-monitor period affects M/S stretch.
pub fn ablation_staleness(exp: &ExpConfig) -> Vec<(u64, f64)> {
    let cell = GridCell {
        trace: "KSU",
        p: 32,
        lambda: 1000.0,
        inv_r: 80.0,
    };
    let trace = cell_trace(&cell, exp.requests, exp.seed);
    let m = msweb_cluster::plan_masters(32, 1000.0, ksu().arrival_ratio_a(), 1.0 / 80.0, 1200.0);
    // Common seed: the monitor period is the axis, everything else is
    // held fixed (common random numbers across cells).
    Sweep::new(vec![50u64, 100, 250, 500, 1000, 2000, 4000], exp.seed)
        .common_seed()
        .parallelism(exp.jobs)
        .run(|&period_ms, seed| {
            let cfg = ClusterConfig::simulation(cell.p, PolicyKind::MasterSlave)
                .with_masters(m)
                .with_monitor_period(msweb_simcore::SimDuration::from_millis(period_ms))
                .with_seed(seed);
            (
                period_ms,
                simulate(cfg, &trace, RunOptions::new()).summary.stretch,
            )
        })
}

/// Reserve ablation: sweep the master capacity reserve.
pub fn ablation_reserve(exp: &ExpConfig) -> Vec<(f64, f64)> {
    let cell = GridCell {
        trace: "UCB",
        p: 32,
        lambda: 2000.0,
        inv_r: 80.0,
    };
    let trace = cell_trace(&cell, exp.requests, exp.seed);
    let m = msweb_cluster::plan_masters(32, 2000.0, ucb().arrival_ratio_a(), 1.0 / 80.0, 1200.0);
    Sweep::new(vec![0.0, 0.25, 0.5, 0.75, 0.9], exp.seed)
        .common_seed()
        .parallelism(exp.jobs)
        .run(|&reserve, seed| {
            let cfg = ClusterConfig::simulation(cell.p, PolicyKind::MasterSlave)
                .with_masters(m)
                .with_master_reserve(reserve)
                .with_seed(seed);
            (
                reserve,
                simulate(cfg, &trace, RunOptions::new()).summary.stretch,
            )
        })
}

/// Redirect ablation: M/S with low-overhead remote execution vs the
/// HTTP-redirection alternative the paper rejects (client round-trip per
/// re-scheduled request).
pub fn ablation_redirect(exp: &ExpConfig) -> (f64, f64) {
    let cell = GridCell {
        trace: "ADL",
        p: 32,
        lambda: 1000.0,
        inv_r: 40.0,
    };
    let trace = cell_trace(&cell, exp.requests, exp.seed);
    let m = msweb_cluster::plan_masters(32, 1000.0, adl().arrival_ratio_a(), 1.0 / 40.0, 1200.0);
    let stretches = Sweep::new(
        vec![PolicyKind::MasterSlave, PolicyKind::Redirect],
        exp.seed,
    )
    .common_seed()
    .parallelism(exp.jobs)
    .run(|&policy, seed| run_cell(&cell, &trace, policy, m, seed).stretch);
    (stretches[0], stretches[1])
}

/// Front-end ablation (§2's motivation): Flat under ideal DNS rotation,
/// Flat under cache-skewed DNS, a least-connections switch, and M/S under
/// the same skewed DNS — showing that (a) skew hurts the flat cluster,
/// (b) a switch fixes balance but not class mixing, (c) M/S's cost-based
/// re-scheduling absorbs front-end skew for the expensive class.
pub fn ablation_frontend(exp: &ExpConfig) -> Vec<(&'static str, f64, f64)> {
    let trace = ksu()
        .generate(exp.requests, &DemandModel::simulation(40.0), exp.seed)
        .scaled_to_rate(1000.0);
    let m = msweb_cluster::plan_masters(32, 1000.0, ksu().arrival_ratio_a(), 1.0 / 40.0, 1200.0);
    let rows = vec![
        ("Flat, ideal DNS", PolicyKind::Flat, 0.0),
        ("Flat, skewed DNS (0.3)", PolicyKind::Flat, 0.3),
        ("Switch (least conn.)", PolicyKind::Switch, 0.0),
        ("M/S, skewed DNS (0.3)", PolicyKind::MasterSlave, 0.3),
        ("M/S, ideal DNS", PolicyKind::MasterSlave, 0.0),
    ];
    Sweep::new(rows, exp.seed)
        .common_seed()
        .parallelism(exp.jobs)
        .run(|&(name, policy, skew), seed| {
            let cfg = ClusterConfig::simulation(32, policy)
                .with_masters(m)
                .with_dns_skew(skew)
                .with_seed(seed);
            let s = simulate(cfg, &trace, RunOptions::new()).summary;
            (name, s.stretch, s.node_busy_cv)
        })
}

/// Dynamic-content caching ablation (the Swala extension): stretch
/// without and with the cache, plus the measured hit ratio, on an
/// ADL-like workload with Zipf query popularity.
pub fn ablation_cache(exp: &ExpConfig) -> (f64, f64, f64) {
    let demand = DemandModel::simulation(40.0).with_query_popularity(500, 1.0);
    let trace = adl()
        .generate(exp.requests, &demand, exp.seed)
        .scaled_to_rate(1000.0);
    let m = msweb_cluster::plan_masters(32, 1000.0, adl().arrival_ratio_a(), 1.0 / 40.0, 1200.0);

    let base = ClusterConfig::simulation(32, PolicyKind::MasterSlave)
        .with_masters(m)
        .with_seed(exp.seed);
    let uncached = simulate(base.clone(), &trace, RunOptions::new()).summary;

    let cached_cfg = base.with_cache(msweb_cluster::CacheConfig::default_swala());
    let mut sim = msweb_cluster::ClusterSim::new(cached_cfg, adl().arrival_ratio_a(), 1.0 / 40.0);
    let cached = sim.run(&trace);
    let (hits, misses, _, _) = sim.cache_stats().expect("cache enabled");
    let hit_ratio = hits as f64 / (hits + misses).max(1) as f64;
    (uncached.stretch, cached.stretch, hit_ratio)
}

/// Bursty-arrival ablation: flash-crowd ON/OFF arrivals (3× bursts, 25%
/// duty cycle) vs Poisson, for Flat and M/S. Returns
/// `[(label, poisson stretch, bursty stretch)]`. Measured outcome: both
/// pay only a few percent (transient backlogs drain within the OFF
/// phase) and the M/S advantage persists through the bursts.
pub fn ablation_bursty(exp: &ExpConfig) -> Vec<(&'static str, f64, f64)> {
    let spec = ksu();
    let lambda = 1200.0;
    let m = msweb_cluster::plan_masters(32, lambda, spec.arrival_ratio_a(), 1.0 / 40.0, 1200.0);
    let cells = vec![
        (false, PolicyKind::Flat),
        (true, PolicyKind::Flat),
        (false, PolicyKind::MasterSlave),
        (true, PolicyKind::MasterSlave),
    ];
    let stretches = Sweep::new(cells, exp.seed)
        .common_seed()
        .parallelism(exp.jobs)
        .run(|&(bursty, policy), seed| {
            let mut demand = DemandModel::simulation(40.0);
            if bursty {
                demand = demand.with_bursty_arrivals(3.0, 0.25, 40.0);
            }
            let trace = spec
                .generate(exp.requests, &demand, seed)
                .scaled_to_rate(lambda);
            let cfg = ClusterConfig::simulation(32, policy)
                .with_masters(m)
                .with_seed(seed);
            simulate(cfg, &trace, RunOptions::new()).summary.stretch
        });
    vec![
        ("Flat", stretches[0], stretches[1]),
        ("M/S", stretches[2], stretches[3]),
    ]
}

/// Heterogeneous-fleet ablation (the paper's §6 extension): simulate a
/// mixed-speed cluster with slow boxes as masters vs fast boxes as
/// masters, and return `(analytic stretch, slow-masters stretch,
/// fast-masters stretch)`.
pub fn ablation_hetero(exp: &ExpConfig) -> (f64, f64, f64) {
    use msweb_queueing::HeteroCluster;
    let mut speeds = vec![0.5; 8];
    speeds.extend(vec![2.0; 8]);
    let lambda = 400.0;
    let spec = ksu();
    let w =
        msweb_queueing::Workload::from_ratios(lambda, spec.arrival_ratio_a(), 1200.0, 1.0 / 40.0)
            .expect("valid workload");
    let (plan, _theta, analytic) =
        HeteroCluster::plan_masters(&speeds, &w).expect("feasible fleet");

    let trace = spec
        .generate(exp.requests, &DemandModel::simulation(40.0), exp.seed)
        .scaled_to_rate(lambda);
    let stretches = Sweep::new(vec![true, false], exp.seed)
        .common_seed()
        .parallelism(exp.jobs)
        .run(|&slow_masters, seed| {
            let mut s = speeds.clone();
            // total_cmp: a NaN speed must not panic the whole sweep
            // (it sorts last and surfaces in the cell's own metrics).
            if slow_masters {
                s.sort_by(|a, b| a.total_cmp(b));
            } else {
                s.sort_by(|a, b| b.total_cmp(a));
            }
            let cfg = ClusterConfig::simulation(speeds.len(), PolicyKind::MasterSlave)
                .with_masters(plan.masters.len())
                .with_speeds(s)
                .with_seed(seed);
            simulate(cfg, &trace, RunOptions::new()).summary.stretch
        });
    (analytic, stretches[0], stretches[1])
}

/// θ-rule ablation (analytic): the paper's midpoint heuristic vs exact
/// numerical minimisation, over the Figure 3 grid. Returns
/// `(mean midpoint stretch, mean numeric stretch)`.
pub fn ablation_theta_rule() -> (f64, f64) {
    let cfg = Fig3Config::default();
    let mut mid_sum = 0.0;
    let mut num_sum = 0.0;
    let mut n = 0;
    for &a in &cfg.a_values {
        for &inv_r in &cfg.inv_r_values {
            let w = Workload::from_ratios(cfg.lambda, a, cfg.mu_h, 1.0 / inv_r).unwrap();
            let mid = plan(&w, cfg.p, ThetaRule::Midpoint).unwrap();
            let num = plan(&w, cfg.p, ThetaRule::NumericOptimum).unwrap();
            mid_sum += mid.stretch_ms;
            num_sum += num.stretch_ms;
            n += 1;
        }
    }
    (mid_sum / n as f64, num_sum / n as f64)
}

// ------------------------------------------------------- UNKNOWN SIZES

/// Policy specs compared by [`unknown_sizes`]: the paper's RSRC pipeline
/// against the three attained-service scorers. All four share the
/// reservation admission and level-split candidate stages so the
/// comparison isolates the scoring rule; the demand-blind `attained`
/// admission stage is exercised separately by the golden fixtures.
pub const UNKNOWN_SIZES_POLICIES: [(&str, &str); 4] = [
    (
        "rsrc",
        "rotation-masters/reservation/level-split/rsrc-indexed-reserve/split-demand",
    ),
    (
        "gittins",
        "rotation-masters/reservation/level-split/gittins/split-demand",
    ),
    (
        "serpt",
        "rotation-masters/reservation/level-split/serpt/split-demand",
    ),
    (
        "las",
        "rotation-masters/reservation/level-split/las/split-demand",
    ),
];

/// One cell of the unknown-sizes sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct UnknownSizesRow {
    /// Demand-visibility regime (`exact`, `noisy`, `hidden`).
    pub visibility: String,
    /// Policy label from [`UNKNOWN_SIZES_POLICIES`].
    pub policy: String,
    /// End-to-end mean stretch from the run summary.
    pub stretch: f64,
    /// Placement-quality model stretch (Eq. 5 replayed over the
    /// decision log) — isolates routing from queueing noise.
    pub model_stretch: f64,
    /// Requests completed.
    pub completed: u64,
}

/// The unknown-sizes experiment: how does the paper's RSRC placement
/// degrade as the per-request demand declarations it scores on go from
/// exact to noisy to absent — and do the attained-service policies
/// (which never look at declarations) take over?
///
/// Every (visibility, policy) cell replays the same UCB trace on the
/// same p=32 cluster under common random numbers, so differences are
/// attributable to the information regime alone.
pub fn unknown_sizes(exp: &ExpConfig) -> Vec<UnknownSizesRow> {
    use std::cell::RefCell;
    use std::rc::Rc;

    use msweb_cluster::{ClusterSim, CollectingObserver, SchedulerRegistry, StageSpec};
    use msweb_workload::DemandVisibility;

    let p = 32;
    let inv_r = 40.0;
    let a0 = ucb().arrival_ratio_a();
    let r0 = 1.0 / inv_r;
    let trace = ucb()
        .generate(exp.requests, &DemandModel::simulation(inv_r), exp.seed)
        .scaled_to_rate(2_000.0);

    /// One sweep cell: a visibility regime crossed with a policy spec.
    type Cell = (
        (&'static str, DemandVisibility),
        (&'static str, &'static str),
    );

    let visibilities: [(&str, DemandVisibility); 3] = [
        ("exact", DemandVisibility::Exact),
        ("noisy", DemandVisibility::Noisy(1.0)),
        ("hidden", DemandVisibility::Hidden),
    ];
    let cells: Vec<Cell> = visibilities
        .iter()
        .flat_map(|&vis| UNKNOWN_SIZES_POLICIES.iter().map(move |&pol| (vis, pol)))
        .collect();

    Sweep::new(cells, exp.seed)
        .common_seed()
        .parallelism(exp.jobs)
        .run(|&((vis_label, vis), (pol_label, spec)), seed| {
            let cfg = ClusterConfig::simulation(p, PolicyKind::MasterSlave)
                .with_masters(p / 4)
                .with_seed(seed);
            let spec = StageSpec::parse(spec).expect("unknown-sizes specs are well-formed");
            let mut scheduler = SchedulerRegistry::builtin()
                .compose(&cfg, &spec, a0, r0)
                .expect("unknown-sizes pipeline composes");
            let observer: Rc<RefCell<CollectingObserver>> = Rc::default();
            scheduler.set_observer(Some(Box::new(Rc::clone(&observer))));
            let mut sim = ClusterSim::with_scheduler(cfg, scheduler)
                .with_priors(a0, r0)
                .with_visibility(vis);
            let summary = sim.run(&trace);
            let placements: Vec<(usize, u64, u64)> = observer
                .borrow()
                .records
                .iter()
                .map(|r| (r.chosen, r.at_us, r.demand_us))
                .collect();
            UnknownSizesRow {
                visibility: vis_label.to_string(),
                policy: pol_label.to_string(),
                stretch: summary.stretch,
                model_stretch: msweb_cluster::sched::model_stretch(&placements, p, None),
                completed: summary.completed,
            }
        })
}

/// The acceptance gate for `msweb experiments --unknown-sizes --test`:
/// under each demand-blind regime (`noisy`, `hidden`), at least one
/// attained-service policy must beat RSRC on model stretch.
pub fn unknown_sizes_check(rows: &[UnknownSizesRow]) -> Result<(), String> {
    for regime in ["noisy", "hidden"] {
        let rsrc = rows
            .iter()
            .find(|r| r.visibility == regime && r.policy == "rsrc")
            .ok_or_else(|| format!("no RSRC row for the {regime} regime"))?;
        let best = rows
            .iter()
            .filter(|r| r.visibility == regime && r.policy != "rsrc")
            .min_by(|a, b| a.model_stretch.total_cmp(&b.model_stretch))
            .ok_or_else(|| format!("no attained rows for the {regime} regime"))?;
        if best.model_stretch >= rsrc.model_stretch {
            return Err(format!(
                "{regime}: best attained policy ({}, model stretch {:.4}) does not beat \
                 RSRC ({:.4})",
                best.policy, best.model_stretch, rsrc.model_stretch
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_has_twelve_points() {
        assert_eq!(fig3().len(), 12);
    }

    #[test]
    fn tab1_matches_paper_constants_roughly() {
        let rows = tab1(5_000, 1);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                (r.generated.cgi_pct - r.spec.cgi_pct).abs() < 3.0,
                "{}: CGI% {} vs {}",
                r.spec.name,
                r.generated.cgi_pct,
                r.spec.cgi_pct
            );
        }
    }

    #[test]
    fn tab2_shape() {
        // 3 traces x 4 ratios x 4 rates minus the six unstable cells.
        let rows = tab2(&ExpConfig::quick());
        assert_eq!(rows.len(), 42);
        for row in &rows {
            assert!(
                row.offered_per_node > 0.0 && row.offered_per_node <= 0.95,
                "{:?}: offered {}",
                row.cell,
                row.offered_per_node
            );
            assert!(row.m >= 1 && row.m < row.cell.p);
        }
    }

    #[test]
    fn fig4_quick_cell_ordering() {
        // One representative cell: M/S should not lose to its ablations
        // by more than noise.
        let cell = GridCell {
            trace: "KSU",
            p: 32,
            lambda: 1000.0,
            inv_r: 80.0,
        };
        let row = fig4_cell(&cell, &ExpConfig::quick());
        assert_eq!(row.ms.completed, 2000);
        assert!(row.imp_nr_pct() > -10.0);
        assert!(row.imp_m1_pct() > -10.0);
    }

    #[test]
    fn fig5_has_twelve_rows() {
        let exp = ExpConfig {
            requests: 1_000,
            ..ExpConfig::quick()
        };
        let rows = fig5(&exp);
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert!(r.fixed.completed > 0 && r.adaptive.completed > 0);
        }
    }

    #[test]
    fn unknown_sizes_attained_beats_rsrc_when_blind() {
        let rows = unknown_sizes(&ExpConfig::quick());
        assert_eq!(rows.len(), 12);
        for r in &rows {
            println!(
                "{:<8} {:<8} stretch {:.4} model {:.4} completed {}",
                r.visibility, r.policy, r.stretch, r.model_stretch, r.completed
            );
            assert!(
                r.completed > 0,
                "{}/{} completed nothing",
                r.visibility,
                r.policy
            );
        }
        unknown_sizes_check(&rows).unwrap();
    }

    #[test]
    fn ablation_theta_rule_numeric_never_worse() {
        let (mid, num) = ablation_theta_rule();
        assert!(num <= mid + 1e-9);
    }

    #[test]
    fn ablation_redirect_is_worse_or_equal() {
        let (ms, redirect) = {
            let exp = ExpConfig::quick();
            ablation_redirect(&exp)
        };
        assert!(redirect >= ms * 0.95, "redirect {redirect} vs M/S {ms}");
    }
}
