//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run --release -p msweb-bench --bin experiments -- all
//! cargo run --release -p msweb-bench --bin experiments -- fig4a --quick
//! cargo run --release -p msweb-bench --bin experiments -- fig4b --jobs 4 --json out.json
//! ```
//!
//! Experiment ids: `fig3a fig3b tab1 tab2 fig4a fig4b fig5 tab3 ablation`.
//!
//! Flags:
//! * `--quick` — small request counts for smoke runs;
//! * `--jobs N` — sweep worker threads (default: all cores; results are
//!   identical at any value, only wall-clock time changes);
//! * `--json PATH` — additionally write the typed reports as a JSON
//!   array to `PATH`;
//! * `--seed N` — override the root RNG seed;
//! * `--trace-decisions PATH` — log every scheduling decision of the
//!   Table 3 replays (live and simulated) as JSONL to `PATH`.

use msweb_bench::{ExpConfig, ExperimentId, ExperimentRunner};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut jobs: usize = 0;
    let mut json_path: Option<String> = None;
    let mut trace_decisions: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut ids: Vec<ExperimentId> = Vec::new();
    let mut all = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {}
            "--jobs" => {
                i += 1;
                jobs = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad_usage("--jobs needs a number"));
            }
            "--json" => {
                i += 1;
                json_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| bad_usage("--json needs a path")),
                );
            }
            "--trace-decisions" => {
                i += 1;
                trace_decisions = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| bad_usage("--trace-decisions needs a path")),
                );
            }
            "--seed" => {
                i += 1;
                seed = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| bad_usage("--seed needs a number")),
                );
            }
            "all" => all = true,
            flag if flag.starts_with("--") => bad_usage(&format!("unknown flag {flag}")),
            id => match ExperimentId::parse(id) {
                Some(id) => ids.push(id),
                None => {
                    eprintln!("unknown experiment id: {id}");
                    std::process::exit(2);
                }
            },
        }
        i += 1;
    }
    if all || ids.is_empty() {
        ids = ExperimentId::ALL.to_vec();
    }

    let mut exp = if quick {
        ExpConfig::quick()
    } else {
        ExpConfig::default()
    };
    if let Some(seed) = seed {
        exp.seed = seed;
    }
    let runner = ExperimentRunner::new(exp)
        .parallelism(jobs)
        .live_time_scale(if quick { 0.3 } else { 1.0 })
        .trace_decisions(trace_decisions.map(std::path::PathBuf::from));

    let mut reports = Vec::with_capacity(ids.len());
    for id in ids {
        let t0 = std::time::Instant::now();
        let report = runner.run(id);
        println!("{}", report.render());
        println!(
            "[{} completed in {:.1}s]\n",
            id.name(),
            t0.elapsed().as_secs_f64()
        );
        reports.push(report);
    }

    if let Some(path) = json_path {
        let body: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        let json = format!("[\n{}\n]\n", body.join(",\n"));
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {} report(s) to {path}", reports.len());
    }
}

fn bad_usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: experiments [ids...] [--quick] [--jobs N] [--json PATH] [--seed N] \
         [--trace-decisions PATH]\n\
         ids: fig3a fig3b tab1 tab2 fig4a fig4b fig5 tab3 ablation (default: all)"
    );
    std::process::exit(2);
}
