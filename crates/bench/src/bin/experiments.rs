//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run --release -p msweb-bench --bin experiments -- all
//! cargo run --release -p msweb-bench --bin experiments -- fig4a --quick
//! ```
//!
//! Experiment ids: `fig3a fig3b tab1 tab2 fig4a fig4b fig5 tab3 ablation`.

use msweb_bench::report::{f, pct, Table};
use msweb_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let which = if which.is_empty() || which.contains(&"all") {
        vec!["fig3a", "fig3b", "tab1", "tab2", "fig4a", "fig4b", "fig5", "tab3", "ablation"]
    } else {
        which
    };
    let exp = if quick { ExpConfig::quick() } else { ExpConfig::default() };

    for id in which {
        let t0 = std::time::Instant::now();
        match id {
            "fig3a" => fig3a(),
            "fig3b" => fig3b(),
            "tab1" => print_tab1(&exp),
            "tab2" => print_tab2(),
            "fig4a" => print_fig4(32, &exp),
            "fig4b" => print_fig4(128, &exp),
            "fig5" => print_fig5(&exp),
            "tab3" => print_tab3(&exp, if quick { 0.3 } else { 1.0 }),
            "ablation" => print_ablation(&exp),
            other => {
                eprintln!("unknown experiment id: {other}");
                std::process::exit(2);
            }
        }
        println!("[{} completed in {:.1}s]\n", id, t0.elapsed().as_secs_f64());
    }
}

fn fig3a() {
    println!("== FIG 3(a): analytic improvement of M/S over the flat model ==");
    println!("   (λ=1000/s, p=32, μ_h=1200/s; paper reports up to ~60%)\n");
    let mut t = Table::new(vec!["a", "1/r", "m*", "θ*", "S_M", "S_F", "improvement"]);
    for pt in fig3() {
        t.row(vec![
            f(pt.a, 3),
            f(pt.inv_r, 0),
            pt.m.to_string(),
            f(pt.theta, 3),
            f(pt.stretch_ms, 3),
            f(pt.stretch_flat, 3),
            pct(pt.improvement_over_flat_pct),
        ]);
    }
    println!("{}", t.render());
}

fn fig3b() {
    println!("== FIG 3(b): analytic improvement of M/S over M/S' ==");
    println!("   (literal M/S' collapses to flat under exact PS analysis —");
    println!("    see EXPERIMENTS.md; the few-nodes column caps k ≤ p/2)\n");
    let mut t = Table::new(vec![
        "a",
        "1/r",
        "S_M",
        "S_M'",
        "improvement",
        "S_M'(few)",
        "improvement(few)",
    ]);
    for pt in fig3() {
        t.row(vec![
            f(pt.a, 3),
            f(pt.inv_r, 0),
            f(pt.stretch_ms, 3),
            f(pt.stretch_msprime, 3),
            pct(pt.improvement_over_msprime_pct),
            pt.stretch_msprime_few.map(|s| f(s, 3)).unwrap_or("-".into()),
            pt.improvement_over_msprime_few_pct
                .map(pct)
                .unwrap_or("-".into()),
        ]);
    }
    println!("{}", t.render());
}

fn print_tab1(exp: &ExpConfig) {
    println!("== TAB 1: trace characteristics (paper vs regenerated) ==\n");
    let n = exp.requests.max(10_000);
    let mut t = Table::new(vec![
        "trace",
        "year",
        "paper %CGI",
        "gen %CGI",
        "paper intvl",
        "gen intvl",
        "paper HTML",
        "gen HTML",
        "paper CGI B",
        "gen CGI B",
    ]);
    for row in tab1(n, exp.seed) {
        t.row(vec![
            row.spec.name.to_string(),
            row.spec.year.to_string(),
            f(row.spec.cgi_pct, 1),
            f(row.generated.cgi_pct, 1),
            format!("{}s", f(row.spec.mean_interval_s, 3)),
            format!("{}s", f(row.generated.mean_interval_s, 3)),
            row.spec.mean_html_bytes.to_string(),
            f(row.generated.mean_static_bytes, 0),
            row.spec.mean_cgi_bytes.to_string(),
            f(row.generated.mean_cgi_bytes, 0),
        ]);
    }
    println!("{}", t.render());
    println!("(regenerated with n={n}; the paper's request counts are the full logs)");
}

fn print_tab2() {
    println!("== TAB 2: workload parameter grid (reconstructed; see DESIGN.md) ==\n");
    let mut t = Table::new(vec!["trace", "p", "λ (req/s)", "1/r"]);
    for c in tab2() {
        t.row(vec![
            c.trace.to_string(),
            c.p.to_string(),
            f(c.lambda, 0),
            f(c.inv_r, 0),
        ]);
    }
    println!("{}", t.render());
}

fn print_fig4(p: usize, exp: &ExpConfig) {
    println!(
        "== FIG 4({}): % improvement of M/S over alternatives, p={p} ==",
        if p == 32 { "a" } else { "b" }
    );
    println!("   (paper: vs M/S-nr up to 68%; vs M/S-1 up to 26%; vs M/S-ns 5-22%)\n");
    let mut t = Table::new(vec![
        "trace", "λ", "1/r", "m", "S(M/S)", "vs M/S-ns", "vs M/S-nr", "vs M/S-1",
    ]);
    for row in fig4(p, exp) {
        t.row(vec![
            row.cell.trace.to_string(),
            f(row.cell.lambda, 0),
            f(row.cell.inv_r, 0),
            row.m.to_string(),
            f(row.ms.stretch, 3),
            pct(row.imp_ns_pct()),
            pct(row.imp_nr_pct()),
            pct(row.imp_m1_pct()),
        ]);
    }
    println!("{}", t.render());
}

fn print_fig5(exp: &ExpConfig) {
    println!("== FIG 5: degradation when using a fixed number of masters ==");
    println!("   (paper: at most 9%, average 4%)\n");
    let mut t = Table::new(vec![
        "trace", "p", "λ", "1/r", "m fixed", "m adaptive", "S fixed", "S adaptive", "degradation",
    ]);
    let rows = fig5(exp);
    let mut sum = 0.0;
    let mut max: f64 = 0.0;
    for row in &rows {
        let d = row.degradation_pct();
        sum += d.max(0.0);
        max = max.max(d);
        t.row(vec![
            row.cell.trace.to_string(),
            row.cell.p.to_string(),
            f(row.cell.lambda, 0),
            f(row.cell.inv_r, 0),
            row.m_fixed.to_string(),
            row.m_adaptive.to_string(),
            f(row.fixed.stretch, 3),
            f(row.adaptive.stretch, 3),
            pct(d),
        ]);
    }
    println!("{}", t.render());
    println!(
        "max degradation {:.1}%, average {:.1}%",
        max,
        sum / rows.len() as f64
    );
}

fn print_tab3(exp: &ExpConfig, time_scale: f64) {
    println!("== TAB 3: live (actual) vs simulated improvement of M/S ==");
    println!("   (6 nodes, masters UCB 3 / KSU 1 / ADL 1, r=1/40; paper: within a few points)\n");
    let rows = tab3(exp, time_scale);
    let mut t = Table::new(vec!["trace", "rate", "versus", "actual", "simulated", "|Δ|"]);
    let mut diff_sum = 0.0;
    for r in &rows {
        diff_sum += (r.actual_pct - r.simulated_pct).abs();
        t.row(vec![
            r.trace.to_string(),
            format!("{}/s", f(r.rate, 0)),
            r.versus.label().to_string(),
            pct(r.actual_pct),
            pct(r.simulated_pct),
            f((r.actual_pct - r.simulated_pct).abs(), 1),
        ]);
    }
    println!("{}", t.render());
    println!(
        "mean |actual − simulated| = {:.1} percentage points (paper: ~3)",
        diff_sum / rows.len() as f64
    );
}

fn print_ablation(exp: &ExpConfig) {
    println!("== ABLATIONS (beyond the paper's figures) ==\n");

    println!("-- load-info staleness (KSU, λ=1000, 1/r=80, p=32) --");
    let mut t = Table::new(vec!["monitor period", "M/S stretch"]);
    for (ms, s) in ablation_staleness(exp) {
        t.row(vec![format!("{ms} ms"), f(s, 3)]);
    }
    println!("{}", t.render());

    println!("-- master capacity reserve (UCB, λ=2000, 1/r=80, p=32) --");
    let mut t = Table::new(vec!["reserve", "M/S stretch"]);
    for (r, s) in ablation_reserve(exp) {
        t.row(vec![f(r, 2), f(s, 3)]);
    }
    println!("{}", t.render());

    println!("-- front end: DNS skew and switch baselines (KSU, λ=1000, 1/r=40) --");
    let mut t = Table::new(vec!["configuration", "stretch", "node-busy CV"]);
    for (name, stretch, cv) in ablation_frontend(exp) {
        t.row(vec![name.to_string(), f(stretch, 3), f(cv, 3)]);
    }
    println!("{}", t.render());

    println!("-- dynamic-content cache (Swala extension; ADL + Zipf queries) --");
    let (uncached, cached, hit_ratio) = ablation_cache(exp);
    println!(
        "uncached stretch {:.3} -> cached {:.3} ({:+.1}%), hit ratio {:.1}%\n",
        uncached,
        cached,
        (cached / uncached - 1.0) * 100.0,
        hit_ratio * 100.0
    );

    println!("-- remote execution vs HTTP redirection (ADL, λ=1000, 1/r=40) --");
    let (ms, redirect) = ablation_redirect(exp);
    println!(
        "M/S (remote exec): {:.3}   Redirect: {:.3}   penalty {:+.1}%\n",
        ms,
        redirect,
        (redirect / ms - 1.0) * 100.0
    );

    println!("-- flash-crowd bursts (ON/OFF arrivals, 3x bursts at 25% duty) --");
    let mut t = Table::new(vec!["policy", "Poisson", "bursty", "penalty"]);
    for (name, poisson, bursty) in ablation_bursty(exp) {
        t.row(vec![
            name.to_string(),
            f(poisson, 3),
            f(bursty, 3),
            pct((bursty / poisson - 1.0) * 100.0),
        ]);
    }
    println!("{}", t.render());

    println!("-- heterogeneous fleet (§6 extension; 8 × 0.5x + 8 × 2.0x nodes) --");
    let (analytic, slow, fast) = ablation_hetero(exp);
    println!(
        "analytic plan {:.3} | simulated: slow boxes as masters {:.3}, fast boxes as masters {:.3}\n",
        analytic, slow, fast
    );

    println!("-- θ rule: paper midpoint vs numerical optimum (Figure 3 grid) --");
    let (mid, num) = ablation_theta_rule();
    println!(
        "mean S_M midpoint {:.4} vs numeric {:.4} ({:+.2}% heuristic cost)",
        mid,
        num,
        (mid / num - 1.0) * 100.0
    );
}
