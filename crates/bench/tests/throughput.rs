//! Wall-clock evidence that [`Sweep`] actually overlaps cells.
//!
//! CPU-bound speedup is bounded by the host's core count, which this
//! test cannot assume (CI containers are often 1–2 cores). Cells that
//! *block* instead expose the executor's concurrency on any host: eight
//! 100 ms sleeps take ~800 ms sequentially and ~200 ms on four workers
//! if — and only if — the pool really runs cells concurrently.

use std::time::{Duration, Instant};

use msweb_bench::Sweep;

fn timed_sweep(jobs: usize) -> (Duration, Vec<u64>) {
    let cells: Vec<u64> = (0..8).collect();
    let sweep = Sweep::new(cells, 42).parallelism(jobs);
    let t0 = Instant::now();
    let out = sweep.run(|cell, seed| {
        std::thread::sleep(Duration::from_millis(100));
        cell.wrapping_mul(31).wrapping_add(seed >> 56)
    });
    (t0.elapsed(), out)
}

#[test]
fn four_workers_overlap_blocking_cells_at_least_2x() {
    let (seq, seq_out) = timed_sweep(1);
    let (par, par_out) = timed_sweep(4);
    // Same results in the same submission order regardless of workers.
    assert_eq!(seq_out, par_out);
    // 8 × 100 ms: ideal is 800 ms vs 200 ms. Demand only 2× so a loaded
    // CI host with slow thread spawn still passes comfortably.
    assert!(
        par <= seq / 2,
        "expected ≥2× overlap: sequential {seq:?}, 4 workers {par:?}"
    );
}
