//! The redesigned Runner API's core guarantee: for a fixed root seed the
//! [`ExperimentReport`] is identical at any parallelism level. Cell seeds
//! are pre-assigned from `(root, index)` and results are collected in
//! submission order, so worker count can only change wall-clock time.
//!
//! Table 3 is exercised elsewhere (`live_emulation.rs` tier): its live
//! half measures real wall-clock time, which no seed can pin down.

use msweb_bench::{ExpConfig, ExperimentId, ExperimentRunner, ReportData};

fn runner(jobs: usize) -> ExperimentRunner {
    ExperimentRunner::new(ExpConfig {
        requests: 400,
        live_requests: 60,
        seed: 7,
        jobs: 1,
    })
    .parallelism(jobs)
}

#[test]
fn fig4a_report_is_parallelism_invariant() {
    let sequential = runner(1).run(ExperimentId::Fig4a);
    match &sequential.data {
        ReportData::Fig4(rows) => assert_eq!(rows.len(), 21),
        other => panic!("wrong data: {other:?}"),
    }
    for jobs in [2, 8] {
        let parallel = runner(jobs).run(ExperimentId::Fig4a);
        assert_eq!(sequential, parallel, "jobs={jobs}");
        // Byte-identical all the way out to the serialised form.
        assert_eq!(sequential.to_json(), parallel.to_json(), "jobs={jobs}");
    }
}

#[test]
fn fig5_report_is_parallelism_invariant() {
    let sequential = runner(1).run(ExperimentId::Fig5);
    let parallel = runner(8).run(ExperimentId::Fig5);
    assert_eq!(sequential, parallel);
}

#[test]
fn tables_are_parallelism_invariant() {
    for id in [ExperimentId::Tab1, ExperimentId::Tab2] {
        let sequential = runner(1).run(id);
        let parallel = runner(8).run(id);
        assert_eq!(sequential, parallel, "{id:?}");
    }
}

#[test]
fn ablation_report_is_parallelism_invariant() {
    let sequential = runner(1).run(ExperimentId::Ablation);
    let parallel = runner(8).run(ExperimentId::Ablation);
    assert_eq!(sequential, parallel);
    match &sequential.data {
        ReportData::Ablation(ab) => {
            assert_eq!(ab.staleness.len(), 7);
            assert_eq!(ab.reserve.len(), 5);
            assert_eq!(ab.frontend.len(), 5);
            assert_eq!(ab.bursty.len(), 2);
        }
        other => panic!("wrong data: {other:?}"),
    }
}

#[test]
fn seed_changes_the_report() {
    // A sanity check that equality above is not vacuous: a different
    // root seed must produce different simulated numbers.
    let a = runner(2).run(ExperimentId::Fig5);
    let mut cfg = runner(2).config().clone();
    cfg.seed = 8;
    let b = ExperimentRunner::new(cfg).run(ExperimentId::Fig5);
    assert_ne!(a.data, b.data);
}
