//! Decision-index microbenchmark: the dense O(p) RSRC scan vs the
//! O(log p) tournament-tree index, swept over cluster sizes
//! p ∈ {32, 128, 1024, 4096}.
//!
//! Three views of the cost:
//!
//! * `scan_*` — one `Scorer::choose` over the whole cluster against a
//!   warm load view (the steady state between monitor ticks);
//! * `cycle_*` — `choose` followed by a `LoadMonitor::charge` of the
//!   chosen node, with a monitor tick every 128 decisions as in a live
//!   dispatcher loop, so the cost includes the index's per-charge
//!   re-key (O(log p)) and its per-tick rebuild (O(p), amortised over
//!   the window's decisions);
//! * `place_*` — a full composed-pipeline placement, dense vs indexed
//!   scorer stage, plus the `rsrc-p2:4` sampling scorer for contrast.
//!
//! Setup asserts the indexed scorer picks exactly the dense scan's node
//! before timing anything.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use msweb_cluster::sched::stages::{MinRsrcScorer, PowerOfKScorer};
use msweb_cluster::sched::{Scorer, StageCtx};
use msweb_cluster::{
    AttainedService, ClusterConfig, LoadMonitor, PolicyKind, ReqKnowledge, ReservationController,
    RsrcPredictor, SchedulerRegistry, SeriesMeta, SeriesRecorder, SeriesWindowInput, StageSpec,
    WindowSample,
};
use msweb_ossim::LoadSnapshot;
use msweb_simcore::{SimDuration, SimRng, SimTime};

const SIZES: [usize; 4] = [32, 128, 1024, 4096];

/// Shared scorer inputs: a ticked monitor with non-uniform busy
/// fractions, all nodes live, no in-flight skew.
struct World {
    monitor: LoadMonitor,
    rsrc: RsrcPredictor,
    reservation: ReservationController,
    dead: Vec<bool>,
    in_flight: Vec<u32>,
    attained: AttainedService,
    m: usize,
    candidates: Vec<usize>,
}

fn world(p: usize) -> World {
    let m = (p / 4).max(1);
    let mut monitor = LoadMonitor::new(p, SimDuration::from_millis(500), SimTime::ZERO);
    let mut rng = SimRng::seed_from_u64(0x5eed ^ p as u64);
    let t = SimTime::from_millis(500);
    let snaps: Vec<LoadSnapshot> = (0..p)
        .map(|_| LoadSnapshot {
            at: t,
            cpu_busy: SimDuration::from_secs_f64(0.5 * 0.9 * rng.next_f64()),
            disk_busy: SimDuration::from_secs_f64(0.5 * 0.9 * rng.next_f64()),
            mem_free_ratio: 1.0,
            ready_len: 0,
            disk_queue_len: 0,
            processes: 0,
        })
        .collect();
    monitor.tick(t, &snaps);
    World {
        monitor,
        rsrc: RsrcPredictor::homogeneous(p, true),
        reservation: ReservationController::new(m, p, 0.25, 0.025, true),
        dead: vec![false; p],
        in_flight: vec![0; p],
        attained: AttainedService::new(p),
        m,
        candidates: (0..p).collect(),
    }
}

fn ctx<'a>(w: &'a World, rng: &'a mut SimRng) -> StageCtx<'a> {
    StageCtx {
        rng,
        dead: &w.dead,
        in_flight: &w.in_flight,
        masters: w.m,
        rsrc: &w.rsrc,
        reservation: &w.reservation,
        loads: w.monitor.all(),
        monitor_id: w.monitor.id(),
        load_epoch: w.monitor.epoch(),
        charge_log: w.monitor.charges(),
        liveness_epoch: 0,
        attained: &w.attained,
    }
}

/// The indexed scorer must agree with the dense scan before we time it.
fn assert_equivalent(w: &World, dense: &MinRsrcScorer, indexed: &MinRsrcScorer) {
    for i in 0..32 {
        let sampled_w = i as f64 / 31.0;
        let mut ra = SimRng::seed_from_u64(i);
        let mut rb = SimRng::seed_from_u64(i);
        let know = ReqKnowledge::exact(sampled_w, SimDuration::from_millis(33));
        let a = dense.choose(&mut ctx(w, &mut ra), &w.candidates, know);
        let b = indexed.choose(&mut ctx(w, &mut rb), &w.candidates, know);
        assert_eq!(a, b, "indexed argmin diverged from dense at w={sampled_w}");
    }
}

fn bench_scan(c: &mut Criterion) {
    for p in SIZES {
        let w = world(p);
        let dense = MinRsrcScorer::dense(0.0);
        let indexed = MinRsrcScorer::indexed(0.0);
        assert_equivalent(&w, &dense, &indexed);
        for (name, scorer) in [("dense", &dense), ("indexed", &indexed)] {
            c.bench_function(&format!("scan_{name}_p{p}"), |b| {
                let mut rng = SimRng::seed_from_u64(7);
                let mut i = 0u64;
                b.iter(|| {
                    i = i.wrapping_add(1);
                    let sampled_w = (i % 101) as f64 / 100.0;
                    black_box(scorer.choose(
                        &mut ctx(&w, &mut rng),
                        &w.candidates,
                        ReqKnowledge::exact(sampled_w, SimDuration::from_millis(33)),
                    ))
                })
            });
        }
    }
}

fn bench_choose_charge_cycle(c: &mut Criterion) {
    for p in SIZES {
        for (name, scorer) in [
            ("dense", MinRsrcScorer::dense(0.0)),
            ("indexed", MinRsrcScorer::indexed(0.0)),
        ] {
            c.bench_function(&format!("cycle_{name}_p{p}"), |b| {
                let mut w = world(p);
                let mut rng = SimRng::seed_from_u64(7);
                let mut snap_rng = SimRng::seed_from_u64(11);
                let svc = SimDuration::from_millis(33);
                let mut now = SimTime::from_millis(500);
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    if i.is_multiple_of(128) {
                        now = now.checked_add(SimDuration::from_millis(500)).unwrap();
                        let snaps: Vec<LoadSnapshot> = (0..p)
                            .map(|_| LoadSnapshot {
                                at: now,
                                cpu_busy: SimDuration::from_secs_f64(
                                    now.as_secs_f64() * 0.9 * snap_rng.next_f64(),
                                ),
                                disk_busy: SimDuration::from_secs_f64(
                                    now.as_secs_f64() * 0.9 * snap_rng.next_f64(),
                                ),
                                mem_free_ratio: 1.0,
                                ready_len: 0,
                                disk_queue_len: 0,
                                processes: 0,
                            })
                            .collect();
                        w.monitor.tick(now, &snaps);
                    }
                    let node = scorer
                        .choose(
                            &mut ctx(&w, &mut rng),
                            &w.candidates,
                            ReqKnowledge::exact(0.7, svc),
                        )
                        .unwrap();
                    w.monitor.charge(node, svc, svc);
                    black_box(node)
                })
            });
        }
    }
}

fn bench_place(c: &mut Criterion) {
    let registry = SchedulerRegistry::builtin();
    for p in SIZES {
        for (name, scorer) in [
            ("dense", "min-rsrc-reserve"),
            ("indexed", "rsrc-indexed-reserve"),
            ("p2of4", "rsrc-p2:4"),
        ] {
            c.bench_function(&format!("place_{name}_p{p}"), |b| {
                let mut cfg = ClusterConfig::simulation(p, PolicyKind::MasterSlave);
                cfg = cfg.with_masters((p / 4).max(1));
                let spec = StageSpec::parse(&format!(
                    "rotation-masters/reservation/level-split/{scorer}/split-demand"
                ))
                .unwrap();
                let mut sched = registry.compose(&cfg, &spec, 0.25, 0.025).unwrap();
                let mut mon = LoadMonitor::new(p, SimDuration::from_millis(500), SimTime::ZERO);
                let svc = SimDuration::from_millis(33);
                b.iter(|| black_box(sched.place(true, ReqKnowledge::exact(0.9, svc), &mut mon)))
            });
        }
    }
}

/// The full placement pipeline with telemetry enabled — the issue's
/// overhead budget is ≤5% over `place_indexed_*` (spans are sampled
/// 1-in-64; the rest is plain counter bumps).
fn bench_place_telemetry(c: &mut Criterion) {
    let registry = SchedulerRegistry::builtin();
    for p in SIZES {
        c.bench_function(&format!("place_indexed_telemetry_p{p}"), |b| {
            let mut cfg = ClusterConfig::simulation(p, PolicyKind::MasterSlave);
            cfg = cfg.with_masters((p / 4).max(1));
            let spec = StageSpec::parse(
                "rotation-masters/reservation/level-split/rsrc-indexed-reserve/split-demand",
            )
            .unwrap();
            let mut sched = registry.compose(&cfg, &spec, 0.25, 0.025).unwrap();
            sched.set_telemetry_enabled(true);
            let mut mon = LoadMonitor::new(p, SimDuration::from_millis(500), SimTime::ZERO);
            let svc = SimDuration::from_millis(33);
            b.iter(|| black_box(sched.place(true, ReqKnowledge::exact(0.9, svc), &mut mon)))
        });
    }
}

/// The telemetry pipeline with a streaming [`SeriesRecorder`] attached:
/// every 4096 placements folds the cumulative scheduler telemetry into
/// one JSONL window record (drained to a sink). That cadence is still
/// far more aggressive than a real run's — a monitor window spans
/// 500 ms of substrate time against sub-µs placements — so the
/// amortised overhead over `place_indexed_telemetry_*` measured here
/// upper-bounds the issue's ≤5% budget; with no recorder attached the
/// cost is exactly zero (the placement hot path never consults one).
fn bench_place_series(c: &mut Criterion) {
    let registry = SchedulerRegistry::builtin();
    for p in SIZES {
        c.bench_function(&format!("place_indexed_series_p{p}"), |b| {
            let m = (p / 4).max(1);
            let mut cfg = ClusterConfig::simulation(p, PolicyKind::MasterSlave);
            cfg = cfg.with_masters(m);
            let spec = StageSpec::parse(
                "rotation-masters/reservation/level-split/rsrc-indexed-reserve/split-demand",
            )
            .unwrap();
            let mut sched = registry.compose(&cfg, &spec, 0.25, 0.025).unwrap();
            sched.set_telemetry_enabled(true);
            let mut mon = LoadMonitor::new(p, SimDuration::from_millis(500), SimTime::ZERO);
            let svc = SimDuration::from_millis(33);
            let mut rec = SeriesRecorder::to_writer(Box::new(std::io::sink()));
            rec.begin(&SeriesMeta {
                substrate: "bench",
                policy: "rsrc-indexed-reserve",
                p,
                m,
                seed: 0,
            });
            let node_busy = vec![0.5f64; p];
            let mut at_us = 0u64;
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let placed = sched.place(true, ReqKnowledge::exact(0.9, svc), &mut mon);
                if i.is_multiple_of(4096) {
                    at_us += 500_000;
                    let window = WindowSample {
                        at_us,
                        theta2_star: 0.45,
                        a_hat: 0.25,
                        r_hat: 0.025,
                        rho: 0.5,
                        theta_hat: 0.4,
                        clamp_events: 0,
                    };
                    rec.record(&SeriesWindowInput {
                        window: &window,
                        sched: sched.telemetry(),
                        node_busy: &node_busy,
                        window_stretch: Some(1.0),
                        drops: 0,
                    });
                }
                black_box(placed)
            })
        });
    }
}

fn bench_power_of_k_scan(c: &mut Criterion) {
    let p = 4096;
    let w = world(p);
    let scorer = PowerOfKScorer::new(4, 0.0);
    c.bench_function("scan_p2of4_p4096", |b| {
        let mut rng = SimRng::seed_from_u64(7);
        b.iter(|| {
            black_box(scorer.choose(
                &mut ctx(&w, &mut rng),
                &w.candidates,
                ReqKnowledge::exact(0.7, SimDuration::from_millis(33)),
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_scan,
    bench_choose_charge_cycle,
    bench_place,
    bench_place_telemetry,
    bench_place_series,
    bench_power_of_k_scan
);
criterion_main!(benches);
