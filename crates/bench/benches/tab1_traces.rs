//! TAB1: trace generation throughput for every characterised log.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use msweb_workload::{all_traces, DemandModel};

fn bench_tab1(c: &mut Criterion) {
    for spec in all_traces() {
        c.bench_function(&format!("tab1_generate_{}_10k", spec.name), |b| {
            let d = DemandModel::simulation(40.0);
            b.iter(|| black_box(spec.generate(10_000, &d, 42)))
        });
    }
}

criterion_group!(benches, bench_tab1);
criterion_main!(benches);
