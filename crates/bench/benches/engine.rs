//! Micro-benchmarks of the simulation engine: event queue, RNG, and a
//! single OS-model node under load.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use msweb_ossim::{node::run_to_idle, DemandSpec, Node, OsParams};
use msweb_simcore::{EventQueue, SimDuration, SimRng, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            let mut rng = SimRng::seed_from_u64(1);
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_micros(rng.gen_range(1_000_000)), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng_f64_1k", |b| {
        let mut rng = SimRng::seed_from_u64(7);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += rng.next_f64();
            }
            black_box(acc)
        })
    });
}

fn bench_node(c: &mut Criterion) {
    c.bench_function("ossim_node_100_mixed_processes", |b| {
        b.iter(|| {
            let mut n = Node::new(0, OsParams::default());
            for i in 0..100u64 {
                let spec = if i % 4 == 0 {
                    DemandSpec::cgi(SimDuration::from_millis(30), 0.9, 64)
                } else {
                    DemandSpec::static_fetch(SimDuration::from_micros(830), 0.5, 1)
                };
                n.submit(&spec, SimTime::ZERO, i);
            }
            black_box(run_to_idle(&mut n, 1_000_000).len())
        })
    });
}

criterion_group!(benches, bench_event_queue, bench_rng, bench_node);
criterion_main!(benches);
