//! Ablation benches: the design-choice sweeps DESIGN.md calls out.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use msweb_bench::{
    ablation_redirect, ablation_reserve, ablation_staleness, ablation_theta_rule, ExpConfig,
};

fn bench_ablations(c: &mut Criterion) {
    let exp = ExpConfig::quick();
    c.bench_function("ablation_staleness_sweep", |b| {
        b.iter(|| black_box(ablation_staleness(&exp)))
    });
    c.bench_function("ablation_reserve_sweep", |b| {
        b.iter(|| black_box(ablation_reserve(&exp)))
    });
    c.bench_function("ablation_redirect_pair", |b| {
        b.iter(|| black_box(ablation_redirect(&exp)))
    });
    c.bench_function("ablation_theta_rule", |b| {
        b.iter(|| black_box(ablation_theta_rule()))
    });
}

criterion_group!(name = benches; config = Criterion::default().sample_size(10); targets = bench_ablations);
criterion_main!(benches);
