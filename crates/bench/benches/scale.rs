//! SCALE: the streaming event loop at large fleet sizes.
//!
//! Each cell streams a fixed request count through the indexed
//! master/slave composition at p ∈ {1k, 4k, 10k} nodes with the arrival
//! rate scaled proportionally (λ = 31.25·p), so per-request work — not
//! queueing — dominates the comparison. The request count per iteration
//! is kept small; the full n ∈ {1M, 10M} budget cells are produced by
//! `msweb scale`, which also records peak RSS into `BENCH_scale.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use msweb_cluster::{
    plan_masters, ClusterConfig, ClusterSim, PolicyKind, SchedulerRegistry, StageSpec,
    WorkloadStats,
};
use msweb_workload::{ucb, DemandModel, RateScaling, ScaledSource};

fn bench_scale(c: &mut Criterion) {
    let demand = DemandModel::simulation(40.0);
    let spec = ucb();
    let registry = SchedulerRegistry::builtin();
    let stage_spec = StageSpec::for_policy(PolicyKind::MasterSlave);
    let n = 50_000;
    // Pin the rate-scaling factor and the workload stats once from a
    // materialized probe of the same generator stream.
    let probe = spec.generate(n, &demand, 42);
    let t0 = probe.requests[0].arrival;
    let rate = probe.mean_rate();
    let stats = WorkloadStats::from_trace(&probe);

    for p in [1_000usize, 4_000, 10_000] {
        let lambda = 31.25 * p as f64;
        c.bench_function(&format!("scale_stream/p{p}_n{n}"), |b| {
            b.iter(|| {
                let m = plan_masters(p, lambda, spec.arrival_ratio_a(), 1.0 / 40.0, 1200.0);
                let cfg = ClusterConfig::simulation(p, PolicyKind::MasterSlave)
                    .with_masters(m)
                    .with_seed(42);
                let scheduler = registry
                    .compose(&cfg, &stage_spec, stats.a0, stats.r0)
                    .expect("compose");
                let mut sim = ClusterSim::with_scheduler(cfg, scheduler)
                    .with_priors(stats.a0, stats.r0)
                    .with_mean_demands(stats.static_mean, stats.dynamic_mean);
                let scaling = RateScaling::to_rate(rate, t0, lambda);
                let source = ScaledSource::new(spec.stream(n, &demand, 42), scaling);
                black_box(sim.run_source(source))
            })
        });
    }

    // The generator itself, streamed: the floor any run pays per request
    // before scheduling starts.
    c.bench_function("scale_gen_source_50k", |b| {
        b.iter(|| {
            let mut last = None;
            for r in spec.stream(n, &demand, 42) {
                last = Some(r);
            }
            black_box(last)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scale
);
criterion_main!(benches);
