//! FIG3: time to evaluate the full analytic Figure 3 grid (both panels).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use msweb_bench::fig3;

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_full_grid", |b| b.iter(|| black_box(fig3())));
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
