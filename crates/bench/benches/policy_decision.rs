//! Cost of one scheduling decision — the dispatcher must keep up with
//! thousands of arrivals per second.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use msweb_cluster::{ClusterConfig, Dispatcher, LoadMonitor, PolicyKind, ReqKnowledge};
use msweb_simcore::{SimDuration, SimTime};

fn bench_place(c: &mut Criterion) {
    for (name, p) in [("p32", 32), ("p128", 128)] {
        c.bench_function(&format!("dispatcher_place_dynamic_{name}"), |b| {
            let cfg = ClusterConfig::simulation(p, PolicyKind::MasterSlave).with_masters(p / 4);
            let mut d = Dispatcher::new(&cfg, 0.25, 0.025);
            let mut mon = LoadMonitor::new(p, SimDuration::from_millis(500), SimTime::ZERO);
            let svc = SimDuration::from_millis(33);
            b.iter(|| black_box(d.place(true, ReqKnowledge::exact(0.9, svc), &mut mon)))
        });
    }
}

criterion_group!(benches, bench_place);
criterion_main!(benches);
