//! Property-based tests for the Section 3 analytic models.
//!
//! The central invariant is Theorem 1 itself: for any stable random
//! parameterisation, every θ strictly inside `(θ1, θ2) ∩ [0, 1]` makes the
//! master/slave stretch no worse than the flat stretch, and every θ
//! strictly outside makes it no better.

use msweb_queueing::{
    plan, reservation_bound, FlatModel, MsModel, MsPrimeModel, ThetaRule, Workload,
};
use proptest::prelude::*;

/// Random workloads that keep a 32-node flat cluster comfortably stable.
fn stable_workload() -> impl Strategy<Value = Workload> {
    (
        100.0f64..3000.0, // lambda
        0.05f64..0.9,     // a
        0.002f64..0.2,    // r
    )
        .prop_filter_map("cluster must be stable", |(lambda, a, r)| {
            let w = Workload::from_ratios(lambda, a, 1200.0, r).ok()?;
            (w.offered_load() / 32.0 < 0.92).then_some(w)
        })
}

proptest! {
    /// Flat stretch is always >= 1 and increases with load.
    #[test]
    fn flat_stretch_at_least_one(w in stable_workload()) {
        let f = FlatModel::evaluate(&w, 32).unwrap();
        prop_assert!(f.stretch >= 1.0);
        prop_assert!(f.utilisation < 1.0);
    }

    /// Theorem 1 interval: theta1 <= theta2, and the quadratic evaluates
    /// to ~0 at both roots.
    #[test]
    fn interval_roots_are_roots(w in stable_workload(), m in 1usize..31) {
        let model = MsModel::new(w, 32, m).unwrap();
        let iv = model.theta_interval().unwrap();
        prop_assert!(iv.theta1 <= iv.theta2 + 1e-9);
        let g = |t: f64| iv.a_coef * t * t + iv.b_coef * t + iv.c_coef;
        // Scale tolerance with the coefficient magnitude.
        let scale = iv.a_coef.abs().max(iv.b_coef.abs()).max(iv.c_coef.abs()).max(1e-12);
        prop_assert!(g(iv.theta1).abs() / scale < 1e-6, "g(theta1)={}", g(iv.theta1));
        prop_assert!(g(iv.theta2).abs() / scale < 1e-6, "g(theta2)={}", g(iv.theta2));
    }

    /// Inside the feasible interval M/S beats (or ties) flat; outside it
    /// loses (or ties). This is the statement of Theorem 1.
    #[test]
    fn theorem1_inside_wins_outside_loses(
        w in stable_workload(),
        m in 1usize..31,
        frac in 0.05f64..0.95,
    ) {
        let model = MsModel::new(w, 32, m).unwrap();
        let iv = model.theta_interval().unwrap();
        let flat = FlatModel::evaluate(&w, 32).unwrap();

        // A point strictly inside the interval, clamped to [0, 1].
        let inside = iv.theta1 + frac * (iv.theta2 - iv.theta1);
        if (0.0..=1.0).contains(&inside) {
            if let Ok(pt) = model.evaluate(inside) {
                prop_assert!(
                    pt.stretch <= flat.stretch + 1e-7 * flat.stretch,
                    "inside theta={inside}: S_M={} > S_F={}",
                    pt.stretch,
                    flat.stretch
                );
            }
        }

        // A point strictly above theta2.
        let above = iv.theta2 + 0.05;
        if (0.0..=1.0).contains(&above) {
            if let Ok(pt) = model.evaluate(above) {
                prop_assert!(
                    pt.stretch >= flat.stretch - 1e-7 * flat.stretch,
                    "above theta2={}: S_M={} < S_F={}",
                    iv.theta2,
                    pt.stretch,
                    flat.stretch
                );
            }
        }

        // A point strictly below theta1.
        let below = iv.theta1 - 0.05;
        if (0.0..=1.0).contains(&below) {
            if let Ok(pt) = model.evaluate(below) {
                prop_assert!(
                    pt.stretch >= flat.stretch - 1e-7 * flat.stretch,
                    "below theta1={}: S_M={} < S_F={}",
                    iv.theta1,
                    pt.stretch,
                    flat.stretch
                );
            }
        }
    }

    /// The planner's configuration is stable and no worse than flat
    /// whenever flat itself is stable.
    #[test]
    fn planner_never_loses_to_flat(w in stable_workload()) {
        let p = plan(&w, 32, ThetaRule::Midpoint).unwrap();
        let flat = FlatModel::evaluate(&w, 32).unwrap();
        prop_assert!(p.stretch_ms <= flat.stretch + 1e-9 * flat.stretch);
        prop_assert!(p.stretch_ms >= 1.0);
    }

    /// The reservation bound is within [0,1] and monotone in m.
    #[test]
    fn reservation_bound_properties(
        a in 0.01f64..2.0,
        r in 0.001f64..0.5,
        p in 2usize..200,
    ) {
        let mut last = -1.0f64;
        for m in 1..=p {
            let b = reservation_bound(m, p, a, r);
            prop_assert!((0.0..=1.0).contains(&b));
            prop_assert!(b >= last - 1e-12);
            last = b;
        }
        prop_assert!((reservation_bound(p, p, a, r) - 1.0).abs() < 1e-9);
    }

    /// M/S' stretch is minimised at k = p (the domination fact) for any
    /// stable workload.
    #[test]
    fn msprime_unconstrained_optimum_is_flat(w in stable_workload()) {
        let model = MsPrimeModel::new(w, 32).unwrap();
        let best = model.optimal().unwrap();
        prop_assert_eq!(best.k, 32);
        let flat = FlatModel::evaluate(&w, 32).unwrap();
        prop_assert!((best.stretch - flat.stretch).abs() < 1e-7 * flat.stretch);
    }

    /// Mixed stretch is a convex combination of station stretches: it lies
    /// between the smallest and largest of them.
    #[test]
    fn ms_stretch_between_stations(w in stable_workload(), m in 1usize..31, theta in 0.0f64..1.0) {
        let model = MsModel::new(w, 32, m).unwrap();
        if let Ok(pt) = model.evaluate(theta) {
            let lo = pt.stretch_static.min(pt.stretch_dynamic_slave);
            let hi = pt.stretch_static.max(pt.stretch_dynamic_slave);
            prop_assert!(pt.stretch >= lo - 1e-9 && pt.stretch <= hi + 1e-9);
        }
    }
}
