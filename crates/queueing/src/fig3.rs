//! Figure 3 series generator: analytic improvement of M/S over the Flat
//! and M/S′ models.
//!
//! The paper plots, for `λ = 1000` req/s, `p = 32`, `μ_h = 1200` req/s,
//! arrival ratios `a ∈ {2/8, 3/7, 4/6}` and service ratios
//! `r ∈ {1/10, 1/20, 1/40, 1/80}`:
//!
//! * (a) `(S_F / S_M − 1) × 100 %` — improvement over Flat (up to ~60 %);
//! * (b) `(S_M′ / S_M − 1) × 100 %` — improvement over M/S′ (up to ~18 %).
//!
//! Reproduction note (see EXPERIMENTS.md): under the exact M/M/1-PS
//! analysis the literal M/S′ (static on all nodes, dynamic pinned to `k`)
//! is dominated by flat, and its unconstrained optimum *is* the flat
//! assignment (`k = p`). We therefore report two M/S′ readings per point:
//! the literal optimum (which collapses to flat) and a "few nodes" variant
//! with `k ≤ p/2` as the paper's premise suggests.

use crate::msprime::MsPrimeModel;
use crate::params::{ModelError, Workload};
use crate::theorem1::{plan, ThetaRule};

/// One point of a Figure 3 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Point {
    /// Arrival ratio `a = λ_c / λ_h`.
    pub a: f64,
    /// Inverse service ratio `1/r` (x-axis of the paper's plot).
    pub inv_r: f64,
    /// Optimal M/S stretch (Theorem 1 midpoint rule).
    pub stretch_ms: f64,
    /// Flat stretch.
    pub stretch_flat: f64,
    /// Optimal M/S′ stretch, literal reading (k unconstrained).
    pub stretch_msprime: f64,
    /// M/S′ stretch with the "few nodes" cap `k ≤ p/2`; `None` when the
    /// dynamic load alone exceeds p/2 nodes (no stable capped assignment).
    pub stretch_msprime_few: Option<f64>,
    /// `(S_F / S_M − 1) × 100` — Figure 3(a).
    pub improvement_over_flat_pct: f64,
    /// `(S_M′ / S_M − 1) × 100` — Figure 3(b), literal reading.
    pub improvement_over_msprime_pct: f64,
    /// `(S_M′(few) / S_M − 1) × 100` — Figure 3(b), few-nodes reading.
    pub improvement_over_msprime_few_pct: Option<f64>,
    /// The master count Theorem 1 chose.
    pub m: usize,
    /// The θ Theorem 1 chose.
    pub theta: f64,
}

/// Default sweep matching the paper's figure.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Total arrival rate (paper: 1000 req/s).
    pub lambda: f64,
    /// Cluster size (paper: 32).
    pub p: usize,
    /// Static service rate (paper: 1200 req/s).
    pub mu_h: f64,
    /// Arrival ratios to sweep (paper: 2/8, 3/7, 4/6).
    pub a_values: Vec<f64>,
    /// Inverse service ratios to sweep (paper: 10, 20, 40, 80).
    pub inv_r_values: Vec<f64>,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Fig3Config {
            lambda: 1000.0,
            p: 32,
            mu_h: 1200.0,
            a_values: vec![2.0 / 8.0, 3.0 / 7.0, 4.0 / 6.0],
            inv_r_values: vec![10.0, 20.0, 40.0, 80.0],
        }
    }
}

/// Compute the full Figure 3 grid. Points whose parameters overload every
/// configuration are skipped (the paper's sweep never does).
pub fn figure3(config: &Fig3Config) -> Result<Vec<Fig3Point>, ModelError> {
    let mut out = Vec::with_capacity(config.a_values.len() * config.inv_r_values.len());
    for &a in &config.a_values {
        for &inv_r in &config.inv_r_values {
            let w = Workload::from_ratios(config.lambda, a, config.mu_h, 1.0 / inv_r)?;
            let ms_plan = plan(&w, config.p, ThetaRule::Midpoint)?;
            let msprime_model = MsPrimeModel::new(w, config.p)?;
            let unstable = |station| ModelError::Unstable {
                utilisation: w.offered_load() / config.p as f64,
                station,
            };
            let msprime = msprime_model
                .optimal()
                .ok_or_else(|| unstable("M/S' every k"))?;
            let msprime_few = msprime_model.optimal_few(config.p / 2);
            out.push(Fig3Point {
                a,
                inv_r,
                stretch_ms: ms_plan.stretch_ms,
                stretch_flat: ms_plan.stretch_flat,
                stretch_msprime: msprime.stretch,
                stretch_msprime_few: msprime_few.map(|pt| pt.stretch),
                improvement_over_flat_pct: (ms_plan.stretch_flat / ms_plan.stretch_ms - 1.0)
                    * 100.0,
                improvement_over_msprime_pct: (msprime.stretch / ms_plan.stretch_ms - 1.0) * 100.0,
                improvement_over_msprime_few_pct: msprime_few
                    .map(|pt| (pt.stretch / ms_plan.stretch_ms - 1.0) * 100.0),
                m: ms_plan.m,
                theta: ms_plan.theta,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_is_feasible() {
        let pts = figure3(&Fig3Config::default()).unwrap();
        assert_eq!(pts.len(), 12);
        for p in &pts {
            assert!(p.stretch_ms >= 1.0);
            assert!(p.stretch_flat >= p.stretch_ms - 1e-9);
            assert!(p.stretch_msprime >= p.stretch_ms - 1e-9);
        }
    }

    #[test]
    fn improvements_nonnegative_and_shaped_like_paper() {
        let pts = figure3(&Fig3Config::default()).unwrap();
        let max_flat = pts
            .iter()
            .map(|p| p.improvement_over_flat_pct)
            .fold(0.0f64, f64::max);
        let max_prime = pts
            .iter()
            .map(|p| p.improvement_over_msprime_pct)
            .fold(0.0f64, f64::max);
        // Paper: "up to 60%" over flat. Accept the right order of magnitude
        // (shape reproduction, not digit matching).
        assert!(
            (20.0..=120.0).contains(&max_flat),
            "max improvement over flat = {max_flat}%"
        );
        // Literal M/S' collapses to flat (see module docs), so its series
        // tracks the flat series.
        assert!(
            (max_prime - max_flat).abs() < 1.0,
            "literal M/S' should track flat: {max_prime} vs {max_flat}"
        );
        for p in &pts {
            assert!(p.improvement_over_flat_pct >= -1e-9);
            assert!(p.improvement_over_msprime_pct >= -1e-9);
            // The few-nodes M/S' is at least as bad as the literal optimum.
            if let Some(few) = p.improvement_over_msprime_few_pct {
                assert!(few >= p.improvement_over_msprime_pct - 1e-9);
            }
        }
    }

    #[test]
    fn improvement_monotone_in_inv_r_within_series() {
        let pts = figure3(&Fig3Config::default()).unwrap();
        for &a in &[2.0 / 8.0, 3.0 / 7.0, 4.0 / 6.0] {
            let series: Vec<_> = pts.iter().filter(|p| (p.a - a).abs() < 1e-12).collect();
            for pair in series.windows(2) {
                assert!(
                    pair[1].improvement_over_flat_pct >= pair[0].improvement_over_flat_pct - 1e-6,
                    "a={a}: improvement dipped from {} to {}",
                    pair[0].improvement_over_flat_pct,
                    pair[1].improvement_over_flat_pct
                );
            }
        }
    }

    #[test]
    fn higher_a_improves_more_at_fixed_inv_r() {
        // More dynamic traffic -> separation matters more.
        let pts = figure3(&Fig3Config::default()).unwrap();
        let at = |a: f64, inv_r: f64| {
            pts.iter()
                .find(|p| (p.a - a).abs() < 1e-9 && (p.inv_r - inv_r).abs() < 1e-9)
                .unwrap()
                .improvement_over_flat_pct
        };
        assert!(at(4.0 / 6.0, 80.0) > at(2.0 / 8.0, 80.0));
    }
}
