//! The *master/slave* (M/S) cluster model (Figure 2a of the paper).
//!
//! `m` of the `p` nodes are masters. Every request first lands on a
//! uniformly random master. Masters process **all** static requests
//! locally, keep a fraction `θ` of the dynamic requests, and forward the
//! remaining `1 − θ` to the `p − m` slaves (uniformly). Remote-execution
//! overhead is neglected, matching the paper's measurement that it is
//! "not only negligible but even smaller than standard local CGI
//! execution".
//!
//! Station utilisations:
//!
//! ```text
//! master: ρ_1(θ) = λ_h / (m μ_h) + θ λ_c / (m μ_c)
//! slave:  ρ_2(θ) = (1 − θ) λ_c / ((p − m) μ_c)
//! ```
//!
//! and the mixed stretch factor (paper Eq. 2):
//!
//! ```text
//! S_M(θ) = [ (1 + aθ) S_1 + a (1 − θ) S_2 ] / (1 + a)
//! ```
//!
//! The comparison `S_M ≤ S_F` clears (multiplying through by the positive
//! quantities `1−ρ_1`, `1−ρ_2`, `1−ρ_F`) to a quadratic `Aθ² + Bθ + C ≤ 0`
//! with `A > 0`, so M/S beats Flat exactly for `θ ∈ [θ1, θ2]`.
//!
//! One root has a closed form by load conservation: if the masters run at
//! exactly the flat utilisation, the leftover dynamic work makes the
//! slaves match it too, so both station stretches equal `S_F`
//! simultaneously at
//!
//! ```text
//! θ2 = (m/p) (1 + r/a) − r/a
//! ```
//!
//! The other root follows from Vieta: `θ1 = −B/A − θ2`. The implementation
//! recovers `A, B, C` exactly by evaluating the cleared polynomial at
//! `θ ∈ {0, 1/2, 1}` (it *is* a quadratic, so three samples determine it),
//! which sidesteps the error-prone symbolic expansion printed — badly — in
//! the paper.

use crate::flat::FlatModel;
use crate::params::{ps_stretch, ModelError, Workload};

/// Evaluation of the M/S model at a specific `(m, θ)` operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsPoint {
    /// Master utilisation `ρ_1(θ)`.
    pub rho_master: f64,
    /// Slave utilisation `ρ_2(θ)`.
    pub rho_slave: f64,
    /// Stretch of static requests (all served at masters), `S_M,h`.
    pub stretch_static: f64,
    /// Stretch of dynamic requests served at masters, `S_M,c1` (= `S_M,h`).
    pub stretch_dynamic_master: f64,
    /// Stretch of dynamic requests served at slaves, `S_M,c2`.
    pub stretch_dynamic_slave: f64,
    /// Overall mixed stretch `S_M`.
    pub stretch: f64,
}

/// The θ-interval on which M/S (with `m` masters) beats the flat model,
/// together with the quadratic that defines it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThetaInterval {
    /// Lower root `θ1` of `Aθ² + Bθ + C = 0`.
    pub theta1: f64,
    /// Upper root `θ2` (closed form `(m/p)(1 + r/a) − r/a`).
    pub theta2: f64,
    /// Quadratic coefficient `A` (positive for meaningful instances).
    pub a_coef: f64,
    /// Quadratic coefficient `B`.
    pub b_coef: f64,
    /// Quadratic coefficient `C`.
    pub c_coef: f64,
}

impl ThetaInterval {
    /// The paper's recommended operating point: the midpoint of the roots,
    /// clamped at zero (`θ_m = max((θ1 + θ2)/2, 0)`).
    pub fn theta_mid(&self) -> f64 {
        ((self.theta1 + self.theta2) / 2.0).max(0.0)
    }

    /// True when some `θ ∈ [0, 1]` makes M/S at least as good as Flat.
    pub fn feasible(&self) -> bool {
        self.theta1 <= self.theta2 && self.theta2 >= 0.0 && self.theta1 <= 1.0
    }
}

/// The M/S analytic model for a fixed master count `m`.
#[derive(Debug, Clone, Copy)]
pub struct MsModel {
    workload: Workload,
    /// Total cluster size.
    pub p: usize,
    /// Number of master nodes (`1 ≤ m < p`).
    pub m: usize,
}

impl MsModel {
    /// Construct, validating the topology (at least one master and one slave).
    pub fn new(workload: Workload, p: usize, m: usize) -> Result<Self, ModelError> {
        if p < 2 {
            return Err(ModelError::BadTopology(format!(
                "M/S needs at least 2 nodes, got p={p}"
            )));
        }
        if m == 0 || m >= p {
            return Err(ModelError::BadTopology(format!(
                "master count must satisfy 1 <= m < p, got m={m}, p={p}"
            )));
        }
        Ok(MsModel { workload, p, m })
    }

    /// The workload this model was built for.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Master utilisation at local-dynamic fraction `θ`.
    #[inline]
    pub fn rho_master(&self, theta: f64) -> f64 {
        let w = &self.workload;
        (w.lambda_h / w.mu_h + theta * w.lambda_c / w.mu_c) / self.m as f64
    }

    /// Slave utilisation at local-dynamic fraction `θ`.
    #[inline]
    pub fn rho_slave(&self, theta: f64) -> f64 {
        let w = &self.workload;
        (1.0 - theta) * w.lambda_c / w.mu_c / (self.p - self.m) as f64
    }

    /// Evaluate all stretch factors at `θ`. Errors if either station is
    /// saturated there.
    pub fn evaluate(&self, theta: f64) -> Result<MsPoint, ModelError> {
        if !(0.0..=1.0).contains(&theta) {
            return Err(ModelError::BadTopology(format!(
                "theta must lie in [0,1], got {theta}"
            )));
        }
        let rho1 = self.rho_master(theta);
        let rho2 = self.rho_slave(theta);
        let s1 = ps_stretch(rho1).map_err(|_| ModelError::Unstable {
            utilisation: rho1,
            station: "master",
        })?;
        let s2 = ps_stretch(rho2).map_err(|_| ModelError::Unstable {
            utilisation: rho2,
            station: "slave",
        })?;
        let a = self.workload.a();
        let stretch = ((1.0 + a * theta) * s1 + a * (1.0 - theta) * s2) / (1.0 + a);
        Ok(MsPoint {
            rho_master: rho1,
            rho_slave: rho2,
            stretch_static: s1,
            stretch_dynamic_master: s1,
            stretch_dynamic_slave: s2,
            stretch,
        })
    }

    /// The cleared comparison polynomial `g(θ)` with `S_M(θ) ≤ S_F ⟺
    /// g(θ) ≤ 0` (valid wherever all three queues are stable):
    ///
    /// `g(θ) = (1+aθ)(1−ρ_2)(1−ρ_F) + a(1−θ)(1−ρ_1)(1−ρ_F) − (1+a)(1−ρ_1)(1−ρ_2)`
    fn cleared_poly(&self, theta: f64, rho_f: f64) -> f64 {
        let a = self.workload.a();
        let rho1 = self.rho_master(theta);
        let rho2 = self.rho_slave(theta);
        (1.0 + a * theta) * (1.0 - rho2) * (1.0 - rho_f)
            + a * (1.0 - theta) * (1.0 - rho1) * (1.0 - rho_f)
            - (1.0 + a) * (1.0 - rho1) * (1.0 - rho2)
    }

    /// Compute the θ-interval `[θ1, θ2]` on which this M/S configuration
    /// beats the flat model (Theorem 1's roots).
    ///
    /// Requires the flat model itself to be stable (otherwise "beating
    /// flat" is vacuous — any stable M/S point wins; callers handle that
    /// case via [`crate::theorem1`]).
    pub fn theta_interval(&self) -> Result<ThetaInterval, ModelError> {
        let flat = FlatModel::evaluate(&self.workload, self.p)?;
        let rho_f = flat.utilisation;

        // Exact coefficient recovery from three evaluations of the quadratic.
        let g0 = self.cleared_poly(0.0, rho_f);
        let g1 = self.cleared_poly(1.0, rho_f);
        let gh = self.cleared_poly(0.5, rho_f);
        let c = g0;
        let a_coef = 2.0 * g1 + 2.0 * g0 - 4.0 * gh;
        let b_coef = g1 - a_coef - c;

        let w = &self.workload;
        let ratio = w.r() / w.a();
        // Load-conservation root: masters and slaves both hit ρ_F here.
        let theta2 = (self.m as f64 / self.p as f64) * (1.0 + ratio) - ratio;

        let theta1 = if a_coef.abs() > 1e-12 {
            -b_coef / a_coef - theta2
        } else {
            // Degenerate quadratic (a ~ 0): fall back to the single linear root.
            if b_coef.abs() > 1e-12 {
                -c / b_coef
            } else {
                theta2
            }
        };
        let (theta1, theta2) = if theta1 <= theta2 {
            (theta1, theta2)
        } else {
            (theta2, theta1)
        };
        Ok(ThetaInterval {
            theta1,
            theta2,
            a_coef,
            b_coef,
            c_coef: c,
        })
    }

    /// Numerically minimise `S_M(θ)` over the stable subset of `[lo, hi]`
    /// by golden-section search. Used for the ablation comparing the
    /// paper's midpoint heuristic against the true optimum.
    pub fn theta_opt_numeric(&self, lo: f64, hi: f64) -> Option<(f64, f64)> {
        let lo = lo.max(0.0);
        let hi = hi.min(1.0);
        if lo > hi {
            return None;
        }
        let f = |t: f64| self.evaluate(t).map(|p| p.stretch).unwrap_or(f64::INFINITY);
        let phi = (5f64.sqrt() - 1.0) / 2.0;
        let (mut a, mut b) = (lo, hi);
        let mut x1 = b - phi * (b - a);
        let mut x2 = a + phi * (b - a);
        let (mut f1, mut f2) = (f(x1), f(x2));
        for _ in 0..80 {
            if f1 < f2 {
                b = x2;
                x2 = x1;
                f2 = f1;
                x1 = b - phi * (b - a);
                f1 = f(x1);
            } else {
                a = x1;
                x1 = x2;
                f1 = f2;
                x2 = a + phi * (b - a);
                f2 = f(x2);
            }
        }
        let t = (a + b) / 2.0;
        let s = f(t);
        if s.is_finite() {
            Some((t, s))
        } else {
            None
        }
    }

    /// Minimum masters for θ2 ≥ 0 (Theorem 1's side condition):
    /// `m ≥ p·r / (a + r)`.
    pub fn min_masters_for_feasibility(w: &Workload, p: usize) -> usize {
        let frac = p as f64 * w.r() / (w.a() + w.r());
        (frac.ceil() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> Workload {
        Workload::from_ratios(1000.0, 0.25, 1200.0, 1.0 / 40.0).unwrap()
    }

    #[test]
    fn topology_validation() {
        assert!(MsModel::new(w(), 1, 1).is_err());
        assert!(MsModel::new(w(), 8, 0).is_err());
        assert!(MsModel::new(w(), 8, 8).is_err());
        assert!(MsModel::new(w(), 8, 7).is_ok());
    }

    #[test]
    fn utilisation_formulas() {
        let m = MsModel::new(w(), 32, 8).unwrap();
        // theta = 0: masters carry only static load.
        assert!((m.rho_master(0.0) - 800.0 / (8.0 * 1200.0)).abs() < 1e-12);
        // theta = 1: slaves idle.
        assert!((m.rho_slave(1.0) - 0.0).abs() < 1e-12);
        // theta = 0: slaves carry all dynamic load.
        assert!((m.rho_slave(0.0) - 200.0 / (24.0 * 30.0)).abs() < 1e-12);
    }

    #[test]
    fn theta2_closed_form_zeroes_the_quadratic() {
        for m_count in [4, 6, 8, 12, 16] {
            let model = MsModel::new(w(), 32, m_count).unwrap();
            let iv = model.theta_interval().unwrap();
            let g = |t: f64| iv.a_coef * t * t + iv.b_coef * t + iv.c_coef;
            // Both roots satisfy the quadratic.
            assert!(
                g(iv.theta2).abs() < 1e-6,
                "g(theta2)={} for m={m_count}",
                g(iv.theta2)
            );
            assert!(
                g(iv.theta1).abs() < 1e-6,
                "g(theta1)={} for m={m_count}",
                g(iv.theta1)
            );
        }
    }

    #[test]
    fn at_theta2_both_stations_match_flat_utilisation() {
        let model = MsModel::new(w(), 32, 8).unwrap();
        let iv = model.theta_interval().unwrap();
        let flat = FlatModel::evaluate(&w(), 32).unwrap();
        assert!((model.rho_master(iv.theta2) - flat.utilisation).abs() < 1e-9);
        assert!((model.rho_slave(iv.theta2) - flat.utilisation).abs() < 1e-9);
    }

    #[test]
    fn inside_interval_ms_beats_flat() {
        let model = MsModel::new(w(), 32, 8).unwrap();
        let iv = model.theta_interval().unwrap();
        let flat = FlatModel::evaluate(&w(), 32).unwrap();
        assert!(iv.feasible());
        let mid = iv.theta_mid();
        let sm = model.evaluate(mid).unwrap().stretch;
        assert!(
            sm <= flat.stretch + 1e-9,
            "S_M({mid}) = {sm} should not exceed S_F = {}",
            flat.stretch
        );
        // And strictly outside (above theta2, clamped to [0,1]) it loses.
        let above = (iv.theta2 + 0.08).min(1.0);
        if above > iv.theta2 {
            if let Ok(pt) = model.evaluate(above) {
                assert!(pt.stretch >= flat.stretch - 1e-9);
            }
        }
    }

    #[test]
    fn midpoint_clamps_at_zero() {
        let iv = ThetaInterval {
            theta1: -0.6,
            theta2: 0.2,
            a_coef: 1.0,
            b_coef: 0.0,
            c_coef: 0.0,
        };
        assert_eq!(iv.theta_mid(), 0.0);
    }

    #[test]
    fn numeric_optimum_is_no_worse_than_midpoint() {
        let model = MsModel::new(w(), 32, 8).unwrap();
        let iv = model.theta_interval().unwrap();
        let mid = iv.theta_mid();
        let s_mid = model.evaluate(mid).unwrap().stretch;
        let (_, s_opt) = model
            .theta_opt_numeric(iv.theta1.max(0.0), iv.theta2.min(1.0))
            .unwrap();
        assert!(s_opt <= s_mid + 1e-9, "numeric {s_opt} vs midpoint {s_mid}");
    }

    #[test]
    fn min_masters_condition_matches_theta2_sign() {
        let wl = w();
        let p = 32;
        let m_min = MsModel::min_masters_for_feasibility(&wl, p);
        if m_min > 1 {
            let below = MsModel::new(wl, p, m_min - 1).unwrap();
            assert!(below.theta_interval().unwrap().theta2 < 0.0);
        }
        let at = MsModel::new(wl, p, m_min).unwrap();
        assert!(at.theta_interval().unwrap().theta2 >= -1e-12);
    }

    #[test]
    fn evaluate_rejects_bad_theta() {
        let model = MsModel::new(w(), 32, 8).unwrap();
        assert!(model.evaluate(-0.1).is_err());
        assert!(model.evaluate(1.1).is_err());
    }

    #[test]
    fn master_overload_detected() {
        // One master cannot hold 800 req/s of static work at mu_h=1200
        // once theta pushes dynamic load on it too.
        let model = MsModel::new(w(), 32, 1).unwrap();
        let err = model.evaluate(1.0).unwrap_err();
        assert!(matches!(
            err,
            ModelError::Unstable {
                station: "master",
                ..
            }
        ));
    }
}
