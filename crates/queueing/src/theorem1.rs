//! Theorem 1: choosing the master count `m` and local-dynamic fraction `θ`.
//!
//! The paper cannot give a closed form for the optimal `m`, so Theorem 1
//! prescribes: for each candidate `m`, take `θ_m = max((θ1 + θ2)/2, 0)`;
//! then pick the `m` whose `S_M(θ_m)` is smallest, scanning the integers
//! `1 ≤ m < p`. This module implements that planner plus the derived
//! quantities the scheduler needs at runtime (most importantly the
//! reservation bound `θ2`, which Section 4 uses as the admission limit
//! `θ2*` for dynamic work on masters).

use crate::flat::FlatModel;
use crate::ms::{MsModel, ThetaInterval};
use crate::params::{ModelError, Workload};

/// The planner's output: the chosen configuration and its predicted
/// performance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    /// Chosen number of master nodes.
    pub m: usize,
    /// Operating fraction of dynamic requests processed at masters.
    pub theta: f64,
    /// The beats-flat interval for the chosen `m`.
    pub interval: ThetaInterval,
    /// Predicted M/S stretch factor at `(m, θ)`.
    pub stretch_ms: f64,
    /// Flat-architecture stretch factor for the same workload.
    pub stretch_flat: f64,
}

impl Plan {
    /// Predicted improvement of M/S over Flat, as the paper reports it:
    /// `(S_F / S_M − 1) × 100%`.
    pub fn improvement_over_flat_pct(&self) -> f64 {
        (self.stretch_flat / self.stretch_ms - 1.0) * 100.0
    }
}

/// How the planner should pick θ for each candidate `m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThetaRule {
    /// The paper's rule: midpoint of the roots, clamped at zero.
    #[default]
    Midpoint,
    /// Numerical minimisation of `S_M(θ)` over the feasible interval
    /// (used by the ablation bench to quantify what the heuristic costs).
    NumericOptimum,
}

/// Solve Theorem 1's minimisation for workload `w` on `p` nodes.
///
/// Returns an error when `p < 2` or when *no* `(m, θ)` configuration is
/// stable — i.e. the workload overloads the cluster outright.
///
/// ```
/// use msweb_queueing::{plan, ThetaRule, Workload};
///
/// // 1000 req/s, 20% CGI that costs 40x a static fetch, 32 nodes.
/// let w = Workload::from_ratios(1000.0, 0.25, 1200.0, 1.0 / 40.0).unwrap();
/// let plan = plan(&w, 32, ThetaRule::Midpoint).unwrap();
/// assert!(plan.m >= 1 && plan.m < 32);
/// assert!(plan.improvement_over_flat_pct() > 0.0);
/// ```
pub fn plan(w: &Workload, p: usize, rule: ThetaRule) -> Result<Plan, ModelError> {
    if p < 2 {
        return Err(ModelError::BadTopology(format!(
            "Theorem 1 needs p >= 2, got {p}"
        )));
    }
    let flat = FlatModel::evaluate(w, p);
    let stretch_flat = match &flat {
        Ok(f) => f.stretch,
        // Flat may be unstable while a well-chosen M/S split is stable
        // (separation protects static work). Plan anyway; report +inf flat.
        Err(_) => f64::INFINITY,
    };

    let mut best: Option<Plan> = None;
    for m in 1..p {
        let model = match MsModel::new(*w, p, m) {
            Ok(mo) => mo,
            Err(_) => continue,
        };
        let interval = match model.theta_interval() {
            Ok(iv) => iv,
            Err(_) => {
                // Flat unstable: no beats-flat interval exists. Fall back to
                // a stability-driven interval: any stable theta qualifies.
                ThetaInterval {
                    theta1: 0.0,
                    theta2: 1.0,
                    a_coef: 0.0,
                    b_coef: 0.0,
                    c_coef: 0.0,
                }
            }
        };
        let theta = match rule {
            ThetaRule::Midpoint => interval.theta_mid().clamp(0.0, 1.0),
            ThetaRule::NumericOptimum => {
                match model.theta_opt_numeric(interval.theta1, interval.theta2) {
                    Some((t, _)) => t,
                    None => continue,
                }
            }
        };
        let Ok(point) = model.evaluate(theta) else {
            continue;
        };
        let candidate = Plan {
            m,
            theta,
            interval,
            stretch_ms: point.stretch,
            stretch_flat,
        };
        let better = match &best {
            None => true,
            Some(b) => candidate.stretch_ms < b.stretch_ms,
        };
        if better {
            best = Some(candidate);
        }
    }
    best.ok_or(ModelError::Unstable {
        utilisation: w.offered_load() / p as f64,
        station: "every M/S configuration",
    })
}

/// Convenience: the reservation bound `θ2` for a given `(m, p)` and
/// *measured* ratios `a` and `r`, as the runtime scheduler computes it
/// (Section 4): `θ2* = (m/p)(1 + r/a) − r/a`, clamped into `[0, 1]`.
pub fn reservation_bound(m: usize, p: usize, a: f64, r: f64) -> f64 {
    assert!(m >= 1 && m <= p, "bad m={m}, p={p}");
    if !(a.is_finite() && a > 0.0 && r.is_finite() && r > 0.0) {
        // Degenerate measurements: be conservative, reserve everything.
        return if m == p { 1.0 } else { 0.0 };
    }
    let ratio = r / a;
    ((m as f64 / p as f64) * (1.0 + ratio) - ratio).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> Workload {
        Workload::from_ratios(1000.0, 0.25, 1200.0, 1.0 / 40.0).unwrap()
    }

    #[test]
    fn plan_beats_flat_for_cgi_heavy_workload() {
        let plan = plan(&w(), 32, ThetaRule::Midpoint).unwrap();
        assert!(plan.improvement_over_flat_pct() > 0.0);
        assert!(plan.m >= 1 && plan.m < 32);
        assert!((0.0..=1.0).contains(&plan.theta));
    }

    #[test]
    fn plan_m_is_argmin_over_all_m() {
        let wl = w();
        let best = plan(&wl, 32, ThetaRule::Midpoint).unwrap();
        for m in 1..32 {
            let model = MsModel::new(wl, 32, m).unwrap();
            if let Ok(iv) = model.theta_interval() {
                let t = iv.theta_mid().clamp(0.0, 1.0);
                if let Ok(pt) = model.evaluate(t) {
                    assert!(
                        best.stretch_ms <= pt.stretch + 1e-12,
                        "m={m} beats chosen m={}",
                        best.m
                    );
                }
            }
        }
    }

    #[test]
    fn numeric_rule_never_worse_than_midpoint() {
        let wl = w();
        let mid = plan(&wl, 32, ThetaRule::Midpoint).unwrap();
        let opt = plan(&wl, 32, ThetaRule::NumericOptimum).unwrap();
        assert!(opt.stretch_ms <= mid.stretch_ms + 1e-9);
    }

    #[test]
    fn improvement_grows_with_cgi_cost() {
        // As 1/r grows (CGI more expensive), M/S separation matters more.
        let mut last = -1.0;
        for inv_r in [10.0, 20.0, 40.0, 80.0] {
            let wl = Workload::from_ratios(1000.0, 0.25, 1200.0, 1.0 / inv_r).unwrap();
            let p = plan(&wl, 32, ThetaRule::Midpoint).unwrap();
            let imp = p.improvement_over_flat_pct();
            assert!(
                imp >= last - 1e-6,
                "improvement should be non-decreasing in 1/r: {imp} after {last}"
            );
            last = imp;
        }
        assert!(
            last > 5.0,
            "expected substantial improvement at 1/r=80, got {last}"
        );
    }

    #[test]
    fn figure3_scale_improvement_up_to_tens_of_percent() {
        // Paper: "M/S outperforms the flat model by up to 60%" across its
        // Figure 3 sweep. Check the sweep's most favourable corner is in
        // that ballpark (>= 30%).
        let mut max_imp: f64 = 0.0;
        for a in [2.0 / 8.0, 3.0 / 7.0, 4.0 / 6.0] {
            for inv_r in [10.0, 20.0, 40.0, 80.0] {
                let wl = Workload::from_ratios(1000.0, a, 1200.0, 1.0 / inv_r).unwrap();
                if let Ok(p) = plan(&wl, 32, ThetaRule::Midpoint) {
                    max_imp = max_imp.max(p.improvement_over_flat_pct());
                }
            }
        }
        assert!(max_imp >= 30.0, "peak Figure-3 improvement only {max_imp}%");
    }

    #[test]
    fn overloaded_cluster_is_an_error() {
        let wl = Workload::from_ratios(1_000_000.0, 0.25, 1200.0, 0.025).unwrap();
        assert!(plan(&wl, 4, ThetaRule::Midpoint).is_err());
    }

    #[test]
    fn flat_unstable_but_ms_stable_still_plans() {
        // Load where p=8 flat is unstable but M/S with separation works:
        // offered load just below 8 Erlangs concentrated in dynamic work.
        // flat rho = offered/8 < 1 actually means flat stable; to make flat
        // unstable with stable M/S is impossible (M/S serves the same total
        // work), so instead verify the fallback path via an *almost*
        // saturated flat where the interval still exists.
        let wl = Workload::from_ratios(3000.0, 0.4, 1200.0, 1.0 / 20.0).unwrap();
        // offered = per-node check:
        let plan = plan(&wl, 32, ThetaRule::Midpoint);
        assert!(plan.is_ok());
    }

    #[test]
    fn reservation_bound_matches_interval_theta2() {
        let wl = w();
        let model = MsModel::new(wl, 32, 8).unwrap();
        let iv = model.theta_interval().unwrap();
        let rb = reservation_bound(8, 32, wl.a(), wl.r());
        assert!((rb - iv.theta2.clamp(0.0, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn reservation_bound_monotone_in_m() {
        let mut last = 0.0;
        for m in 1..=32 {
            let b = reservation_bound(m, 32, 0.25, 0.025);
            assert!(b >= last - 1e-12, "bound must grow with m");
            last = b;
        }
        assert!((reservation_bound(32, 32, 0.25, 0.025) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reservation_bound_degenerate_measurements() {
        assert_eq!(reservation_bound(4, 32, 0.0, 0.025), 0.0);
        assert_eq!(reservation_bound(4, 32, f64::NAN, 0.025), 0.0);
        assert_eq!(reservation_bound(32, 32, 0.0, 0.025), 1.0);
    }

    #[test]
    fn more_static_traffic_lowers_reservation_bound() {
        // Paper: "With more static requests compared to dynamic content
        // requests, the ratio a and theta2* will also decrease. Thus, more
        // resources are reserved for static processing at master nodes."
        let high_a = reservation_bound(8, 32, 0.8, 0.025);
        let low_a = reservation_bound(8, 32, 0.1, 0.025);
        assert!(low_a < high_a);
    }
}
