//! # msweb-queueing
//!
//! Analytic queueing models from Section 3 of *Scheduling Optimization for
//! Resource-Intensive Web Requests on Server Clusters* (Zhu, Smith, Yang;
//! SPAA 1999), plus the Theorem-1 planner the runtime scheduler consults.
//!
//! The cluster is modelled as a multi-class open queueing network with two
//! Poisson request classes (static file fetches and dynamic/CGI requests)
//! over `p` M/M/1 processor-sharing nodes. Three architectures are
//! compared by *stretch factor* (mean response/demand ratio):
//!
//! * [`flat::FlatModel`] — every request dispatched uniformly at random;
//! * [`ms::MsModel`] — `m` masters take all static plus a fraction `θ` of
//!   dynamic work, `p − m` slaves take the rest;
//! * [`msprime::MsPrimeModel`] — dynamic work pinned to `k` nodes while
//!   static work spreads everywhere (the paper's dominated alternative).
//!
//! [`mmc`] adds the pooled M/M/c idealisation (what a least-loaded
//! switch approximates) and the *pooling gain* over random splitting.
//!
//! [`theorem1::plan`] reproduces Theorem 1: the beats-flat interval
//! `[θ1, θ2]`, the midpoint rule `θ_m`, and the numerical scan for the
//! best master count `m`. [`fig3::figure3`] regenerates the paper's
//! Figure 3 comparison grid, and [`hetero`] carries the analysis to
//! non-uniform nodes (the paper's stated extension).
//!
//! This crate is pure math — no I/O, no randomness — so every function is
//! exactly reproducible and cheap enough to run inside the scheduler's
//! control loop.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fig3;
pub mod flat;
pub mod hetero;
pub mod mmc;
pub mod ms;
pub mod msprime;
pub mod params;
pub mod theorem1;

pub use fig3::{figure3, Fig3Config, Fig3Point};
pub use flat::FlatModel;
pub use hetero::{HeteroCluster, HeteroPoint};
pub use mmc::{erlang_c, pooling_gain, PooledModel};
pub use ms::{MsModel, MsPoint, ThetaInterval};
pub use msprime::{MsPrimeModel, MsPrimePoint};
pub use params::{ps_stretch, ModelError, Workload};
pub use theorem1::{plan, reservation_bound, Plan, ThetaRule};
