//! Heterogeneous-cluster extension (the paper's Section 6 future work).
//!
//! The SPAA'99 analysis assumes homogeneous nodes; the authors note the
//! results "can also be extended for a heterogeneous system with
//! non-uniform nodes". This module provides that extension: each node `i`
//! gets a speed factor `s_i` (1.0 = baseline), service rates scale to
//! `s_i μ`, and load is split *proportionally to speed* within each level
//! — the allocation that equalises utilisation, which is what
//! minimum-expected-cost dispatch converges to.

use crate::params::{ps_stretch, ModelError, Workload};

/// A heterogeneous master/slave configuration: which nodes are masters and
/// how fast each node is.
#[derive(Debug, Clone)]
pub struct HeteroCluster {
    /// Speed factor for every node (must be positive). Length = p.
    pub speeds: Vec<f64>,
    /// Indices of the master nodes.
    pub masters: Vec<usize>,
}

/// Analytic evaluation of a heterogeneous M/S configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeteroPoint {
    /// Common utilisation of all master nodes (speed-proportional split).
    pub rho_master: f64,
    /// Common utilisation of all slave nodes.
    pub rho_slave: f64,
    /// Overall stretch factor.
    pub stretch: f64,
}

impl HeteroCluster {
    /// Validate and construct.
    pub fn new(speeds: Vec<f64>, masters: Vec<usize>) -> Result<Self, ModelError> {
        if speeds.len() < 2 {
            return Err(ModelError::BadTopology("need at least 2 nodes".into()));
        }
        if speeds.iter().any(|&s| !(s.is_finite() && s > 0.0)) {
            return Err(ModelError::BadRate("node speed"));
        }
        if masters.is_empty() || masters.len() >= speeds.len() {
            return Err(ModelError::BadTopology(format!(
                "need 1 <= masters < p, got {} of {}",
                masters.len(),
                speeds.len()
            )));
        }
        let mut seen = vec![false; speeds.len()];
        for &i in &masters {
            if i >= speeds.len() {
                return Err(ModelError::BadTopology(format!(
                    "master index {i} out of range"
                )));
            }
            if seen[i] {
                return Err(ModelError::BadTopology(format!(
                    "duplicate master index {i}"
                )));
            }
            seen[i] = true;
        }
        Ok(HeteroCluster { speeds, masters })
    }

    /// Total speed of the master level.
    pub fn master_capacity(&self) -> f64 {
        self.masters.iter().map(|&i| self.speeds[i]).sum()
    }

    /// Total speed of the slave level.
    pub fn slave_capacity(&self) -> f64 {
        let total: f64 = self.speeds.iter().sum();
        total - self.master_capacity()
    }

    /// Evaluate the M/S stretch at local-dynamic fraction `theta`.
    ///
    /// With speed-proportional splitting, node `i` at level L receives a
    /// `s_i / S_L` share of the level's work, so every node in a level has
    /// the same utilisation `work_L / S_L` — reducing each level to one
    /// effective M/M/1-PS station, exactly as in the homogeneous model but
    /// with fractional "node counts" `S_L`.
    pub fn evaluate(&self, w: &Workload, theta: f64) -> Result<HeteroPoint, ModelError> {
        if !(0.0..=1.0).contains(&theta) {
            return Err(ModelError::BadTopology(format!(
                "theta {theta} not in [0,1]"
            )));
        }
        let cap_m = self.master_capacity();
        let cap_s = self.slave_capacity();
        let rho_master = (w.lambda_h / w.mu_h + theta * w.lambda_c / w.mu_c) / cap_m;
        let rho_slave = (1.0 - theta) * w.lambda_c / w.mu_c / cap_s;
        let s1 = ps_stretch(rho_master).map_err(|_| ModelError::Unstable {
            utilisation: rho_master,
            station: "master",
        })?;
        let s2 = ps_stretch(rho_slave).map_err(|_| ModelError::Unstable {
            utilisation: rho_slave,
            station: "slave",
        })?;
        let a = w.a();
        let stretch = ((1.0 + a * theta) * s1 + a * (1.0 - theta) * s2) / (1.0 + a);
        Ok(HeteroPoint {
            rho_master,
            rho_slave,
            stretch,
        })
    }

    /// The beats-everything operating θ by golden-section search over the
    /// stable range.
    pub fn theta_opt(&self, w: &Workload) -> Option<(f64, f64)> {
        let f = |t: f64| {
            self.evaluate(w, t)
                .map(|p| p.stretch)
                .unwrap_or(f64::INFINITY)
        };
        let phi = (5f64.sqrt() - 1.0) / 2.0;
        let (mut a, mut b) = (0.0f64, 1.0f64);
        let mut x1 = b - phi * (b - a);
        let mut x2 = a + phi * (b - a);
        let (mut f1, mut f2) = (f(x1), f(x2));
        for _ in 0..80 {
            if f1 < f2 {
                b = x2;
                x2 = x1;
                f2 = f1;
                x1 = b - phi * (b - a);
                f1 = f(x1);
            } else {
                a = x1;
                x1 = x2;
                f1 = f2;
                x2 = a + phi * (b - a);
                f2 = f(x2);
            }
        }
        let t = (a + b) / 2.0;
        let s = f(t);
        s.is_finite().then_some((t, s))
    }

    /// Choose the master *set* greedily: sort nodes by speed ascending and
    /// try each prefix size as the master level (slow nodes make good
    /// masters because static requests are cheap), returning the best
    /// (cluster, theta, stretch).
    pub fn plan_masters(speeds: &[f64], w: &Workload) -> Option<(HeteroCluster, f64, f64)> {
        let mut order: Vec<usize> = (0..speeds.len()).collect();
        order.sort_by(|&i, &j| speeds[i].partial_cmp(&speeds[j]).expect("NaN speed"));
        let mut best: Option<(HeteroCluster, f64, f64)> = None;
        for m in 1..speeds.len() {
            let masters = order[..m].to_vec();
            let Ok(cluster) = HeteroCluster::new(speeds.to_vec(), masters) else {
                continue;
            };
            if let Some((theta, stretch)) = cluster.theta_opt(w) {
                if best.as_ref().is_none_or(|(_, _, s)| stretch < *s) {
                    best = Some((cluster, theta, stretch));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ms::MsModel;

    fn w() -> Workload {
        Workload::from_ratios(1000.0, 0.25, 1200.0, 1.0 / 40.0).unwrap()
    }

    #[test]
    fn uniform_speeds_reduce_to_homogeneous_model() {
        let wl = w();
        let cluster = HeteroCluster::new(vec![1.0; 32], (0..8).collect()).unwrap();
        let homo = MsModel::new(wl, 32, 8).unwrap();
        for theta in [0.0, 0.05, 0.1] {
            let h = cluster.evaluate(&wl, theta).unwrap();
            let m = homo.evaluate(theta).unwrap();
            assert!((h.stretch - m.stretch).abs() < 1e-9, "theta={theta}");
            assert!((h.rho_master - m.rho_master).abs() < 1e-12);
            assert!((h.rho_slave - m.rho_slave).abs() < 1e-12);
        }
    }

    #[test]
    fn validation() {
        assert!(HeteroCluster::new(vec![1.0], vec![0]).is_err());
        assert!(HeteroCluster::new(vec![1.0, -1.0], vec![0]).is_err());
        assert!(HeteroCluster::new(vec![1.0, 1.0], vec![]).is_err());
        assert!(HeteroCluster::new(vec![1.0, 1.0], vec![0, 1]).is_err());
        assert!(HeteroCluster::new(vec![1.0, 1.0], vec![5]).is_err());
        assert!(HeteroCluster::new(vec![1.0, 1.0, 1.0], vec![0, 0]).is_err());
    }

    #[test]
    fn faster_slaves_lower_stretch() {
        let wl = w();
        let slow = HeteroCluster::new(vec![1.0; 32], (0..8).collect()).unwrap();
        let mut speeds = vec![1.0; 32];
        for s in speeds.iter_mut().skip(8) {
            *s = 2.0; // double-speed slaves
        }
        let fast = HeteroCluster::new(speeds, (0..8).collect()).unwrap();
        let (_, s_slow) = slow.theta_opt(&wl).unwrap();
        let (_, s_fast) = fast.theta_opt(&wl).unwrap();
        assert!(s_fast < s_slow);
    }

    #[test]
    fn planner_prefers_slow_masters() {
        // 4 slow + 4 fast nodes: the planner should put slow nodes at the
        // master level where work is cheap.
        let speeds = vec![0.5, 0.5, 0.5, 0.5, 2.0, 2.0, 2.0, 2.0];
        let wl = Workload::from_ratios(300.0, 0.4, 1200.0, 1.0 / 40.0).unwrap();
        let (cluster, theta, stretch) = HeteroCluster::plan_masters(&speeds, &wl).unwrap();
        assert!(stretch.is_finite());
        assert!((0.0..=1.0).contains(&theta));
        // All chosen masters are slow nodes.
        for &i in &cluster.masters {
            assert!(speeds[i] <= 0.5 + 1e-12, "planner picked a fast master");
        }
    }

    #[test]
    fn capacity_accounting() {
        let c = HeteroCluster::new(vec![1.0, 2.0, 3.0], vec![0]).unwrap();
        assert!((c.master_capacity() - 1.0).abs() < 1e-12);
        assert!((c.slave_capacity() - 5.0).abs() < 1e-12);
    }
}
