//! The *flat* cluster model (Figure 2b of the paper).
//!
//! In a flat (DNS- or switch-balanced) cluster, every request — static or
//! dynamic — is routed uniformly at random to one of the `p` identical
//! nodes. Each node therefore sees Poisson arrivals at rates `λ_h/p` and
//! `λ_c/p` and behaves as an M/M/1 processor-sharing queue with
//! utilisation
//!
//! ```text
//! ρ_F = λ_h / (p μ_h) + λ_c / (p μ_c)
//! ```
//!
//! Under processor sharing the stretch factor is class-independent:
//! `S_F = S_F,h = S_F,c = 1 / (1 − ρ_F)` (the paper's Equation 1/2).

use crate::params::{ps_stretch, ModelError, Workload};

/// Analytic results for the flat architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatModel {
    /// Per-node utilisation `ρ_F`.
    pub utilisation: f64,
    /// Overall stretch factor `S_F` (equals both per-class stretches).
    pub stretch: f64,
}

impl FlatModel {
    /// Evaluate the flat model for workload `w` on `p` nodes.
    pub fn evaluate(w: &Workload, p: usize) -> Result<FlatModel, ModelError> {
        if p == 0 {
            return Err(ModelError::BadTopology("p must be positive".into()));
        }
        let rho = w.offered_load() / p as f64;
        let stretch = ps_stretch(rho).map_err(|_| ModelError::Unstable {
            utilisation: rho,
            station: "flat node",
        })?;
        Ok(FlatModel {
            utilisation: rho,
            stretch,
        })
    }

    /// The smallest cluster size that keeps the flat model stable for `w`.
    pub fn min_stable_p(w: &Workload) -> usize {
        (w.offered_load().floor() as usize) + 1
    }

    /// Mean response time of a static request in seconds.
    pub fn response_h(&self, w: &Workload) -> f64 {
        self.stretch * w.demand_h()
    }

    /// Mean response time of a dynamic request in seconds.
    pub fn response_c(&self, w: &Workload) -> f64 {
        self.stretch * w.demand_c()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> Workload {
        Workload::from_ratios(1000.0, 0.25, 1200.0, 1.0 / 40.0).unwrap()
    }

    #[test]
    fn utilisation_formula() {
        let w = w();
        let m = FlatModel::evaluate(&w, 32).unwrap();
        let expect = 800.0 / (32.0 * 1200.0) + 200.0 / (32.0 * 30.0);
        assert!((m.utilisation - expect).abs() < 1e-12);
        assert!((m.stretch - 1.0 / (1.0 - expect)).abs() < 1e-9);
    }

    #[test]
    fn stretch_grows_with_load() {
        let w1 = Workload::from_ratios(500.0, 0.25, 1200.0, 0.025).unwrap();
        let w2 = Workload::from_ratios(2000.0, 0.25, 1200.0, 0.025).unwrap();
        let s1 = FlatModel::evaluate(&w1, 32).unwrap().stretch;
        let s2 = FlatModel::evaluate(&w2, 32).unwrap().stretch;
        assert!(s2 > s1);
    }

    #[test]
    fn detects_overload() {
        // Offered load = 800/1200 + 200/30 = 7.33 Erlangs > 4 nodes.
        let err = FlatModel::evaluate(&w(), 4).unwrap_err();
        assert!(matches!(err, ModelError::Unstable { .. }));
    }

    #[test]
    fn min_stable_p_is_tight() {
        let w = w();
        let p = FlatModel::min_stable_p(&w);
        assert!(FlatModel::evaluate(&w, p).is_ok());
        assert!(FlatModel::evaluate(&w, p - 1).is_err());
    }

    #[test]
    fn zero_nodes_rejected() {
        assert!(matches!(
            FlatModel::evaluate(&w(), 0),
            Err(ModelError::BadTopology(_))
        ));
    }

    #[test]
    fn response_times_scale_with_demand() {
        let w = w();
        let m = FlatModel::evaluate(&w, 32).unwrap();
        // Dynamic demand is 40x static, so responses differ by exactly 40x.
        assert!((m.response_c(&w) / m.response_h(&w) - 40.0).abs() < 1e-9);
    }
}
