//! Pooled-cluster analysis: M/M/c queues and the price of partitioning.
//!
//! The paper's models dispatch each request to a *specific* node (random
//! splitting), making every node an independent M/M/1. A load-balancing
//! switch that routes each arrival to the least-loaded node approximates
//! the opposite idealisation: the whole cluster behaves like one M/M/c
//! queue with a shared waiting line. Classical queueing theory says the
//! pooled system always waits less (resource pooling); this module makes
//! that comparison available analytically, which is the theory behind the
//! reproduction's finding that an idealised least-connections switch
//! matches or beats the M/S scheme on raw stretch (see EXPERIMENTS.md).
//!
//! The paper's M/S design regains its edge on the axes pooling cannot
//! help with: protecting a cheap request class from an expensive one on
//! the *same node* (quantum-granularity interference is invisible to
//! M/M/c), fail-over masking, and recruitment of non-dedicated nodes.

use crate::params::{ModelError, Workload};

/// Erlang-C: the probability an arrival must queue in an M/M/c system
/// with offered load `a = λ/μ` Erlangs and `c` servers.
///
/// Computed via the numerically stable iterative form of the Erlang-B
/// recursion followed by the B→C conversion.
///
/// ```
/// // A single server reduces to M/M/1: P(wait) = utilisation.
/// let p = msweb_queueing::erlang_c(1, 0.6).unwrap();
/// assert!((p - 0.6).abs() < 1e-12);
/// ```
pub fn erlang_c(c: usize, a: f64) -> Result<f64, ModelError> {
    if c == 0 {
        return Err(ModelError::BadTopology("need at least one server".into()));
    }
    if !(a.is_finite() && a > 0.0) {
        return Err(ModelError::BadRate("offered load"));
    }
    let rho = a / c as f64;
    if rho >= 1.0 {
        return Err(ModelError::Unstable {
            utilisation: rho,
            station: "M/M/c pool",
        });
    }
    // Erlang-B recursion: B(0) = 1; B(k) = a·B(k−1) / (k + a·B(k−1)).
    let mut b = 1.0;
    for k in 1..=c {
        b = a * b / (k as f64 + a * b);
    }
    // Erlang-C from Erlang-B.
    Ok(b / (1.0 - rho * (1.0 - b)))
}

/// Mean waiting time (in units of one mean service time) in an M/M/c
/// queue at offered load `a` Erlangs: `W_q · μ = C(c, a) / (c − a)`.
pub fn mmc_wait_over_service(c: usize, a: f64) -> Result<f64, ModelError> {
    let pc = erlang_c(c, a)?;
    Ok(pc / (c as f64 - a))
}

/// Analytic results for a fully pooled cluster serving the paper's
/// two-class workload: one shared queue, `p` servers, FCFS.
///
/// With a shared FCFS queue the *waiting* time is class-independent; the
/// stretch of class `i` is `1 + W_q / d_i`. The wait is computed from the
/// M/M/c model with the aggregate mean service time (an approximation:
/// the true two-class service distribution is hyperexponential, which
/// M/M/c understates somewhat — documented, and bounded by tests against
/// simulation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PooledModel {
    /// Mean queueing wait in seconds.
    pub wait_s: f64,
    /// Stretch of static requests.
    pub stretch_static: f64,
    /// Stretch of dynamic requests.
    pub stretch_dynamic: f64,
    /// Arrival-weighted overall stretch (the paper's metric).
    pub stretch: f64,
}

impl PooledModel {
    /// Evaluate the pooled idealisation for workload `w` on `p` servers.
    pub fn evaluate(w: &Workload, p: usize) -> Result<PooledModel, ModelError> {
        let lambda = w.lambda();
        // Aggregate mean service time of the two-class mix.
        let mean_service = (w.lambda_h * w.demand_h() + w.lambda_c * w.demand_c()) / lambda;
        let offered = lambda * mean_service;
        let wait_units = mmc_wait_over_service(p, offered)?;
        let wait_s = wait_units * mean_service;
        let stretch_static = 1.0 + wait_s / w.demand_h();
        let stretch_dynamic = 1.0 + wait_s / w.demand_c();
        let stretch = (w.lambda_h * stretch_static + w.lambda_c * stretch_dynamic) / lambda;
        Ok(PooledModel {
            wait_s,
            stretch_static,
            stretch_dynamic,
            stretch,
        })
    }
}

/// The *pooling gain*: ratio of the flat (random-splitting, per-node
/// M/M/1) overall stretch to the pooled (M/M/c) overall stretch for the
/// same workload. Values above 1 quantify what an idealised
/// least-loaded-routing switch can recover over DNS rotation.
pub fn pooling_gain(w: &Workload, p: usize) -> Result<f64, ModelError> {
    let flat = crate::flat::FlatModel::evaluate(w, p)?;
    let pooled = PooledModel::evaluate(w, p)?;
    Ok(flat.stretch / pooled.stretch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_c_single_server_reduces_to_mm1() {
        // M/M/1: P(wait) = rho.
        for rho in [0.1, 0.5, 0.9] {
            let c = erlang_c(1, rho).unwrap();
            assert!((c - rho).abs() < 1e-12, "rho={rho}: {c}");
        }
    }

    #[test]
    fn erlang_c_known_value() {
        // Classic teletraffic example: c=10, a=7 Erlangs -> C ≈ 0.2217.
        let c = erlang_c(10, 7.0).unwrap();
        assert!((c - 0.2217).abs() < 5e-3, "C(10,7) = {c}");
    }

    #[test]
    fn erlang_c_bounds_and_monotonicity() {
        // In (0,1), increasing with load, decreasing with servers.
        let mut last = 0.0;
        for a in [1.0, 4.0, 8.0, 12.0, 15.0] {
            let c = erlang_c(16, a).unwrap();
            assert!((0.0..1.0).contains(&c));
            assert!(c >= last);
            last = c;
        }
        assert!(erlang_c(32, 8.0).unwrap() < erlang_c(16, 8.0).unwrap());
    }

    #[test]
    fn erlang_c_rejects_overload() {
        assert!(erlang_c(4, 4.0).is_err());
        assert!(erlang_c(4, 5.0).is_err());
        assert!(erlang_c(0, 1.0).is_err());
    }

    #[test]
    fn mm1_wait_matches_closed_form() {
        // M/M/1: Wq·mu = rho/(1-rho).
        for rho in [0.2, 0.5, 0.8] {
            let w = mmc_wait_over_service(1, rho).unwrap();
            assert!((w - rho / (1.0 - rho)).abs() < 1e-12);
        }
    }

    #[test]
    fn pooling_always_beats_random_splitting() {
        // Resource pooling: the M/M/c stretch never exceeds the per-node
        // M/M/1 stretch of the flat model, for any stable workload.
        for lambda in [200.0, 800.0, 2000.0] {
            for a in [0.1, 0.4, 0.8] {
                for inv_r in [20.0, 40.0, 80.0] {
                    let Ok(w) = Workload::from_ratios(lambda, a, 1200.0, 1.0 / inv_r) else {
                        continue;
                    };
                    if w.offered_load() / 32.0 >= 0.95 {
                        continue;
                    }
                    let gain = pooling_gain(&w, 32).unwrap();
                    assert!(
                        gain >= 1.0 - 1e-9,
                        "pooling lost at λ={lambda}, a={a}, 1/r={inv_r}: {gain}"
                    );
                }
            }
        }
    }

    #[test]
    fn pooled_stretch_class_relationship() {
        // Shared-queue FCFS: same absolute wait, so the *cheap* class has
        // the larger stretch — the exact opposite of M/S's goal, and why
        // pooling alone does not deliver the paper's static-promptness
        // property.
        let w = Workload::from_ratios(1000.0, 0.25, 1200.0, 1.0 / 40.0).unwrap();
        let pooled = PooledModel::evaluate(&w, 32).unwrap();
        assert!(pooled.stretch_static > pooled.stretch_dynamic);
        assert!(pooled.stretch >= 1.0);
    }

    #[test]
    fn pooling_gain_grows_with_load_variability() {
        // The gain is largest where random splitting hurts most: heavy
        // dynamic load.
        let light = Workload::from_ratios(500.0, 0.25, 1200.0, 1.0 / 40.0).unwrap();
        let heavy = Workload::from_ratios(2000.0, 0.25, 1200.0, 1.0 / 40.0).unwrap();
        let g_light = pooling_gain(&light, 32).unwrap();
        let g_heavy = pooling_gain(&heavy, 32).unwrap();
        assert!(g_heavy > g_light, "{g_light} -> {g_heavy}");
    }
}
