//! The *M/S′* alternative model (Section 3's strawman).
//!
//! M/S′ dedicates `k` nodes to dynamic-content processing but spreads
//! static requests across **all** `p` nodes. (Contrast with M/S proper,
//! where static requests are confined to the `m` masters and dynamic work
//! spills between levels under θ.) The paper shows M/S′ also beats the
//! flat model but is dominated by M/S — reproduced in Figure 3(b).
//!
//! Station utilisations:
//!
//! ```text
//! dynamic node: ρ_d = λ_h/(p μ_h) + λ_c/(k μ_c)
//! pure node:    ρ_s = λ_h/(p μ_h)
//! ```

use crate::params::{ps_stretch, ModelError, Workload};

/// Evaluation of M/S′ at a specific dynamic-node count `k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsPrimePoint {
    /// Number of nodes that also run dynamic requests.
    pub k: usize,
    /// Utilisation of a dynamic node.
    pub rho_dynamic: f64,
    /// Utilisation of a static-only node.
    pub rho_static: f64,
    /// Overall mixed stretch factor.
    pub stretch: f64,
}

/// The M/S′ analytic model.
#[derive(Debug, Clone, Copy)]
pub struct MsPrimeModel {
    workload: Workload,
    /// Total cluster size.
    pub p: usize,
}

impl MsPrimeModel {
    /// Construct for `p ≥ 2` nodes.
    pub fn new(workload: Workload, p: usize) -> Result<Self, ModelError> {
        if p < 2 {
            return Err(ModelError::BadTopology(format!(
                "M/S' needs at least 2 nodes, got p={p}"
            )));
        }
        Ok(MsPrimeModel { workload, p })
    }

    /// Evaluate the model with `k` dynamic nodes (`1 ≤ k ≤ p`).
    pub fn evaluate(&self, k: usize) -> Result<MsPrimePoint, ModelError> {
        if k == 0 || k > self.p {
            return Err(ModelError::BadTopology(format!(
                "dynamic node count must satisfy 1 <= k <= p, got k={k}, p={}",
                self.p
            )));
        }
        let w = &self.workload;
        let p = self.p as f64;
        let rho_static = w.lambda_h / (p * w.mu_h);
        let rho_dynamic = rho_static + w.lambda_c / (k as f64 * w.mu_c);
        let s_stat = ps_stretch(rho_static).map_err(|_| ModelError::Unstable {
            utilisation: rho_static,
            station: "static node",
        })?;
        let s_dyn = ps_stretch(rho_dynamic).map_err(|_| ModelError::Unstable {
            utilisation: rho_dynamic,
            station: "dynamic node",
        })?;
        // Static requests land uniformly: k/p of them share a node with
        // dynamic work, the rest run on pure static nodes.
        let k_frac = k as f64 / p;
        let s_h = k_frac * s_dyn + (1.0 - k_frac) * s_stat;
        let stretch = (w.lambda_h * s_h + w.lambda_c * s_dyn) / w.lambda();
        Ok(MsPrimePoint {
            k,
            rho_dynamic,
            rho_static,
            stretch,
        })
    }

    /// The best `k` (smallest stretch) by exhaustive scan, mirroring the
    /// paper's numerical optimisation. Returns `None` when no `k` is stable.
    ///
    /// Note an analytic fact the paper glosses over: under the exact
    /// M/M/1-PS model this family is *dominated by flat* — concentrating
    /// dynamic work while statics still visit the hot nodes only unbalances
    /// the flat assignment, so the unconstrained optimum is `k = p`, which
    /// coincides with flat exactly. The "a few nodes" premise only bites
    /// when `k` is capped; see [`MsPrimeModel::optimal_few`].
    pub fn optimal(&self) -> Option<MsPrimePoint> {
        self.optimal_few(self.p)
    }

    /// The best `k ≤ cap` — the paper's "fix the assignment of dynamic
    /// content requests to a few nodes" with "a few" made explicit.
    pub fn optimal_few(&self, cap: usize) -> Option<MsPrimePoint> {
        (1..=cap.min(self.p))
            .filter_map(|k| self.evaluate(k).ok())
            .min_by(|a, b| a.stretch.partial_cmp(&b.stretch).expect("NaN stretch"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatModel;

    fn w() -> Workload {
        Workload::from_ratios(1000.0, 0.25, 1200.0, 1.0 / 40.0).unwrap()
    }

    #[test]
    fn utilisation_formulas() {
        let model = MsPrimeModel::new(w(), 32).unwrap();
        let pt = model.evaluate(16).unwrap();
        assert!((pt.rho_static - 800.0 / (32.0 * 1200.0)).abs() < 1e-12);
        assert!((pt.rho_dynamic - (pt.rho_static + 200.0 / (16.0 * 30.0))).abs() < 1e-12);
    }

    #[test]
    fn k_bounds_checked() {
        let model = MsPrimeModel::new(w(), 32).unwrap();
        assert!(model.evaluate(0).is_err());
        assert!(model.evaluate(33).is_err());
        assert!(model.evaluate(32).is_ok());
    }

    #[test]
    fn too_few_dynamic_nodes_overload() {
        let model = MsPrimeModel::new(w(), 32).unwrap();
        // 200/30 = 6.67 Erlangs of dynamic work needs at least 7 nodes.
        assert!(model.evaluate(6).is_err());
        assert!(model.evaluate(7).is_ok());
    }

    #[test]
    fn optimal_beats_flat() {
        let wl = w();
        let model = MsPrimeModel::new(wl, 32).unwrap();
        let best = model.optimal().expect("feasible");
        let flat = FlatModel::evaluate(&wl, 32).unwrap();
        assert!(
            best.stretch <= flat.stretch + 1e-9,
            "M/S' {} vs flat {}",
            best.stretch,
            flat.stretch
        );
    }

    #[test]
    fn optimal_is_global_minimum() {
        let model = MsPrimeModel::new(w(), 32).unwrap();
        let best = model.optimal().unwrap();
        for k in 1..=32 {
            if let Ok(pt) = model.evaluate(k) {
                assert!(best.stretch <= pt.stretch + 1e-12);
            }
        }
    }

    #[test]
    fn unconstrained_optimum_collapses_to_flat() {
        // The domination fact documented on `optimal`: the best k is p and
        // the stretch there equals the flat stretch.
        let wl = w();
        let model = MsPrimeModel::new(wl, 32).unwrap();
        let best = model.optimal().unwrap();
        assert_eq!(best.k, 32);
        let flat = FlatModel::evaluate(&wl, 32).unwrap();
        assert!((best.stretch - flat.stretch).abs() < 1e-9);
    }

    #[test]
    fn capped_optimum_respects_cap_and_is_worse() {
        let model = MsPrimeModel::new(w(), 32).unwrap();
        let few = model.optimal_few(16).unwrap();
        assert!(few.k <= 16);
        let free = model.optimal().unwrap();
        assert!(few.stretch >= free.stretch - 1e-12);
    }

    #[test]
    fn k_equals_p_is_not_flat() {
        // Even with k = p, M/S' differs from flat: dynamic work is spread
        // over all nodes *in addition to* the uniform static load, which is
        // exactly the flat utilisation — so stretches coincide only there.
        let wl = w();
        let model = MsPrimeModel::new(wl, 32).unwrap();
        let pt = model.evaluate(32).unwrap();
        let flat = FlatModel::evaluate(&wl, 32).unwrap();
        assert!((pt.rho_dynamic - flat.utilisation).abs() < 1e-12);
        assert!((pt.stretch - flat.stretch).abs() < 1e-9);
    }
}
