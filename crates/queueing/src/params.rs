//! Workload and cluster parameters for the Section 3 analytic models.
//!
//! The paper describes the cluster as a multi-class open queueing network
//! with two Poisson customer classes — *static* (`h`, plain file fetches)
//! and *dynamic* (`c`, CGI-style content generation) — served by `p`
//! homogeneous nodes, each behaving as an M/M/1 processor-sharing queue.
//!
//! Derived quantities follow the paper's notation:
//! `a = λ_c / λ_h` (arrival-rate ratio) and `r = μ_c / μ_h`
//! (service-rate ratio; `r ≪ 1` because dynamic requests are far more
//! expensive than static ones).

/// Arrival and service rates for the two request classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Mean arrival rate of static requests, requests/second (`λ_h`).
    pub lambda_h: f64,
    /// Mean arrival rate of dynamic-content requests, requests/second (`λ_c`).
    pub lambda_c: f64,
    /// Mean service rate of static requests on one node, requests/second (`μ_h`).
    pub mu_h: f64,
    /// Mean service rate of dynamic requests on one node, requests/second (`μ_c`).
    pub mu_c: f64,
}

/// Errors from invalid model parameterisations.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A rate was zero, negative, or non-finite.
    BadRate(&'static str),
    /// The cluster size or master count is out of range.
    BadTopology(String),
    /// The offered load exceeds the cluster capacity (utilisation ≥ 1).
    Unstable {
        /// Offered per-node utilisation that violated stability.
        utilisation: f64,
        /// Which queue was overloaded.
        station: &'static str,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::BadRate(what) => write!(f, "invalid rate: {what}"),
            ModelError::BadTopology(msg) => write!(f, "invalid topology: {msg}"),
            ModelError::Unstable {
                utilisation,
                station,
            } => write!(
                f,
                "{station} queue unstable (utilisation {utilisation:.4} >= 1)"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

impl Workload {
    /// Construct and validate a workload.
    pub fn new(lambda_h: f64, lambda_c: f64, mu_h: f64, mu_c: f64) -> Result<Self, ModelError> {
        let w = Workload {
            lambda_h,
            lambda_c,
            mu_h,
            mu_c,
        };
        w.validate()?;
        Ok(w)
    }

    /// Build from the paper's aggregate parameterisation: total arrival
    /// rate `λ`, arrival ratio `a = λ_c/λ_h`, static service rate `μ_h`,
    /// and service ratio `r = μ_c/μ_h`.
    pub fn from_ratios(lambda: f64, a: f64, mu_h: f64, r: f64) -> Result<Self, ModelError> {
        if a.is_nan() || a <= 0.0 || a.is_infinite() {
            return Err(ModelError::BadRate("arrival ratio a"));
        }
        if r.is_nan() || r <= 0.0 || r.is_infinite() {
            return Err(ModelError::BadRate("service ratio r"));
        }
        let lambda_h = lambda / (1.0 + a);
        let lambda_c = lambda - lambda_h;
        Workload::new(lambda_h, lambda_c, mu_h, mu_h * r)
    }

    fn validate(&self) -> Result<(), ModelError> {
        for (v, name) in [
            (self.lambda_h, "lambda_h"),
            (self.lambda_c, "lambda_c"),
            (self.mu_h, "mu_h"),
            (self.mu_c, "mu_c"),
        ] {
            if v.is_nan() || v <= 0.0 || v.is_infinite() {
                return Err(ModelError::BadRate(name));
            }
        }
        Ok(())
    }

    /// Total arrival rate `λ = λ_h + λ_c`.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda_h + self.lambda_c
    }

    /// Arrival-rate ratio `a = λ_c / λ_h`.
    #[inline]
    pub fn a(&self) -> f64 {
        self.lambda_c / self.lambda_h
    }

    /// Service-rate ratio `r = μ_c / μ_h` (≪ 1 for CGI-heavy sites).
    #[inline]
    pub fn r(&self) -> f64 {
        self.mu_c / self.mu_h
    }

    /// Mean static service demand in seconds (`1/μ_h`).
    #[inline]
    pub fn demand_h(&self) -> f64 {
        1.0 / self.mu_h
    }

    /// Mean dynamic service demand in seconds (`1/μ_c`).
    #[inline]
    pub fn demand_c(&self) -> f64 {
        1.0 / self.mu_c
    }

    /// Total offered work per second (Erlangs): `λ_h/μ_h + λ_c/μ_c`.
    /// Dividing by `p` gives the per-node utilisation of a balanced cluster.
    #[inline]
    pub fn offered_load(&self) -> f64 {
        self.lambda_h / self.mu_h + self.lambda_c / self.mu_c
    }
}

/// Per-node stretch factor of an M/M/1 processor-sharing queue at
/// utilisation `rho`: `1 / (1 - rho)`.
///
/// Under processor sharing the conditional mean response time of a job
/// with demand `d` is `d / (1 - ρ)`, so the stretch is demand-independent —
/// the property that lets the paper average stretch across classes by
/// arrival-rate weights alone.
#[inline]
pub fn ps_stretch(rho: f64) -> Result<f64, ModelError> {
    if rho >= 1.0 {
        return Err(ModelError::Unstable {
            utilisation: rho,
            station: "node",
        });
    }
    if rho < 0.0 {
        return Err(ModelError::BadRate("negative utilisation"));
    }
    Ok(1.0 / (1.0 - rho))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_roundtrip() {
        let w = Workload::from_ratios(1000.0, 0.25, 1200.0, 1.0 / 40.0).unwrap();
        assert!((w.lambda() - 1000.0).abs() < 1e-9);
        assert!((w.a() - 0.25).abs() < 1e-12);
        assert!((w.r() - 0.025).abs() < 1e-12);
        assert!((w.lambda_h - 800.0).abs() < 1e-9);
        assert!((w.lambda_c - 200.0).abs() < 1e-9);
        assert!((w.mu_c - 30.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_rates() {
        assert!(Workload::new(0.0, 1.0, 1.0, 1.0).is_err());
        assert!(Workload::new(1.0, -1.0, 1.0, 1.0).is_err());
        assert!(Workload::new(1.0, 1.0, f64::NAN, 1.0).is_err());
        assert!(Workload::from_ratios(100.0, 0.0, 10.0, 0.1).is_err());
        assert!(Workload::from_ratios(100.0, 1.0, 10.0, 0.0).is_err());
    }

    #[test]
    fn offered_load_erlangs() {
        let w = Workload::new(100.0, 10.0, 100.0, 10.0).unwrap();
        // 100/100 + 10/10 = 2 node-equivalents of work.
        assert!((w.offered_load() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ps_stretch_values() {
        assert!((ps_stretch(0.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((ps_stretch(0.5).unwrap() - 2.0).abs() < 1e-12);
        assert!((ps_stretch(0.9).unwrap() - 10.0).abs() < 1e-9);
        assert!(ps_stretch(1.0).is_err());
        assert!(ps_stretch(1.5).is_err());
        assert!(ps_stretch(-0.1).is_err());
    }

    #[test]
    fn demands_are_reciprocal_rates() {
        let w = Workload::new(1.0, 1.0, 1200.0, 30.0).unwrap();
        assert!((w.demand_h() - 1.0 / 1200.0).abs() < 1e-15);
        assert!((w.demand_c() - 1.0 / 30.0).abs() < 1e-15);
    }

    #[test]
    fn error_display() {
        let e = ModelError::Unstable {
            utilisation: 1.25,
            station: "master",
        };
        assert!(format!("{e}").contains("1.25"));
    }
}
