use msweb_queueing::*;
fn main() {
    for (lambda, a, inv_r, m) in [
        (2000.0, 0.126, 80.0, 9),
        (1000.0, 0.41, 80.0, 3),
        (1000.0, 0.795, 40.0, 3),
        (3000.0, 0.126, 80.0, 9),
        (500.0, 0.126, 80.0, 9),
    ] {
        let w = Workload::from_ratios(lambda, a, 1200.0, 1.0 / inv_r).unwrap();
        let model = MsModel::new(w, 32, m).unwrap();
        match model.theta_interval() {
            Ok(iv) => println!(
                "l={lambda} a={a} 1/r={inv_r} m={m}: theta1={:.3} theta2={:.3} mid={:.3}",
                iv.theta1,
                iv.theta2,
                iv.theta_mid()
            ),
            Err(e) => println!("l={lambda} a={a} 1/r={inv_r} m={m}: {e}"),
        }
    }
}
