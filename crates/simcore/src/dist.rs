//! Random distributions used by the workload and OS models.
//!
//! The set mirrors what the paper's simulator needs: exponential
//! inter-arrival and service draws (the queueing-theory regime of Section
//! 3), bounded-Pareto file/service sizes (the heavy-tailed regime observed
//! in real Web traces), log-normal bodies, and empirical distributions
//! resampled from measured histograms.

use crate::rng::SimRng;

/// A sampleable distribution over non-negative doubles.
pub trait Distribution {
    /// Draw one value.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The analytic mean of the distribution, used for calibration checks.
    fn mean(&self) -> f64;
}

/// Degenerate distribution: always `value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl Distribution for Constant {
    #[inline]
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.0
    }
    fn mean(&self) -> f64 {
        self.0
    }
}

/// Continuous uniform on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Construct; requires `lo <= hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "uniform bounds inverted: [{lo}, {hi})");
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    #[inline]
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.next_f64()
    }
    fn mean(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

/// Exponential distribution with the given rate (mean = 1/rate).
///
/// This is the distribution assumed by the Section 3 queueing analysis for
/// both arrival intervals and service demands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// From a rate (events per unit time). Must be positive and finite.
    pub fn from_rate(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "bad exponential rate {rate}"
        );
        Exponential { rate }
    }

    /// From a mean. Must be positive and finite.
    pub fn from_mean(mean: f64) -> Self {
        assert!(
            mean > 0.0 && mean.is_finite(),
            "bad exponential mean {mean}"
        );
        Exponential { rate: 1.0 / mean }
    }
}

impl Distribution for Exponential {
    #[inline]
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF on an open (0,1] draw so ln() never sees zero.
        -rng.next_f64_open().ln() / self.rate
    }
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

/// Bounded Pareto on `[lo, hi]` with shape `alpha`.
///
/// Web object sizes are famously heavy-tailed; the bounded Pareto is the
/// standard model (cf. the task-assignment literature the paper cites for
/// size-based scheduling). Bounding keeps sample moments finite so the
/// simulated load matches the configured utilisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Construct; requires `0 < lo < hi` and `alpha > 0`.
    pub fn new(lo: f64, hi: f64, alpha: f64) -> Self {
        assert!(lo > 0.0 && hi > lo, "bad pareto bounds [{lo}, {hi}]");
        assert!(alpha > 0.0, "bad pareto shape {alpha}");
        BoundedPareto { lo, hi, alpha }
    }
}

impl Distribution for BoundedPareto {
    #[inline]
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.next_f64();
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha)
    }

    fn mean(&self) -> f64 {
        let a = self.alpha;
        let (l, h) = (self.lo, self.hi);
        if (a - 1.0).abs() < 1e-12 {
            // alpha = 1 limit: mean = ln(h/l) * l*h/(h-l)
            (h.ln() - l.ln()) * l * h / (h - l)
        } else {
            (l.powf(a) / (1.0 - (l / h).powf(a)))
                * (a / (a - 1.0))
                * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
        }
    }
}

/// Exponential shifted by a constant floor: `floor + Exp(mean - floor)`.
///
/// Service-time model for real requests: every request pays a fixed
/// minimum cost (parsing, syscalls, connection handling) before the
/// variable part. Crucially this bounds the demand away from zero, which
/// keeps the *stretch* metric (response/demand) integrable — a pure
/// exponential puts mass at demands near zero where any fixed queueing
/// delay produces unbounded stretch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftedExponential {
    floor: f64,
    exp: Exponential,
}

impl ShiftedExponential {
    /// Total mean `mean`, of which `floor_frac` (in (0,1)) is the
    /// deterministic floor.
    pub fn from_mean(mean: f64, floor_frac: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "bad mean {mean}");
        assert!(
            (0.0..1.0).contains(&floor_frac),
            "bad floor fraction {floor_frac}"
        );
        ShiftedExponential {
            floor: mean * floor_frac,
            exp: Exponential::from_mean(mean * (1.0 - floor_frac)),
        }
    }

    /// The deterministic floor.
    pub fn floor(&self) -> f64 {
        self.floor
    }
}

impl Distribution for ShiftedExponential {
    #[inline]
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.floor + self.exp.sample(rng)
    }
    fn mean(&self) -> f64 {
        self.floor + self.exp.mean()
    }
}

/// Log-normal distribution parameterised by the mean and sigma of the
/// underlying normal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// From the parameters of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "negative sigma {sigma}");
        LogNormal { mu, sigma }
    }

    /// Fit so the log-normal itself has the given mean and coefficient of
    /// variation (std/mean).
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0 && cv >= 0.0);
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormal {
            mu,
            sigma: sigma2.sqrt(),
        }
    }

    #[inline]
    fn standard_normal(rng: &mut SimRng) -> f64 {
        // Box–Muller; one draw discarded for simplicity.
        let u1 = rng.next_f64_open();
        let u2 = rng.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl Distribution for LogNormal {
    #[inline]
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * Self::standard_normal(rng)).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// An empirical distribution that resamples uniformly from observed values,
/// optionally weighted.
#[derive(Debug, Clone)]
pub struct Empirical {
    values: Vec<f64>,
    cumulative: Vec<f64>,
    mean: f64,
}

impl Empirical {
    /// From raw observations (equal weight).
    pub fn from_values(values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "empirical distribution needs data");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let cumulative = (1..=values.len()).map(|i| i as f64 / n).collect();
        Empirical {
            values,
            cumulative,
            mean,
        }
    }

    /// From `(value, weight)` pairs; weights need not be normalised.
    pub fn from_weighted(pairs: &[(f64, f64)]) -> Self {
        assert!(!pairs.is_empty(), "empirical distribution needs data");
        let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
        assert!(total > 0.0, "weights sum to zero");
        let mut acc = 0.0;
        let mut values = Vec::with_capacity(pairs.len());
        let mut cumulative = Vec::with_capacity(pairs.len());
        let mut mean = 0.0;
        for &(v, w) in pairs {
            assert!(w >= 0.0, "negative weight");
            acc += w / total;
            values.push(v);
            cumulative.push(acc);
            mean += v * w / total;
        }
        // Guard against float drift so the last bucket always catches.
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Empirical {
            values,
            cumulative,
            mean,
        }
    }
}

impl Distribution for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.next_f64();
        let idx = self
            .cumulative
            .partition_point(|&c| c <= u)
            .min(self.values.len() - 1);
        self.values[idx]
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Type-erased distribution handle for configuration structs.
#[derive(Debug, Clone)]
pub enum Dist {
    /// Always the same value.
    Constant(Constant),
    /// Uniform over an interval.
    Uniform(Uniform),
    /// Exponential (memoryless).
    Exponential(Exponential),
    /// Heavy-tailed bounded Pareto.
    BoundedPareto(BoundedPareto),
    /// Floor + exponential.
    ShiftedExponential(ShiftedExponential),
    /// Log-normal.
    LogNormal(LogNormal),
    /// Resampled empirical data.
    Empirical(Empirical),
}

impl Distribution for Dist {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        match self {
            Dist::Constant(d) => d.sample(rng),
            Dist::Uniform(d) => d.sample(rng),
            Dist::Exponential(d) => d.sample(rng),
            Dist::BoundedPareto(d) => d.sample(rng),
            Dist::ShiftedExponential(d) => d.sample(rng),
            Dist::LogNormal(d) => d.sample(rng),
            Dist::Empirical(d) => d.sample(rng),
        }
    }
    fn mean(&self) -> f64 {
        match self {
            Dist::Constant(d) => d.mean(),
            Dist::Uniform(d) => d.mean(),
            Dist::Exponential(d) => d.mean(),
            Dist::BoundedPareto(d) => d.mean(),
            Dist::ShiftedExponential(d) => d.mean(),
            Dist::LogNormal(d) => d.mean(),
            Dist::Empirical(d) => d.mean(),
        }
    }
}

impl Dist {
    /// Shorthand for an exponential with the given mean.
    pub fn exp_mean(mean: f64) -> Dist {
        Dist::Exponential(Exponential::from_mean(mean))
    }

    /// Shorthand for a constant.
    pub fn constant(v: f64) -> Dist {
        Dist::Constant(Constant(v))
    }

    /// Shorthand for a floored exponential with the given total mean.
    pub fn shifted_exp(mean: f64, floor_frac: f64) -> Dist {
        Dist::ShiftedExponential(ShiftedExponential::from_mean(mean, floor_frac))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean<D: Distribution>(d: &D, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Constant(3.5);
        let mut rng = SimRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::from_mean(0.25);
        let m = sample_mean(&d, 200_000, 1);
        assert!((m - 0.25).abs() / 0.25 < 0.02, "mean {m}");
        assert_eq!(Exponential::from_rate(4.0).mean(), 0.25);
    }

    #[test]
    fn exponential_is_positive() {
        let d = Exponential::from_rate(1000.0);
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn uniform_bounds() {
        let d = Uniform::new(2.0, 5.0);
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..5.0).contains(&x));
        }
        let m = sample_mean(&d, 100_000, 4);
        assert!((m - 3.5).abs() < 0.02);
    }

    #[test]
    fn bounded_pareto_support_and_mean() {
        let d = BoundedPareto::new(1.0, 1000.0, 1.2);
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=1000.0).contains(&x), "out of support: {x}");
        }
        let analytic = d.mean();
        let empirical = sample_mean(&d, 500_000, 6);
        assert!(
            (empirical - analytic).abs() / analytic < 0.05,
            "analytic {analytic} vs empirical {empirical}"
        );
    }

    #[test]
    fn bounded_pareto_alpha_one() {
        let d = BoundedPareto::new(1.0, 100.0, 1.0);
        let analytic = d.mean();
        let empirical = sample_mean(&d, 500_000, 7);
        assert!(
            (empirical - analytic).abs() / analytic < 0.05,
            "analytic {analytic} vs empirical {empirical}"
        );
    }

    #[test]
    fn shifted_exponential_floor_and_mean() {
        let d = ShiftedExponential::from_mean(10.0, 0.3);
        assert!((d.mean() - 10.0).abs() < 1e-12);
        assert!((d.floor() - 3.0).abs() < 1e-12);
        let mut rng = SimRng::seed_from_u64(21);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 3.0);
        }
        let m = sample_mean(&d, 200_000, 22);
        assert!((m - 10.0).abs() / 10.0 < 0.02, "mean {m}");
    }

    #[test]
    fn lognormal_fit_mean_cv() {
        let d = LogNormal::from_mean_cv(10.0, 2.0);
        assert!((d.mean() - 10.0).abs() < 1e-9);
        let empirical = sample_mean(&d, 500_000, 8);
        assert!((empirical - 10.0).abs() / 10.0 < 0.05, "mean {empirical}");
    }

    #[test]
    fn empirical_resamples_support() {
        let d = Empirical::from_values(vec![1.0, 2.0, 4.0]);
        let mut rng = SimRng::seed_from_u64(9);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            let x = d.sample(&mut rng);
            if x == 1.0 {
                counts[0] += 1;
            } else if x == 2.0 {
                counts[1] += 1;
            } else if x == 4.0 {
                counts[2] += 1;
            } else {
                panic!("unexpected sample {x}");
            }
        }
        for c in counts {
            assert!((c as f64 / 30_000.0 - 1.0 / 3.0).abs() < 0.02);
        }
        assert!((d.mean() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_weighted() {
        let d = Empirical::from_weighted(&[(1.0, 9.0), (100.0, 1.0)]);
        assert!((d.mean() - 10.9).abs() < 1e-9);
        let mut rng = SimRng::seed_from_u64(10);
        let big = (0..100_000).filter(|_| d.sample(&mut rng) == 100.0).count();
        let freq = big as f64 / 100_000.0;
        assert!((freq - 0.1).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn dist_enum_dispatch() {
        let d = Dist::exp_mean(2.0);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        let c = Dist::constant(5.0);
        assert_eq!(c.mean(), 5.0);
    }
}
