//! Deterministic, splittable random number generation.
//!
//! Every stochastic component in the workspace draws from a [`SimRng`],
//! a locally implemented xoshiro256++ generator. Two properties matter:
//!
//! * **Determinism** — the same seed reproduces the same trace, schedule
//!   and metrics bit-for-bit, which the integration tests rely on.
//! * **Splittability** — independent components (arrival process, per-node
//!   service draws, paging behaviour) each get their own stream derived
//!   from the master seed, so adding a consumer in one component does not
//!   perturb the draws seen by another.
//!
//! The generator also implements [`rand::RngCore`] so the `rand`
//! distribution machinery can be used where convenient.

use rand::RngCore;

/// SplitMix64, used to expand seeds. This is the standard seeding
/// procedure recommended for the xoshiro family.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed for the `index`-th member of a family of independent
/// streams rooted at `root`.
///
/// This is the stateless counterpart of [`SimRng::split`], used when a
/// sweep needs one seed per cell *before* any cell runs (so the mapping
/// cannot depend on execution order). For a fixed `root` the mapping is
/// injective in `index`: `index` enters through multiplication by an odd
/// constant plus an addition (both bijections on `u64`), and the
/// splitmix64 finaliser is itself a bijection, so distinct indices can
/// never produce the same seed. A property test in
/// `tests/proptests.rs` pins this down.
#[inline]
pub fn split_seed(root: u64, index: u64) -> u64 {
    let mut state = root.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    splitmix64(&mut state)
}

/// xoshiro256++ pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // All-zero state is the one invalid state; splitmix64 cannot emit
        // four zeros in a row, but guard anyway.
        if s == [0; 4] {
            SimRng { s: [1, 2, 3, 4] }
        } else {
            SimRng { s }
        }
    }

    /// Derive an independent child stream. The child is seeded from a draw
    /// of this generator mixed with a stream label, so `split(0)` and
    /// `split(1)` differ even when called back-to-back.
    pub fn split(&mut self, label: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::seed_from_u64(base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform double in [0, 1).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits -> [0,1) with full double precision.
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform double in (0, 1]; useful for `ln()` draws where 0 is invalid.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased method.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Widening-multiply rejection sampling.
        let mut x = self.next();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform usize index in `[0, bound)`.
    #[inline]
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose on empty slice");
        &xs[self.gen_index(xs.len())]
    }
}

impl RngCore for SimRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_of_parent_consumption() {
        // The child stream state depends only on draws made before the split.
        let mut parent1 = SimRng::seed_from_u64(7);
        let mut child1 = parent1.split(0);
        let mut parent2 = SimRng::seed_from_u64(7);
        let mut child2 = parent2.split(0);
        // Consuming the parents differently must not affect the children.
        parent1.next_u64();
        for _ in 0..10 {
            parent2.next_u64();
        }
        for _ in 0..100 {
            assert_eq!(child1.next_u64(), child2.next_u64());
        }
    }

    #[test]
    fn split_labels_differ() {
        let mut parent = SimRng::seed_from_u64(7);
        let mut snapshot = parent.clone();
        let mut a = parent.split(0);
        let mut b = snapshot.split(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same <= 1, "labelled splits produced {same}/64 collisions");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = SimRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.gen_range(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = SimRng::seed_from_u64(6);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from_u64(8);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = SimRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
