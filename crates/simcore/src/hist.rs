//! Log-bucketed (HDR-style) histograms over `u64` observations.
//!
//! [`LogHistogram`] trades exactness for a fixed, tiny footprint: values
//! are binned into log-linear buckets — exact below 16, then eight
//! sub-buckets per power of two — so any recorded value is reported
//! within ~12.5% relative error while `record` stays a handful of
//! integer instructions (a `leading_zeros`, two shifts, one array add).
//! That makes it cheap enough for scheduler hot paths, unlike
//! [`Quantiles`](crate::stats::Quantiles) which retains every sample.
//!
//! Histograms are *mergeable* (bucket-wise addition), so per-worker
//! histograms produced by the parallel sweep engine fold into one
//! cluster-wide view, and *reconstructible* from their sparse bucket
//! encoding ([`LogHistogram::from_sparse`]), which is how telemetry
//! snapshots round-trip through JSON.

/// Sub-bucket resolution: 2^3 = 8 buckets per octave (~12.5% width).
const SUB_BITS: u32 = 3;
/// Buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Values below this are binned exactly (one bucket per value).
const LINEAR_LIMIT: u64 = (2 * SUB) as u64;
/// First octave exponent handled log-linearly.
const FIRST_EXP: u32 = SUB_BITS + 1;
/// Total bucket count: 16 exact + 8 per octave for exponents 4..=63.
const BUCKETS: usize = LINEAR_LIMIT as usize + (64 - FIRST_EXP as usize) * SUB;

/// A fixed-size log-bucketed histogram of `u64` observations.
///
/// ```
/// use msweb_simcore::hist::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in [3, 3, 100, 2_000, 2_100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.quantile(0.0), 3);
/// // ~12.5% relative error at the top end:
/// let p100 = h.quantile(1.0);
/// assert!((2_100..2_400).contains(&p100), "{p100}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value falls into.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v < LINEAR_LIMIT {
            v as usize
        } else {
            let e = 63 - v.leading_zeros();
            let sub = ((v >> (e - SUB_BITS)) as usize) & (SUB - 1);
            LINEAR_LIMIT as usize + (e - FIRST_EXP) as usize * SUB + sub
        }
    }

    /// The inclusive `[low, high]` value range of bucket `index`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < BUCKETS, "bucket index out of range");
        let low = |i: usize| -> u64 {
            if i < LINEAR_LIMIT as usize {
                i as u64
            } else {
                let j = i - LINEAR_LIMIT as usize;
                let e = FIRST_EXP + (j / SUB) as u32;
                let sub = (j % SUB) as u64;
                (SUB as u64 + sub) << (e - SUB_BITS)
            }
        };
        let lo = low(index);
        let hi = if index + 1 < BUCKETS {
            low(index + 1) - 1
        } else {
            u64::MAX
        };
        (lo, hi)
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical observations.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::bucket_index(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` ∈ [0, 1]: the upper bound of the bucket
    /// holding the ⌈q·n⌉-th observation, clamped to the recorded
    /// min/max so exact extremes survive bucketing. Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, hi) = Self::bucket_bounds(i);
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one (bucket-wise).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The occupied buckets as `(index, low, high, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (i, lo, hi, c)
            })
            .collect()
    }

    /// Rebuild a histogram from its sparse encoding: `(index, count)`
    /// pairs plus the exact `sum`/`min`/`max` that bucketing loses.
    /// Out-of-range indices are ignored. Inverse of
    /// [`nonzero_buckets`](Self::nonzero_buckets) for the bucket
    /// contents.
    pub fn from_sparse(buckets: &[(usize, u64)], sum: u64, min: u64, max: u64) -> LogHistogram {
        let mut h = LogHistogram::new();
        for &(i, c) in buckets {
            if i < BUCKETS {
                h.counts[i] += c;
                h.count += c;
            }
        }
        if h.count > 0 {
            h.sum = sum;
            h.min = min;
            h.max = max;
        }
        h
    }

    /// What was recorded since `baseline` — a strictly earlier copy of
    /// this cumulative histogram. Because recording only ever adds,
    /// per-bucket subtraction is exact; the delta carries buckets,
    /// count and sum only (a window's min/max are *not* recoverable by
    /// subtraction, so [`HistDelta`] deliberately has no such fields).
    ///
    /// Debug builds assert the monotonicity precondition; release
    /// builds saturate instead of wrapping.
    pub fn delta_since(&self, baseline: &LogHistogram) -> HistDelta {
        debug_assert!(
            self.count >= baseline.count,
            "delta_since baseline is newer than self"
        );
        let mut buckets = Vec::new();
        for (i, (&now, &then)) in self.counts.iter().zip(&baseline.counts).enumerate() {
            debug_assert!(now >= then, "bucket {i} shrank between snapshots");
            let d = now.saturating_sub(then);
            if d > 0 {
                buckets.push((i, d));
            }
        }
        HistDelta {
            buckets,
            count: self.count.saturating_sub(baseline.count),
            sum: self.sum.saturating_sub(baseline.sum),
        }
    }
}

/// The observations a cumulative [`LogHistogram`] gained between two
/// snapshots: sparse `(bucket index, count)` pairs plus total count and
/// sum. Deltas are mergeable (bucket-wise addition), so a run's
/// per-window deltas re-merge exactly to the end-of-run histogram's
/// bucket contents, count, and sum.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistDelta {
    /// Occupied buckets as ascending `(index, count)` pairs.
    pub buckets: Vec<(usize, u64)>,
    /// Observations gained.
    pub count: u64,
    /// Sum gained (saturating, like [`LogHistogram::record_n`]).
    pub sum: u64,
}

impl HistDelta {
    /// An empty delta.
    pub fn new() -> Self {
        HistDelta::default()
    }

    /// True when nothing was recorded in the window.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merge another delta into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistDelta) {
        if other.count == 0 {
            return;
        }
        let mut merged: Vec<(usize, u64)> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        while let (Some(&&(ia, ca)), Some(&&(ib, cb))) = (a.peek(), b.peek()) {
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => {
                    merged.push((ia, ca));
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    merged.push((ib, cb));
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    merged.push((ia, ca + cb));
                    a.next();
                    b.next();
                }
            }
        }
        merged.extend(a.copied());
        merged.extend(b.copied());
        self.buckets = merged;
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The delta's buckets, count and sum as a histogram (min/max are
    /// lost to windowing and read as the bucketed extremes' bounds).
    pub fn to_histogram(&self) -> LogHistogram {
        let (min, max) = match (self.buckets.first(), self.buckets.last()) {
            (Some(&(lo, _)), Some(&(hi, _))) => (
                LogHistogram::bucket_bounds(lo).0,
                LogHistogram::bucket_bounds(hi).1,
            ),
            _ => (0, 0),
        };
        LogHistogram::from_sparse(&self.buckets, self.sum, min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..LINEAR_LIMIT {
            let (lo, hi) = LogHistogram::bucket_bounds(LogHistogram::bucket_index(v));
            assert_eq!((lo, hi), (v, v));
        }
    }

    #[test]
    fn bounds_partition_the_u64_line() {
        // Buckets tile [0, u64::MAX] with no gaps or overlaps.
        let mut expected_low = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = LogHistogram::bucket_bounds(i);
            assert_eq!(lo, expected_low, "gap before bucket {i}");
            assert!(hi >= lo, "inverted bucket {i}");
            if i + 1 < BUCKETS {
                expected_low = hi + 1;
            } else {
                assert_eq!(hi, u64::MAX);
            }
        }
    }

    #[test]
    fn every_value_lands_in_its_bucket() {
        let probes = [
            0u64,
            1,
            7,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            65_535,
            65_536,
            1 << 40,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let i = LogHistogram::bucket_index(v);
            let (lo, hi) = LogHistogram::bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} not in bucket {i} [{lo},{hi}]");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[16u64, 100, 999, 12_345, 1 << 30, (1 << 50) + 12_321] {
            let (lo, hi) = LogHistogram::bucket_bounds(LogHistogram::bucket_index(v));
            let width = (hi - lo) as f64;
            assert!(width / v as f64 <= 0.125, "v={v} width={width}");
        }
    }

    #[test]
    fn quantiles_track_recorded_values() {
        let mut h = LogHistogram::new();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1_000);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1_000);
        let p50 = h.quantile(0.5);
        assert!((500..=563).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((990..=1_000).contains(&p99), "p99={p99}");
    }

    #[test]
    fn merge_equals_sequential_record() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in [1u64, 50, 50, 7_000, 123_456] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 50, 9_999_999] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn sparse_round_trip() {
        let mut h = LogHistogram::new();
        for v in [0u64, 3, 17, 900, 900, 1 << 33] {
            h.record(v);
        }
        let sparse = h.nonzero_buckets();
        let pairs: Vec<(usize, u64)> = sparse.iter().map(|&(i, _, _, c)| (i, c)).collect();
        let back = LogHistogram::from_sparse(&pairs, h.sum(), h.min(), h.max());
        assert_eq!(back, h);
    }

    #[test]
    fn window_deltas_remerge_to_the_cumulative_histogram() {
        let mut h = LogHistogram::new();
        let mut baseline = h.clone();
        let mut total = HistDelta::new();
        // Three "monitor windows" of recording, deltas taken at each
        // boundary, must re-merge to exactly the cumulative contents.
        for window in [&[1u64, 50, 50][..], &[][..], &[7_000, 50, 123_456, 2][..]] {
            for &v in window {
                h.record(v);
            }
            let d = h.delta_since(&baseline);
            assert_eq!(d.count, window.len() as u64);
            assert_eq!(d.sum, window.iter().sum::<u64>());
            total.merge(&d);
            baseline = h.clone();
        }
        assert_eq!(total.count, h.count());
        assert_eq!(total.sum, h.sum());
        let pairs: Vec<(usize, u64)> = h
            .nonzero_buckets()
            .iter()
            .map(|&(i, _, _, c)| (i, c))
            .collect();
        assert_eq!(total.buckets, pairs);
        let back = total.to_histogram();
        assert_eq!(back.count(), h.count());
        assert_eq!(back.sum(), h.sum());
        assert_eq!(back.nonzero_buckets(), h.nonzero_buckets());
    }

    #[test]
    fn empty_delta_is_inert() {
        let h = LogHistogram::new();
        let d = h.delta_since(&h);
        assert!(d.is_empty());
        assert!(d.buckets.is_empty());
        let mut acc = HistDelta::new();
        acc.merge(&d);
        assert!(acc.is_empty());
        assert_eq!(d.to_histogram(), LogHistogram::new());
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }
}
