//! # msweb-simcore
//!
//! Discrete-event simulation core shared by the `msweb` workspace — the
//! reproduction of *Scheduling Optimization for Resource-Intensive Web
//! Requests on Server Clusters* (Zhu, Smith, Yang; SPAA 1999).
//!
//! This crate is deliberately application-agnostic. It provides:
//!
//! * [`time`] — integer-microsecond simulation clocks ([`SimTime`],
//!   [`SimDuration`]);
//! * [`event`] — a stable FIFO-tie-breaking event queue with cancellation
//!   ([`EventQueue`]);
//! * [`rng`] — a deterministic, splittable xoshiro256++ generator
//!   ([`SimRng`]);
//! * [`dist`] — the distributions the workload and OS models draw from;
//! * [`stats`] — Welford statistics, exact quantiles, time-weighted
//!   integrals, and the paper's stretch-factor accumulator;
//! * [`hist`] — fixed-footprint log-bucketed histograms
//!   ([`LogHistogram`]) cheap enough for scheduler hot paths and
//!   mergeable across parallel sweep workers;
//! * [`pool`] — a scoped-thread worker pool ([`parallel_map`]) with
//!   submission-order result collection, paired with the stateless
//!   [`split_seed`] so parallel sweeps stay bit-identical to sequential
//!   runs.
//!
//! Everything is deterministic given a seed: the same configuration always
//! produces the same simulated history, which the cross-crate integration
//! tests depend on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dist;
pub mod event;
pub mod hist;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod time;

pub use dist::{
    BoundedPareto, Constant, Dist, Distribution, Empirical, Exponential, LogNormal,
    ShiftedExponential, Uniform,
};
pub use event::{EventId, EventQueue};
pub use hist::{HistDelta, LogHistogram};
pub use pool::{chunked_map, effective_workers, parallel_map};
pub use rng::{split_seed, SimRng};
pub use stats::{OnlineStats, Quantiles, StretchAccumulator, TimeWeighted};
pub use time::{SimDuration, SimTime};
