//! The discrete-event core: a time-ordered event queue with stable
//! (FIFO) tie-breaking and cancellation support.
//!
//! Events scheduled for the same instant are delivered in the order they
//! were scheduled. This matters for reproducibility: a cluster simulation
//! frequently schedules a batch of request arrivals and load-monitor ticks
//! at identical timestamps, and an unstable heap would make run-to-run
//! output depend on allocator behaviour.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Identifies a scheduled event so it can be cancelled before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// `E` is the simulation-specific payload. The queue owns a monotonically
/// increasing sequence counter that provides stable FIFO ordering among
/// same-time events and doubles as the event id for cancellation.
///
/// ```
/// use msweb_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "later");
/// q.schedule(SimTime::from_millis(1), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(2), "later")));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Ids scheduled but neither fired nor cancelled. Entries whose id has
    /// left this set are skipped lazily when they reach the heap's head.
    live: std::collections::HashSet<EventId>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: std::collections::HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// An empty queue with pre-allocated capacity for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(n),
            live: std::collections::HashSet::with_capacity(n),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The current simulation time: the timestamp of the most recently
    /// popped event (zero before any pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// `at` may be in the "past" (before `now()`); such events fire
    /// immediately on the next pop, still in FIFO order. Simulations that
    /// consider past scheduling a bug should assert on their side; the
    /// queue itself stays permissive so that zero-latency handoffs between
    /// components do not need special cases.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let id = EventId(self.next_seq);
        self.heap.push(Entry {
            at,
            seq: self.next_seq,
            id,
            payload,
        });
        self.live.insert(id);
        self.next_seq += 1;
        id
    }

    /// Cancel a previously scheduled event. Returns true if the event had
    /// not yet fired (or been cancelled). Cancellation is lazy: the heap
    /// entry is dropped when it reaches the head.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.live.remove(&id)
    }

    /// Remove and return the next event as `(time, payload)`, advancing the
    /// clock. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if !self.live.remove(&entry.id) {
                continue; // cancelled
            }
            debug_assert!(
                entry.at >= self.now || entry.at == self.now,
                "event queue time went backwards"
            );
            self.now = self.now.max(entry.at);
            self.popped += 1;
            return Some((self.now, entry.payload));
        }
        None
    }

    /// The timestamp of the next pending (non-cancelled) event without
    /// popping it. `None` when empty.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if !self.live.contains(&entry.id) {
                self.heap.pop();
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .field("delivered", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), "a");
        let b = q.schedule(SimTime::from_millis(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.pop(), Some((SimTime::from_millis(2), "b")));
        assert!(!q.cancel(b), "cancelling a fired event reports false");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), "a");
        q.schedule(SimTime::from_millis(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10)
            .map(|i| q.schedule(SimTime::from_millis(i), i))
            .collect();
        assert_eq!(q.len(), 10);
        for id in &ids[..4] {
            q.cancel(*id);
        }
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn delivered_counter() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(SimTime::from_millis(i), ());
        }
        while q.pop().is_some() {}
        assert_eq!(q.delivered(), 5);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        // Simulates the usual DES pattern: popping an event schedules more.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 0u32);
        let mut seen = vec![];
        while let Some((t, gen)) = q.pop() {
            seen.push(gen);
            if gen < 4 {
                q.schedule(t + SimDuration::from_millis(1), gen + 1);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.now(), SimTime::from_millis(5));
    }
}
