//! Online statistics used by every metrics collector in the workspace.
//!
//! [`OnlineStats`] is a Welford accumulator (numerically stable mean and
//! variance in one pass). [`Quantiles`] keeps raw samples for exact
//! percentiles — request counts per experiment are bounded (hundreds of
//! thousands), so exactness is affordable and avoids the bias of streaming
//! sketches. [`TimeWeighted`] integrates a step function over time, which
//! is how node utilisation and queue lengths are averaged.

use crate::time::{SimDuration, SimTime};

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact quantiles over retained samples.
#[derive(Debug, Clone, Default)]
pub struct Quantiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Quantiles {
    /// An empty collector.
    pub fn new() -> Self {
        Quantiles {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Record one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of retained samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The q-quantile (0 ≤ q ≤ 1) using nearest-rank interpolation.
    /// Returns 0 when empty so report code needn't special-case.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let pos = q * (self.samples.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.samples[lo]
        } else {
            let frac = pos - lo as f64;
            self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
        }
    }

    /// Median shorthand.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }
}

/// Integrates a piecewise-constant signal over simulated time, yielding its
/// time-weighted average — e.g. mean queue length or mean utilisation.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_t: SimTime,
    last_v: f64,
    integral: f64,
    started: Option<SimTime>,
}

impl TimeWeighted {
    /// Start integrating at `t0` with initial value `v0`.
    pub fn new(t0: SimTime, v0: f64) -> Self {
        TimeWeighted {
            last_t: t0,
            last_v: v0,
            integral: 0.0,
            started: Some(t0),
        }
    }

    /// Record that the signal changed to `v` at time `t` (t must not go
    /// backwards; equal timestamps are fine and contribute zero width).
    pub fn update(&mut self, t: SimTime, v: f64) {
        debug_assert!(t >= self.last_t, "time went backwards in TimeWeighted");
        let dt = t.since(self.last_t).as_secs_f64();
        self.integral += self.last_v * dt;
        self.last_t = t;
        self.last_v = v;
    }

    /// The time-weighted mean over `[t0, t]`, closing the current segment
    /// at `t` without mutating state.
    pub fn mean_until(&self, t: SimTime) -> f64 {
        let t0 = self.started.expect("TimeWeighted not started");
        let span = t.since(t0).as_secs_f64();
        if span <= 0.0 {
            return self.last_v;
        }
        let closing = self.last_v * t.since(self.last_t).as_secs_f64();
        (self.integral + closing) / span
    }

    /// Current value of the signal.
    pub fn value(&self) -> f64 {
        self.last_v
    }
}

/// A ratio-of-sums accumulator for the paper's *stretch factor*:
/// `(1/n) * Σ (response_i / demand_i)`.
///
/// The stretch factor is the paper's primary metric (Section 2): the mean,
/// over requests, of response time divided by service demand. A stretch of
/// 1.0 means no queueing delay at all.
#[derive(Debug, Clone, Default)]
pub struct StretchAccumulator {
    stats: OnlineStats,
}

impl StretchAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed request.
    ///
    /// `response` is the server-site response time (arrival to completion),
    /// `demand` the contention-free service demand. Zero demands are
    /// clamped to one microsecond to keep the ratio finite; the workload
    /// generators never emit zero demands, so the clamp is purely defensive.
    pub fn record(&mut self, response: SimDuration, demand: SimDuration) {
        let d = demand.as_secs_f64().max(1e-6);
        self.stats.push(response.as_secs_f64() / d);
    }

    /// Mean stretch factor (0 when no requests recorded).
    pub fn stretch(&self) -> f64 {
        self.stats.mean()
    }

    /// Number of requests recorded.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Max observed per-request stretch.
    pub fn max(&self) -> f64 {
        if self.stats.count() == 0 {
            0.0
        } else {
            self.stats.max()
        }
    }

    /// Merge another accumulator (e.g. per-class partials).
    pub fn merge(&mut self, other: &StretchAccumulator) {
        self.stats.merge(&other.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&OnlineStats::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));
    }

    #[test]
    fn quantiles_exact() {
        let mut q = Quantiles::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            q.push(x);
        }
        assert_eq!(q.median(), 3.0);
        assert_eq!(q.quantile(0.0), 1.0);
        assert_eq!(q.quantile(1.0), 5.0);
        assert_eq!(q.quantile(0.25), 2.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let mut q = Quantiles::new();
        q.push(0.0);
        q.push(10.0);
        assert!((q.quantile(0.5) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_tolerate_unsorted_pushes_between_queries() {
        let mut q = Quantiles::new();
        q.push(5.0);
        assert_eq!(q.median(), 5.0);
        q.push(1.0);
        q.push(9.0);
        assert_eq!(q.median(), 5.0);
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.update(SimTime::from_secs(1), 1.0); // 0 for 1s
        tw.update(SimTime::from_secs(3), 0.0); // 1 for 2s
        let mean = tw.mean_until(SimTime::from_secs(4)); // 0 for 1s
        assert!((mean - 0.5).abs() < 1e-12, "mean {mean}");
    }

    #[test]
    fn time_weighted_zero_span() {
        let tw = TimeWeighted::new(SimTime::from_secs(1), 7.0);
        assert_eq!(tw.mean_until(SimTime::from_secs(1)), 7.0);
    }

    #[test]
    fn stretch_factor_definition() {
        let mut s = StretchAccumulator::new();
        // response 2x demand and response 4x demand -> stretch 3.
        s.record(SimDuration::from_millis(20), SimDuration::from_millis(10));
        s.record(SimDuration::from_millis(40), SimDuration::from_millis(10));
        assert!((s.stretch() - 3.0).abs() < 1e-9);
        assert_eq!(s.count(), 2);
        assert!((s.max() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn stretch_merge() {
        let mut a = StretchAccumulator::new();
        let mut b = StretchAccumulator::new();
        a.record(SimDuration::from_millis(10), SimDuration::from_millis(10));
        b.record(SimDuration::from_millis(30), SimDuration::from_millis(10));
        a.merge(&b);
        assert!((a.stretch() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stretch_clamps_zero_demand() {
        let mut s = StretchAccumulator::new();
        s.record(SimDuration::from_millis(1), SimDuration::ZERO);
        assert!(s.stretch().is_finite());
    }
}
