//! Simulation time.
//!
//! All simulation clocks in this workspace use an integer microsecond
//! resolution. Integer time makes event ordering exact and reproducible:
//! there is no floating-point drift when many small service quanta are
//! accumulated, which matters because the OS model charges overheads as
//! small as a 50 µs context switch against a clock that may advance for
//! hours of simulated traffic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in microseconds from simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, measured in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest microsecond.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "SimTime cannot be negative: {s}");
        SimTime((s * 1e6).round() as u64)
    }

    /// This instant expressed in microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since an earlier instant. Saturates at zero rather than
    /// panicking, because callers routinely compute `now - arrival` with
    /// values recorded through different code paths.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest microsecond.
    /// Sub-microsecond positive durations round up to one microsecond so that
    /// non-zero work always advances the clock.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "SimDuration cannot be negative: {s}");
        let us = s * 1e6;
        if us > 0.0 && us < 1.0 {
            SimDuration(1)
        } else {
            SimDuration(us.round() as u64)
        }
    }

    /// This duration in microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This duration in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Multiply by an integer scale.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }

    /// Scale by a non-negative float, rounding to the nearest microsecond.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0);
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimTime::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(0.001).as_micros(), 1000);
    }

    #[test]
    fn tiny_positive_duration_rounds_up_to_one_microsecond() {
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_micros(), 1);
        assert_eq!(SimDuration::from_secs_f64(0.0).as_micros(), 0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!((t - SimTime::from_secs(1)).as_micros(), 500_000);
        // Saturating: earlier.since(later) is zero, not a panic.
        assert_eq!(SimTime::from_secs(1).since(t), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul(3).as_micros(), 30_000);
        assert_eq!(d.mul_f64(0.5).as_micros(), 5_000);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(7)), "7us");
        assert_eq!(format!("{}", SimDuration::from_millis(7)), "7.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(7)), "7.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_millis(2));
        assert_eq!(
            SimDuration::from_millis(1).max(SimDuration::from_millis(2)),
            SimDuration::from_millis(2)
        );
    }
}
