//! A minimal scoped-thread worker pool for embarrassingly parallel maps.
//!
//! [`parallel_map`] fans a slice of inputs across `min(workers, items)`
//! scoped threads that pull indices from a shared atomic counter
//! (work-stealing: fast cells free their worker for the next unclaimed
//! index instead of idling behind a static partition). Results are
//! returned **in submission order** regardless of completion order, so
//! output is byte-identical to the sequential map as long as the worker
//! function is a pure function of `(index, item)`.
//!
//! Combined with [`rng::split_seed`](crate::rng::split_seed) — which
//! fixes each cell's seed from its index before anything runs — this is
//! what lets the experiment sweeps produce the same report at any
//! parallelism level.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolve a requested parallelism level against the machine and the
/// number of items: `0` means "all available cores", and the result is
/// clamped to `[1, items]` (no point spawning idle workers).
pub fn effective_workers(requested: usize, items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let want = if requested == 0 { hw } else { requested };
    want.min(items).max(1)
}

/// Map `f` over `items` using up to `workers` threads (`0` = all cores),
/// returning results in submission order.
///
/// `f` is called as `f(index, &items[index])`. With `workers <= 1` (or a
/// single item) the map runs inline on the calling thread with no pool
/// overhead. If any worker panics, the panic is propagated to the caller
/// with its original payload.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = effective_workers(workers, n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => indexed.extend(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    // Workers hand back disjoint index sets; restore submission order.
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Map `f` over `items` in fixed-size chunks, fanning the chunks across
/// up to `workers` threads (`0` = all cores) and concatenating chunk
/// results in order.
///
/// The chunk partition depends only on `chunk_size`, never on the worker
/// count, and `f` is called per item as `f(index, &items[index])` exactly
/// as in a sequential map — so for a pure `f` the output is byte-identical
/// to `items.iter().enumerate().map(..)` at **any** parallelism level.
/// Use this instead of [`parallel_map`] when per-item work is too small
/// to amortize one counter round-trip per item (e.g. per-node tick work
/// across a 10 000-node fleet).
pub fn chunked_map<T, R, F>(items: &[T], chunk_size: usize, workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let chunk_size = chunk_size.max(1);
    let workers = effective_workers(workers, n.div_ceil(chunk_size));
    if workers <= 1 || n <= chunk_size {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let chunks: Vec<(usize, &[T])> = items
        .chunks(chunk_size)
        .enumerate()
        .map(|(c, s)| (c * chunk_size, s))
        .collect();
    let per_chunk: Vec<Vec<R>> = parallel_map(&chunks, workers, |_, (base, slice)| {
        slice
            .iter()
            .enumerate()
            .map(|(j, x)| f(base + j, x))
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    for v in per_chunk {
        out.extend(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn matches_sequential_at_any_parallelism() {
        let items: Vec<u64> = (0..97).collect();
        let f = |i: usize, x: &u64| (i as u64) * 1_000 + x * 3;
        let sequential: Vec<u64> = items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        for workers in [0, 1, 2, 3, 8, 64, 200] {
            assert_eq!(
                parallel_map(&items, workers, f),
                sequential,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(parallel_map(&empty, 4, |_, x| *x), Vec::<u32>::new());
        assert_eq!(parallel_map(&[5u32], 4, |i, x| (i, *x)), vec![(0, 5)]);
    }

    #[test]
    fn uses_multiple_threads_when_asked() {
        let items: Vec<u32> = (0..64).collect();
        let seen = Mutex::new(HashSet::new());
        parallel_map(&items, 4, |_, _| {
            seen.lock().unwrap().insert(std::thread::current().id());
            // Give other workers a chance to claim indices.
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert!(seen.lock().unwrap().len() > 1, "expected >1 worker thread");
    }

    #[test]
    fn every_index_claimed_exactly_once() {
        let items: Vec<usize> = (0..500).collect();
        let out = parallel_map(&items, 8, |i, x| {
            assert_eq!(i, *x);
            i
        });
        assert_eq!(out, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn effective_workers_clamps() {
        assert_eq!(effective_workers(4, 2), 2);
        assert_eq!(effective_workers(1, 100), 1);
        assert_eq!(effective_workers(3, 0), 1);
        assert!(effective_workers(0, 1_000) >= 1);
    }

    #[test]
    fn chunked_map_matches_sequential_at_any_shape() {
        let items: Vec<u64> = (0..1013).collect();
        let f = |i: usize, x: &u64| (i as u64).wrapping_mul(31).wrapping_add(*x);
        let sequential: Vec<u64> = items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        for chunk in [1, 7, 64, 256, 2000] {
            for workers in [0, 1, 2, 5, 16] {
                assert_eq!(
                    chunked_map(&items, chunk, workers, f),
                    sequential,
                    "chunk={chunk} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn chunked_map_empty_and_degenerate() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(chunked_map(&empty, 8, 4, |_, x| *x), Vec::<u32>::new());
        assert_eq!(chunked_map(&[9u32], 0, 4, |i, x| (i, *x)), vec![(0, 9)]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        parallel_map(&items, 4, |i, _| {
            if i == 7 {
                panic!("boom");
            }
            i
        });
    }
}
