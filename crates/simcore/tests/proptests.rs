//! Property-based tests for the simulation core.

use msweb_simcore::{
    split_seed, Dist, Distribution, EventQueue, OnlineStats, Quantiles, SimDuration, SimRng,
    SimTime, StretchAccumulator,
};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, regardless of the
    /// order they were scheduled in.
    #[test]
    fn event_queue_is_time_ordered(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Same-timestamp events are delivered in scheduling order (stability).
    #[test]
    fn event_queue_stable_within_timestamp(
        groups in prop::collection::vec((0u64..100, 1usize..10), 1..30)
    ) {
        let mut q = EventQueue::new();
        let mut expected: Vec<(u64, usize)> = Vec::new();
        let mut seq = 0usize;
        for &(t, k) in &groups {
            for _ in 0..k {
                q.schedule(SimTime::from_micros(t), (t, seq));
                expected.push((t, seq));
                seq += 1;
            }
        }
        expected.sort_by_key(|&(t, s)| (t, s));
        let mut actual = Vec::new();
        while let Some((_, payload)) = q.pop() {
            actual.push(payload);
        }
        prop_assert_eq!(actual, expected);
    }

    /// Cancelled events never appear; everything else does, exactly once.
    #[test]
    fn cancellation_is_exact(
        times in prop::collection::vec(0u64..10_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule(SimTime::from_micros(t), i)))
            .collect();
        let mut expect: std::collections::HashSet<usize> =
            (0..times.len()).collect();
        for (&(i, id), &c) in ids.iter().zip(cancel_mask.iter().cycle()) {
            if c {
                q.cancel(id);
                expect.remove(&i);
            }
        }
        let mut seen = std::collections::HashSet::new();
        while let Some((_, i)) = q.pop() {
            prop_assert!(seen.insert(i), "duplicate delivery");
        }
        prop_assert_eq!(seen, expect);
    }

    /// Splittable RNG streams seeded identically are identical; the
    /// uniform [0,1) output always stays in range.
    #[test]
    fn rng_unit_interval(seed in any::<u64>()) {
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..100 {
            let x = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    /// gen_range never exceeds its bound.
    #[test]
    fn rng_gen_range_in_bounds(seed in any::<u64>(), bound in 1u64..10_000) {
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(rng.gen_range(bound) < bound);
        }
    }

    /// Distribution samples are non-negative for all supported families.
    #[test]
    fn distributions_nonnegative(seed in any::<u64>(), mean in 0.001f64..1000.0) {
        let mut rng = SimRng::seed_from_u64(seed);
        let d = Dist::exp_mean(mean);
        for _ in 0..50 {
            prop_assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    /// Welford mean equals the naive mean to floating tolerance.
    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..500)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let naive = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - naive).abs() < 1e-6 * (1.0 + naive.abs()));
    }

    /// Merging partitions is equivalent to a single pass.
    #[test]
    fn welford_merge_associative(
        xs in prop::collection::vec(-1e3f64..1e3, 2..200),
        split in 1usize..100,
    ) {
        let k = split.min(xs.len() - 1);
        let mut whole = OnlineStats::new();
        for &x in &xs { whole.push(x); }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..k] { a.push(x); }
        for &x in &xs[k..] { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-7);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-5);
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_monotone(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut q = Quantiles::new();
        for &x in &xs { q.push(x); }
        let lo = q.quantile(0.0);
        let med = q.quantile(0.5);
        let hi = q.quantile(1.0);
        prop_assert!(lo <= med && med <= hi);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(lo, min);
        prop_assert_eq!(hi, max);
    }

    /// Stretch is always >= 1 when responses are at least demands, and the
    /// accumulator is order-insensitive.
    #[test]
    fn stretch_at_least_one(
        pairs in prop::collection::vec((1u64..1_000_000, 0u64..1_000_000), 1..200)
    ) {
        let mut s = StretchAccumulator::new();
        for &(demand, extra) in &pairs {
            s.record(
                SimDuration::from_micros(demand + extra),
                SimDuration::from_micros(demand),
            );
        }
        prop_assert!(s.stretch() >= 1.0 - 1e-9);
        prop_assert_eq!(s.count(), pairs.len() as u64);
    }

    /// Sweep seeds for distinct cell indices never collide: the parallel
    /// sweep executor relies on this to give every cell an independent
    /// stream no matter how cells are distributed over workers.
    #[test]
    fn split_seeds_never_collide(
        root in any::<u64>(),
        i in 0u64..1_000_000,
        j in 0u64..1_000_000,
    ) {
        if i != j {
            prop_assert!(
                split_seed(root, i) != split_seed(root, j),
                "split_seed({root}, {i}) == split_seed({root}, {j})"
            );
        }
        // And the mapping is reproducible.
        prop_assert_eq!(split_seed(root, i), split_seed(root, i));
    }

    /// Streams seeded from adjacent sweep indices decorrelate immediately.
    #[test]
    fn split_seed_streams_diverge(root in any::<u64>(), i in 0u64..10_000) {
        let mut a = SimRng::seed_from_u64(split_seed(root, i));
        let mut b = SimRng::seed_from_u64(split_seed(root, i + 1));
        let same = (0..64).filter(|_| a.next_f64() == b.next_f64()).count();
        prop_assert!(same <= 1, "adjacent cell streams agreed on {same}/64 draws");
    }
}
