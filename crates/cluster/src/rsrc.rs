//! The RSRC cost predictor — the paper's Equation 5.
//!
//! ```text
//! RSRC = w / CPUIdleRatio + (1 − w) / DiskAvailRatio
//! ```
//!
//! `w` is the request class's average CPU cost share, obtained by
//! off-line sampling on an unloaded system; "if a value for w cannot be
//! obtained, we assume w = 0.5". For heterogeneous clusters the relative
//! node speed divides the CPU term (our previous-work extension the paper
//! points to \[36\]).

use crate::loadinfo::{NodeLoad, MIN_RATIO};

/// One node's RSRC cost, decomposed into the two clamped denominators of
/// Eq. 5 with the capacity reserve and node speed folded in.
///
/// The decomposition makes the cost *linear in the request weight*:
/// `cost(w) = w / cpu_denom + (1 − w) / disk_denom`. That is what lets
/// the decision index ([`crate::sched::index`]) re-key a single node in
/// O(log p) after a charge-back without rescoring the whole cluster, and
/// derive safe lower bounds for pruned argmin queries.
///
/// [`CostKey::eval`] performs the same floating-point operations in the
/// same order as [`RsrcPredictor::cost_reserved`], so evaluating a
/// stored key is bit-identical to a dense rescore — the property the
/// golden-seed fixtures rely on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostKey {
    /// Denominator of the CPU term: `(cpu_idle · keep).max(MIN_RATIO) · speed`.
    pub cpu_denom: f64,
    /// Denominator of the disk term: `(disk_avail · keep).max(MIN_RATIO)`.
    pub disk_denom: f64,
}

impl CostKey {
    /// Eq. 5 at effective CPU weight `w` (already clamped by
    /// [`RsrcPredictor::effective_w`]). Bit-identical to
    /// [`RsrcPredictor::cost_reserved`] for the same node and load.
    #[inline]
    pub fn eval(&self, w: f64) -> f64 {
        w / self.cpu_denom + (1.0 - w) / self.disk_denom
    }
}

/// The RSRC predictor.
#[derive(Debug, Clone)]
pub struct RsrcPredictor {
    /// When false (the M/S-ns ablation), every request is costed with
    /// `w = 0.5` regardless of its sampled class weight.
    pub use_sampling: bool,
    /// Per-node CPU speed factors (1.0 = baseline).
    speeds: Vec<f64>,
}

impl RsrcPredictor {
    /// Homogeneous predictor for `p` nodes.
    pub fn homogeneous(p: usize, use_sampling: bool) -> Self {
        RsrcPredictor {
            use_sampling,
            speeds: vec![1.0; p],
        }
    }

    /// Heterogeneous predictor with explicit speed factors.
    pub fn with_speeds(speeds: Vec<f64>, use_sampling: bool) -> Self {
        assert!(!speeds.is_empty());
        assert!(speeds.iter().all(|&s| s > 0.0 && s.is_finite()));
        RsrcPredictor {
            use_sampling,
            speeds,
        }
    }

    /// The effective CPU weight used for a request whose sampled weight
    /// is `sampled_w`.
    pub fn effective_w(&self, sampled_w: f64) -> f64 {
        if self.use_sampling {
            sampled_w.clamp(0.0, 1.0)
        } else {
            0.5
        }
    }

    /// Relative server-site response cost of running a request with CPU
    /// weight `sampled_w` on node `node` given its last load report.
    pub fn cost(&self, node: usize, load: &NodeLoad, sampled_w: f64) -> f64 {
        self.cost_reserved(node, load, sampled_w, 0.0)
    }

    /// Like [`RsrcPredictor::cost`] but with a capacity `reserve`
    /// withheld from the node first — the paper's "reserve a certain
    /// amount of CPU and I/O for static content processing on each master
    /// node" (§4). The reserve scales the node's available capacity
    /// multiplicatively (`idle × (1 − reserve)`), so a reserved node's
    /// cost is a w-independent multiple of its unreserved cost: the
    /// master-overflow decision does not depend on the request's CPU
    /// weight, only on relative node load — `w` keeps its intended role
    /// of matching requests to nodes whose CPU/disk mix suits them.
    pub fn cost_reserved(&self, node: usize, load: &NodeLoad, sampled_w: f64, reserve: f64) -> f64 {
        self.key(node, load, reserve)
            .eval(self.effective_w(sampled_w))
    }

    /// The decomposed cost key of `node` under `reserve` — the
    /// weight-independent part of [`RsrcPredictor::cost_reserved`]. The
    /// decision index stores these so a charge to one node re-keys one
    /// leaf instead of rescoring the cluster.
    pub fn key(&self, node: usize, load: &NodeLoad, reserve: f64) -> CostKey {
        let keep = (1.0 - reserve).max(MIN_RATIO);
        let cpu_idle = (load.cpu_idle_ratio * keep).max(MIN_RATIO);
        let disk_avail = (load.disk_avail_ratio * keep).max(MIN_RATIO);
        CostKey {
            cpu_denom: cpu_idle * self.speeds[node],
            disk_denom: disk_avail,
        }
    }

    /// Index of the minimum-cost node among `candidates`. Ties keep the
    /// first candidate (callers shuffle candidates when they want random
    /// tie-breaking). Returns `None` for an empty candidate list.
    pub fn select<'a>(
        &self,
        candidates: impl IntoIterator<Item = &'a usize>,
        loads: &[NodeLoad],
        sampled_w: f64,
    ) -> Option<usize> {
        self.select_with_reserve(candidates, loads, sampled_w, |_| 0.0)
    }

    /// Minimum-cost selection with a per-node capacity reserve (masters
    /// protect headroom for static work; slaves reserve nothing).
    pub fn select_with_reserve<'a>(
        &self,
        candidates: impl IntoIterator<Item = &'a usize>,
        loads: &[NodeLoad],
        sampled_w: f64,
        reserve_for: impl Fn(usize) -> f64,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for &i in candidates {
            let c = self.cost_reserved(i, &loads[i], sampled_w, reserve_for(i));
            match best {
                Some((_, bc)) if bc <= c => {}
                _ => best = Some((i, c)),
            }
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(cpu_idle: f64, disk_avail: f64) -> NodeLoad {
        NodeLoad {
            cpu_idle_ratio: cpu_idle,
            disk_avail_ratio: disk_avail,
            mem_free_ratio: 1.0,
            processes: 0,
        }
    }

    #[test]
    fn formula_matches_equation5() {
        let p = RsrcPredictor::homogeneous(1, true);
        let l = load(0.5, 0.25);
        // w=0.9: 0.9/0.5 + 0.1/0.25 = 1.8 + 0.4 = 2.2.
        assert!((p.cost(0, &l, 0.9) - 2.2).abs() < 1e-12);
        // w=0.1: 0.1/0.5 + 0.9/0.25 = 0.2 + 3.6 = 3.8.
        assert!((p.cost(0, &l, 0.1) - 3.8).abs() < 1e-12);
    }

    #[test]
    fn idle_node_costs_one() {
        let p = RsrcPredictor::homogeneous(1, true);
        assert!((p.cost(0, &load(1.0, 1.0), 0.7) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_sampling_forces_half() {
        let p = RsrcPredictor::homogeneous(1, false);
        assert_eq!(p.effective_w(0.9), 0.5);
        let l = load(0.5, 0.25);
        // 0.5/0.5 + 0.5/0.25 = 3.
        assert!((p.cost(0, &l, 0.9) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_picks_the_right_node_for_io_work() {
        // Node 0: CPU idle, disk saturated. Node 1: CPU busy, disk free.
        let loads = [load(0.9, 0.1), load(0.2, 0.9)];
        let p = RsrcPredictor::homogeneous(2, true);
        // An I/O-heavy request (w=0.1) must go to node 1.
        assert_eq!(p.select([0usize, 1].iter(), &loads, 0.1), Some(1));
        // A CPU-heavy request (w=0.95) must go to node 0.
        assert_eq!(p.select([0usize, 1].iter(), &loads, 0.95), Some(0));
        // Without sampling (w=0.5) both requests get the same answer —
        // the mechanism behind the M/S-ns gap.
        let ns = RsrcPredictor::homogeneous(2, false);
        let io = ns.select([0usize, 1].iter(), &loads, 0.1);
        let cpu = ns.select([0usize, 1].iter(), &loads, 0.95);
        assert_eq!(io, cpu);
    }

    #[test]
    fn speed_factor_discounts_cpu_term() {
        let p = RsrcPredictor::with_speeds(vec![1.0, 2.0], true);
        let l = load(0.5, 1.0);
        let slow = p.cost(0, &l, 1.0);
        let fast = p.cost(1, &l, 1.0);
        assert!((slow - 2.0).abs() < 1e-12);
        assert!((fast - 1.0).abs() < 1e-12);
    }

    #[test]
    fn select_empty_is_none() {
        let p = RsrcPredictor::homogeneous(2, true);
        assert_eq!(p.select([].iter(), &[], 0.5), None);
    }

    #[test]
    fn reserve_scales_capacity() {
        let p = RsrcPredictor::homogeneous(1, true);
        let l = load(0.8, 0.4);
        let free = p.cost(0, &l, 0.7);
        let half = p.cost_reserved(0, &l, 0.7, 0.5);
        // Multiplicative reserve: exactly double the cost at 50% reserve.
        assert!((half - 2.0 * free).abs() < 1e-9);
        // And the ratio is the same for any w (threshold w-independence).
        let free_io = p.cost(0, &l, 0.1);
        let half_io = p.cost_reserved(0, &l, 0.1, 0.5);
        assert!((half_io / free_io - half / free).abs() < 1e-9);
    }

    #[test]
    fn key_eval_is_bit_identical_to_cost_reserved() {
        // The decision index evaluates stored keys instead of calling
        // cost_reserved; the two must agree to the last bit or indexed
        // and dense placements could diverge on near-ties.
        let p = RsrcPredictor::with_speeds(vec![1.0, 1.7, 0.3], true);
        for (node, (ci, da)) in [(0.73, 0.21), (0.011, 0.99), (1.0, 1.0)].iter().enumerate() {
            let l = load(*ci, *da);
            for reserve in [0.0, 0.2, 0.97] {
                for w in [0.0, 0.1, 0.5, 0.9, 1.0] {
                    let dense = p.cost_reserved(node, &l, w, reserve);
                    let keyed = p.key(node, &l, reserve).eval(p.effective_w(w));
                    assert_eq!(dense.to_bits(), keyed.to_bits());
                }
            }
        }
    }

    #[test]
    fn zero_ratios_are_clamped() {
        let p = RsrcPredictor::homogeneous(1, true);
        let l = load(0.0, 0.0);
        let c = p.cost(0, &l, 0.5);
        assert!(c.is_finite());
        assert!((c - 1.0 / MIN_RATIO).abs() < 1e-9);
    }
}
