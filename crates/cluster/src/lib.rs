//! # msweb-cluster
//!
//! The paper's primary contribution: reservation-based scheduling for a
//! master/slave Web-server cluster (*Scheduling Optimization for
//! Resource-Intensive Web Requests on Server Clusters*, Zhu/Smith/Yang,
//! SPAA 1999).
//!
//! The pieces, mapped to the paper:
//!
//! * [`sched`] — the two-hop placement algorithm as a composable
//!   pipeline: front-end entry selection, reservation admission,
//!   candidate-set formation and minimum-RSRC scoring (§4), assembled
//!   per [`config::PolicyKind`] by [`sched::PolicyScheduler::new`] or
//!   from named stages by [`sched::SchedulerRegistry`];
//! * [`rsrc::RsrcPredictor`] — Equation 5's relative server-site response
//!   cost, with per-class CPU weights from off-line sampling;
//! * [`reservation::ReservationController`] — the self-stabilising
//!   `θ2*` admission limit derived from Theorem 1 and on-line
//!   measurements;
//! * [`loadinfo::LoadMonitor`] — the periodically updated (hence stale)
//!   rstat-style load view;
//! * [`sim::ClusterSim`] — the trace-driven discrete-event driver over
//!   `msweb-ossim` nodes;
//! * [`config::PolicyKind`] — every contender of §5.2: Flat, M/S, M/S-ns,
//!   M/S-nr, M/S-1, M/S′, plus the HTTP-redirection baseline the paper
//!   rejects;
//! * [`failure::FailurePlan`] — §2's fail-over scenario: slave death and
//!   dynamic-request restart;
//! * [`metrics::Metrics`] — stretch factors per class and level;
//! * [`telemetry`] — zero-cost-when-disabled live telemetry: pipeline
//!   span timing, controller time series, node gauges, and the
//!   Prometheus/JSON/`top` exposition surfaces.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod config;
pub mod failure;
pub mod loadinfo;
pub mod metrics;
pub mod reservation;
pub mod rsrc;
#[deny(missing_docs)]
pub mod sched;
pub mod sim;
pub mod telemetry;

pub use cache::{CacheConfig, DynContentCache};
pub use config::{
    plan_masters, table2_grid, ClusterConfig, ConfigError, GridCell, MasterSelection,
    ParsePolicyError, PolicyKind,
};
pub use failure::{FailureEvent, FailurePlan};
pub use loadinfo::{LoadMonitor, NodeLoad};
pub use metrics::{Level, Metrics, RunSummary};
pub use reservation::ReservationController;
pub use rsrc::RsrcPredictor;
pub use sched::{
    analyze, AnalysisReport, AttainedService, CollectingObserver, ComposeError, DecisionObserver,
    DecisionRecord, Dispatcher, DropRecord, DynScheduler, GreedyRegion, JsonlSink, NearestRegion,
    NodeSample, Placement, PlacementError, PolicyScheduler, Provenance, RegionSelector,
    RegionTopology, RegionView, ReplayError, ReplayOptions, ReqKnowledge, RunMeta, Schedule,
    Scheduler, SchedulerRegistry, StageKind, StageSpec, TraceEvent, TraceLog,
};
pub use sim::{
    policy_sim, policy_sim_from_stats, simulate, simulate_source, ClusterSim, RunOptions,
    RunOutcome, WorkloadStats,
};
pub use telemetry::series::{SeriesMeta, SeriesRecorder, SeriesWindowInput, SharedSeriesBuffer};
pub use telemetry::slo::{
    check_log, AlertEvent, BurnWindow, SloCheckReport, SloEngine, SloRule, SloRules, SloSignal,
    WindowSignals,
};
pub use telemetry::{
    render_top, SchedTelemetry, ScorerPaths, Stage, TelemetryProbe, TelemetrySnapshot, WindowSample,
};
