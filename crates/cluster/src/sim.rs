//! The trace-driven cluster simulation driver.
//!
//! [`ClusterSim`] wires a scheduling pipeline, the per-node OS models,
//! the load monitor and the reservation controller into one
//! discrete-event loop. Events are processed in global timestamp order
//! with a fixed tie order (node internals, then transfers, then
//! arrivals, then failures, then monitor ticks) so every run is exactly
//! reproducible.
//!
//! The driver is generic over [`Schedule`], so it accepts both the
//! statically composed per-policy pipeline ([`PolicyScheduler`]) and
//! custom registry compositions — the very same scheduler value the
//! live emulation (`msweb-emu`) consumes.
//!
//! Workloads arrive as [`RequestSource`] streams: the driver holds only
//! in-flight bookkeeping (a map keyed by admission sequence number), so
//! peak memory is O(concurrent requests), not O(run length). A
//! materialized [`Trace`] runs through the identical code path via its
//! borrowing source adapter, which is what keeps the streamed and
//! materialized summaries byte-identical.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use msweb_ossim::{Completion, DemandSpec, Node};
use msweb_simcore::{rng::split_seed, SimDuration, SimRng, SimTime};
use msweb_workload::{DemandVisibility, Request, RequestSource, Trace};

use crate::cache::DynContentCache;
use crate::config::{ClusterConfig, PolicyKind};
use crate::failure::FailurePlan;
use crate::loadinfo::LoadMonitor;
use crate::metrics::{Level, Metrics, RunSummary};
use crate::sched::{
    DecisionObserver, DropRecord, NodeSample, PolicyScheduler, ReqKnowledge, RunMeta, Schedule,
    TraceEvent,
};
use crate::telemetry::series::{SeriesMeta, SeriesRecorder, SeriesWindowInput};
use crate::telemetry::slo::SloEngine;
use crate::telemetry::{TelemetryProbe, TelemetrySnapshot, WindowSample};

/// Per-request bookkeeping for a request that has been admitted and not
/// yet completed or dropped. Map membership *is* the pending state:
/// completion and drop both remove the entry, so a stale event for a
/// request simply misses the map.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    /// The request itself (arrival, class, size, demand, cache key).
    req: Request,
    /// Arrival time at the cluster front end.
    cluster_arrival: SimTime,
    /// Where the request was placed (for level attribution).
    on_master: bool,
    /// Node currently hosting the request.
    node: usize,
    /// Whether the dynamic-content cache served this request.
    cache_hit: bool,
    /// True service demand actually being served (cache-hit adjusted) —
    /// ground truth the scheduler never sees directly; it closes the
    /// attained-service books at completion.
    served: SimDuration,
    /// When service started on the current node; `None` while the
    /// request is still in transfer.
    started: Option<SimTime>,
}

/// Nodes per shard when per-tick node work runs parallel.
const NODE_SHARD_CHUNK: usize = 512;

/// `split_seed` label for the demand-noise stream, disjoint from the
/// workload generators' labels (1..=5) and stable across runs.
const NOISE_RNG_LABEL: u64 = 0xD15E;

/// A fully wired simulated cluster, generic over the scheduling
/// pipeline it drives (defaults to the built-in per-policy pipeline).
pub struct ClusterSim<Sch: Schedule = PolicyScheduler> {
    config: ClusterConfig,
    nodes: Vec<Node>,
    scheduler: Sch,
    monitor: LoadMonitor,
    metrics: Metrics,
    /// Off-line-sampled mean demands used to debit the stale load view:
    /// (static, dynamic).
    mean_demand: (SimDuration, SimDuration),
    /// In-flight remote transfers: (deliver-at, seq, request, target node).
    transfers: BinaryHeap<Reverse<(u64, u64, u64, usize)>>,
    transfer_seq: u64,
    failures: FailurePlan,
    failure_cursor: usize,
    /// Pending node recoveries: (at, node).
    recoveries: Vec<(SimTime, usize)>,
    /// Dynamic-content cache (Swala extension), when enabled.
    cache: Option<DynContentCache>,
    /// Reservation priors the scheduler was seeded with, recorded in
    /// the trace meta line so replay can rebuild the same controller.
    priors: (f64, f64),
    /// Registry spec label recorded in the trace meta line when the
    /// scheduler is a custom composition rather than `config.policy`.
    spec_label: Option<String>,
    /// Driver-side telemetry probe (controller series, node gauges,
    /// response histograms), when telemetry is enabled.
    telemetry: Option<TelemetryProbe>,
    /// Windowed time-series recorder (one JSONL record per monitor
    /// tick), when attached.
    series: Option<SeriesRecorder>,
    /// SLO burn-rate engine evaluated at every monitor tick, when
    /// rules are attached.
    slo: Option<SloEngine>,
    /// Admitted-but-unfinished requests, keyed by admission sequence.
    in_flight: HashMap<u64, InFlight>,
    /// What the scheduler is told about each request's demand.
    visibility: DemandVisibility,
    /// Dedicated noise stream for `DemandVisibility::Noisy`. Never
    /// drawn from under any other regime, so enabling the field cannot
    /// perturb the scheduler's RNG sequence (the golden fixtures).
    noise_rng: SimRng,
    /// Lazy-deletion index of node next-event times: (micros, node).
    /// Every mutation of a node pushes its fresh next-event time, so the
    /// minimum valid entry is the fleet's next internal event — O(log p)
    /// per event instead of an O(p) scan.
    node_events: BinaryHeap<Reverse<(u64, usize)>>,
    /// Worker threads for per-tick node work (`1` = inline, `0` = all
    /// cores). Sharding is bit-deterministic; see
    /// [`ClusterSim::with_tick_workers`].
    tick_workers: usize,
}

impl ClusterSim<PolicyScheduler> {
    /// Build a cluster driven by `config.policy`'s stage composition.
    /// `a0`/`r0` are the workload priors used to seed the reservation
    /// controller and (when `masters` is `Auto`) the Theorem-1 planner.
    pub fn new(config: ClusterConfig, a0: f64, r0: f64) -> Self {
        let scheduler = PolicyScheduler::new(&config, a0, r0);
        ClusterSim::with_scheduler(config, scheduler)
            .with_priors(a0, r0)
            .with_mean_demands(
                SimDuration::from_secs_f64(1.0 / 1200.0),
                SimDuration::from_secs_f64(1.0 / 1200.0 / r0.max(1e-4)),
            )
    }
}

impl<Sch: Schedule> ClusterSim<Sch> {
    /// Build a cluster around an explicit scheduler value (e.g. a
    /// registry composition). The caller is responsible for having
    /// built `scheduler` for this same `config`; mean demands default
    /// to the static fetch cost and should usually be overridden with
    /// [`ClusterSim::with_mean_demands`].
    pub fn with_scheduler(config: ClusterConfig, scheduler: Sch) -> Self {
        config.validate().expect("invalid cluster configuration");
        let nodes: Vec<Node> = (0..config.p())
            .map(|i| match config.speeds() {
                Some(s) => Node::with_speed(i, config.os().clone(), s[i]),
                None => Node::new(i, config.os().clone()),
            })
            .collect();
        let monitor = LoadMonitor::new(config.p(), config.monitor_period(), SimTime::ZERO);
        let cache = config.cache().cloned().map(DynContentCache::new);
        let noise_rng = SimRng::seed_from_u64(split_seed(config.seed(), NOISE_RNG_LABEL));
        ClusterSim {
            config,
            nodes,
            scheduler,
            monitor,
            cache,
            metrics: Metrics::new(),
            mean_demand: (
                SimDuration::from_secs_f64(1.0 / 1200.0),
                SimDuration::from_secs_f64(1.0 / 60.0),
            ),
            transfers: BinaryHeap::new(),
            transfer_seq: 0,
            failures: FailurePlan::none(),
            failure_cursor: 0,
            recoveries: Vec::new(),
            priors: (0.5, 0.05),
            spec_label: None,
            telemetry: None,
            series: None,
            slo: None,
            in_flight: HashMap::new(),
            visibility: DemandVisibility::Exact,
            noise_rng,
            node_events: BinaryHeap::new(),
            tick_workers: 1,
        }
    }

    /// Choose what the scheduler is told about each request's demand
    /// (before `run`). The default, [`DemandVisibility::Exact`], keeps
    /// the paper's idealised-sampling behaviour and draws nothing from
    /// the noise stream.
    pub fn with_visibility(mut self, visibility: DemandVisibility) -> Self {
        self.visibility = visibility;
        self
    }

    /// Install a failure schedule (before `run`).
    pub fn with_failures(mut self, plan: FailurePlan) -> Self {
        self.failures = plan;
        self
    }

    /// Record the reservation priors the scheduler was seeded with, so
    /// the trace meta line reproduces them. [`ClusterSim::new`] sets
    /// this automatically; callers of [`ClusterSim::with_scheduler`]
    /// should pass the same `a0`/`r0` they composed the scheduler with.
    pub fn with_priors(mut self, a0: f64, r0: f64) -> Self {
        self.priors = (a0, r0);
        self
    }

    /// Record a registry stage-spec label in the trace meta line (for
    /// custom compositions, where `config.policy` alone does not
    /// describe the scheduler).
    pub fn with_spec_label(mut self, spec: impl Into<String>) -> Self {
        self.spec_label = Some(spec.into());
        self
    }

    /// Override the off-line-sampled mean class demands (static, dynamic)
    /// used to debit the stale load view after each placement.
    pub fn with_mean_demands(mut self, stat: SimDuration, dynamic: SimDuration) -> Self {
        self.mean_demand = (stat, dynamic);
        self
    }

    /// Shard per-monitor-tick node work (snapshot collection and the
    /// windowed-ratio refresh) across up to `workers` threads (`0` =
    /// all cores, `1` = inline, the default). Every per-node computation
    /// is a pure function of that node's state, and all cross-node
    /// reductions stay sequential in node order — so the summary is
    /// bit-identical at any worker count; sharding only buys wall-clock
    /// time on clusters with thousands of nodes.
    pub fn with_tick_workers(mut self, workers: usize) -> Self {
        self.tick_workers = workers;
        self
    }

    /// Enable live telemetry: turns on the scheduler's per-stage
    /// counters/spans and installs a driver-side probe that samples the
    /// reservation controller and node gauges at every monitor tick.
    /// Read the result back with [`ClusterSim::telemetry_snapshot`].
    pub fn with_telemetry(mut self) -> Self {
        self.scheduler.set_telemetry_enabled(true);
        self.telemetry = Some(TelemetryProbe::new());
        self
    }

    /// Attach a windowed time-series recorder: one JSONL record per
    /// monitor tick, streamed to the recorder's sink (O(1) driver
    /// memory — only the previous tick's cumulative counters are
    /// retained for delta computation). Implies the scheduler's
    /// per-stage telemetry counters, so the per-window placement and
    /// stage deltas are real rather than null; the counters never
    /// influence placement decisions, so summaries and decision logs
    /// are byte-identical with and without a recorder attached.
    pub fn with_series(mut self, recorder: SeriesRecorder) -> Self {
        self.scheduler.set_telemetry_enabled(true);
        self.series = Some(recorder);
        self
    }

    /// Attach an SLO burn-rate engine, evaluated at every monitor
    /// tick. Fired alerts go to stderr, and — only when decision
    /// tracing is active — to the log as `alert` events, so rule-less
    /// logs stay byte-identical.
    pub fn with_slo(mut self, engine: SloEngine) -> Self {
        self.slo = Some(engine);
        self
    }

    /// The attached SLO engine, if any (e.g. to read
    /// [`SloEngine::alerts_fired`] after a run).
    pub fn slo_engine(&self) -> Option<&SloEngine> {
        self.slo.as_ref()
    }

    /// Take back the attached series recorder (flushing is the
    /// caller's concern; the recorder also flushes on drop).
    pub fn take_series(&mut self) -> Option<SeriesRecorder> {
        self.series.take()
    }

    /// The policy label reported in telemetry: the registry spec when
    /// one was recorded, the policy slug otherwise.
    fn policy_label(&self) -> String {
        match &self.spec_label {
            Some(spec) => spec.clone(),
            None => self.config.policy().slug().to_string(),
        }
    }

    /// Assemble the full telemetry snapshot for the run so far. `None`
    /// unless [`ClusterSim::with_telemetry`] was called.
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        let probe = self.telemetry.as_ref()?;
        let sched = self.scheduler.telemetry()?;
        let policy = self.policy_label();
        Some(TelemetrySnapshot::assemble(
            "sim",
            &policy,
            self.config.seed(),
            self.scheduler.masters(),
            sched,
            self.scheduler.scorer_path_counts(),
            self.scheduler.reservation().clamp_events(),
            probe,
        ))
    }

    /// The resolved master count.
    pub fn masters(&self) -> usize {
        self.scheduler.masters()
    }

    /// Cache statistics `(hits, misses, expirations, evictions)`, when
    /// caching is enabled.
    pub fn cache_stats(&self) -> Option<(u64, u64, u64, u64)> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// The configuration in force.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The scheduling pipeline driving this cluster.
    pub fn scheduler(&self) -> &Sch {
        &self.scheduler
    }

    /// Mutable access to the pipeline, e.g. to install a
    /// [`DecisionObserver`] before `run`.
    pub fn scheduler_mut(&mut self) -> &mut Sch {
        &mut self.scheduler
    }

    /// Replay `trace` to completion and return the run summary.
    ///
    /// Thin wrapper over [`ClusterSim::run_source`] via the trace's
    /// borrowing source adapter — both paths execute the identical event
    /// loop, so their summaries are byte-identical.
    pub fn run(&mut self, trace: &Trace) -> RunSummary {
        self.run_source(trace.source())
    }

    /// Drive a [`RequestSource`] to completion and return the run
    /// summary. Peak memory is bounded by the number of concurrently
    /// in-flight requests; the source is consumed one request at a time.
    pub fn run_source<S: RequestSource>(&mut self, mut source: S) -> RunSummary {
        if self.scheduler.tracing() {
            let meta = RunMeta {
                substrate: "sim".to_string(),
                p: self.config.p(),
                m: self.scheduler.masters(),
                policy: self.config.policy().slug().to_string(),
                spec: self.spec_label.clone(),
                seed: self.config.seed(),
                a0: self.priors.0,
                r0: self.priors.1,
                master_reserve: self.config.master_reserve(),
                dns_skew: self.config.dns_skew(),
                monitor_period_us: self.config.monitor_period().as_micros(),
                remote_latency_us: self.config.remote_latency().as_micros(),
                redirect_rtt_us: self.config.redirect_rtt().as_micros(),
                speeds: self.config.speeds().map(<[f64]>::to_vec),
                regions: self.scheduler.region_topology().cloned(),
            };
            self.scheduler.emit(&TraceEvent::Meta(meta));
        }
        if self.series.is_some() {
            let policy = self.policy_label();
            let meta = SeriesMeta {
                substrate: "sim",
                policy: &policy,
                p: self.config.p(),
                m: self.scheduler.masters(),
                seed: self.config.seed(),
            };
            if let Some(rec) = &mut self.series {
                rec.begin(&meta);
            }
        }
        // Seed the node-event index with whatever the fleet already has
        // scheduled (non-empty only when resuming after a prior run).
        for i in 0..self.nodes.len() {
            self.note_node_event(i);
        }
        let mut peeked = source.next();
        let mut admitted: u64 = 0;
        let mut guard: u64 = 0;

        while peeked.is_some() || !self.in_flight.is_empty() {
            guard += 1;
            // Generous bound: every request can cause only finitely many
            // events; the guard catches driver bugs, not real workloads.
            assert!(
                guard < 10_000 * (admitted + 1_000),
                "cluster simulation did not converge"
            );

            // Candidate event times.
            let t_node = self.next_node_event();
            let t_transfer = self.transfers.peek().map(|Reverse((t, ..))| SimTime(*t));
            let t_arrival = peeked.as_ref().map(|r| r.arrival);
            let t_failure = self
                .failures
                .events()
                .get(self.failure_cursor)
                .map(|e| e.at);
            let t_recover = self.recoveries.first().map(|&(t, _)| t);
            // Monitor only matters while work remains; it never blocks
            // termination because the loop exits on the in-flight set.
            let t_monitor = Some(self.monitor.next_tick());

            let t = [
                t_node, t_transfer, t_arrival, t_failure, t_recover, t_monitor,
            ]
            .into_iter()
            .flatten()
            .min()
            .expect("no events but work outstanding");

            // Tie order: node internals, transfers, arrivals, failures,
            // recoveries, monitor.
            if t_node == Some(t) {
                self.step_nodes(t);
            } else if t_transfer == Some(t) {
                let Reverse((_, _, req, node)) = self.transfers.pop().expect("peeked");
                self.deliver(req, node, t);
            } else if t_arrival == Some(t) {
                let req = peeked.take().expect("checked t_arrival");
                peeked = source.next();
                // The RequestSource contract requires non-decreasing
                // arrival order; a violation would reorder admissions.
                debug_assert!(
                    peeked
                        .as_ref()
                        .is_none_or(|next| next.arrival >= req.arrival),
                    "RequestSource yielded out-of-order arrivals"
                );
                let seq = admitted;
                admitted += 1;
                self.admit(req, seq, t);
            } else if t_failure == Some(t) {
                self.fail_node(t);
            } else if t_recover == Some(t) {
                let (_, node) = self.recoveries.remove(0);
                self.scheduler.set_dead(node, false);
            } else {
                self.tick_monitor(t);
            }
        }
        let busy: Vec<f64> = self
            .nodes
            .iter()
            .map(|n| {
                let l = n.load();
                l.cpu_busy.as_secs_f64() + l.disk_busy.as_secs_f64()
            })
            .collect();
        self.metrics.set_node_busy(busy);
        if let Some(rec) = &mut self.series {
            rec.flush();
        }
        self.metrics.summary()
    }

    /// Record node `i`'s current next-event time in the lazy index.
    /// Call after any mutation that can change it (submit, advance,
    /// kill); stale entries are discarded on peek.
    fn note_node_event(&mut self, i: usize) {
        if let Some(t) = self.nodes[i].next_event() {
            self.node_events.push(Reverse((t.0, i)));
        }
    }

    /// The earliest live node event, discarding stale index entries.
    fn next_node_event(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((t, i))) = self.node_events.peek() {
            if self.nodes[i].next_event() == Some(SimTime(t)) {
                return Some(SimTime(t));
            }
            self.node_events.pop();
        }
        None
    }

    /// Advance every node whose next event is due at `t` (processing all
    /// same-timestamp internal events), then collect completions — in
    /// node-id order both times, matching the dense scan the index
    /// replaced. Nodes without a due event cannot hold undrained
    /// completions (completions only appear during `advance`/`submit`,
    /// and both drain immediately), so draining the due subset is
    /// equivalent to draining the fleet.
    fn step_nodes(&mut self, t: SimTime) {
        let mut due: Vec<usize> = Vec::new();
        while let Some(&Reverse((te, i))) = self.node_events.peek() {
            if te > t.0 {
                break;
            }
            self.node_events.pop();
            if self.nodes[i].next_event() == Some(t) {
                due.push(i);
            }
        }
        due.sort_unstable();
        due.dedup();
        for &i in &due {
            while self.nodes[i].next_event() == Some(t) {
                self.nodes[i].advance(t);
            }
            self.note_node_event(i);
            for c in self.nodes[i].drain_completed() {
                self.handle_completion(c, i);
            }
        }
    }

    /// Account one node completion: metrics, cache install, reservation
    /// feedback, trace event. A tag with no in-flight entry is a stale
    /// completion left over from restart bookkeeping and is skipped.
    fn handle_completion(&mut self, c: Completion, node: usize) {
        let Some(fl) = self.in_flight.remove(&c.tag) else {
            return; // stale completion after restart bookkeeping
        };
        debug_assert_eq!(fl.node, node, "completion from unexpected node");
        let req = fl.req;
        self.scheduler.note_completion(fl.node);
        self.scheduler.note_service_end(fl.node, c.tag, fl.served);
        // A completed CGI miss installs its result for future hits.
        if let (Some(cache), true, Some(key)) = (
            &mut self.cache,
            req.class.is_dynamic() && !fl.cache_hit,
            req.cache_key,
        ) {
            cache.insert(key, c.finished);
        }
        if fl.cache_hit {
            self.metrics.note_cache_hit();
        }
        let response = c.finished - fl.cluster_arrival;
        let level = if req.class.is_dynamic() {
            Some(if fl.on_master {
                Level::Master
            } else {
                Level::Slave
            })
        } else {
            None
        };
        self.metrics.record(response, req.demand.service, level);
        if let Some(probe) = &self.telemetry {
            probe.record_response(req.class.is_dynamic(), response.as_micros());
        }
        self.scheduler
            .reservation_mut()
            .note_response(req.class.is_dynamic(), response);
        if self.scheduler.tracing() {
            self.scheduler.emit(&TraceEvent::Complete {
                req: c.tag,
                node: fl.node,
                dynamic: req.class.is_dynamic(),
                response_us: response.as_micros(),
            });
        }
    }

    /// Produce the declaration the scheduler will be shown for a request
    /// whose true CPU weight is `w` and whose class-mean demand is
    /// `expected`, under the run's visibility regime. Only `Noisy` draws
    /// from the dedicated noise stream.
    fn declare(&mut self, w: f64, expected: SimDuration) -> ReqKnowledge {
        match self.visibility {
            DemandVisibility::Exact => ReqKnowledge::exact(w, expected),
            DemandVisibility::Sampled => ReqKnowledge::sampled(w, expected),
            DemandVisibility::Noisy(sigma) => {
                let dw = sigma * (2.0 * self.noise_rng.next_f64() - 1.0);
                let dx = sigma * (2.0 * self.noise_rng.next_f64() - 1.0);
                ReqKnowledge::noisy(
                    (w + dw).clamp(0.0, 1.0),
                    expected.mul_f64((1.0 + dx).max(0.05)),
                )
            }
            DemandVisibility::Hidden => ReqKnowledge::hidden(expected),
        }
    }

    /// A request arrives at the front end: place it, or drop it (counted
    /// in the summary) when no live node exists.
    fn admit(&mut self, req: Request, seq: u64, t: SimTime) {
        // Swala extension: a fresh cached result turns this CGI into a
        // cheap fetch served like a static request at the entry node.
        let cache_hit = match (&mut self.cache, req.class.is_dynamic(), req.cache_key) {
            (Some(cache), true, Some(key)) => cache.lookup(key, t),
            _ => false,
        };
        let effectively_dynamic = req.class.is_dynamic() && !cache_hit;
        let expected = if effectively_dynamic {
            self.mean_demand.1
        } else {
            self.mean_demand.0
        };
        let w = if cache_hit {
            self.cache
                .as_ref()
                .expect("hit implies cache")
                .config()
                .hit_cpu_fraction
        } else {
            req.demand.cpu_fraction
        };
        let served_demand = if cache_hit {
            self.cache
                .as_ref()
                .expect("hit implies cache")
                .config()
                .hit_service
        } else {
            req.demand.service
        };
        self.scheduler.note_request(seq, t, served_demand);
        self.scheduler.note_origin(req.origin);
        let know = self.declare(w, expected);
        let placed = self
            .scheduler
            .place(effectively_dynamic, know, &mut self.monitor);
        let Ok(placement) = placed else {
            // Whole cluster dead: degrade gracefully instead of aborting
            // the experiment.
            self.metrics.note_dropped();
            if self.scheduler.tracing() {
                self.scheduler.emit(&TraceEvent::Drop(DropRecord {
                    req: seq,
                    at_us: t.0,
                    dynamic: effectively_dynamic,
                    w: know.w,
                    expected_us: know.expected.as_micros(),
                    redrive: true,
                    restart: false,
                    origin: req.origin,
                }));
            }
            return;
        };
        let on_master = placement.on_master
            || (!req.class.is_dynamic() && self.config.policy() != PolicyKind::Flat);
        self.in_flight.insert(
            seq,
            InFlight {
                req,
                cluster_arrival: t,
                on_master,
                node: placement.node,
                cache_hit,
                served: served_demand,
                started: None,
            },
        );
        if placement.latency.is_zero() {
            self.deliver(seq, placement.node, t);
        } else {
            self.transfer_seq += 1;
            self.transfers.push(Reverse((
                (t + placement.latency).as_micros(),
                self.transfer_seq,
                seq,
                placement.node,
            )));
        }
    }

    /// Hand a request to its node.
    fn deliver(&mut self, tag: u64, node: usize, t: SimTime) {
        let fl = *self
            .in_flight
            .get(&tag)
            .expect("delivery of request not in flight");
        let spec = if fl.cache_hit {
            // Serve from the cache: static-fetch-scale demand, no fork.
            let cc = self.cache.as_ref().expect("hit implies cache").config();
            DemandSpec {
                service: cc.hit_service,
                cpu_fraction: cc.hit_cpu_fraction,
                memory_pages: self.config.os().bytes_to_pages(fl.req.bytes),
                is_cgi: false,
            }
        } else {
            demand_to_spec(&fl.req, &self.config)
        };
        {
            let entry = self.in_flight.get_mut(&tag).expect("checked above");
            entry.node = node;
            entry.started = Some(t);
        }
        self.scheduler.note_service_start(node, tag);
        self.nodes[node].submit(&spec, t, tag);
        self.note_node_event(node);
        // A zero-work spec can complete inside submit; account it now so
        // the event index never strands a finished request.
        for c in self.nodes[node].drain_completed() {
            self.handle_completion(c, node);
        }
    }

    /// Kill the node named by the due failure event.
    fn fail_node(&mut self, t: SimTime) {
        let event = self.failures.events()[self.failure_cursor];
        self.failure_cursor += 1;
        let lost = self.nodes[event.node].kill_all();
        self.note_node_event(event.node);
        self.scheduler.set_dead(event.node, true);
        if let Some(r) = event.recover_at {
            self.recoveries.push((r, event.node));
            self.recoveries.sort_by_key(|&(t, _)| t);
        }
        // Detection delay before restart: one monitor period.
        let detect = self.config.monitor_period();
        for tag in lost {
            let Some(fl) = self.in_flight.get(&tag).copied() else {
                continue;
            };
            let req = fl.req;
            // The crash loses whatever service the request had attained.
            self.scheduler.note_service_lost(event.node, tag);
            let attempt = event.restart_dynamic && req.class.is_dynamic();
            let mut drop_w = req.demand.cpu_fraction;
            let restarted = if attempt {
                self.scheduler.note_request(tag, t, req.demand.service);
                self.scheduler.note_origin(req.origin);
                let know = self.declare(req.demand.cpu_fraction, self.mean_demand.1);
                drop_w = know.w;
                self.scheduler
                    .replace_after_failure(true, know, &mut self.monitor)
                    .ok()
            } else {
                None
            };
            if let Some(placement) = restarted {
                let entry = self.in_flight.get_mut(&tag).expect("checked above");
                entry.on_master = placement.on_master;
                entry.started = None;
                self.metrics.note_restarted();
                self.transfer_seq += 1;
                self.transfers.push(Reverse((
                    (t + detect + placement.latency).as_micros(),
                    self.transfer_seq,
                    tag,
                    placement.node,
                )));
            } else {
                self.in_flight.remove(&tag);
                self.metrics.note_dropped();
                self.emit_failure_drop(tag, t, req.class.is_dynamic(), drop_w, attempt, req.origin);
            }
        }
        // Requests in flight *towards* the dead node: re-route them too.
        let pending: Vec<_> = std::mem::take(&mut self.transfers).into_vec();
        for Reverse((at, seq, tag, node)) in pending {
            let fl = self.in_flight.get(&tag).copied();
            match fl {
                Some(fl) if node == event.node => {
                    let r = fl.req;
                    let attempt = event.restart_dynamic && r.class.is_dynamic();
                    let mut drop_w = r.demand.cpu_fraction;
                    let restarted = if attempt {
                        self.scheduler.note_request(tag, t, r.demand.service);
                        self.scheduler.note_origin(r.origin);
                        let know = self.declare(r.demand.cpu_fraction, self.mean_demand.1);
                        drop_w = know.w;
                        self.scheduler
                            .replace_after_failure(true, know, &mut self.monitor)
                            .ok()
                    } else {
                        None
                    };
                    if let Some(placement) = restarted {
                        self.metrics.note_restarted();
                        self.transfer_seq += 1;
                        self.transfers.push(Reverse((
                            (t + detect + placement.latency).as_micros(),
                            self.transfer_seq,
                            tag,
                            placement.node,
                        )));
                    } else {
                        self.in_flight.remove(&tag);
                        self.metrics.note_dropped();
                        self.emit_failure_drop(
                            tag,
                            t,
                            r.class.is_dynamic(),
                            drop_w,
                            attempt,
                            r.origin,
                        );
                    }
                }
                _ => {
                    self.transfers.push(Reverse((at, seq, tag, node)));
                }
            }
        }
    }

    /// Emit a fail-over drop event: `redrive` records whether the
    /// scheduler actually ran (and advanced its RNG) before the drop,
    /// in which case `w` is the weight the failed call was given.
    fn emit_failure_drop(
        &mut self,
        req: u64,
        t: SimTime,
        dynamic: bool,
        w: f64,
        redrive: bool,
        origin: usize,
    ) {
        if !self.scheduler.tracing() {
            return;
        }
        self.scheduler.emit(&TraceEvent::Drop(DropRecord {
            req,
            at_us: t.0,
            dynamic,
            w,
            expected_us: self.mean_demand.1.as_micros(),
            redrive,
            restart: true,
            origin,
        }));
    }

    /// Load-monitor tick: refresh stale load info, update the
    /// reservation controller. Snapshot collection and the windowed
    /// ratio refresh shard across [`ClusterSim::with_tick_workers`]
    /// threads; the scalar folds that follow stay sequential in node
    /// order, keeping the result bit-identical to the dense scan.
    fn tick_monitor(&mut self, t: SimTime) {
        // Feed attained service from the same accounting cadence the
        // load view refreshes at: elapsed service time on the current
        // node, capped at the true demand. Per-tag maxima make the feed
        // independent of map iteration order.
        {
            let scheduler = &mut self.scheduler;
            for (&tag, fl) in self.in_flight.iter() {
                if let Some(started) = fl.started {
                    let attained = (t - started).min(fl.served);
                    scheduler.note_service_progress(fl.node, tag, attained);
                }
            }
        }
        let snapshots: Vec<_> = if self.tick_workers == 1 {
            self.nodes.iter().map(|n| n.load()).collect()
        } else {
            msweb_simcore::chunked_map(&self.nodes, NODE_SHARD_CHUNK, self.tick_workers, |_, n| {
                n.load()
            })
        };
        self.monitor
            .tick_with_workers(t, &snapshots, self.tick_workers);
        // Mean per-node utilisation over the window: busy resource-time
        // (CPU + disk, which execute serially within one request) per
        // second of window, averaged across nodes.
        let rho = self.monitor.mean_utilisation();
        // Capture the windowed master fraction before update() resets it.
        let theta_hat = self.scheduler.reservation().master_fraction();
        self.scheduler.reservation_mut().update(rho);
        // The window sample and busy gauges feed the probe and the
        // series recorder alike; compute them once when either wants
        // them (pure reads — skipping them cannot change the run).
        let mut window = None;
        if self.telemetry.is_some() || self.series.is_some() {
            let res = self.scheduler.reservation();
            let (a_hat, r_hat) = res.measured();
            let sample = WindowSample {
                at_us: t.0,
                theta2_star: res.theta2_star(),
                a_hat,
                r_hat,
                rho,
                theta_hat,
                clamp_events: res.clamp_events(),
            };
            let busy: Vec<f64> = self
                .monitor
                .all()
                .iter()
                .map(|l| 1.0 - l.cpu_idle_ratio)
                .collect();
            if let Some(probe) = &self.telemetry {
                probe.record_window(sample);
                probe.set_node_busy(&busy);
            }
            window = Some((sample, busy));
        }
        let window_stretch = self.metrics.close_window();
        if let Some(rec) = &mut self.series {
            let (sample, busy) = window.as_ref().expect("window computed when series is on");
            rec.record(&SeriesWindowInput {
                window: sample,
                sched: self.scheduler.telemetry(),
                node_busy: busy,
                window_stretch,
                drops: self.metrics.dropped(),
            });
        }
        if self.scheduler.tracing() {
            self.scheduler.emit(&TraceEvent::Tick {
                at_us: t.0,
                rho,
                nodes: snapshots.iter().map(NodeSample::from_snapshot).collect(),
            });
        }
        if let Some(engine) = self.slo.as_mut() {
            let alerts = engine.observe_cumulative(
                t.0,
                window_stretch,
                self.metrics.completed(),
                self.metrics.dropped(),
                self.scheduler.reservation().clamp_events(),
            );
            for alert in &alerts {
                eprintln!("{}", alert.to_line());
                if self.scheduler.tracing() {
                    self.scheduler.emit(&alert.to_trace_event());
                }
            }
        }
    }

    /// Per-monitor-window mean stretch across the run — the convergence
    /// trace of the self-stabilising reservation (§4).
    pub fn stretch_series(&self) -> &[f64] {
        self.metrics.window_series()
    }
}

/// Convert a workload demand into the OS model's spec.
fn demand_to_spec(req: &Request, config: &ClusterConfig) -> DemandSpec {
    DemandSpec {
        service: req.demand.service,
        cpu_fraction: req.demand.cpu_fraction,
        memory_pages: config.os().bytes_to_pages(req.demand.memory_bytes),
        is_cgi: req.class.is_dynamic(),
    }
}

/// Workload-derived priors and mean demands, estimated with one pass
/// over the requests — the same estimates [`policy_sim`] has always
/// made from a materialized trace, factored out so streaming callers
/// can compute them from a generation pass (O(1) memory) and get
/// bit-identical values: the summation order is the request order in
/// both paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadStats {
    /// Reservation prior `a0` (arrival ratio, clamped to [0.01, 10]).
    pub a0: f64,
    /// Reservation prior `r0` (demand ratio, clamped to [1e-4, 1]).
    pub r0: f64,
    /// Mean static service demand.
    pub static_mean: SimDuration,
    /// Mean dynamic service demand.
    pub dynamic_mean: SimDuration,
}

impl WorkloadStats {
    /// Estimate from any request stream (consumed).
    pub fn from_requests<I: IntoIterator<Item = Request>>(requests: I) -> Self {
        let (mut ds, mut nd, mut ss, mut ns) = (0.0f64, 0u64, 0.0f64, 0u64);
        for r in requests {
            if r.class.is_dynamic() {
                ds += r.demand.service.as_secs_f64();
                nd += 1;
            } else {
                ss += r.demand.service.as_secs_f64();
                ns += 1;
            }
        }
        let n = nd + ns;
        let cgi_frac = if n > 0 { nd as f64 / n as f64 } else { 0.0 };
        let arrival_ratio = if cgi_frac < 1.0 {
            cgi_frac / (1.0 - cgi_frac)
        } else {
            f64::INFINITY
        };
        let a0 = arrival_ratio.clamp(0.01, 10.0);
        let r0 = if nd > 0 && ns > 0 && ds > 0.0 {
            ((ss / ns as f64) / (ds / nd as f64)).clamp(1e-4, 1.0)
        } else {
            0.05
        };
        let static_mean = if ns > 0 {
            SimDuration::from_secs_f64(ss / ns as f64)
        } else {
            SimDuration::from_secs_f64(1.0 / 1200.0)
        };
        let dynamic_mean = if nd > 0 {
            SimDuration::from_secs_f64(ds / nd as f64)
        } else {
            static_mean
        };
        WorkloadStats {
            a0,
            r0,
            static_mean,
            dynamic_mean,
        }
    }

    /// Estimate from a materialized trace (not consumed).
    pub fn from_trace(trace: &Trace) -> Self {
        WorkloadStats::from_requests(trace.requests.iter().copied())
    }
}

/// Options for one simulated run: the builder-style entry point that
/// replaced the `run_policy` / `run_policy_with_observer` /
/// `run_policy_telemetry` triplet.
///
/// ```
/// use msweb_cluster::{simulate, ClusterConfig, PolicyKind, RunOptions};
/// use msweb_workload::{ucb, DemandModel};
///
/// let trace = ucb()
///     .generate(500, &DemandModel::simulation(40.0), 1)
///     .scaled_to_rate(100.0);
/// let outcome = simulate(
///     ClusterConfig::simulation(8, PolicyKind::Flat),
///     &trace,
///     RunOptions::new(),
/// );
/// assert_eq!(outcome.summary.completed, 500);
/// assert!(outcome.summary.stretch >= 1.0);
/// assert!(outcome.telemetry.is_none());
/// ```
#[derive(Default)]
pub struct RunOptions {
    /// Per-decision observer (e.g. a [`crate::sched::JsonlSink`] backing
    /// `--trace-decisions`), installed on the scheduler before replay.
    pub observer: Option<Box<dyn DecisionObserver>>,
    /// Enable telemetry collection; the snapshot comes back in
    /// [`RunOutcome::telemetry`].
    pub telemetry: bool,
    /// What the scheduler is told about each request's demand; defaults
    /// to [`DemandVisibility::Exact`] (the paper's regime).
    pub visibility: DemandVisibility,
    /// Windowed time-series recorder (one JSONL record per monitor
    /// tick), streamed to its sink during the run and handed back in
    /// [`RunOutcome::series`].
    pub series: Option<SeriesRecorder>,
    /// SLO burn-rate rules evaluated at every monitor tick; the engine
    /// comes back in [`RunOutcome::slo`].
    pub slo: Option<SloEngine>,
}

impl RunOptions {
    /// No observer, no telemetry, exact demand visibility.
    pub fn new() -> Self {
        RunOptions::default()
    }

    /// Install a per-decision observer (builder style).
    pub fn observer(mut self, observer: Box<dyn DecisionObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Enable telemetry collection (builder style).
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Choose the demand-visibility regime (builder style).
    pub fn visibility(mut self, visibility: DemandVisibility) -> Self {
        self.visibility = visibility;
        self
    }

    /// Attach a windowed time-series recorder (builder style).
    pub fn series(mut self, recorder: SeriesRecorder) -> Self {
        self.series = Some(recorder);
        self
    }

    /// Attach SLO burn-rate rules (builder style).
    pub fn slo(mut self, engine: SloEngine) -> Self {
        self.slo = Some(engine);
        self
    }
}

/// What one simulated run produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// The run summary.
    pub summary: RunSummary,
    /// The telemetry snapshot, when [`RunOptions::telemetry`] was set.
    pub telemetry: Option<TelemetrySnapshot>,
    /// The series recorder, flushed, when [`RunOptions::series`] was
    /// set (e.g. to read [`SeriesRecorder::records`]).
    pub series: Option<SeriesRecorder>,
    /// The SLO engine after the run, when [`RunOptions::slo`] was set
    /// (e.g. to read [`SloEngine::alerts_fired`]).
    pub slo: Option<SloEngine>,
}

/// Run one policy over a materialized trace with priors estimated from
/// the trace itself. See [`RunOptions`] for the observer/telemetry
/// switches; use [`simulate_source`] to stream workloads too long to
/// materialize.
pub fn simulate(config: ClusterConfig, trace: &Trace, opts: RunOptions) -> RunOutcome {
    let stats = WorkloadStats::from_trace(trace);
    simulate_source(config, trace.source(), stats, opts)
}

/// Run one policy over a streaming [`RequestSource`]. The caller
/// supplies [`WorkloadStats`] (from a measuring pass or analytically);
/// peak memory is O(in-flight requests) regardless of stream length.
pub fn simulate_source<S: RequestSource>(
    config: ClusterConfig,
    source: S,
    stats: WorkloadStats,
    opts: RunOptions,
) -> RunOutcome {
    let mut sim = policy_sim_from_stats(config, stats).with_visibility(opts.visibility);
    if opts.observer.is_some() {
        sim.scheduler_mut().set_observer(opts.observer);
    }
    if opts.telemetry {
        sim = sim.with_telemetry();
    }
    if let Some(recorder) = opts.series {
        sim = sim.with_series(recorder);
    }
    if let Some(engine) = opts.slo {
        sim = sim.with_slo(engine);
    }
    let summary = sim.run_source(source);
    let telemetry = if opts.telemetry {
        sim.telemetry_snapshot()
    } else {
        None
    };
    let series = sim.take_series();
    let slo = sim.slo.take();
    RunOutcome {
        summary,
        telemetry,
        series,
        slo,
    }
}

/// Build the [`ClusterSim`] that [`simulate`] would run: reservation
/// priors and mean class demands are estimated from `trace` itself.
/// Exposed so callers can install an observer or enable telemetry
/// before the replay while keeping the same estimation logic.
pub fn policy_sim(config: ClusterConfig, trace: &Trace) -> ClusterSim<PolicyScheduler> {
    policy_sim_from_stats(config, WorkloadStats::from_trace(trace))
}

/// Build the [`ClusterSim`] that [`simulate_source`] would run from
/// pre-computed workload stats.
pub fn policy_sim_from_stats(
    config: ClusterConfig,
    stats: WorkloadStats,
) -> ClusterSim<PolicyScheduler> {
    ClusterSim::new(config, stats.a0, stats.r0)
        .with_mean_demands(stats.static_mean, stats.dynamic_mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msweb_workload::{ksu, ucb, DemandModel};

    fn small_trace(n: usize, inv_r: f64, lambda: f64) -> Trace {
        ucb()
            .generate(n, &DemandModel::simulation(inv_r), 42)
            .scaled_to_rate(lambda)
    }

    fn run_summary(config: ClusterConfig, trace: &Trace) -> RunSummary {
        simulate(config, trace, RunOptions::new()).summary
    }

    #[test]
    fn flat_run_completes_every_request() {
        let trace = small_trace(500, 20.0, 200.0);
        let cfg = ClusterConfig::simulation(8, PolicyKind::Flat);
        let s = run_summary(cfg, &trace);
        assert_eq!(s.completed, 500);
        assert!(s.stretch >= 1.0, "stretch {}", s.stretch);
    }

    #[test]
    fn ms_run_completes_every_request() {
        let trace = small_trace(500, 20.0, 200.0);
        let cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave).with_masters(3);
        let s = run_summary(cfg, &trace);
        assert_eq!(s.completed, 500);
        assert!(s.stretch >= 1.0);
        // Static work exists and was measured.
        assert!(s.stretch_static >= 1.0);
        assert!(s.stretch_dynamic >= 1.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let trace = small_trace(300, 40.0, 150.0);
        let run = || {
            let cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave).with_masters(2);
            run_summary(cfg, &trace)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn streamed_source_matches_materialized_run() {
        let trace = small_trace(400, 40.0, 250.0);
        let cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave).with_masters(3);
        let materialized = simulate(cfg.clone(), &trace, RunOptions::new()).summary;
        let stats = WorkloadStats::from_trace(&trace);
        let streamed =
            simulate_source(cfg, trace.clone().into_source(), stats, RunOptions::new()).summary;
        assert_eq!(materialized, streamed);
    }

    #[test]
    fn tick_workers_do_not_change_the_summary() {
        let trace = small_trace(600, 40.0, 300.0);
        let run_with = |workers: usize| {
            let cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave).with_masters(3);
            let mut sim = policy_sim(cfg, &trace).with_tick_workers(workers);
            sim.run(&trace)
        };
        let sequential = run_with(1);
        for workers in [2, 4, 0] {
            assert_eq!(sequential, run_with(workers), "workers={workers}");
        }
    }

    #[test]
    fn light_load_stretch_near_one() {
        // A nearly idle cluster: responses ~ demands.
        let trace = small_trace(100, 20.0, 5.0);
        let cfg = ClusterConfig::simulation(8, PolicyKind::Flat);
        let s = run_summary(cfg, &trace);
        assert!(
            s.stretch < 1.6,
            "idle cluster should have stretch near 1, got {}",
            s.stretch
        );
    }

    #[test]
    fn heavier_load_increases_stretch() {
        let light = run_summary(
            ClusterConfig::simulation(8, PolicyKind::Flat),
            &small_trace(400, 40.0, 50.0),
        );
        let heavy = run_summary(
            ClusterConfig::simulation(8, PolicyKind::Flat),
            &small_trace(400, 40.0, 400.0),
        );
        assert!(
            heavy.stretch > light.stretch,
            "heavy {} <= light {}",
            heavy.stretch,
            light.stretch
        );
    }

    #[test]
    fn ms_beats_no_reservation_under_pressure() {
        // KSU-like mix at meaningful load on a small cluster.
        let trace = ksu()
            .generate(1500, &DemandModel::simulation(40.0), 7)
            .scaled_to_rate(250.0);
        let ms_cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave).with_masters(4);
        let ms = run_summary(ms_cfg, &trace);
        let nr_cfg = ClusterConfig::simulation(8, PolicyKind::MsNoReservation).with_masters(4);
        let nr = run_summary(nr_cfg, &trace);
        assert!(
            ms.stretch <= nr.stretch * 1.05,
            "M/S {} should not lose to M/S-nr {}",
            ms.stretch,
            nr.stretch
        );
    }

    #[test]
    fn window_series_tracks_the_run() {
        let trace = small_trace(2_000, 40.0, 300.0);
        let cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave).with_masters(3);
        let mut sim = ClusterSim::new(cfg, 0.13, 1.0 / 40.0);
        sim.run(&trace);
        let series = sim.stretch_series();
        assert!(
            series.len() >= 3,
            "expected several windows, got {}",
            series.len()
        );
        assert!(series.iter().all(|&s| s >= 0.99));
        // The self-stabilising controller should not leave the tail of
        // the run dramatically worse than its head.
        let head: f64 = series[..series.len() / 2].iter().sum::<f64>() / (series.len() / 2) as f64;
        let tail: f64 = series[series.len() / 2..].iter().sum::<f64>()
            / (series.len() - series.len() / 2) as f64;
        assert!(
            tail <= head * 3.0,
            "run diverging: head {head}, tail {tail}"
        );
    }

    #[test]
    fn content_cache_serves_repeated_queries() {
        use msweb_workload::adl;
        // Heavy query popularity: a handful of hot queries dominate.
        let demand = DemandModel::simulation(40.0).with_query_popularity(20, 1.1);
        let trace = adl().generate(3_000, &demand, 13).scaled_to_rate(400.0);

        let base = ClusterConfig::simulation(8, PolicyKind::MasterSlave).with_masters(3);
        let uncached = run_summary(base.clone(), &trace);
        assert_eq!(uncached.cache_hits, 0);

        let cached_cfg = base.with_cache(crate::cache::CacheConfig::default_swala());
        let mut sim = ClusterSim::new(cached_cfg, 0.8, 1.0 / 40.0);
        let cached = sim.run(&trace);
        let (hits, misses, _, _) = sim.cache_stats().unwrap();
        assert!(hits > 0, "hot queries must hit");
        assert_eq!(cached.cache_hits, hits);
        assert_eq!(hits + misses, cached.completed_dynamic);
        // Offloading repeated CGI work must help overall.
        assert!(
            cached.stretch <= uncached.stretch,
            "cached {} vs uncached {}",
            cached.stretch,
            uncached.stretch
        );
    }

    #[test]
    fn failure_drops_or_restarts_everything() {
        let trace = small_trace(400, 20.0, 200.0);
        let cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave).with_masters(3);
        let mut sim = ClusterSim::new(cfg, 0.13, 0.05)
            .with_failures(FailurePlan::crash(5, SimTime::from_millis(500)));
        let s = sim.run(&trace);
        // Everything is accounted: completed + dropped = total.
        assert_eq!(s.completed + s.dropped, 400);
        // A slave died mid-run with restart enabled; if it held dynamic
        // work, restarts happened.
        assert!(s.dropped == 0 || s.restarted > 0 || s.dropped > 0);
    }

    #[test]
    fn failed_node_receives_nothing_after_crash() {
        let trace = small_trace(300, 20.0, 300.0);
        let cfg = ClusterConfig::simulation(4, PolicyKind::Flat).with_seed(9);
        let mut sim = ClusterSim::new(cfg, 0.13, 0.05)
            .with_failures(FailurePlan::crash(3, SimTime::from_millis(100)));
        let s = sim.run(&trace);
        assert_eq!(s.completed + s.dropped, 300);
    }

    #[test]
    fn recovery_restores_the_node() {
        let trace = small_trace(600, 20.0, 200.0);
        let cfg = ClusterConfig::simulation(4, PolicyKind::Flat).with_seed(11);
        let plan = FailurePlan::new(vec![crate::failure::FailureEvent {
            at: SimTime::from_millis(200),
            node: 2,
            restart_dynamic: true,
            recover_at: Some(SimTime::from_millis(700)),
        }]);
        let mut sim = ClusterSim::new(cfg, 0.13, 0.05).with_failures(plan);
        let s = sim.run(&trace);
        assert_eq!(s.completed + s.dropped, 600);
    }

    #[test]
    fn whole_cluster_death_drops_instead_of_panicking() {
        let trace = small_trace(300, 20.0, 400.0);
        let cfg = ClusterConfig::simulation(2, PolicyKind::Flat).with_seed(3);
        let plan = FailurePlan::new(
            (0..2)
                .map(|node| crate::failure::FailureEvent {
                    at: SimTime::from_millis(100),
                    node,
                    restart_dynamic: false,
                    recover_at: None,
                })
                .collect(),
        );
        let mut sim = ClusterSim::new(cfg, 0.13, 0.05).with_failures(plan);
        let s = sim.run(&trace);
        assert_eq!(s.completed + s.dropped, 300);
        assert!(
            s.dropped > 0,
            "arrivals after total failure must be dropped"
        );
    }
}
