//! Failure injection (the Section 2 motivation for the M/S design):
//! "If a slave node fails, a master node may need to restart a dynamic
//! content process on another node."
//!
//! A [`FailurePlan`] schedules node crashes and optional recoveries into
//! a simulation run. When a node dies, its in-flight requests are lost;
//! dynamic requests are restarted on another node after a detection delay
//! (one monitor period — the sub-second failure detection the paper
//! attributes to load-balancing switches), while requests that cannot be
//! restarted are counted as dropped.

use msweb_simcore::SimTime;

/// One scheduled node crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureEvent {
    /// When the node dies.
    pub at: SimTime,
    /// Which node dies.
    pub node: usize,
    /// Whether lost dynamic requests are restarted elsewhere.
    pub restart_dynamic: bool,
    /// When (if ever) the node rejoins the eligible set.
    pub recover_at: Option<SimTime>,
}

/// A time-sorted crash schedule.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    events: Vec<FailureEvent>,
}

impl FailurePlan {
    /// No failures.
    pub fn none() -> Self {
        FailurePlan::default()
    }

    /// Build from arbitrary events (sorted internally).
    pub fn new(mut events: Vec<FailureEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        for e in &events {
            if let Some(r) = e.recover_at {
                assert!(r > e.at, "recovery must follow the crash");
            }
        }
        FailurePlan { events }
    }

    /// Crash `node` at `at` with dynamic-restart enabled and no recovery.
    pub fn crash(node: usize, at: SimTime) -> Self {
        FailurePlan::new(vec![FailureEvent {
            at,
            node,
            restart_dynamic: true,
            recover_at: None,
        }])
    }

    /// All events, time-sorted.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// True when the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_sorted_by_time() {
        let plan = FailurePlan::new(vec![
            FailureEvent {
                at: SimTime::from_secs(5),
                node: 1,
                restart_dynamic: true,
                recover_at: None,
            },
            FailureEvent {
                at: SimTime::from_secs(2),
                node: 0,
                restart_dynamic: false,
                recover_at: Some(SimTime::from_secs(10)),
            },
        ]);
        assert_eq!(plan.events()[0].node, 0);
        assert_eq!(plan.events()[1].node, 1);
    }

    #[test]
    #[should_panic(expected = "recovery must follow the crash")]
    fn recovery_before_crash_rejected() {
        FailurePlan::new(vec![FailureEvent {
            at: SimTime::from_secs(5),
            node: 0,
            restart_dynamic: true,
            recover_at: Some(SimTime::from_secs(1)),
        }]);
    }

    #[test]
    fn helpers() {
        assert!(FailurePlan::none().is_empty());
        let c = FailurePlan::crash(3, SimTime::from_secs(1));
        assert_eq!(c.events().len(), 1);
        assert!(c.events()[0].restart_dynamic);
    }
}
