//! Reservation-based admission of dynamic work on masters (§4).
//!
//! The paper: "Ideally, the percentage of dynamic content requests
//! processed at masters should be θm from Theorem 1", with the analytic
//! upper bound θ2 as the enforced limit θ2*. This controller computes the
//! operating cap from Theorem 1 evaluated with *measured* quantities —
//! `â` from windowed arrival counts, `r̂` from the ratio of mean static
//! to dynamic response times (the paper's compromise, since true service
//! rates are hard to estimate online), and `ρ̂` from the monitor's busy
//! counters. Because Theorem 1's interval is scale-free given `(a, r, ρ)`,
//! the cap needs no absolute rate estimates:
//!
//! * normal load → `θm = max((θ1+θ2)/2, 0)` is typically **zero**: masters
//!   accept no dynamic work and statics stay fast;
//! * near saturation → `θ1` rises above zero and the cap opens, letting
//!   masters absorb overflow — the paper's "dynamically recruit idle
//!   resources in handling peak load";
//! * flat-unstable load → the cap falls back to the upper bound `θ2`.
//!
//! The adjustment is self-stabilising (§4): admitting too much dynamic
//! work onto masters slows static requests, raising `r̂`, which lowers
//! the cap and sheds the dynamic work again.

use msweb_queueing::{reservation_bound, MsModel, Workload};
use msweb_simcore::SimDuration;

/// Compute the admission cap from measured ratios and utilisation.
///
/// `rho` is the mean per-node utilisation (offered Erlangs / p). The cap
/// is Theorem 1's `θm` for the implied (scale-free) workload, opened up
/// to `θ2` when the flat model would be unstable.
pub fn admission_cap(m: usize, p: usize, a: f64, r: f64, rho: f64) -> f64 {
    admission_cap_reasoned(m, p, a, r, rho).0
}

/// [`admission_cap`] plus whether a clamp fired: the returned flag is
/// true whenever the cap was *forced* — Theorem 1's midpoint fell
/// outside `[0, θ2]`, degenerate measurements closed the cap, or
/// flat-instability opened it to the analytic bound. `admission_cap`
/// itself is this function's first component, byte for byte.
pub fn admission_cap_reasoned(m: usize, p: usize, a: f64, r: f64, rho: f64) -> (f64, bool) {
    assert!(m >= 1 && m <= p, "bad m={m}, p={p}");
    if m == p {
        // Structural, not a clamp: an all-masters cluster has no slaves
        // to reserve for.
        return (1.0, false);
    }
    if !(a.is_finite() && a > 0.0 && r.is_finite() && r > 0.0) {
        return (0.0, true);
    }
    let theta2 = reservation_bound(m, p, a, r);
    if rho.is_nan() || rho <= 0.0 {
        return (0.0, true);
    }
    if rho >= 1.0 {
        // Offered load exceeds the cluster: beat-flat is vacuous; allow
        // masters to absorb up to the analytic upper bound. The bound is
        // a *cap fraction*, so clamp it to [0, 1] like the normal path
        // rather than letting an extreme (a, r) corner leak through.
        return (theta2.clamp(0.0, 1.0), true);
    }
    // Scale-free reconstruction: set mu_h = 1; offered = rho * p Erlangs.
    let offered = rho * p as f64;
    let lambda_h = offered / (1.0 + a / r);
    let Ok(w) = Workload::new(lambda_h, a * lambda_h, 1.0, r) else {
        return (0.0, true);
    };
    let Ok(model) = MsModel::new(w, p, m) else {
        return (0.0, true);
    };
    match model.theta_interval() {
        Ok(iv) => {
            // theta_mid() already clamps at zero; recover the raw root
            // midpoint to tell "free" from "forced to the edge".
            let raw = (iv.theta1 + iv.theta2) / 2.0;
            let hi = theta2.max(0.0);
            (iv.theta_mid().clamp(0.0, hi), !(0.0..=hi).contains(&raw))
        }
        Err(_) => (theta2.clamp(0.0, 1.0), true),
    }
}

/// Sliding-window reservation controller.
#[derive(Debug, Clone)]
pub struct ReservationController {
    /// Master count used in the bound.
    m: usize,
    /// Cluster size used in the bound.
    p: usize,
    /// Whether the reservation is enforced (false = the M/S-nr ablation).
    pub enforce: bool,
    /// Current admission cap (θm*, opened towards θ2* under overload).
    cap: f64,
    // -- measurement window (reset at every update) --
    arrivals_static: u64,
    arrivals_dynamic: u64,
    resp_static_sum: f64,
    resp_static_n: u64,
    resp_dynamic_sum: f64,
    resp_dynamic_n: u64,
    // -- admission window --
    dyn_to_masters: u64,
    dyn_total: u64,
    // -- smoothed measurements (EWMA across windows) --
    a_hat: f64,
    r_hat: f64,
    rho_hat: f64,
    // -- telemetry: cap recomputations where a clamp fired --
    clamp_events: u64,
}

/// EWMA weight for new window measurements.
const ALPHA: f64 = 0.3;

impl ReservationController {
    /// Create for a cluster with `m` masters out of `p`, starting from a
    /// prior guess of the workload ratios (used until real measurements
    /// arrive). The utilisation prior is 0.5.
    pub fn new(m: usize, p: usize, a0: f64, r0: f64, enforce: bool) -> Self {
        assert!(m >= 1 && m <= p, "bad m={m}, p={p}");
        let a_hat = if a0.is_finite() && a0 > 0.0 { a0 } else { 0.5 };
        let r_hat = if r0.is_finite() && r0 > 0.0 { r0 } else { 0.05 };
        let rho_hat = 0.5;
        ReservationController {
            m,
            p,
            enforce,
            cap: admission_cap(m, p, a_hat, r_hat, rho_hat),
            arrivals_static: 0,
            arrivals_dynamic: 0,
            resp_static_sum: 0.0,
            resp_static_n: 0,
            resp_dynamic_sum: 0.0,
            resp_dynamic_n: 0,
            dyn_to_masters: 0,
            dyn_total: 0,
            a_hat,
            r_hat,
            rho_hat,
            clamp_events: 0,
        }
    }

    /// The current admission cap.
    pub fn theta2_star(&self) -> f64 {
        self.cap
    }

    /// The smoothed measured ratios `(â, r̂)`.
    pub fn measured(&self) -> (f64, f64) {
        (self.a_hat, self.r_hat)
    }

    /// The smoothed measured utilisation `ρ̂`.
    pub fn measured_rho(&self) -> f64 {
        self.rho_hat
    }

    /// How many [`ReservationController::update`] calls so far clamped
    /// the cap (see [`admission_cap_reasoned`] for what counts). The
    /// light-load clamp-to-zero is the *expected* steady state, so a
    /// high count is normal; a telemetry series of this counter shows
    /// when the controller left free-running midpoint territory.
    pub fn clamp_events(&self) -> u64 {
        self.clamp_events
    }

    /// Record an arriving request (class mix measurement).
    pub fn note_arrival(&mut self, dynamic: bool) {
        if dynamic {
            self.arrivals_dynamic += 1;
        } else {
            self.arrivals_static += 1;
        }
    }

    /// Record a completed request's server-site response time.
    pub fn note_response(&mut self, dynamic: bool, response: SimDuration) {
        let r = response.as_secs_f64();
        if dynamic {
            self.resp_dynamic_sum += r;
            self.resp_dynamic_n += 1;
        } else {
            self.resp_static_sum += r;
            self.resp_static_n += 1;
        }
    }

    /// May the next dynamic request be placed on a master? True when the
    /// windowed master-local fraction is below the cap (always true when
    /// not enforcing).
    pub fn master_eligible(&self) -> bool {
        if !self.enforce {
            return true;
        }
        if self.dyn_total == 0 {
            return self.cap > 0.0;
        }
        (self.dyn_to_masters as f64) < self.cap * self.dyn_total as f64
    }

    /// Record the placement the dispatcher actually made for a dynamic
    /// request.
    pub fn note_placement(&mut self, on_master: bool) {
        self.dyn_total += 1;
        if on_master {
            self.dyn_to_masters += 1;
        }
    }

    /// The fraction of windowed dynamic requests placed on masters.
    pub fn master_fraction(&self) -> f64 {
        if self.dyn_total == 0 {
            0.0
        } else {
            self.dyn_to_masters as f64 / self.dyn_total as f64
        }
    }

    /// Periodic update (at each monitor tick): fold the window's
    /// measurements into the smoothed ratios, recompute the cap, reset
    /// the window. `rho` is the monitor's mean per-node utilisation over
    /// the window.
    pub fn update(&mut self, rho: f64) {
        if rho.is_finite() && rho >= 0.0 {
            self.rho_hat = (1.0 - ALPHA) * self.rho_hat + ALPHA * rho.min(2.0);
        }
        if self.arrivals_static > 0 && self.arrivals_dynamic > 0 {
            let a_win = self.arrivals_dynamic as f64 / self.arrivals_static as f64;
            self.a_hat = (1.0 - ALPHA) * self.a_hat + ALPHA * a_win;
        }
        if self.resp_static_n > 0 && self.resp_dynamic_n > 0 {
            let rs = self.resp_static_sum / self.resp_static_n as f64;
            let rd = self.resp_dynamic_sum / self.resp_dynamic_n as f64;
            if rd > 0.0 {
                // r = mu_c/mu_h ~ (static response)/(dynamic response):
                // responses scale with demands under equal stretch.
                let r_win = (rs / rd).clamp(1e-4, 1.0);
                self.r_hat = (1.0 - ALPHA) * self.r_hat + ALPHA * r_win;
            }
        }
        let (cap, clamped) =
            admission_cap_reasoned(self.m, self.p, self.a_hat, self.r_hat, self.rho_hat);
        self.cap = cap;
        if clamped {
            self.clamp_events += 1;
        }
        self.arrivals_static = 0;
        self.arrivals_dynamic = 0;
        self.resp_static_sum = 0.0;
        self.resp_static_n = 0;
        self.resp_dynamic_sum = 0.0;
        self.resp_dynamic_n = 0;
        self.dyn_to_masters = 0;
        self.dyn_total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_zero_under_light_load() {
        // Comfortably stable cluster: theta_m clamps to zero — masters
        // are fully reserved for statics.
        let cap = admission_cap(9, 32, 0.126, 1.0 / 80.0, 0.5);
        assert_eq!(cap, 0.0);
    }

    #[test]
    fn cap_opens_near_saturation() {
        let light = admission_cap(9, 32, 0.126, 1.0 / 80.0, 0.5);
        let heavy = admission_cap(9, 32, 0.126, 1.0 / 80.0, 0.78);
        assert!(
            heavy > light,
            "cap should open with load: {light} -> {heavy}"
        );
        assert!(heavy <= reservation_bound(9, 32, 0.126, 1.0 / 80.0) + 1e-12);
    }

    #[test]
    fn cap_falls_back_to_theta2_when_flat_unstable() {
        let cap = admission_cap(9, 32, 0.126, 1.0 / 80.0, 1.2);
        let theta2 = reservation_bound(9, 32, 0.126, 1.0 / 80.0);
        assert!((cap - theta2).abs() < 1e-12);
    }

    #[test]
    fn cap_bounded_by_theta2_everywhere() {
        // Sweep the full (m, p, a, r) corner space — including extreme
        // ratios that stress theta_interval()'s error paths and the
        // rho >= 1.0 fallback — and require the cap to stay a valid
        // fraction bounded by the clamped analytic bound on every path.
        for (m, p) in [(1, 2), (6, 32), (9, 32), (31, 32), (1, 1024)] {
            for (a, r) in [
                (0.126, 1.0 / 80.0),
                (0.44, 1.0 / 60.0),
                (1e-6, 1e-4),
                (50.0, 1.0),
                (1e6, 1e-4),
                (0.01, 1.0),
            ] {
                for rho in [1e-9, 0.1, 0.3, 0.5, 0.7, 0.85, 0.95, 0.999, 1.0, 1.5, 100.0] {
                    let cap = admission_cap(m, p, a, r, rho);
                    let theta2 = reservation_bound(m, p, a, r);
                    assert!(
                        (0.0..=1.0).contains(&cap),
                        "m={m} p={p} a={a} r={r} rho={rho}: cap {cap} out of [0,1]"
                    );
                    assert!(
                        cap <= theta2.clamp(0.0, 1.0) + 1e-12,
                        "m={m} p={p} a={a} r={r} rho={rho}: cap {cap} > theta2 {theta2}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_masters_cap_is_one() {
        assert_eq!(admission_cap(32, 32, 0.2, 0.02, 0.5), 1.0);
    }

    #[test]
    fn reasoned_cap_matches_plain_and_flags_clamps() {
        for (m, p) in [(1, 2), (6, 32), (9, 32), (31, 32)] {
            for rho in [1e-9, 0.3, 0.5, 0.78, 0.95, 1.0, 1.5] {
                let plain = admission_cap(m, p, 0.126, 1.0 / 80.0, rho);
                let (cap, _) = admission_cap_reasoned(m, p, 0.126, 1.0 / 80.0, rho);
                assert_eq!(plain.to_bits(), cap.to_bits(), "m={m} p={p} rho={rho}");
            }
        }
        // Light load clamps the midpoint to zero; flat instability is a
        // clamp to theta2; all-masters is structural, not a clamp.
        assert!(admission_cap_reasoned(9, 32, 0.126, 1.0 / 80.0, 0.5).1);
        assert!(admission_cap_reasoned(9, 32, 0.126, 1.0 / 80.0, 1.2).1);
        assert_eq!(admission_cap_reasoned(32, 32, 0.2, 0.02, 0.5), (1.0, false));
    }

    #[test]
    fn controller_counts_clamp_events() {
        let mut c = ReservationController::new(9, 32, 0.126, 1.0 / 80.0, true);
        assert_eq!(c.clamp_events(), 0);
        // Light load: every window clamps the negative midpoint to zero.
        for _ in 0..5 {
            c.update(0.3);
        }
        assert_eq!(c.clamp_events(), 5);
    }

    #[test]
    fn degenerate_measurements_close_the_cap() {
        assert_eq!(admission_cap(8, 32, 0.0, 0.02, 0.5), 0.0);
        assert_eq!(admission_cap(8, 32, f64::NAN, 0.02, 0.5), 0.0);
        assert_eq!(admission_cap(8, 32, 0.2, 0.02, 0.0), 0.0);
    }

    #[test]
    fn admission_respects_cap_fraction() {
        let mut c = ReservationController::new(9, 32, 0.126, 1.0 / 80.0, true);
        // Drive utilisation up so the cap opens.
        for _ in 0..20 {
            c.update(0.85);
        }
        let cap = c.theta2_star();
        assert!(cap > 0.0, "cap should open at rho 0.85");
        let mut admitted = 0;
        for _ in 0..2000 {
            let ok = c.master_eligible();
            c.note_placement(ok);
            if ok {
                admitted += 1;
            }
        }
        let frac = admitted as f64 / 2000.0;
        assert!(
            (frac - cap).abs() < 0.02,
            "admitted fraction {frac} should track cap {cap}"
        );
    }

    #[test]
    fn disabled_enforcement_always_admits() {
        let mut c = ReservationController::new(8, 32, 0.25, 0.025, false);
        for _ in 0..100 {
            assert!(c.master_eligible());
            c.note_placement(true);
        }
    }

    #[test]
    fn closed_cap_blocks_masters() {
        let mut c = ReservationController::new(9, 32, 0.126, 1.0 / 80.0, true);
        c.update(0.3);
        assert_eq!(c.theta2_star(), 0.0);
        assert!(!c.master_eligible());
        c.note_placement(false);
        assert!(!c.master_eligible());
    }

    #[test]
    fn slow_static_responses_lower_the_cap() {
        // Start from a high-load state where the cap is open.
        let mut c = ReservationController::new(6, 32, 0.44, 1.0 / 60.0, true);
        for _ in 0..20 {
            c.update(0.9);
        }
        let before = c.theta2_star();
        assert!(before > 0.0, "precondition: open cap, got {before}");
        // Static responses degrade to the dynamic scale (masters
        // overloaded): r_hat rises; theta falls since d(cap)/d(r/a) < 0.
        for _ in 0..50 {
            c.note_arrival(false);
            c.note_response(false, SimDuration::from_millis(40));
            c.note_arrival(true);
            c.note_response(true, SimDuration::from_millis(40));
        }
        c.update(0.9);
        assert!(
            c.theta2_star() < before,
            "cap should fall when statics slow: {} -> {}",
            before,
            c.theta2_star()
        );
    }

    #[test]
    fn self_stabilisation_converges() {
        // Feedback loop mimicking §4's argument: the measured response
        // ratio reflects how much dynamic work the masters admitted last
        // round. Whatever the initial r prior, the cap converges.
        let run = |r0: f64| {
            let mut c = ReservationController::new(6, 32, 0.44, r0, true);
            let mut last = 0.0;
            for _ in 0..60 {
                let theta = c.theta2_star();
                let static_resp = 1.0 / 1200.0 * (1.0 + 4.0 * theta);
                let dynamic_resp = 60.0 / 1200.0;
                for _ in 0..20 {
                    c.note_arrival(false);
                    c.note_response(false, SimDuration::from_secs_f64(static_resp));
                }
                for _ in 0..9 {
                    c.note_arrival(true);
                    c.note_response(true, SimDuration::from_secs_f64(dynamic_resp));
                }
                c.update(0.85);
                last = c.theta2_star();
            }
            last
        };
        let from_low = run(0.005);
        let from_high = run(0.5);
        assert!(
            (from_low - from_high).abs() < 0.02,
            "cap should converge regardless of prior: {from_low} vs {from_high}"
        );
    }

    #[test]
    fn measured_ratios_track_arrivals() {
        let mut c = ReservationController::new(8, 32, 0.25, 0.025, true);
        for _ in 0..300 {
            c.note_arrival(true);
        }
        for _ in 0..100 {
            c.note_arrival(false);
        }
        c.update(0.5);
        let (a, _) = c.measured();
        assert!(a > 0.25, "a_hat should have moved towards 3: {a}");
        assert!((c.measured_rho() - 0.5).abs() < 0.2);
    }
}
