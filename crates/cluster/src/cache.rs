//! Dynamic-content caching (the Swala extension).
//!
//! The testbed the paper builds on is the authors' Swala server with
//! "cooperative caching of dynamic content"; §6 notes "a simple extension
//! to consider caching in our scheme can be incorporated". This module is
//! that extension: a cluster-wide (cooperative) cache of generated CGI
//! results keyed by query identity. A hit turns a resource-intensive CGI
//! request into a cheap fetch served at the entry master; a miss runs the
//! full CGI and installs the result on completion.
//!
//! The cache is TTL-bounded ("caching for dynamic content is possible if
//! content is not changed frequently") and capacity-bounded with LRU
//! eviction.

use std::collections::HashMap;

use msweb_simcore::{SimDuration, SimTime};

/// Configuration of the dynamic-content cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Maximum number of cached results.
    pub capacity: usize,
    /// Freshness lifetime of a cached result.
    pub ttl: SimDuration,
    /// Service demand of serving a hit (a memory fetch plus transfer —
    /// static-fetch scale, not CGI scale).
    pub hit_service: SimDuration,
    /// CPU fraction of the hit service.
    pub hit_cpu_fraction: f64,
}

impl CacheConfig {
    /// A sensible default: 10 000 entries, 60 s TTL, hits cost one static
    /// fetch (1/1200 s, CPU-dominated).
    pub fn default_swala() -> Self {
        CacheConfig {
            capacity: 10_000,
            ttl: SimDuration::from_secs(60),
            hit_service: SimDuration::from_secs_f64(1.0 / 1200.0),
            hit_cpu_fraction: 0.8,
        }
    }
}

/// One cached entry's bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// When the result was generated (freshness anchor).
    generated: SimTime,
    /// Last access (LRU anchor).
    last_used: SimTime,
}

/// A cluster-wide cache of generated dynamic content.
#[derive(Debug)]
pub struct DynContentCache {
    config: CacheConfig,
    entries: HashMap<u64, Entry>,
    hits: u64,
    misses: u64,
    expirations: u64,
    evictions: u64,
}

impl DynContentCache {
    /// An empty cache.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.capacity > 0, "cache capacity must be positive");
        assert!(!config.ttl.is_zero(), "cache TTL must be positive");
        DynContentCache {
            config,
            entries: HashMap::with_capacity(config.capacity.min(1 << 16)),
            hits: 0,
            misses: 0,
            expirations: 0,
            evictions: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Look up `key` at time `now`, counting the outcome. A fresh entry
    /// refreshes its LRU position and returns true; a stale entry is
    /// dropped and counted as an expiration.
    pub fn lookup(&mut self, key: u64, now: SimTime) -> bool {
        match self.entries.get_mut(&key) {
            Some(e) if now.since(e.generated) <= self.config.ttl => {
                e.last_used = now;
                self.hits += 1;
                true
            }
            Some(_) => {
                self.entries.remove(&key);
                self.expirations += 1;
                self.misses += 1;
                false
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Install a freshly generated result (on CGI completion), evicting
    /// the least-recently-used entry if full.
    pub fn insert(&mut self, key: u64, now: SimTime) {
        if self.entries.len() >= self.config.capacity && !self.entries.contains_key(&key) {
            // Evict the LRU entry. Linear scan: capacities in the
            // experiments are small relative to run length, and the scan
            // only runs when the cache is full.
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, e)| e.last_used) {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                generated: now,
                last_used: now,
            },
        );
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses, expirations, evictions)` counters.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (self.hits, self.misses, self.expirations, self.evictions)
    }

    /// Hit ratio over all lookups so far (0 when none).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize, ttl_s: u64) -> DynContentCache {
        DynContentCache::new(CacheConfig {
            capacity,
            ttl: SimDuration::from_secs(ttl_s),
            hit_service: SimDuration::from_millis(1),
            hit_cpu_fraction: 0.8,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache(10, 60);
        assert!(!c.lookup(1, SimTime::from_secs(0)));
        c.insert(1, SimTime::from_secs(0));
        assert!(c.lookup(1, SimTime::from_secs(10)));
        assert_eq!(c.stats(), (1, 1, 0, 0));
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ttl_expires_entries() {
        let mut c = cache(10, 60);
        c.insert(1, SimTime::from_secs(0));
        assert!(
            c.lookup(1, SimTime::from_secs(60)),
            "exactly at TTL is fresh"
        );
        assert!(!c.lookup(1, SimTime::from_secs(61)), "past TTL is stale");
        let (_, _, exp, _) = c.stats();
        assert_eq!(exp, 1);
        assert!(c.is_empty(), "stale entry must be dropped");
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut c = cache(3, 600);
        c.insert(1, SimTime::from_secs(1));
        c.insert(2, SimTime::from_secs(2));
        c.insert(3, SimTime::from_secs(3));
        // Touch 1 so 2 becomes LRU.
        assert!(c.lookup(1, SimTime::from_secs(4)));
        c.insert(4, SimTime::from_secs(5));
        assert_eq!(c.len(), 3);
        assert!(!c.lookup(2, SimTime::from_secs(6)), "LRU entry 2 evicted");
        assert!(c.lookup(3, SimTime::from_secs(6)));
        assert!(c.lookup(4, SimTime::from_secs(6)));
        let (_, _, _, ev) = c.stats();
        assert_eq!(ev, 1);
    }

    #[test]
    fn reinsert_refreshes_freshness() {
        let mut c = cache(10, 60);
        c.insert(1, SimTime::from_secs(0));
        c.insert(1, SimTime::from_secs(50));
        assert!(c.lookup(1, SimTime::from_secs(100)), "regenerated at t=50");
    }

    #[test]
    fn insert_when_full_with_existing_key_does_not_evict() {
        let mut c = cache(2, 600);
        c.insert(1, SimTime::from_secs(1));
        c.insert(2, SimTime::from_secs(2));
        c.insert(1, SimTime::from_secs(3)); // refresh, not a new key
        assert_eq!(c.len(), 2);
        let (_, _, _, ev) = c.stats();
        assert_eq!(ev, 0);
    }
}
