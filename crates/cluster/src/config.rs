//! Cluster configuration: topology, policy selection, and the paper's
//! Table 2 parameter grid.

use std::fmt;

use msweb_ossim::OsParams;
use msweb_simcore::SimDuration;
use serde::Serialize;

use crate::cache::CacheConfig;
use crate::sched::region::RegionTopology;

/// Why a [`ClusterConfig`] was rejected by [`ClusterConfig::validate`].
///
/// Every variant carries the offending value(s) so callers can branch on
/// the failure instead of parsing an error string.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `p == 0`: a cluster needs at least one node.
    NoNodes,
    /// The per-node OS parameter block is inconsistent (message from
    /// [`OsParams::validate`]).
    Os(String),
    /// `master_reserve` outside `[0, 1)`.
    MasterReserveOutOfRange(f64),
    /// `speeds` present but its length disagrees with `p`.
    SpeedCountMismatch {
        /// Number of speed factors supplied.
        got: usize,
        /// Cluster size they must match.
        p: usize,
    },
    /// A speed factor is non-positive or non-finite.
    NonPositiveSpeed(f64),
    /// `dns_skew` outside `[0, 1)`.
    DnsSkewOutOfRange(f64),
    /// Resolved master count is zero or exceeds the cluster size.
    BadMasterCount {
        /// Resolved master count.
        m: usize,
        /// Cluster size.
        p: usize,
    },
    /// Every node would be a master under an M/S policy that needs at
    /// least one slave (use [`PolicyKind::MsAllMasters`] for that).
    NoSlave,
    /// The region topology is inconsistent with the cluster shape
    /// (message from [`RegionTopology::validate`]).
    Region(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoNodes => write!(f, "cluster needs at least one node"),
            ConfigError::Os(msg) => write!(f, "invalid OS parameters: {msg}"),
            ConfigError::MasterReserveOutOfRange(v) => {
                write!(f, "master_reserve {v} not in [0,1)")
            }
            ConfigError::SpeedCountMismatch { got, p } => {
                write!(f, "{got} speed factors for {p} nodes")
            }
            ConfigError::NonPositiveSpeed(v) => {
                write!(f, "node speeds must be positive and finite, got {v}")
            }
            ConfigError::DnsSkewOutOfRange(v) => write!(f, "dns_skew {v} not in [0,1)"),
            ConfigError::BadMasterCount { m, p } => {
                write!(f, "bad master count {m} for p={p}")
            }
            ConfigError::NoSlave => {
                write!(f, "M/S needs at least one slave (use MsAllMasters)")
            }
            ConfigError::Region(msg) => write!(f, "invalid region topology: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which scheduling policy drives the cluster (Section 5.2's contenders).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum PolicyKind {
    /// Flat architecture: every request to a uniformly random node, CGI
    /// executed where it lands.
    Flat,
    /// The paper's full optimisation: master/slave separation + RSRC cost
    /// prediction + reservation-based admission of dynamic work on
    /// masters.
    MasterSlave,
    /// M/S-ns: no off-line demand sampling; every request is costed with
    /// `w = 0.5`.
    MsNoSampling,
    /// M/S-nr: no reservation; masters always eligible for dynamic work.
    MsNoReservation,
    /// M/S-1: every node is a master (no static/dynamic separation), the
    /// scheduling algorithm otherwise unchanged — "a flat architecture
    /// with remote CGI".
    MsAllMasters,
    /// M/S′: dynamic requests pinned to a fixed set of nodes, static
    /// spread over all nodes.
    MsPrime,
    /// HTTP-redirection baseline (the alternative the paper rejects):
    /// like M/S but every re-scheduled request pays a client round-trip
    /// before re-arriving.
    Redirect,
    /// Load-balancing switch baseline (Cisco LocalDirector / BigIP
    /// style): every request — static or dynamic — goes to the node with
    /// the fewest open connections. §2: switches "use simple load
    /// balancing schemes which may not be sufficient for
    /// resource-intensive dynamic content".
    Switch,
}

impl PolicyKind {
    /// Every policy, in the paper's presentation order.
    pub const ALL: [PolicyKind; 8] = [
        PolicyKind::Flat,
        PolicyKind::MasterSlave,
        PolicyKind::MsNoSampling,
        PolicyKind::MsNoReservation,
        PolicyKind::MsAllMasters,
        PolicyKind::MsPrime,
        PolicyKind::Redirect,
        PolicyKind::Switch,
    ];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Flat => "Flat",
            PolicyKind::MasterSlave => "M/S",
            PolicyKind::MsNoSampling => "M/S-ns",
            PolicyKind::MsNoReservation => "M/S-nr",
            PolicyKind::MsAllMasters => "M/S-1",
            PolicyKind::MsPrime => "M/S'",
            PolicyKind::Redirect => "Redirect",
            PolicyKind::Switch => "Switch",
        }
    }

    /// The CLI-friendly slug accepted (alongside the figure label) by
    /// [`FromStr`](std::str::FromStr).
    pub fn slug(self) -> &'static str {
        match self {
            PolicyKind::Flat => "flat",
            PolicyKind::MasterSlave => "ms",
            PolicyKind::MsNoSampling => "ms-ns",
            PolicyKind::MsNoReservation => "ms-nr",
            PolicyKind::MsAllMasters => "ms-1",
            PolicyKind::MsPrime => "ms-prime",
            PolicyKind::Redirect => "redirect",
            PolicyKind::Switch => "switch",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when a policy name does not parse; lists the
/// accepted names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    /// The string that failed to parse.
    pub input: String,
}

impl std::fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown policy {:?}; accepted:", self.input)?;
        for p in PolicyKind::ALL {
            write!(f, " {} ({})", p.label(), p.slug())?;
        }
        Ok(())
    }
}

impl std::error::Error for ParsePolicyError {}

impl std::str::FromStr for PolicyKind {
    type Err = ParsePolicyError;

    /// Accepts both the paper's figure label (`"M/S-nr"`) and the CLI
    /// slug (`"ms-nr"`); round-trips with [`PolicyKind::label`] and
    /// [`PolicyKind::slug`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PolicyKind::ALL
            .into_iter()
            .find(|p| s == p.label() || s == p.slug())
            .ok_or_else(|| ParsePolicyError {
                input: s.to_string(),
            })
    }
}

/// How the master count is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MasterSelection {
    /// Use exactly this many masters.
    Fixed(usize),
    /// Derive from Theorem 1 using the workload parameters sampled in
    /// advance (arrival ratio `a`, demand ratio `r`, target rate `λ`).
    Auto {
        /// Expected total arrival rate, requests/second.
        lambda: f64,
        /// Expected arrival ratio `a = λ_c/λ_h`.
        a: f64,
        /// Expected service ratio `r = μ_c/μ_h`.
        r: f64,
    },
}

/// Full configuration of one simulated cluster run.
///
/// Construct with [`ClusterConfig::simulation`] and refine with the
/// fluent `with_*` methods:
///
/// ```
/// use msweb_cluster::{ClusterConfig, MasterSelection, PolicyKind};
/// use msweb_simcore::SimDuration;
///
/// let cfg = ClusterConfig::simulation(32, PolicyKind::MasterSlave)
///     .with_masters(6)
///     .with_monitor_period(SimDuration::from_millis(250))
///     .with_seed(7);
/// assert!(cfg.validate().is_ok());
/// ```
///
/// Fields are private: construction goes through the builder methods
/// (robust against future field additions, reads as one expression) and
/// inspection through the same-named accessor methods.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes.
    p: usize,
    /// Master-count selection (ignored by Flat).
    masters: MasterSelection,
    /// Scheduling policy.
    policy: PolicyKind,
    /// Per-node OS parameters.
    os: OsParams,
    /// Static service rate of one node, requests/second (`μ_h`); used by
    /// Theorem-1 planning. The demands themselves come from the trace.
    mu_h: f64,
    /// Load-information update period (the rstat sampling interval).
    monitor_period: SimDuration,
    /// Remote CGI dispatch latency, excluding fork (paper: 1 ms TCP
    /// connection time).
    remote_latency: SimDuration,
    /// Client round-trip penalty for the Redirect baseline (a 1999 WAN
    /// RTT; irrelevant to other policies).
    redirect_rtt: SimDuration,
    /// Fraction of each master's CPU and disk capacity reserved for
    /// static processing (§4's "reserve a certain amount of CPU and I/O
    /// ... on each master node"). Dynamic placement sees masters as this
    /// much busier, so they only absorb CGI overflow once slaves are
    /// loaded past the reserve. Ignored by Flat/M/S-nr/M/S′.
    master_reserve: f64,
    /// Per-node CPU speed factors; `None` = homogeneous. Length must be
    /// `p` when present.
    speeds: Option<Vec<f64>>,
    /// Dynamic-content cache (the Swala extension); `None` disables
    /// caching (the paper's main experiments: "Our work in this paper
    /// does not consider CGI caching").
    cache: Option<CacheConfig>,
    /// DNS client-side caching skew for the front end, in [0, 1): 0 is
    /// ideal uniform rotation; larger values concentrate arrivals on the
    /// nodes whose addresses clients have cached (§2: "DNS round-robin
    /// rotation does not evenly distribute the load among servers, due to
    /// ... DNS entry caching"). Entry node i is drawn with weight
    /// `(1 − skew)^i`.
    dns_skew: f64,
    /// Multi-region topology; `None` (the default) is the classic
    /// single-cluster front tier with no region stage.
    regions: Option<RegionTopology>,
    /// RNG seed for dispatch decisions.
    seed: u64,
}

impl ClusterConfig {
    /// The paper's simulation defaults for a `p`-node cluster under
    /// `policy`.
    pub fn simulation(p: usize, policy: PolicyKind) -> Self {
        ClusterConfig {
            p,
            masters: MasterSelection::Fixed((p / 5).max(1)),
            policy,
            os: OsParams::default(),
            mu_h: 1200.0,
            monitor_period: SimDuration::from_millis(500),
            remote_latency: SimDuration::from_millis(1),
            redirect_rtt: SimDuration::from_millis(80),
            master_reserve: 0.5,
            speeds: None,
            cache: None,
            dns_skew: 0.0,
            regions: None,
            seed: 0x5eed,
        }
    }

    /// Use exactly `m` masters (clamped to `[1, p]` at resolution time).
    pub fn with_masters(mut self, m: usize) -> Self {
        self.masters = MasterSelection::Fixed(m);
        self
    }

    /// Derive the master count from Theorem 1 for the expected workload
    /// (`lambda` requests/second, arrival ratio `a`, service ratio `r`).
    pub fn with_auto_masters(mut self, lambda: f64, a: f64, r: f64) -> Self {
        self.masters = MasterSelection::Auto { lambda, a, r };
        self
    }

    /// Set the load-information update period.
    pub fn with_monitor_period(mut self, period: SimDuration) -> Self {
        self.monitor_period = period;
        self
    }

    /// Set the per-node OS parameter block.
    pub fn with_os(mut self, os: OsParams) -> Self {
        self.os = os;
        self
    }

    /// Set the static service rate `μ_h` used by Theorem-1 planning.
    pub fn with_mu_h(mut self, mu_h: f64) -> Self {
        self.mu_h = mu_h;
        self
    }

    /// Set the fraction of master capacity reserved for static work.
    pub fn with_master_reserve(mut self, reserve: f64) -> Self {
        self.master_reserve = reserve;
        self
    }

    /// Set per-node CPU speed factors (length must be `p`).
    pub fn with_speeds(mut self, speeds: Vec<f64>) -> Self {
        self.speeds = Some(speeds);
        self
    }

    /// Enable the dynamic-content cache extension.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Set the DNS client-side caching skew in `[0, 1)`.
    pub fn with_dns_skew(mut self, skew: f64) -> Self {
        self.dns_skew = skew;
        self
    }

    /// Set the remote CGI dispatch latency.
    pub fn with_remote_latency(mut self, latency: SimDuration) -> Self {
        self.remote_latency = latency;
        self
    }

    /// Install a multi-region topology (validated against `p` and the
    /// resolved master count by [`ClusterConfig::validate`]).
    pub fn with_regions(mut self, regions: RegionTopology) -> Self {
        self.regions = Some(regions);
        self
    }

    /// Set the dispatch-decision RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Switch the scheduling policy, keeping every other parameter.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Set the client round-trip penalty charged by the Redirect
    /// baseline.
    pub fn with_redirect_rtt(mut self, rtt: SimDuration) -> Self {
        self.redirect_rtt = rtt;
        self
    }

    /// Replace the master-selection rule wholesale (see
    /// [`ClusterConfig::with_masters`] / [`ClusterConfig::with_auto_masters`]
    /// for the common cases).
    pub fn with_master_selection(mut self, masters: MasterSelection) -> Self {
        self.masters = masters;
        self
    }

    /// Number of nodes.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Master-count selection rule (resolve with
    /// [`ClusterConfig::resolve_masters`]).
    pub fn masters(&self) -> MasterSelection {
        self.masters
    }

    /// Scheduling policy.
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// Per-node OS parameters.
    pub fn os(&self) -> &OsParams {
        &self.os
    }

    /// Static service rate `μ_h` used by Theorem-1 planning.
    pub fn mu_h(&self) -> f64 {
        self.mu_h
    }

    /// Load-information update period.
    pub fn monitor_period(&self) -> SimDuration {
        self.monitor_period
    }

    /// Remote CGI dispatch latency.
    pub fn remote_latency(&self) -> SimDuration {
        self.remote_latency
    }

    /// Client round-trip penalty for the Redirect baseline.
    pub fn redirect_rtt(&self) -> SimDuration {
        self.redirect_rtt
    }

    /// Fraction of master capacity reserved for static work.
    pub fn master_reserve(&self) -> f64 {
        self.master_reserve
    }

    /// Per-node CPU speed factors; `None` = homogeneous.
    pub fn speeds(&self) -> Option<&[f64]> {
        self.speeds.as_deref()
    }

    /// Dynamic-content cache configuration, when enabled.
    pub fn cache(&self) -> Option<&CacheConfig> {
        self.cache.as_ref()
    }

    /// DNS client-side caching skew in `[0, 1)`.
    pub fn dns_skew(&self) -> f64 {
        self.dns_skew
    }

    /// Multi-region topology, when one is installed.
    pub fn regions(&self) -> Option<&RegionTopology> {
        self.regions.as_ref()
    }

    /// Dispatch-decision RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Resolve the number of masters for this configuration.
    pub fn resolve_masters(&self) -> usize {
        match self.policy {
            PolicyKind::Flat | PolicyKind::Switch => 0,
            PolicyKind::MsAllMasters => self.p,
            _ => match self.masters {
                MasterSelection::Fixed(m) => m.clamp(1, self.p),
                MasterSelection::Auto { lambda, a, r } => {
                    plan_masters(self.p, lambda, a, r, self.mu_h)
                }
            },
        }
    }

    /// Validate topology and parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.p == 0 {
            return Err(ConfigError::NoNodes);
        }
        self.os.validate().map_err(ConfigError::Os)?;
        if !(0.0..1.0).contains(&self.master_reserve) {
            return Err(ConfigError::MasterReserveOutOfRange(self.master_reserve));
        }
        if let Some(speeds) = &self.speeds {
            if speeds.len() != self.p {
                return Err(ConfigError::SpeedCountMismatch {
                    got: speeds.len(),
                    p: self.p,
                });
            }
            if let Some(&bad) = speeds.iter().find(|&&s| !(s.is_finite() && s > 0.0)) {
                return Err(ConfigError::NonPositiveSpeed(bad));
            }
        }
        if !(0.0..1.0).contains(&self.dns_skew) {
            return Err(ConfigError::DnsSkewOutOfRange(self.dns_skew));
        }
        let m = self.resolve_masters();
        match self.policy {
            PolicyKind::Flat | PolicyKind::Switch => {}
            PolicyKind::MsAllMasters => {}
            _ => {
                if m == 0 || m > self.p {
                    return Err(ConfigError::BadMasterCount { m, p: self.p });
                }
                if m == self.p && self.p > 1 {
                    return Err(ConfigError::NoSlave);
                }
            }
        }
        if let Some(regions) = &self.regions {
            regions.validate(self.p, m).map_err(ConfigError::Region)?;
        }
        Ok(())
    }
}

/// Theorem-1 master planning from sampled workload parameters: pick the
/// `m` minimising the analytic M/S stretch, subject to a floor that keeps
/// the static load within the *unreserved* half of the master level
/// (consistent with the runtime's 50 % master capacity reserve — an
/// analytic `m` that saturates masters with static work alone would
/// contradict §4's "static requests can be processed promptly"). Falls
/// back to `p/4` when the workload overloads every configuration (the
/// run will saturate anyway).
pub fn plan_masters(p: usize, lambda: f64, a: f64, r: f64, mu_h: f64) -> usize {
    let Ok(w) = msweb_queueing::Workload::from_ratios(lambda, a, mu_h, r) else {
        return (p / 4).max(1);
    };
    // Static work must stay comfortably inside the reserved half of the
    // master level (utilisation of the reserve <= ~70%), or static
    // promptness — the whole point of the separation — is lost.
    let m_floor = ((w.lambda_h / (0.35 * mu_h)).ceil() as usize).max(1);
    let m = match msweb_queueing::plan(&w, p, msweb_queueing::ThetaRule::Midpoint) {
        Ok(plan) => plan.m,
        Err(_) => (p / 4).max(1),
    };
    m.max(m_floor).min(p.saturating_sub(1).max(1))
}

/// One cell of the paper's Table 2 grid: a trace replayed at a rate with
/// a demand ratio on a cluster size.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GridCell {
    /// Trace name ("UCB" / "KSU" / "ADL").
    pub trace: &'static str,
    /// Cluster size.
    pub p: usize,
    /// Replay arrival rate, requests/second.
    pub lambda: f64,
    /// Demand ratio `1/r`.
    pub inv_r: f64,
}

/// The reconstructed Table 2 grid (see DESIGN.md §4 for the derivation of
/// the λ values from the Figure 5 caption).
///
/// Cells whose offered load exceeds 95 % of the cluster are dropped,
/// matching the paper's "such a setting creates reasonable loads ...
/// otherwise, the load would be too light or too heavy": the heaviest
/// (λ, 1/r) combinations are analytically unstable for the CGI-heavy
/// traces and were never replayed.
pub fn table2_grid() -> Vec<GridCell> {
    let mut cells = Vec::new();
    let rates: [(&'static str, f64, [f64; 2], [f64; 2]); 3] = [
        ("UCB", 11.2, [1000.0, 2000.0], [4000.0, 8000.0]),
        ("KSU", 29.1, [500.0, 1000.0], [2000.0, 4000.0]),
        ("ADL", 44.3, [500.0, 1000.0], [2000.0, 4000.0]),
    ];
    let stable = |cgi_pct: f64, lambda: f64, inv_r: f64, p: usize| -> bool {
        let a = cgi_pct / (100.0 - cgi_pct);
        match msweb_queueing::Workload::from_ratios(lambda, a, 1200.0, 1.0 / inv_r) {
            Ok(w) => w.offered_load() / p as f64 <= 0.95,
            Err(_) => false,
        }
    };
    for &(trace, cgi_pct, small, large) in &rates {
        for &inv_r in &[20.0, 40.0, 80.0, 160.0] {
            for &lambda in &small {
                if stable(cgi_pct, lambda, inv_r, 32) {
                    cells.push(GridCell {
                        trace,
                        p: 32,
                        lambda,
                        inv_r,
                    });
                }
            }
            for &lambda in &large {
                if stable(cgi_pct, lambda, inv_r, 128) {
                    cells.push(GridCell {
                        trace,
                        p: 128,
                        lambda,
                        inv_r,
                    });
                }
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_round_trip() {
        for p in PolicyKind::ALL {
            assert_eq!(
                p.label().parse::<PolicyKind>(),
                Ok(p),
                "label {}",
                p.label()
            );
            assert_eq!(p.slug().parse::<PolicyKind>(), Ok(p), "slug {}", p.slug());
            assert_eq!(format!("{p}"), p.label());
        }
        let err = "no-such-policy".parse::<PolicyKind>().unwrap_err();
        assert!(err.to_string().contains("ms-prime"));
    }

    #[test]
    fn defaults_validate() {
        for policy in [
            PolicyKind::Flat,
            PolicyKind::MasterSlave,
            PolicyKind::MsNoSampling,
            PolicyKind::MsNoReservation,
            PolicyKind::MsAllMasters,
            PolicyKind::MsPrime,
            PolicyKind::Redirect,
        ] {
            let c = ClusterConfig::simulation(32, policy);
            assert!(c.validate().is_ok(), "{policy:?}");
        }
    }

    #[test]
    fn master_resolution() {
        let mut c = ClusterConfig::simulation(32, PolicyKind::MasterSlave).with_masters(6);
        assert_eq!(c.resolve_masters(), 6);
        c.policy = PolicyKind::Flat;
        assert_eq!(c.resolve_masters(), 0);
        c.policy = PolicyKind::MsAllMasters;
        assert_eq!(c.resolve_masters(), 32);
    }

    #[test]
    fn auto_masters_matches_paper_sensitivity_setup() {
        // §5.2.1: r=1/60, a=0.44, λ=750 on 32 nodes -> 6 masters;
        // λ=3000 on 128 nodes -> 25 masters.
        let m32 = plan_masters(32, 750.0, 0.44, 1.0 / 60.0, 1200.0);
        let m128 = plan_masters(128, 3000.0, 0.44, 1.0 / 60.0, 1200.0);
        // Exact integers depend on our (cleaner) root derivation; the
        // paper reports 6 and 25. Accept the immediate neighbourhood and
        // record the exact values in EXPERIMENTS.md.
        assert!((4..=9).contains(&m32), "m32 = {m32}");
        assert!((18..=34).contains(&m128), "m128 = {m128}");
    }

    #[test]
    fn validation_rejects_bad_speeds() {
        let base = ClusterConfig::simulation(4, PolicyKind::MasterSlave);
        assert_eq!(
            base.clone().with_speeds(vec![1.0; 3]).validate(),
            Err(ConfigError::SpeedCountMismatch { got: 3, p: 4 })
        );
        assert_eq!(
            base.clone()
                .with_speeds(vec![1.0, 2.0, 0.0, 1.0])
                .validate(),
            Err(ConfigError::NonPositiveSpeed(0.0))
        );
        assert!(base
            .with_speeds(vec![1.0, 2.0, 1.5, 1.0])
            .validate()
            .is_ok());
    }

    #[test]
    fn validation_rejects_all_masters_for_ms() {
        let c = ClusterConfig::simulation(8, PolicyKind::MasterSlave).with_masters(8);
        assert_eq!(c.validate(), Err(ConfigError::NoSlave));
    }

    #[test]
    fn validation_checks_region_topology() {
        let ok = ClusterConfig::simulation(32, PolicyKind::MasterSlave)
            .with_masters(6)
            .with_regions(RegionTopology::even(32, 6, 3));
        assert!(ok.validate().is_ok());
        // Topology built for a different master count than the config
        // resolves: the ranges no longer partition [0, m).
        let bad = ClusterConfig::simulation(32, PolicyKind::MasterSlave)
            .with_masters(5)
            .with_regions(RegionTopology::even(32, 6, 3));
        match bad.validate() {
            Err(ConfigError::Region(msg)) => assert!(!msg.is_empty()),
            other => panic!("expected ConfigError::Region, got {other:?}"),
        }
    }

    #[test]
    fn typed_errors_render_and_compose() {
        let err = ClusterConfig::simulation(0, PolicyKind::Flat)
            .validate()
            .unwrap_err();
        assert_eq!(err, ConfigError::NoNodes);
        assert!(err.to_string().contains("at least one node"));
        let err = ClusterConfig::simulation(4, PolicyKind::Flat)
            .with_master_reserve(1.5)
            .validate()
            .unwrap_err();
        assert_eq!(err, ConfigError::MasterReserveOutOfRange(1.5));
        // ConfigError is a std error, so it boxes cleanly.
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.to_string().contains("1.5"));
        let err = ClusterConfig::simulation(4, PolicyKind::Flat)
            .with_dns_skew(-0.1)
            .validate()
            .unwrap_err();
        assert_eq!(err, ConfigError::DnsSkewOutOfRange(-0.1));
    }

    #[test]
    fn builder_matches_direct_construction() {
        let built = ClusterConfig::simulation(16, PolicyKind::MasterSlave)
            .with_masters(4)
            .with_monitor_period(SimDuration::from_millis(100))
            .with_mu_h(110.0)
            .with_master_reserve(0.25)
            .with_dns_skew(0.3)
            .with_remote_latency(SimDuration::from_millis(2))
            .with_seed(99);
        assert_eq!(built.masters, MasterSelection::Fixed(4));
        assert_eq!(built.monitor_period, SimDuration::from_millis(100));
        assert_eq!(built.mu_h, 110.0);
        assert_eq!(built.master_reserve, 0.25);
        assert_eq!(built.dns_skew, 0.3);
        assert_eq!(built.remote_latency, SimDuration::from_millis(2));
        assert_eq!(built.seed, 99);
        assert!(built.validate().is_ok());
    }

    #[test]
    fn table2_grid_shape() {
        let grid = table2_grid();
        // 3 traces x 4 ratios x 4 rates, minus the six analytically
        // unstable heavy cells (each trace's top rate with 1/r=160).
        assert_eq!(grid.len(), 42);
        assert!(grid
            .iter()
            .any(|c| c.trace == "UCB" && c.p == 32 && c.lambda == 1000.0));
        assert!(grid
            .iter()
            .any(|c| c.trace == "ADL" && c.p == 128 && c.lambda == 4000.0));
        assert!(grid
            .iter()
            .all(|c| [20.0, 40.0, 80.0, 160.0].contains(&c.inv_r)));
        // Dropped: the overloaded combinations.
        assert!(!grid
            .iter()
            .any(|c| c.trace == "KSU" && c.lambda == 1000.0 && c.inv_r == 160.0));
        assert!(!grid
            .iter()
            .any(|c| c.trace == "ADL" && c.lambda == 1000.0 && c.inv_r == 160.0));
        // Every kept cell is comfortably replayable.
        for c in &grid {
            let a = match c.trace {
                "UCB" => 11.2 / 88.8,
                "KSU" => 29.1 / 70.9,
                _ => 44.3 / 55.7,
            };
            let w =
                msweb_queueing::Workload::from_ratios(c.lambda, a, 1200.0, 1.0 / c.inv_r).unwrap();
            assert!(w.offered_load() / c.p as f64 <= 0.95);
        }
    }
}
