//! Windowed telemetry time-series: one JSONL record per monitor
//! window, streamed to a sink as the run executes.
//!
//! Where [`TelemetrySnapshot`](super::TelemetrySnapshot) is a single
//! end-of-run aggregate, the series recorder emits what happened
//! *inside each monitor window*: the reservation-controller sample,
//! per-stage call and placement-outcome **deltas**, the window's mean
//! stretch, per-region charge deltas, per-node busy gauges, and the
//! candidate-set / transfer-latency histogram deltas (exact per-bucket
//! subtraction of the cumulative [`LogHistogram`]s — see
//! [`HistDelta`]). Records are keyed by substrate time (`at_us`), so a
//! fixed seed + spec produces byte-identical JSONL on the simulator;
//! on the live substrate the timestamps and busy gauges are wall-clock
//! measurements, but the *schema* is identical (tested) and a given
//! log re-derives deterministically.
//!
//! Memory discipline: the recorder keeps only the previous window's
//! cumulative counters (O(p) baseline, no per-window retention) and
//! writes each record straight to the sink, following the O(in-flight)
//! rule the streaming event loop established.

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use msweb_simcore::hist::{HistDelta, LogHistogram};
use serde::Value;

use super::{fnum, obj, u, SchedTelemetry, WindowSample, STAGE_COUNT};

/// Version tag of the series JSONL encoding (the header line's
/// `schema` field).
pub const SERIES_SCHEMA_VERSION: u64 = 1;

/// Run identity written as the first JSONL line, mirroring the
/// snapshot's identity fields.
#[derive(Debug, Clone)]
pub struct SeriesMeta<'a> {
    /// Which substrate drives the run: `"sim"` or `"live"`.
    pub substrate: &'a str,
    /// Policy slug (or registry spec).
    pub policy: &'a str,
    /// Cluster size `p`.
    pub p: usize,
    /// Master count `m`.
    pub m: usize,
    /// Dispatch RNG seed.
    pub seed: u64,
}

/// Everything the driving substrate hands the recorder at one monitor
/// tick. All counters are *cumulative*; the recorder does the
/// differencing against its retained baseline.
#[derive(Debug)]
pub struct SeriesWindowInput<'a> {
    /// The reservation-controller sample for this window.
    pub window: &'a WindowSample,
    /// The scheduler's cumulative telemetry, when enabled.
    pub sched: Option<&'a SchedTelemetry>,
    /// Per-node busy fractions over the window.
    pub node_busy: &'a [f64],
    /// Mean stretch of the completions inside this window; `None` when
    /// the window completed nothing.
    pub window_stretch: Option<f64>,
    /// Cumulative dropped-request count.
    pub drops: u64,
}

/// Cumulative counters as of the previous window, retained so each
/// record carries exact deltas.
#[derive(Debug, Default)]
struct Baseline {
    place_calls: u64,
    stay_local: u64,
    remote: u64,
    no_live_nodes: u64,
    restarts: u64,
    stage_calls: [u64; STAGE_COUNT],
    region_charges: Vec<u64>,
    candidates: LogHistogram,
    latency_us: LogHistogram,
    drops: u64,
}

/// Streams one JSONL record per monitor window to a sink.
///
/// Follows the [`JsonlSink`](crate::sched::JsonlSink) error policy:
/// the first write failure is reported to stderr, later records are
/// discarded, and the run continues (telemetry must never kill a run).
pub struct SeriesRecorder {
    writer: Box<dyn Write + Send>,
    errored: bool,
    began: bool,
    records: u64,
    baseline: Baseline,
}

impl std::fmt::Debug for SeriesRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeriesRecorder")
            .field("records", &self.records)
            .field("errored", &self.errored)
            .finish_non_exhaustive()
    }
}

impl SeriesRecorder {
    /// A recorder streaming to an arbitrary sink.
    pub fn to_writer(writer: Box<dyn Write + Send>) -> SeriesRecorder {
        SeriesRecorder {
            writer,
            errored: false,
            began: false,
            records: 0,
            baseline: Baseline::default(),
        }
    }

    /// A recorder streaming to a (buffered) file at `path`.
    pub fn create(path: &str) -> io::Result<SeriesRecorder> {
        let f = std::fs::File::create(path)?;
        Ok(SeriesRecorder::to_writer(Box::new(io::BufWriter::new(f))))
    }

    /// Records written so far (excluding the header line).
    pub fn records(&self) -> u64 {
        self.records
    }

    fn write_line(&mut self, v: &Value) {
        if self.errored {
            return;
        }
        let line = v.to_json();
        if let Err(e) = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
        {
            eprintln!("telemetry series: write failed, discarding rest: {e}");
            self.errored = true;
        }
    }

    /// Write the run-identity header line. Called once by the driving
    /// substrate at run start; later calls are ignored.
    pub fn begin(&mut self, meta: &SeriesMeta<'_>) {
        if self.began {
            return;
        }
        self.began = true;
        let header = obj(vec![
            ("schema", u(SERIES_SCHEMA_VERSION)),
            ("kind", Value::Str("series".to_string())),
            ("substrate", Value::Str(meta.substrate.to_string())),
            ("policy", Value::Str(meta.policy.to_string())),
            ("p", u(meta.p as u64)),
            ("m", u(meta.m as u64)),
            ("seed", u(meta.seed)),
        ]);
        self.write_line(&header);
    }

    /// Fold one monitor window into a record: diff the cumulative
    /// counters against the baseline, write the JSONL line, advance the
    /// baseline.
    pub fn record(&mut self, input: &SeriesWindowInput<'_>) {
        let w = input.window;
        let b = &mut self.baseline;

        let (place, stages, region_charges, cand_delta, lat_delta) = match input.sched {
            Some(s) => {
                let place = obj(vec![
                    ("calls", u(s.place_calls - b.place_calls)),
                    ("stay_local", u(s.stay_local - b.stay_local)),
                    ("remote", u(s.remote - b.remote)),
                    ("no_live_nodes", u(s.no_live_nodes - b.no_live_nodes)),
                    ("restarts", u(s.restarts - b.restarts)),
                ]);
                let stages = Value::Array(
                    (0..STAGE_COUNT)
                        .map(|i| u(s.stage_calls[i] - b.stage_calls[i]))
                        .collect(),
                );
                let regions = if s.region_charges.is_empty() {
                    None
                } else {
                    Some(Value::Array(
                        s.region_charges
                            .iter()
                            .enumerate()
                            .map(|(i, &c)| u(c - b.region_charges.get(i).copied().unwrap_or(0)))
                            .collect(),
                    ))
                };
                let cand = s.candidates_hist.delta_since(&b.candidates);
                let lat = s.latency_us_hist.delta_since(&b.latency_us);
                b.place_calls = s.place_calls;
                b.stay_local = s.stay_local;
                b.remote = s.remote;
                b.no_live_nodes = s.no_live_nodes;
                b.restarts = s.restarts;
                b.stage_calls = s.stage_calls;
                b.region_charges = s.region_charges.clone();
                b.candidates = s.candidates_hist.clone();
                b.latency_us = s.latency_us_hist.clone();
                (place, stages, regions, cand, lat)
            }
            None => (
                Value::Null,
                Value::Null,
                None,
                HistDelta::new(),
                HistDelta::new(),
            ),
        };
        let drops = u(input.drops - b.drops);
        b.drops = input.drops;

        let mut fields = vec![
            ("at_us", u(w.at_us)),
            ("theta2_star", fnum(w.theta2_star)),
            ("a", fnum(w.a_hat)),
            ("r", fnum(w.r_hat)),
            ("rho", fnum(w.rho)),
            ("theta_hat", fnum(w.theta_hat)),
            ("clamp_events", u(w.clamp_events)),
            ("place", place),
            ("stages", stages),
            ("drops", drops),
            (
                "window_stretch",
                match input.window_stretch {
                    Some(s) => fnum(s),
                    None => Value::Null,
                },
            ),
            (
                "node_busy",
                Value::Array(input.node_busy.iter().map(|&x| fnum(x)).collect()),
            ),
        ];
        if let Some(r) = region_charges {
            fields.push(("region_charges", r));
        }
        fields.push((
            "hists",
            obj(vec![
                ("candidates", delta_value(&cand_delta)),
                ("latency_us", delta_value(&lat_delta)),
            ]),
        ));
        let record = obj(fields);
        self.write_line(&record);
        self.records += 1;
    }

    /// Flush the sink.
    pub fn flush(&mut self) {
        if !self.errored {
            let _ = self.writer.flush();
        }
    }
}

impl Drop for SeriesRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A histogram delta as `{count, sum, buckets: [[index, n], ...]}`.
/// Windows carry no min/max: those are not recoverable by subtraction
/// of cumulative histograms.
fn delta_value(d: &HistDelta) -> Value {
    let buckets: Vec<Value> = d
        .buckets
        .iter()
        .map(|&(i, c)| Value::Array(vec![u(i as u64), u(c)]))
        .collect();
    obj(vec![
        ("count", u(d.count)),
        ("sum", u(d.sum)),
        ("buckets", Value::Array(buckets)),
    ])
}

/// Parse a histogram delta back from its series-record encoding
/// (`{count, sum, buckets}`) — used by the tests that re-merge window
/// deltas into the end-of-run snapshot.
pub fn delta_from_value(v: &Value) -> Result<HistDelta, String> {
    let int = |k: &str| -> Result<u64, String> {
        v.get(k)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("delta: missing or non-integer '{k}'"))
    };
    let mut buckets = Vec::new();
    for b in v
        .get("buckets")
        .and_then(Value::as_array)
        .ok_or("delta: missing 'buckets'")?
    {
        let pair = b
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or("delta: bucket is not an [index, count] pair")?;
        let i = pair[0].as_u64().ok_or("delta: non-integer bucket index")?;
        let c = pair[1].as_u64().ok_or("delta: non-integer bucket count")?;
        buckets.push((i as usize, c));
    }
    Ok(HistDelta {
        buckets,
        count: int("count")?,
        sum: int("sum")?,
    })
}

/// An in-memory series sink that can be read back after the run — the
/// clone handed to the recorder and the clone kept by the caller share
/// one buffer. Used by the experiment runner and the tests.
#[derive(Debug, Clone, Default)]
pub struct SharedSeriesBuffer {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl SharedSeriesBuffer {
    /// A fresh, empty buffer.
    pub fn new() -> SharedSeriesBuffer {
        SharedSeriesBuffer::default()
    }

    /// The buffered JSONL as a string.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.buf.lock().unwrap()).into_owned()
    }
}

impl Write for SharedSeriesBuffer {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.lock().unwrap().extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_window(at_us: u64, clamps: u64) -> WindowSample {
        WindowSample {
            at_us,
            theta2_star: 0.42,
            a_hat: 0.25,
            r_hat: 0.025,
            rho: 0.8,
            theta_hat: 0.3,
            clamp_events: clamps,
        }
    }

    #[test]
    fn records_carry_exact_deltas() {
        let buf = SharedSeriesBuffer::new();
        let mut rec = SeriesRecorder::to_writer(Box::new(buf.clone()));
        rec.begin(&SeriesMeta {
            substrate: "sim",
            policy: "ms",
            p: 4,
            m: 2,
            seed: 42,
        });
        let mut sched = SchedTelemetry::new(4);
        sched.place_calls = 10;
        sched.remote = 6;
        sched.stay_local = 4;
        sched.stage_calls = [10, 10, 6, 6, 10];
        sched.candidates_hist.record_n(3, 6);
        rec.record(&SeriesWindowInput {
            window: &sample_window(500_000, 0),
            sched: Some(&sched),
            node_busy: &[0.5, 0.25, 0.75, 1.0],
            window_stretch: Some(1.5),
            drops: 1,
        });
        sched.place_calls = 25;
        sched.remote = 15;
        sched.stay_local = 10;
        sched.stage_calls = [25, 25, 15, 15, 25];
        sched.candidates_hist.record_n(3, 9);
        rec.record(&SeriesWindowInput {
            window: &sample_window(1_000_000, 2),
            sched: Some(&sched),
            node_busy: &[0.5, 0.25, 0.75, 1.0],
            window_stretch: None,
            drops: 1,
        });
        drop(rec);

        let lines: Vec<Value> = buf
            .contents()
            .lines()
            .map(|l| Value::parse(l).expect("line parses"))
            .collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].get("kind").and_then(Value::as_str), Some("series"));
        let w1 = &lines[1];
        assert_eq!(
            w1.get("place")
                .unwrap()
                .get("calls")
                .and_then(Value::as_u64),
            Some(10)
        );
        assert_eq!(w1.get("drops").and_then(Value::as_u64), Some(1));
        let w2 = &lines[2];
        assert_eq!(
            w2.get("place")
                .unwrap()
                .get("calls")
                .and_then(Value::as_u64),
            Some(15)
        );
        assert_eq!(w2.get("drops").and_then(Value::as_u64), Some(0));
        assert!(matches!(w2.get("window_stretch"), Some(Value::Null)));
        let d = delta_from_value(w2.get("hists").unwrap().get("candidates").unwrap()).unwrap();
        assert_eq!(d.count, 9);
        assert_eq!(d.buckets, vec![(3, 9)]);
    }

    #[test]
    fn header_is_written_once() {
        let buf = SharedSeriesBuffer::new();
        let mut rec = SeriesRecorder::to_writer(Box::new(buf.clone()));
        let meta = SeriesMeta {
            substrate: "sim",
            policy: "ms",
            p: 2,
            m: 1,
            seed: 1,
        };
        rec.begin(&meta);
        rec.begin(&meta);
        rec.flush();
        assert_eq!(buf.contents().lines().count(), 1);
    }
}
