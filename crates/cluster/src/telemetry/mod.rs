//! Live telemetry: counters, gauges and log-bucketed histograms over
//! the scheduling pipeline, the reservation controller and the node
//! fleet — zero-cost when disabled, byte-deterministic when snapshotted.
//!
//! Three pieces cooperate:
//!
//! * [`SchedTelemetry`] rides *inside* a
//!   [`Scheduler`](crate::sched::Scheduler) (behind an `Option`, so the
//!   hot path pays one pointer check when disabled) and counts every
//!   `place` outcome, per-stage call, per-node charge, plus sampled
//!   wall-clock span timings (1 in [`SPAN_SAMPLE_EVERY`] decisions) of
//!   the `entry → admission → candidates → scorer → charge` pipeline.
//! * [`TelemetryProbe`] is the *driver-side* collector: the simulator
//!   records a [`WindowSample`] of the reservation controller on every
//!   monitor tick, the live emulation does the same from its dispatch
//!   loop while a sampler thread refreshes per-node busy gauges from
//!   the worker stats. It is `Arc`-shared and mutex-guarded — never on
//!   the per-decision path.
//! * [`TelemetrySnapshot`] folds both into one value with three derived
//!   views: a byte-deterministic JSON encoding
//!   ([`TelemetrySnapshot::to_value`] — wall-clock span durations are
//!   deliberately *excluded* so fixed seed + spec ⇒ identical bytes),
//!   a Prometheus text exposition
//!   ([`TelemetrySnapshot::to_prometheus`] — spans included), and the
//!   `top`-style table ([`render_top`]) live runs print to stderr.
//!
//! Metric names in the Prometheus dump cross-reference the v2
//! decision-log event vocabulary (see [`crate::sched::trace`]): e.g.
//! `msweb_place_decisions_total` counts exactly the `"ev":"decision"`
//! lines a traced run would emit, and the `msweb_reservation_*` gauges
//! are the `tick`-event fields sampled as a time series.
//!
//! Two submodules build on the snapshot layer:
//!
//! * [`series`] — the windowed time-series recorder: one JSONL record
//!   per monitor window carrying counter/histogram *deltas*, streamed
//!   to a sink in O(1) memory (`--telemetry-series`);
//! * [`slo`] — the declarative SLO engine: multi-window burn-rate
//!   rules over the per-window signals, emitting typed
//!   [`AlertEvent`](slo::AlertEvent)s and re-derivable from a decision
//!   log alone (`msweb slo-check`).

pub mod series;
pub mod slo;

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use msweb_simcore::hist::LogHistogram;
use serde::Value;

/// One in how many decisions gets wall-clock span timing. Sampling
/// keeps the `place()` overhead bounded (an `Instant::now()` pair per
/// stage costs more than an un-contended placement) while long runs
/// still accumulate thousands of samples per stage.
pub const SPAN_SAMPLE_EVERY: u64 = 64;

/// Bitmask form of [`SPAN_SAMPLE_EVERY`] (which is a power of two).
pub const SPAN_SAMPLE_MASK: u64 = SPAN_SAMPLE_EVERY - 1;

/// Number of pipeline stages instrumented.
pub const STAGE_COUNT: usize = 5;

/// A pipeline stage, used to index the per-stage counter arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Front-end entry selection.
    Entry = 0,
    /// Reservation admission.
    Admission = 1,
    /// Candidate-set formation.
    Candidates = 2,
    /// RSRC scoring.
    Scorer = 3,
    /// Expected-demand charge-back.
    Charge = 4,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Entry,
        Stage::Admission,
        Stage::Candidates,
        Stage::Scorer,
        Stage::Charge,
    ];

    /// The stage's label, as used in metric label values.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Entry => "entry",
            Stage::Admission => "admission",
            Stage::Candidates => "candidates",
            Stage::Scorer => "scorer",
            Stage::Charge => "charge",
        }
    }
}

/// Wall-clock timer for one sampled `place()` call: `mark(stage)`
/// attributes the time since the previous mark to that stage.
#[derive(Debug)]
pub struct SpanTimer {
    last: Instant,
    ns: [u64; STAGE_COUNT],
    hits: [u64; STAGE_COUNT],
}

impl SpanTimer {
    /// Start timing now.
    pub fn start() -> SpanTimer {
        SpanTimer {
            last: Instant::now(),
            ns: [0; STAGE_COUNT],
            hits: [0; STAGE_COUNT],
        }
    }

    /// Attribute the time since the last mark (or start) to `stage`.
    #[inline]
    pub fn mark(&mut self, stage: Stage) {
        let now = Instant::now();
        self.ns[stage as usize] += now.duration_since(self.last).as_nanos() as u64;
        self.hits[stage as usize] += 1;
        self.last = now;
    }
}

/// Cumulative counts of which internal path [`MinRsrcScorer`] resolved
/// each `choose` call through: the O(log p) tournament index, or one of
/// the dense-scan fallbacks.
///
/// [`MinRsrcScorer`]: crate::sched::stages::MinRsrcScorer
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScorerPaths {
    /// Answered by the tournament-tree index.
    pub indexed: u64,
    /// Dense scan: the scorer was built without an index.
    pub dense_unindexed: u64,
    /// Dense scan: candidate set below the index cut-over size.
    pub dense_small: u64,
    /// Dense scan: the load window was charge-degenerate.
    pub dense_degenerate: u64,
    /// Dense scan: the candidate set was not a contiguous level range.
    pub dense_no_range: u64,
}

impl ScorerPaths {
    /// Total `choose` calls that fell back to the dense scan.
    pub fn dense_total(&self) -> u64 {
        self.dense_unindexed + self.dense_small + self.dense_degenerate + self.dense_no_range
    }

    /// `(label, count)` pairs for every path, in a fixed order.
    pub fn entries(&self) -> [(&'static str, u64); 5] {
        [
            ("indexed", self.indexed),
            ("dense_unindexed", self.dense_unindexed),
            ("dense_small", self.dense_small),
            ("dense_degenerate", self.dense_degenerate),
            ("dense_no_range", self.dense_no_range),
        ]
    }
}

/// Hot-path telemetry carried inside a scheduler. All plain integer
/// adds — the scheduler is single-threaded in both substrates, so no
/// atomics are needed, and histograms record in a handful of
/// instructions.
#[derive(Debug, Clone)]
pub struct SchedTelemetry {
    /// Total `place` calls that produced a placement.
    pub place_calls: u64,
    /// Placements that stayed on the entry node (no scoring).
    pub stay_local: u64,
    /// Placements that ran the scorer over a remote candidate set.
    pub remote: u64,
    /// `place` calls that failed with `NoLiveNodes`.
    pub no_live_nodes: u64,
    /// Placements made on the post-failure restart path.
    pub restarts: u64,
    /// Per-stage invocation counts, indexed by [`Stage`].
    pub stage_calls: [u64; STAGE_COUNT],
    /// Per-stage sampled wall-clock nanoseconds, indexed by [`Stage`].
    /// Nondeterministic; excluded from the deterministic snapshot JSON.
    pub stage_ns: [u64; STAGE_COUNT],
    /// How many sampled timings each `stage_ns` entry aggregates.
    pub stage_samples: [u64; STAGE_COUNT],
    /// Per-node successful-placement (charge) counts; length `p`.
    pub node_charges: Vec<u64>,
    /// Per-region successful-placement counts when a region stage is
    /// installed; empty otherwise (sized lazily on the first charge so
    /// regionless runs serialise byte-identically to older snapshots).
    pub region_charges: Vec<u64>,
    /// Candidate-set size per scored (remote) decision.
    pub candidates_hist: LogHistogram,
    /// Transfer latency per placement, microseconds.
    pub latency_us_hist: LogHistogram,
}

impl SchedTelemetry {
    /// Fresh telemetry for a cluster of `p` nodes.
    pub fn new(p: usize) -> SchedTelemetry {
        SchedTelemetry {
            place_calls: 0,
            stay_local: 0,
            remote: 0,
            no_live_nodes: 0,
            restarts: 0,
            stage_calls: [0; STAGE_COUNT],
            stage_ns: [0; STAGE_COUNT],
            stage_samples: [0; STAGE_COUNT],
            node_charges: vec![0; p],
            region_charges: Vec::new(),
            candidates_hist: LogHistogram::new(),
            latency_us_hist: LogHistogram::new(),
        }
    }

    /// Fold one sampled span timing into the totals.
    pub fn fold_spans(&mut self, timer: &SpanTimer) {
        for i in 0..STAGE_COUNT {
            self.stage_ns[i] += timer.ns[i];
            self.stage_samples[i] += timer.hits[i];
        }
    }
}

/// One monitor-window sample of the reservation controller, recorded
/// by the driving substrate right after it feeds ρ to
/// [`ReservationController::update`](crate::ReservationController::update).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSample {
    /// Window end, microseconds of substrate time.
    pub at_us: u64,
    /// The Theorem 1 bound θ2* for the measured (a, r).
    pub theta2_star: f64,
    /// Measured arrival ratio `a` (EWMA).
    pub a_hat: f64,
    /// Measured demand-ratio proxy `r` (EWMA).
    pub r_hat: f64,
    /// Mean node utilisation ρ over the window.
    pub rho: f64,
    /// Measured fraction of dynamic requests on masters (θ̂).
    pub theta_hat: f64,
    /// Cumulative controller clamp events up to this window.
    pub clamp_events: u64,
}

/// How many controller windows a [`TelemetryProbe`] retains. Older
/// samples are evicted ring-buffer style so a million-window
/// `msweb scale` run stays O(1) in probe memory (the full series is
/// available by streaming it: see [`series::SeriesRecorder`]); runs
/// shorter than the cap — every golden-fixture run — retain everything
/// and serialise exactly as before the cap existed.
pub const WINDOW_RING_CAP: usize = 4096;

#[derive(Debug, Default)]
struct ProbeInner {
    windows: VecDeque<WindowSample>,
    /// Total windows ever recorded (≥ `windows.len()` once the ring
    /// wraps).
    windows_seen: u64,
    node_busy: Vec<f64>,
    response_static_us: LogHistogram,
    response_dynamic_us: LogHistogram,
}

/// Driver-side telemetry collector, shared between the dispatch loop
/// and (in the live emulation) the sampler thread. Cloning shares the
/// underlying state.
#[derive(Debug, Clone, Default)]
pub struct TelemetryProbe {
    inner: Arc<Mutex<ProbeInner>>,
}

impl TelemetryProbe {
    /// A fresh, empty probe.
    pub fn new() -> TelemetryProbe {
        TelemetryProbe::default()
    }

    /// Append one controller window sample, evicting the oldest once
    /// [`WINDOW_RING_CAP`] samples are retained.
    pub fn record_window(&self, sample: WindowSample) {
        let mut inner = self.inner.lock().unwrap();
        if inner.windows.len() == WINDOW_RING_CAP {
            inner.windows.pop_front();
        }
        inner.windows.push_back(sample);
        inner.windows_seen += 1;
    }

    /// Replace the per-node busy gauges with the latest window's view.
    pub fn set_node_busy(&self, busy: &[f64]) {
        let mut inner = self.inner.lock().unwrap();
        inner.node_busy.clear();
        inner.node_busy.extend_from_slice(busy);
    }

    /// Record one completed response (microseconds of substrate time).
    pub fn record_response(&self, dynamic: bool, response_us: u64) {
        let mut inner = self.inner.lock().unwrap();
        if dynamic {
            inner.response_dynamic_us.record(response_us);
        } else {
            inner.response_static_us.record(response_us);
        }
    }

    /// The most recent controller window sample, if any.
    pub fn last_window(&self) -> Option<WindowSample> {
        self.inner.lock().unwrap().windows.back().copied()
    }

    /// Number of controller windows recorded so far (total seen, even
    /// after the retention ring has evicted the oldest samples).
    pub fn window_count(&self) -> usize {
        self.inner.lock().unwrap().windows_seen as usize
    }

    /// The latest per-node busy gauges.
    pub fn node_busy(&self) -> Vec<f64> {
        self.inner.lock().unwrap().node_busy.clone()
    }
}

/// Identity and totals of one telemetered run: the scheduler-side
/// counters, the controller time series and the node gauges, folded
/// into a single serialisable value.
///
/// Equality and the [`serde::Serialize`] impl both go through
/// [`TelemetrySnapshot::to_value`], so two snapshots compare equal
/// exactly when their deterministic JSON encodings are byte-identical
/// (wall-clock span durations are excluded; see the module docs).
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Which substrate drove the run: `"sim"` or `"live"`.
    pub substrate: String,
    /// Policy slug (or registry spec) the scheduler ran.
    pub policy: String,
    /// Cluster size `p`.
    pub p: usize,
    /// Master count `m`.
    pub m: usize,
    /// Dispatch RNG seed.
    pub seed: u64,
    /// Scheduler-side counters and histograms.
    pub sched: SchedTelemetry,
    /// Scorer path counts, when the scorer tracks them.
    pub scorer_paths: Option<ScorerPaths>,
    /// Cumulative reservation-controller clamp events.
    pub clamp_events: u64,
    /// Controller time series, one sample per monitor window.
    pub windows: Vec<WindowSample>,
    /// Latest per-node busy gauges (fraction of the last window busy).
    pub node_busy: Vec<f64>,
    /// Response-time histogram for static requests, microseconds.
    pub response_static_us: LogHistogram,
    /// Response-time histogram for dynamic requests, microseconds.
    pub response_dynamic_us: LogHistogram,
}

impl TelemetrySnapshot {
    /// Fold the scheduler-side telemetry and the driver-side probe into
    /// one snapshot.
    // Assembly point by design: each argument is one independent source.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        substrate: &str,
        policy: &str,
        seed: u64,
        m: usize,
        sched: &SchedTelemetry,
        scorer_paths: Option<ScorerPaths>,
        clamp_events: u64,
        probe: &TelemetryProbe,
    ) -> TelemetrySnapshot {
        let inner = probe.inner.lock().unwrap();
        TelemetrySnapshot {
            substrate: substrate.to_string(),
            policy: policy.to_string(),
            p: sched.node_charges.len(),
            m,
            seed,
            sched: sched.clone(),
            scorer_paths,
            clamp_events,
            windows: inner.windows.iter().copied().collect(),
            node_busy: inner.node_busy.clone(),
            response_static_us: inner.response_static_us.clone(),
            response_dynamic_us: inner.response_dynamic_us.clone(),
        }
    }
}

pub(crate) fn u(n: u64) -> Value {
    Value::UInt(n)
}

pub(crate) fn fnum(x: f64) -> Value {
    Value::Float(x)
}

pub(crate) fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Escape a string for use as a Prometheus label *value*: the text
/// exposition format requires `\`, `"` and newline escaped inside the
/// quoted value. Registry spec slugs, scenario names and trace names
/// are caller-supplied, so the run-identity labels must go through
/// this.
pub fn prom_label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn hist_value(h: &LogHistogram) -> Value {
    let buckets: Vec<Value> = h
        .nonzero_buckets()
        .into_iter()
        .map(|(i, _, _, c)| Value::Array(vec![u(i as u64), u(c)]))
        .collect();
    obj(vec![
        ("count", u(h.count())),
        ("sum", u(h.sum())),
        ("min", u(h.min())),
        ("max", u(h.max())),
        ("buckets", Value::Array(buckets)),
    ])
}

fn hist_from_value(v: &Value, what: &str) -> Result<LogHistogram, String> {
    let field = |k: &str| -> Result<u64, String> {
        v.get(k)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{what}: missing or non-integer '{k}'"))
    };
    let sum = field("sum")?;
    let min = field("min")?;
    let max = field("max")?;
    let mut pairs = Vec::new();
    for b in v
        .get("buckets")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{what}: missing 'buckets' array"))?
    {
        let pair = b
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("{what}: bucket is not an [index, count] pair"))?;
        let i = pair[0]
            .as_u64()
            .ok_or_else(|| format!("{what}: non-integer bucket index"))?;
        let c = pair[1]
            .as_u64()
            .ok_or_else(|| format!("{what}: non-integer bucket count"))?;
        pairs.push((i as usize, c));
    }
    let h = LogHistogram::from_sparse(&pairs, sum, min, max);
    if h.count() != field("count")? {
        return Err(format!("{what}: bucket counts disagree with 'count'"));
    }
    Ok(h)
}

/// Version tag of the snapshot JSON encoding.
pub const TELEMETRY_SCHEMA_VERSION: u64 = 1;

impl TelemetrySnapshot {
    /// The deterministic value-tree encoding: every field except the
    /// wall-clock span durations (`stage_ns`), which vary run to run.
    /// For a fixed seed and spec this encodes to byte-identical JSON
    /// across runs and machines.
    pub fn to_value(&self) -> Value {
        let stages: Vec<Value> = Stage::ALL
            .iter()
            .map(|&s| {
                obj(vec![
                    ("stage", Value::Str(s.as_str().to_string())),
                    ("calls", u(self.sched.stage_calls[s as usize])),
                    ("span_samples", u(self.sched.stage_samples[s as usize])),
                ])
            })
            .collect();
        let windows: Vec<Value> = self
            .windows
            .iter()
            .map(|w| {
                obj(vec![
                    ("at_us", u(w.at_us)),
                    ("theta2_star", fnum(w.theta2_star)),
                    ("a", fnum(w.a_hat)),
                    ("r", fnum(w.r_hat)),
                    ("rho", fnum(w.rho)),
                    ("theta_hat", fnum(w.theta_hat)),
                    ("clamp_events", u(w.clamp_events)),
                ])
            })
            .collect();
        let scorer_paths = match &self.scorer_paths {
            Some(paths) => obj(paths
                .entries()
                .iter()
                .map(|&(k, v)| (k, u(v)))
                .collect::<Vec<_>>()),
            None => Value::Null,
        };
        obj(vec![
            ("schema", u(TELEMETRY_SCHEMA_VERSION)),
            ("substrate", Value::Str(self.substrate.clone())),
            ("policy", Value::Str(self.policy.clone())),
            ("p", u(self.p as u64)),
            ("m", u(self.m as u64)),
            ("seed", u(self.seed)),
            (
                "place",
                obj(vec![
                    ("calls", u(self.sched.place_calls)),
                    ("stay_local", u(self.sched.stay_local)),
                    ("remote", u(self.sched.remote)),
                    ("no_live_nodes", u(self.sched.no_live_nodes)),
                    ("restarts", u(self.sched.restarts)),
                ]),
            ),
            ("stages", Value::Array(stages)),
            ("scorer_paths", scorer_paths),
            (
                "reservation",
                obj(vec![
                    ("clamp_events", u(self.clamp_events)),
                    ("series", Value::Array(windows)),
                ]),
            ),
            ("nodes", {
                let mut nodes = vec![
                    (
                        "busy",
                        Value::Array(self.node_busy.iter().map(|&b| fnum(b)).collect()),
                    ),
                    (
                        "charges",
                        Value::Array(self.sched.node_charges.iter().map(|&c| u(c)).collect()),
                    ),
                ];
                if !self.sched.region_charges.is_empty() {
                    nodes.push((
                        "region_charges",
                        Value::Array(self.sched.region_charges.iter().map(|&c| u(c)).collect()),
                    ));
                }
                obj(nodes)
            }),
            (
                "hists",
                obj(vec![
                    ("candidates", hist_value(&self.sched.candidates_hist)),
                    ("latency_us", hist_value(&self.sched.latency_us_hist)),
                    ("response_static_us", hist_value(&self.response_static_us)),
                    ("response_dynamic_us", hist_value(&self.response_dynamic_us)),
                ]),
            ),
        ])
    }

    /// The deterministic JSON encoding of [`to_value`](Self::to_value),
    /// pretty-printed with a trailing newline (the `--telemetry` file
    /// format).
    pub fn to_json(&self) -> String {
        let mut s = self.to_value().to_json_pretty();
        s.push('\n');
        s
    }

    /// Parse a snapshot back from the text [`to_json`](Self::to_json)
    /// wrote (`msweb metrics-dump --from`).
    pub fn from_json(text: &str) -> Result<TelemetrySnapshot, String> {
        let v = Value::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        TelemetrySnapshot::from_value(&v)
    }

    /// Parse a snapshot back from its [`to_value`](Self::to_value)
    /// encoding. Wall-clock span durations come back as zero (they are
    /// not encoded). Fails with a description on schema mismatch.
    pub fn from_value(v: &Value) -> Result<TelemetrySnapshot, String> {
        let version = v
            .get("schema")
            .and_then(Value::as_u64)
            .ok_or("missing 'schema' tag")?;
        if version > TELEMETRY_SCHEMA_VERSION {
            return Err(format!("unsupported telemetry schema {version}"));
        }
        let text = |k: &str| -> Result<String, String> {
            Ok(v.get(k)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("missing '{k}'"))?
                .to_string())
        };
        let int = |node: &Value, k: &str| -> Result<u64, String> {
            node.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing or non-integer '{k}'"))
        };
        let float = |node: &Value, k: &str| -> Result<f64, String> {
            match node.get(k) {
                Some(Value::Null) => Ok(f64::NAN),
                Some(x) => x.as_f64().ok_or_else(|| format!("non-numeric '{k}'")),
                None => Err(format!("missing '{k}'")),
            }
        };

        let p = int(v, "p")? as usize;
        let place = v.get("place").ok_or("missing 'place'")?;
        let mut sched = SchedTelemetry::new(p);
        sched.place_calls = int(place, "calls")?;
        sched.stay_local = int(place, "stay_local")?;
        sched.remote = int(place, "remote")?;
        sched.no_live_nodes = int(place, "no_live_nodes")?;
        sched.restarts = int(place, "restarts")?;

        let stages = v
            .get("stages")
            .and_then(Value::as_array)
            .ok_or("missing 'stages'")?;
        for s in stages {
            let name = s
                .get("stage")
                .and_then(Value::as_str)
                .ok_or("stage entry without a name")?;
            let Some(stage) = Stage::ALL.iter().find(|k| k.as_str() == name) else {
                continue; // tolerate stages from a newer schema
            };
            sched.stage_calls[*stage as usize] = int(s, "calls")?;
            sched.stage_samples[*stage as usize] = int(s, "span_samples")?;
        }

        let scorer_paths = match v.get("scorer_paths") {
            None | Some(Value::Null) => None,
            Some(sp) => Some(ScorerPaths {
                indexed: int(sp, "indexed")?,
                dense_unindexed: int(sp, "dense_unindexed")?,
                dense_small: int(sp, "dense_small")?,
                dense_degenerate: int(sp, "dense_degenerate")?,
                dense_no_range: int(sp, "dense_no_range")?,
            }),
        };

        let reservation = v.get("reservation").ok_or("missing 'reservation'")?;
        let clamp_events = int(reservation, "clamp_events")?;
        let mut windows = Vec::new();
        for w in reservation
            .get("series")
            .and_then(Value::as_array)
            .ok_or("missing reservation 'series'")?
        {
            windows.push(WindowSample {
                at_us: int(w, "at_us")?,
                theta2_star: float(w, "theta2_star")?,
                a_hat: float(w, "a")?,
                r_hat: float(w, "r")?,
                rho: float(w, "rho")?,
                theta_hat: float(w, "theta_hat")?,
                clamp_events: int(w, "clamp_events")?,
            });
        }

        let nodes = v.get("nodes").ok_or("missing 'nodes'")?;
        let mut node_busy = Vec::new();
        for b in nodes
            .get("busy")
            .and_then(Value::as_array)
            .ok_or("missing node 'busy'")?
        {
            node_busy.push(b.as_f64().ok_or("non-numeric node busy gauge")?);
        }
        let charges = nodes
            .get("charges")
            .and_then(Value::as_array)
            .ok_or("missing node 'charges'")?;
        if charges.len() != p {
            return Err(format!(
                "node charges length {} disagrees with p={p}",
                charges.len()
            ));
        }
        for (i, c) in charges.iter().enumerate() {
            sched.node_charges[i] = c.as_u64().ok_or("non-integer node charge count")?;
        }
        if let Some(region_charges) = nodes.get("region_charges").and_then(Value::as_array) {
            for c in region_charges {
                sched
                    .region_charges
                    .push(c.as_u64().ok_or("non-integer region charge count")?);
            }
        }

        let hists = v.get("hists").ok_or("missing 'hists'")?;
        let hist = |k: &str| -> Result<LogHistogram, String> {
            hist_from_value(
                hists.get(k).ok_or_else(|| format!("missing hist '{k}'"))?,
                k,
            )
        };
        sched.candidates_hist = hist("candidates")?;
        sched.latency_us_hist = hist("latency_us")?;

        Ok(TelemetrySnapshot {
            substrate: text("substrate")?,
            policy: text("policy")?,
            p,
            m: int(v, "m")? as usize,
            seed: int(v, "seed")?,
            sched,
            scorer_paths,
            clamp_events,
            windows,
            node_busy,
            response_static_us: hist("response_static_us")?,
            response_dynamic_us: hist("response_dynamic_us")?,
        })
    }

    /// Render the snapshot in the Prometheus text exposition format.
    /// Unlike the JSON encoding this *does* include the sampled
    /// wall-clock span totals (`msweb_stage_span_ns_total`), which are
    /// inherently nondeterministic.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let w = &mut out;

        let _ = writeln!(w, "# HELP msweb_run_info Identity of the telemetered run.");
        let _ = writeln!(w, "# TYPE msweb_run_info gauge");
        let _ = writeln!(
            w,
            "msweb_run_info{{substrate=\"{}\",policy=\"{}\",p=\"{}\",m=\"{}\",seed=\"{}\"}} 1",
            prom_label_escape(&self.substrate),
            prom_label_escape(&self.policy),
            self.p,
            self.m,
            self.seed
        );

        let _ = writeln!(
            w,
            "# HELP msweb_place_decisions_total Placement decisions by outcome \
             (matches the v2 decision-log 'decision'/'drop' events)."
        );
        let _ = writeln!(w, "# TYPE msweb_place_decisions_total counter");
        for (outcome, n) in [
            ("stay_local", self.sched.stay_local),
            ("remote", self.sched.remote),
            ("no_live_nodes", self.sched.no_live_nodes),
        ] {
            let _ = writeln!(
                w,
                "msweb_place_decisions_total{{outcome=\"{outcome}\"}} {n}"
            );
        }
        let _ = writeln!(
            w,
            "# HELP msweb_place_restarts_total Post-failure re-placements."
        );
        let _ = writeln!(w, "# TYPE msweb_place_restarts_total counter");
        let _ = writeln!(w, "msweb_place_restarts_total {}", self.sched.restarts);

        let _ = writeln!(
            w,
            "# HELP msweb_stage_calls_total Pipeline stage invocations."
        );
        let _ = writeln!(w, "# TYPE msweb_stage_calls_total counter");
        for &s in &Stage::ALL {
            let _ = writeln!(
                w,
                "msweb_stage_calls_total{{stage=\"{}\"}} {}",
                s.as_str(),
                self.sched.stage_calls[s as usize]
            );
        }
        let _ = writeln!(
            w,
            "# HELP msweb_stage_span_ns_total Sampled wall-clock nanoseconds \
             per stage (1 in {SPAN_SAMPLE_EVERY} decisions is timed)."
        );
        let _ = writeln!(w, "# TYPE msweb_stage_span_ns_total counter");
        for &s in &Stage::ALL {
            let _ = writeln!(
                w,
                "msweb_stage_span_ns_total{{stage=\"{}\"}} {}",
                s.as_str(),
                self.sched.stage_ns[s as usize]
            );
        }
        let _ = writeln!(
            w,
            "# HELP msweb_stage_span_samples_total Timed invocations per stage."
        );
        let _ = writeln!(w, "# TYPE msweb_stage_span_samples_total counter");
        for &s in &Stage::ALL {
            let _ = writeln!(
                w,
                "msweb_stage_span_samples_total{{stage=\"{}\"}} {}",
                s.as_str(),
                self.sched.stage_samples[s as usize]
            );
        }

        if let Some(paths) = &self.scorer_paths {
            let _ = writeln!(
                w,
                "# HELP msweb_scorer_path_total RSRC scorer resolution path: \
                 tournament index vs dense-scan fallbacks."
            );
            let _ = writeln!(w, "# TYPE msweb_scorer_path_total counter");
            for (path, n) in paths.entries() {
                let _ = writeln!(w, "msweb_scorer_path_total{{path=\"{path}\"}} {n}");
            }
        }

        let _ = writeln!(
            w,
            "# HELP msweb_reservation_clamp_total Admission-cap clamp events \
             (θ interval midpoint clamped or cap forced degenerate)."
        );
        let _ = writeln!(w, "# TYPE msweb_reservation_clamp_total counter");
        let _ = writeln!(w, "msweb_reservation_clamp_total {}", self.clamp_events);
        let _ = writeln!(
            w,
            "# HELP msweb_monitor_windows_total Monitor windows sampled."
        );
        let _ = writeln!(w, "# TYPE msweb_monitor_windows_total counter");
        let _ = writeln!(w, "msweb_monitor_windows_total {}", self.windows.len());
        if let Some(last) = self.windows.last() {
            for (name, help, value) in [
                (
                    "msweb_reservation_theta2_star",
                    "Theorem 1 admission cap θ2* (latest window).",
                    last.theta2_star,
                ),
                (
                    "msweb_reservation_arrival_ratio_a",
                    "Measured arrival ratio a (EWMA, latest window).",
                    last.a_hat,
                ),
                (
                    "msweb_reservation_demand_ratio_r",
                    "Measured demand-ratio proxy r (EWMA, latest window).",
                    last.r_hat,
                ),
                (
                    "msweb_reservation_rho",
                    "Mean node utilisation ρ (latest window).",
                    last.rho,
                ),
                (
                    "msweb_reservation_theta_hat",
                    "Measured master-local dynamic fraction θ̂ (latest window).",
                    last.theta_hat,
                ),
            ] {
                let _ = writeln!(w, "# HELP {name} {help}");
                let _ = writeln!(w, "# TYPE {name} gauge");
                let _ = writeln!(w, "{name} {value}");
            }
        }

        let _ = writeln!(
            w,
            "# HELP msweb_node_busy_ratio Per-node busy fraction over the \
             latest monitor window."
        );
        let _ = writeln!(w, "# TYPE msweb_node_busy_ratio gauge");
        for (i, b) in self.node_busy.iter().enumerate() {
            let _ = writeln!(w, "msweb_node_busy_ratio{{node=\"{i}\"}} {b}");
        }
        let _ = writeln!(
            w,
            "# HELP msweb_node_charges_total Placements charged to each node \
             (matches the 'chosen' field of decision-log events)."
        );
        let _ = writeln!(w, "# TYPE msweb_node_charges_total counter");
        for (i, c) in self.sched.node_charges.iter().enumerate() {
            let _ = writeln!(w, "msweb_node_charges_total{{node=\"{i}\"}} {c}");
        }
        if !self.sched.region_charges.is_empty() {
            let _ = writeln!(
                w,
                "# HELP msweb_region_charges_total Placements charged to each \
                 front-tier region by the region-selector stage."
            );
            let _ = writeln!(w, "# TYPE msweb_region_charges_total counter");
            for (i, c) in self.sched.region_charges.iter().enumerate() {
                let _ = writeln!(w, "msweb_region_charges_total{{region=\"{i}\"}} {c}");
            }
        }

        prom_histogram(
            w,
            "msweb_scorer_candidates",
            "Candidate-set size per scored decision.",
            "",
            &self.sched.candidates_hist,
        );
        prom_histogram(
            w,
            "msweb_transfer_latency_us",
            "Transfer latency per placement, microseconds.",
            "",
            &self.sched.latency_us_hist,
        );
        prom_histogram(
            w,
            "msweb_response_us",
            "End-to-end response time, microseconds (matches the \
             decision-log 'complete' events).",
            "class=\"static\"",
            &self.response_static_us,
        );
        prom_histogram(
            w,
            "msweb_response_us",
            "",
            "class=\"dynamic\"",
            &self.response_dynamic_us,
        );
        out
    }
}

impl PartialEq for TelemetrySnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.to_value() == other.to_value()
    }
}

impl serde::Serialize for TelemetrySnapshot {
    fn to_value(&self) -> Value {
        TelemetrySnapshot::to_value(self)
    }
}

/// Append one histogram in Prometheus exposition form: cumulative
/// `_bucket{le=...}` lines over the occupied buckets, then `_sum` and
/// `_count`. `extra_label` ("" or `key="value"`) is merged into every
/// label set; pass the HELP text only on the first class of a metric.
fn prom_histogram(out: &mut String, name: &str, help: &str, extra_label: &str, h: &LogHistogram) {
    use std::fmt::Write as _;
    if !help.is_empty() {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
    }
    let sep = if extra_label.is_empty() { "" } else { "," };
    let mut cumulative = 0u64;
    for (_, _, hi, c) in h.nonzero_buckets() {
        cumulative += c;
        let _ = writeln!(
            out,
            "{name}_bucket{{{extra_label}{sep}le=\"{hi}\"}} {cumulative}"
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{{{extra_label}{sep}le=\"+Inf\"}} {}",
        h.count()
    );
    if extra_label.is_empty() {
        let _ = writeln!(out, "{name}_sum {}", h.sum());
        let _ = writeln!(out, "{name}_count {}", h.count());
    } else {
        let _ = writeln!(out, "{name}_sum{{{extra_label}}} {}", h.sum());
        let _ = writeln!(out, "{name}_count{{{extra_label}}} {}", h.count());
    }
}

/// Render the `msweb top`-style table live runs print to stderr: the
/// latest controller window plus a per-node busy/in-flight/finished
/// row. `in_flight` and `finished` may be empty when the caller has no
/// per-node counters.
pub fn render_top(
    window: Option<&WindowSample>,
    busy: &[f64],
    in_flight: &[u64],
    finished: &[u64],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    match window {
        Some(s) => {
            let _ = writeln!(
                out,
                "[msweb top] t={:>8.2}s  θ2*={:.3}  θ̂={:.3}  a={:.3}  r={:.4}  ρ={:.2}  clamps={}",
                s.at_us as f64 / 1e6,
                s.theta2_star,
                s.theta_hat,
                s.a_hat,
                s.r_hat,
                s.rho,
                s.clamp_events
            );
        }
        None => {
            let _ = writeln!(out, "[msweb top] warming up (no monitor window yet)");
        }
    }
    let _ = writeln!(out, "  node   busy       bar              in-flight  done");
    for (i, &b) in busy.iter().enumerate() {
        let filled = (b.clamp(0.0, 1.0) * 16.0).round() as usize;
        let bar: String = "#".repeat(filled) + &".".repeat(16 - filled);
        let inflight = in_flight.get(i).copied().unwrap_or(0);
        let done = finished.get(i).copied().unwrap_or(0);
        let _ = writeln!(
            out,
            "  {i:>4}   {b:>5.2}  [{bar}]  {inflight:>9}  {done:>5}"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut sched = SchedTelemetry::new(4);
        sched.place_calls = 100;
        sched.stay_local = 40;
        sched.remote = 60;
        sched.stage_calls = [100, 100, 100, 60, 100];
        sched.stage_ns = [5, 4, 3, 2, 1]; // excluded from JSON
        sched.stage_samples = [2, 2, 2, 1, 2];
        sched.node_charges = vec![30, 25, 25, 20];
        sched.candidates_hist.record_n(3, 60);
        sched.latency_us_hist.record_n(200, 60);
        sched.latency_us_hist.record_n(0, 40);
        let probe = TelemetryProbe::new();
        probe.record_window(WindowSample {
            at_us: 500_000,
            theta2_star: 0.42,
            a_hat: 0.25,
            r_hat: 0.025,
            rho: 0.8,
            theta_hat: 0.3,
            clamp_events: 1,
        });
        probe.set_node_busy(&[0.5, 0.25, 0.75, 1.0]);
        probe.record_response(false, 12_000);
        probe.record_response(true, 90_000);
        TelemetrySnapshot::assemble(
            "sim",
            "ms",
            42,
            2,
            &sched,
            Some(ScorerPaths {
                indexed: 55,
                dense_small: 5,
                ..ScorerPaths::default()
            }),
            1,
            &probe,
        )
    }

    #[test]
    fn json_round_trip() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        let parsed = Value::parse(&json).expect("snapshot JSON parses");
        let back = TelemetrySnapshot::from_value(&parsed).expect("snapshot decodes");
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn region_charges_round_trip_and_stay_off_regionless_snapshots() {
        let regionless = sample_snapshot();
        assert!(!regionless.to_json().contains("region_charges"));
        assert!(!regionless
            .to_prometheus()
            .contains("msweb_region_charges_total"));

        let mut snap = sample_snapshot();
        snap.sched.region_charges = vec![70, 30];
        let json = snap.to_json();
        assert!(json.contains("region_charges"));
        let back = TelemetrySnapshot::from_json(&json).expect("snapshot decodes");
        assert_eq!(back.sched.region_charges, [70, 30]);
        assert_eq!(back, snap);
        assert!(snap
            .to_prometheus()
            .contains("msweb_region_charges_total{region=\"1\"} 30"));
    }

    #[test]
    fn span_ns_is_not_encoded() {
        let mut snap = sample_snapshot();
        let before = snap.to_json();
        snap.sched.stage_ns = [999; STAGE_COUNT];
        assert_eq!(snap.to_json(), before);
        assert!(!before.contains("span_ns"));
    }

    #[test]
    fn prometheus_has_the_headline_metrics() {
        let prom = sample_snapshot().to_prometheus();
        for needle in [
            "msweb_run_info{substrate=\"sim\",policy=\"ms\",p=\"4\",m=\"2\",seed=\"42\"} 1",
            "msweb_place_decisions_total{outcome=\"remote\"} 60",
            "msweb_stage_span_ns_total{stage=\"scorer\"} 2",
            "msweb_scorer_path_total{path=\"indexed\"} 55",
            "msweb_reservation_theta2_star 0.42",
            "msweb_reservation_clamp_total 1",
            "msweb_node_busy_ratio{node=\"3\"} 1",
            "msweb_node_charges_total{node=\"0\"} 30",
            "msweb_response_us_bucket{class=\"dynamic\",le=\"+Inf\"} 1",
            "msweb_transfer_latency_us_count 100",
        ] {
            assert!(prom.contains(needle), "missing {needle:?} in:\n{prom}");
        }
    }

    #[test]
    fn run_info_labels_are_escaped() {
        let mut snap = sample_snapshot();
        snap.policy = "spec\"with\\quotes\nand newline".to_string();
        let prom = snap.to_prometheus();
        assert!(
            prom.contains("policy=\"spec\\\"with\\\\quotes\\nand newline\""),
            "{prom}"
        );
        assert!(!prom.contains("policy=\"spec\"with"), "{prom}");
    }

    #[test]
    fn region_charge_gauges_carry_help_and_type() {
        let mut snap = sample_snapshot();
        snap.sched.region_charges = vec![70, 30];
        let prom = snap.to_prometheus();
        let charges = prom
            .find("msweb_region_charges_total{")
            .expect("region charge series present");
        let help = prom
            .find("# HELP msweb_region_charges_total")
            .expect("HELP line present");
        let typ = prom
            .find("# TYPE msweb_region_charges_total")
            .expect("TYPE line present");
        assert!(help < typ && typ < charges, "header lines precede series");
    }

    #[test]
    fn probe_window_ring_is_bounded_but_counts_everything() {
        let probe = TelemetryProbe::new();
        let total = WINDOW_RING_CAP + 100;
        for i in 0..total {
            probe.record_window(WindowSample {
                at_us: i as u64,
                theta2_star: 0.4,
                a_hat: 0.25,
                r_hat: 0.025,
                rho: 0.5,
                theta_hat: 0.3,
                clamp_events: 0,
            });
        }
        assert_eq!(probe.window_count(), total);
        assert_eq!(probe.last_window().unwrap().at_us, total as u64 - 1);
        let inner = probe.inner.lock().unwrap();
        assert_eq!(inner.windows.len(), WINDOW_RING_CAP);
        assert_eq!(inner.windows.front().unwrap().at_us, 100);
    }

    #[test]
    fn top_table_renders_every_node() {
        let snap = sample_snapshot();
        let top = render_top(
            snap.windows.last(),
            &snap.node_busy,
            &[1, 0, 2, 0],
            &[10, 11, 12, 13],
        );
        assert!(top.contains("θ2*=0.420"), "{top}");
        for node in 0..4 {
            assert!(top.contains(&format!("\n  {node:>4}   ")), "{top}");
        }
    }
}
