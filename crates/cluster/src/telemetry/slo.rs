//! Declarative SLO engine: multi-window burn-rate rules over the
//! per-window telemetry signals, evaluated identically during a run
//! (alerts to stderr plus an `alert` trace event) and after the fact
//! from a decision log alone (`msweb slo-check`).
//!
//! # Rule grammar
//!
//! Rules load from a JSON document:
//!
//! ```json
//! {"rules": [
//!   {"name": "stretch-burn", "signal": "stretch", "budget": 1.5,
//!    "burn": [{"windows": 6, "rate": 1.0}, {"windows": 2, "rate": 2.0}]},
//!   {"name": "drop-budget", "signal": "drop_rate", "budget": 0.01,
//!    "burn": [{"windows": 4, "rate": 1.0}]}
//! ]}
//! ```
//!
//! * `signal` — what the rule watches per monitor window:
//!   `stretch` (the window's mean stretch over its completions;
//!   windows that complete nothing are skipped, mirroring
//!   [`Metrics::close_window`](crate::Metrics::close_window)),
//!   `drop_rate` (window drops ÷ (drops + completions)), or
//!   `clamp_rate` (1 when the reservation controller's cap
//!   recomputation clamped in that window, else 0).
//! * `budget` — the SLO: the signal level the service is allowed to
//!   sustain.
//! * `burn` — one entry per alerting window: the rule *fires* at a
//!   monitor tick when the rolling mean of the signal over the last
//!   `windows` measured windows reaches `rate × budget`. Short windows
//!   with high rates catch fast burns; long windows with rate 1 catch
//!   slow budget exhaustion. An [`AlertEvent`] is emitted on each
//!   false→true edge of a burn condition, never re-emitted while it
//!   stays true.
//!
//! Everything is integer/window-indexed and f64-deterministic: for a
//! fixed event log the engine emits byte-identical alerts on every
//! machine, which is what lets `slo-check` golden fixtures gate CI.

use std::collections::{HashMap, VecDeque};

use msweb_simcore::{SimDuration, StretchAccumulator};
use serde::Value;

use crate::reservation::ReservationController;
use crate::sched::{TraceEvent, TraceLog};

use super::{fnum, obj, u};

/// What a rule watches, per monitor window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloSignal {
    /// Mean stretch of the window's completions.
    Stretch,
    /// Window drops ÷ (drops + completions).
    DropRate,
    /// 1 when the controller clamped the admission cap this window.
    ClampRate,
}

impl SloSignal {
    /// The signal's name in the rule grammar and alert output.
    pub fn as_str(self) -> &'static str {
        match self {
            SloSignal::Stretch => "stretch",
            SloSignal::DropRate => "drop_rate",
            SloSignal::ClampRate => "clamp_rate",
        }
    }

    /// Parse a signal name.
    pub fn parse(s: &str) -> Result<SloSignal, String> {
        match s {
            "stretch" => Ok(SloSignal::Stretch),
            "drop_rate" => Ok(SloSignal::DropRate),
            "clamp_rate" => Ok(SloSignal::ClampRate),
            other => Err(format!(
                "unknown signal {other:?} (expected stretch, drop_rate or clamp_rate)"
            )),
        }
    }
}

/// One alerting window of a rule: fire when the rolling mean over the
/// last `windows` measured windows reaches `rate × budget`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnWindow {
    /// Rolling-window length, in measured monitor windows (≥ 1).
    pub windows: usize,
    /// Burn-rate threshold as a multiple of the budget (> 0).
    pub rate: f64,
}

/// One declarative SLO rule.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Rule name, carried into every alert it fires.
    pub name: String,
    /// The watched signal.
    pub signal: SloSignal,
    /// The budget: the sustained signal level the SLO allows.
    pub budget: f64,
    /// The burn-rate alerting windows.
    pub burn: Vec<BurnWindow>,
}

/// A parsed, validated rules document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloRules {
    /// The rules, in document order.
    pub rules: Vec<SloRule>,
}

impl SloRules {
    /// Parse and validate a rules JSON document (see the module docs
    /// for the grammar).
    pub fn from_json(text: &str) -> Result<SloRules, String> {
        let v = Value::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let mut rules = Vec::new();
        for (i, r) in v
            .get("rules")
            .and_then(Value::as_array)
            .ok_or("rules document missing 'rules' array")?
            .iter()
            .enumerate()
        {
            let ctx = |msg: String| format!("rule {i}: {msg}");
            let name = r
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| ctx("missing 'name'".into()))?
                .to_string();
            if name.is_empty() {
                return Err(ctx("empty 'name'".into()));
            }
            let signal = SloSignal::parse(
                r.get("signal")
                    .and_then(Value::as_str)
                    .ok_or_else(|| ctx("missing 'signal'".into()))?,
            )
            .map_err(ctx)?;
            let budget = r
                .get("budget")
                .and_then(Value::as_f64)
                .ok_or_else(|| ctx("missing or non-numeric 'budget'".into()))?;
            if !(budget.is_finite() && budget > 0.0) {
                return Err(ctx(format!(
                    "budget must be finite and positive, got {budget}"
                )));
            }
            let mut burn = Vec::new();
            for (j, b) in r
                .get("burn")
                .and_then(Value::as_array)
                .ok_or_else(|| ctx("missing 'burn' array".into()))?
                .iter()
                .enumerate()
            {
                let windows = b
                    .get("windows")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| ctx(format!("burn {j}: missing integer 'windows'")))?
                    as usize;
                if windows == 0 {
                    return Err(ctx(format!("burn {j}: 'windows' must be >= 1")));
                }
                let rate = b
                    .get("rate")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| ctx(format!("burn {j}: missing numeric 'rate'")))?;
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(ctx(format!("burn {j}: rate must be finite and positive")));
                }
                burn.push(BurnWindow { windows, rate });
            }
            if burn.is_empty() {
                return Err(ctx("'burn' array is empty".into()));
            }
            rules.push(SloRule {
                name,
                signal,
                budget,
                burn,
            });
        }
        if rules.is_empty() {
            return Err("rules document has no rules".to_string());
        }
        Ok(SloRules { rules })
    }
}

/// The per-window signal values one monitor tick yields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSignals {
    /// Window end, microseconds of substrate time.
    pub at_us: u64,
    /// Mean stretch of the window's completions; `None` when nothing
    /// completed (the stretch history skips such windows).
    pub stretch: Option<f64>,
    /// Window drops ÷ (drops + completions); 0 when both are 0.
    pub drop_rate: f64,
    /// Whether the controller's cap recomputation clamped this window.
    pub clamped: bool,
}

/// A fired burn-rate alert.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Window end the alert fired at, microseconds.
    pub at_us: u64,
    /// Name of the rule that fired.
    pub rule: String,
    /// The watched signal.
    pub signal: SloSignal,
    /// Rolling-window length that fired.
    pub windows: usize,
    /// The burn-rate threshold that was crossed.
    pub burn_rate: f64,
    /// Observed rolling mean of the signal.
    pub observed: f64,
    /// The rule's budget.
    pub budget: f64,
}

impl AlertEvent {
    /// The canonical single-line rendering, used both for stderr and
    /// the `slo-check` report (byte-deterministic for fixed inputs).
    pub fn to_line(&self) -> String {
        format!(
            "ALERT at_us={} rule={} signal={} windows={} burn={} observed={} budget={}",
            self.at_us,
            self.rule,
            self.signal.as_str(),
            self.windows,
            self.burn_rate,
            self.observed,
            self.budget
        )
    }

    /// The alert as a v2 trace event, for runs that log their decisions.
    pub fn to_trace_event(&self) -> TraceEvent {
        TraceEvent::Alert {
            at_us: self.at_us,
            rule: self.rule.clone(),
            signal: self.signal.as_str().to_string(),
            windows: self.windows as u64,
            burn_rate: self.burn_rate,
            observed: self.observed,
            budget: self.budget,
        }
    }

    /// The alert as a JSON value (the `slo-check --json` report rows).
    pub fn to_value(&self) -> Value {
        obj(vec![
            ("at_us", u(self.at_us)),
            ("rule", Value::Str(self.rule.clone())),
            ("signal", Value::Str(self.signal.as_str().to_string())),
            ("windows", u(self.windows as u64)),
            ("burn_rate", fnum(self.burn_rate)),
            ("observed", fnum(self.observed)),
            ("budget", fnum(self.budget)),
        ])
    }
}

/// Per-rule evaluation state.
#[derive(Debug)]
struct RuleState {
    rule: SloRule,
    /// Signal history, newest last, bounded by the longest burn window.
    history: VecDeque<f64>,
    /// Which burn windows are currently firing (edge detection).
    active: Vec<bool>,
}

/// The burn-rate evaluator. Feed it one [`WindowSignals`] per monitor
/// tick; it returns the alerts that fired on that tick's edges.
#[derive(Debug)]
pub struct SloEngine {
    states: Vec<RuleState>,
    alerts_fired: u64,
    // Cumulative-counter baselines for observe_cumulative.
    prev_completed: u64,
    prev_drops: u64,
    prev_clamps: u64,
}

impl SloEngine {
    /// An engine over a validated rule set.
    pub fn new(rules: SloRules) -> SloEngine {
        let states = rules
            .rules
            .into_iter()
            .map(|rule| {
                let depth = rule.burn.iter().map(|b| b.windows).max().unwrap_or(1);
                RuleState {
                    active: vec![false; rule.burn.len()],
                    history: VecDeque::with_capacity(depth),
                    rule,
                }
            })
            .collect();
        SloEngine {
            states,
            alerts_fired: 0,
            prev_completed: 0,
            prev_drops: 0,
            prev_clamps: 0,
        }
    }

    /// Total alerts fired so far.
    pub fn alerts_fired(&self) -> u64 {
        self.alerts_fired
    }

    /// Evaluate one window's signals; returns the newly firing alerts.
    pub fn observe(&mut self, s: &WindowSignals) -> Vec<AlertEvent> {
        let mut fired = Vec::new();
        for state in &mut self.states {
            let value = match state.rule.signal {
                SloSignal::Stretch => s.stretch,
                SloSignal::DropRate => Some(s.drop_rate),
                SloSignal::ClampRate => Some(if s.clamped { 1.0 } else { 0.0 }),
            };
            let Some(value) = value else {
                continue; // unmeasured window: history unchanged
            };
            let depth = state.rule.burn.iter().map(|b| b.windows).max().unwrap_or(1);
            if state.history.len() == depth {
                state.history.pop_front();
            }
            state.history.push_back(value);
            for (i, b) in state.rule.burn.iter().enumerate() {
                if state.history.len() < b.windows {
                    state.active[i] = false;
                    continue;
                }
                // Oldest-to-newest summation keeps the f64 result
                // independent of ring internals.
                let skip = state.history.len() - b.windows;
                let sum: f64 = state.history.iter().skip(skip).sum();
                let observed = sum / b.windows as f64;
                let firing = observed >= b.rate * state.rule.budget;
                if firing && !state.active[i] {
                    fired.push(AlertEvent {
                        at_us: s.at_us,
                        rule: state.rule.name.clone(),
                        signal: state.rule.signal,
                        windows: b.windows,
                        burn_rate: b.rate,
                        observed,
                        budget: state.rule.budget,
                    });
                }
                state.active[i] = firing;
            }
        }
        self.alerts_fired += fired.len() as u64;
        fired
    }

    /// Driver-side convenience: evaluate one window given *cumulative*
    /// run counters (the engine retains the previous tick's values and
    /// diffs). `stretch` is the window's mean stretch as
    /// [`Metrics::close_window`](crate::Metrics::close_window) returns
    /// it.
    pub fn observe_cumulative(
        &mut self,
        at_us: u64,
        stretch: Option<f64>,
        completed: u64,
        drops: u64,
        clamp_events: u64,
    ) -> Vec<AlertEvent> {
        let d_completed = completed.saturating_sub(self.prev_completed);
        let d_drops = drops.saturating_sub(self.prev_drops);
        let clamped = clamp_events > self.prev_clamps;
        self.prev_completed = completed;
        self.prev_drops = drops;
        self.prev_clamps = clamp_events;
        let denom = d_completed + d_drops;
        let drop_rate = if denom == 0 {
            0.0
        } else {
            d_drops as f64 / denom as f64
        };
        self.observe(&WindowSignals {
            at_us,
            stretch,
            drop_rate,
            clamped,
        })
    }
}

/// The outcome of checking one decision log against a rule set.
#[derive(Debug, Clone, PartialEq)]
pub struct SloCheckReport {
    /// Monitor windows (tick events) evaluated.
    pub windows: usize,
    /// Windows that completed at least one request (the stretch
    /// signal's history length).
    pub measured_windows: usize,
    /// Alerts the engine fired, in firing order.
    pub alerts: Vec<AlertEvent>,
    /// `alert` events already recorded in the log (by a run that had
    /// rules attached), counted for cross-reference.
    pub recorded_alerts: usize,
}

impl SloCheckReport {
    /// Whether the log breached the rules (any alert fired).
    pub fn breached(&self) -> bool {
        !self.alerts.is_empty()
    }

    /// The canonical text report: byte-deterministic for a fixed log
    /// and rule set. Ends with `result: ok` or `result: breach` (the
    /// CLI exits non-zero on breach).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "slo-check: {} windows ({} measured), {} alerts, {} recorded in log",
            self.windows,
            self.measured_windows,
            self.alerts.len(),
            self.recorded_alerts
        );
        for a in &self.alerts {
            let _ = writeln!(out, "{}", a.to_line());
        }
        let _ = writeln!(
            out,
            "result: {}",
            if self.breached() { "breach" } else { "ok" }
        );
        out
    }

    /// The report as a JSON value (`slo-check --json`).
    pub fn to_value(&self) -> Value {
        obj(vec![
            ("windows", u(self.windows as u64)),
            ("measured_windows", u(self.measured_windows as u64)),
            (
                "alerts",
                Value::Array(self.alerts.iter().map(AlertEvent::to_value).collect()),
            ),
            ("recorded_alerts", u(self.recorded_alerts as u64)),
            ("breach", Value::Bool(self.breached())),
        ])
    }
}

/// Re-derive the per-window signals from a decision log and evaluate
/// `rules` over them.
///
/// The derivation uses only the log: the reservation controller is
/// rebuilt from the `meta` priors and fed the recorded arrivals,
/// responses and ρ in event order — exactly the call sequence the
/// original run made — so the clamp signal matches the run's, and the
/// window stretch is recomputed from `complete` events against the
/// `decision` events' recorded demands. The result is deterministic
/// for a fixed log regardless of which substrate produced it.
///
/// Multi-segment logs (several `meta` lines) reset the controller and
/// window state per segment; alert history carries across.
pub fn check_log(log: &TraceLog, rules: &SloRules) -> Result<SloCheckReport, String> {
    match log.events.first() {
        Some(TraceEvent::Meta(_)) => {}
        Some(_) => return Err("log does not start with a meta event".to_string()),
        None => return Err("log is empty".to_string()),
    }
    let mut engine = SloEngine::new(rules.clone());
    let mut report = SloCheckReport {
        windows: 0,
        measured_windows: 0,
        alerts: Vec::new(),
        recorded_alerts: 0,
    };

    let mut controller: Option<ReservationController> = None;
    let mut prev_clamps = 0u64;
    let mut demand_by_req: HashMap<u64, u64> = HashMap::new();
    let mut acc = StretchAccumulator::new();
    let mut drops = 0u64;
    let mut completions = 0u64;

    for ev in &log.events {
        match ev {
            TraceEvent::Meta(m) => {
                controller = Some(ReservationController::new(
                    m.m.max(1),
                    m.p.max(1),
                    m.a0,
                    m.r0,
                    true,
                ));
                prev_clamps = 0;
                demand_by_req.clear();
                acc = StretchAccumulator::new();
                drops = 0;
                completions = 0;
            }
            TraceEvent::Decision(d) => {
                if let Some(c) = controller.as_mut() {
                    c.note_arrival(d.dynamic);
                    if d.dynamic {
                        c.note_placement(d.on_master);
                    }
                }
                if d.demand_us > 0 {
                    demand_by_req.insert(d.req, d.demand_us);
                }
            }
            TraceEvent::Drop(d) => {
                // A restart record is followed by the re-placement's own
                // decision event (which notes the arrival); only
                // non-restart drops are losses.
                if !d.restart {
                    drops += 1;
                }
            }
            TraceEvent::Complete {
                req,
                dynamic,
                response_us,
                ..
            } => {
                if let Some(c) = controller.as_mut() {
                    c.note_response(*dynamic, SimDuration::from_micros(*response_us));
                }
                completions += 1;
                if let Some(demand_us) = demand_by_req.remove(req) {
                    acc.record(
                        SimDuration::from_micros(*response_us),
                        SimDuration::from_micros(demand_us),
                    );
                }
            }
            TraceEvent::Tick { at_us, rho, .. } => {
                let Some(c) = controller.as_mut() else {
                    continue;
                };
                c.update(*rho);
                let clamped = c.clamp_events() > prev_clamps;
                prev_clamps = c.clamp_events();
                let stretch = (acc.count() > 0).then(|| acc.stretch());
                if stretch.is_some() {
                    report.measured_windows += 1;
                }
                let denom = completions + drops;
                let drop_rate = if denom == 0 {
                    0.0
                } else {
                    drops as f64 / denom as f64
                };
                report.windows += 1;
                report.alerts.extend(engine.observe(&WindowSignals {
                    at_us: *at_us,
                    stretch,
                    drop_rate,
                    clamped,
                }));
                acc = StretchAccumulator::new();
                drops = 0;
                completions = 0;
            }
            TraceEvent::Alert { .. } => report.recorded_alerts += 1,
            TraceEvent::NodeDown { .. }
            | TraceEvent::NodeUp { .. }
            | TraceEvent::Unknown { .. } => {}
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(json: &str) -> SloRules {
        SloRules::from_json(json).expect("rules parse")
    }

    const STRETCH_RULE: &str = r#"{"rules":[
        {"name":"stretch-burn","signal":"stretch","budget":2.0,
         "burn":[{"windows":3,"rate":1.0},{"windows":1,"rate":3.0}]}
    ]}"#;

    fn window(at_us: u64, stretch: Option<f64>) -> WindowSignals {
        WindowSignals {
            at_us,
            stretch,
            drop_rate: 0.0,
            clamped: false,
        }
    }

    #[test]
    fn rules_parse_and_validate() {
        let r = rules(STRETCH_RULE);
        assert_eq!(r.rules.len(), 1);
        assert_eq!(r.rules[0].signal, SloSignal::Stretch);
        assert_eq!(r.rules[0].burn.len(), 2);
        for bad in [
            r#"{"rules":[]}"#,
            r#"{"rules":[{"name":"x","signal":"nope","budget":1,"burn":[{"windows":1,"rate":1}]}]}"#,
            r#"{"rules":[{"name":"x","signal":"stretch","budget":0,"burn":[{"windows":1,"rate":1}]}]}"#,
            r#"{"rules":[{"name":"x","signal":"stretch","budget":1,"burn":[{"windows":0,"rate":1}]}]}"#,
            r#"{"rules":[{"name":"x","signal":"stretch","budget":1,"burn":[]}]}"#,
        ] {
            assert!(SloRules::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn burn_alerts_fire_on_edges_only() {
        let mut engine = SloEngine::new(rules(STRETCH_RULE));
        // Fast burn: one window at 3× budget fires the short window.
        let fired = engine.observe(&window(1, Some(6.5)));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].windows, 1);
        assert_eq!(fired[0].burn_rate, 3.0);
        // Still burning: no re-fire while the condition stays true.
        let fired = engine.observe(&window(2, Some(6.5)));
        // ...but the slow window cannot fire yet (only 2 of 3 samples).
        assert!(fired.is_empty(), "{fired:?}");
        // Third hot window: the 3-window mean now crosses 1× budget.
        let fired = engine.observe(&window(3, Some(6.5)));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].windows, 3);
        // Recovery clears the edge detector; a new burn re-fires. The
        // first cool windows leave the 3-window mean above budget, so
        // the slow burn stays active (no re-fire) until it drains.
        for t in 4..8 {
            assert!(engine.observe(&window(t, Some(0.5))).is_empty());
        }
        // A hot window after full recovery re-fires both burn windows:
        // 9.0 ≥ 3×2.0 and mean(0.5, 0.5, 9.0) ≥ 1×2.0.
        let fired = engine.observe(&window(8, Some(9.0)));
        assert_eq!(fired.len(), 2);
        assert_eq!(engine.alerts_fired(), 4);
    }

    #[test]
    fn unmeasured_windows_do_not_dilute_the_stretch_history() {
        let mut engine = SloEngine::new(rules(
            r#"{"rules":[{"name":"s","signal":"stretch","budget":1.0,
                "burn":[{"windows":2,"rate":2.0}]}]}"#,
        ));
        assert!(engine.observe(&window(1, Some(2.5))).is_empty());
        // An empty window must not reset or dilute the rolling mean.
        assert!(engine.observe(&window(2, None)).is_empty());
        let fired = engine.observe(&window(3, Some(2.5)));
        assert_eq!(fired.len(), 1, "two measured windows at 2.5 ≥ 2×1.0");
    }

    #[test]
    fn clamp_and_drop_signals_evaluate() {
        let mut engine = SloEngine::new(rules(
            r#"{"rules":[
                {"name":"clamps","signal":"clamp_rate","budget":0.5,
                 "burn":[{"windows":2,"rate":1.0}]},
                {"name":"drops","signal":"drop_rate","budget":0.1,
                 "burn":[{"windows":1,"rate":1.0}]}
            ]}"#,
        ));
        let fired = engine.observe(&WindowSignals {
            at_us: 1,
            stretch: None,
            drop_rate: 0.5,
            clamped: true,
        });
        assert_eq!(fired.len(), 1, "{fired:?}");
        assert_eq!(fired[0].rule, "drops");
        let fired = engine.observe(&WindowSignals {
            at_us: 2,
            stretch: None,
            drop_rate: 0.0,
            clamped: true,
        });
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "clamps");
        assert_eq!(fired[0].observed, 1.0);
    }

    #[test]
    fn observe_cumulative_diffs_the_counters() {
        let mut engine = SloEngine::new(rules(
            r#"{"rules":[{"name":"drops","signal":"drop_rate","budget":0.25,
                "burn":[{"windows":1,"rate":1.0}]}]}"#,
        ));
        // Window 1: 10 completions, 0 drops.
        assert!(engine.observe_cumulative(1, Some(1.0), 10, 0, 0).is_empty());
        // Window 2: 6 more completions, 4 drops → rate 0.4 ≥ budget.
        let fired = engine.observe_cumulative(2, Some(1.0), 16, 4, 0);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].observed, 0.4);
    }

    #[test]
    fn report_renders_deterministically() {
        let report = SloCheckReport {
            windows: 5,
            measured_windows: 4,
            alerts: vec![AlertEvent {
                at_us: 2_000_000,
                rule: "stretch-burn".into(),
                signal: SloSignal::Stretch,
                windows: 3,
                burn_rate: 1.0,
                observed: 2.5,
                budget: 2.0,
            }],
            recorded_alerts: 0,
        };
        assert!(report.breached());
        assert_eq!(
            report.render(),
            "slo-check: 5 windows (4 measured), 1 alerts, 0 recorded in log\n\
             ALERT at_us=2000000 rule=stretch-burn signal=stretch windows=3 burn=1 observed=2.5 budget=2\n\
             result: breach\n"
        );
    }
}
