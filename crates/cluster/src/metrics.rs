//! Run metrics: the stretch factor (the paper's primary metric) broken
//! out per class and placement level, plus response-time distributions.

use msweb_simcore::{Quantiles, SimDuration, StretchAccumulator};
use serde::Serialize;

/// Where a completed dynamic request ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// On a master node.
    Master,
    /// On a slave node.
    Slave,
}

/// Accumulates per-run performance numbers.
#[derive(Debug, Default)]
pub struct Metrics {
    overall: StretchAccumulator,
    stat: StretchAccumulator,
    dynamic: StretchAccumulator,
    dynamic_master: StretchAccumulator,
    dynamic_slave: StretchAccumulator,
    resp_static: Quantiles,
    resp_dynamic: Quantiles,
    dropped: u64,
    restarted: u64,
    dyn_on_master: u64,
    cache_hits: u64,
    node_busy: Vec<f64>,
    /// Per-monitor-window mean stretch, for convergence analysis.
    window_series: Vec<f64>,
    window_acc: StretchAccumulator,
}

/// A finished run's summary (serialisable for the experiment reports).
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct RunSummary {
    /// Completed request count.
    pub completed: u64,
    /// Mean stretch factor over all requests (the paper's metric).
    pub stretch: f64,
    /// Stretch of static requests only.
    pub stretch_static: f64,
    /// Stretch of dynamic requests only.
    pub stretch_dynamic: f64,
    /// Stretch of dynamic requests that ran on masters.
    pub stretch_dynamic_master: f64,
    /// Stretch of dynamic requests that ran on slaves.
    pub stretch_dynamic_slave: f64,
    /// Median static response time, seconds.
    pub median_static_response_s: f64,
    /// Median dynamic response time, seconds.
    pub median_dynamic_response_s: f64,
    /// 99th-percentile static response time, seconds.
    pub p99_static_response_s: f64,
    /// Requests lost to failures (never completed).
    pub dropped: u64,
    /// Requests restarted after a node failure.
    pub restarted: u64,
    /// Completed static requests.
    pub completed_static: u64,
    /// Completed dynamic requests.
    pub completed_dynamic: u64,
    /// Dynamic completions that ran on a master.
    pub dynamic_on_master: u64,
    /// Dynamic requests served from the content cache (Swala extension).
    pub cache_hits: u64,
    /// Coefficient of variation of per-node busy time (0 = perfectly
    /// balanced). Note that master/slave designs are *intentionally*
    /// imbalanced across levels; compare like with like.
    pub node_busy_cv: f64,
    /// Peak-to-mean ratio of per-node busy time.
    pub node_busy_peak_to_mean: f64,
}

impl Metrics {
    /// Fresh, empty metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Record one completed request.
    ///
    /// `response` is arrival-at-cluster to completion; `demand` the
    /// contention-free service demand; `level` is `Some` for dynamic
    /// requests (where they ran) and `None` for static ones.
    pub fn record(&mut self, response: SimDuration, demand: SimDuration, level: Option<Level>) {
        self.overall.record(response, demand);
        self.window_acc.record(response, demand);
        match level {
            None => {
                self.stat.record(response, demand);
                self.resp_static.push(response.as_secs_f64());
            }
            Some(l) => {
                self.dynamic.record(response, demand);
                self.resp_dynamic.push(response.as_secs_f64());
                match l {
                    Level::Master => {
                        self.dyn_on_master += 1;
                        self.dynamic_master.record(response, demand);
                    }
                    Level::Slave => self.dynamic_slave.record(response, demand),
                }
            }
        }
    }

    /// Note a request lost to a failure.
    pub fn note_dropped(&mut self) {
        self.dropped += 1;
    }

    /// Note a request restarted after a failure.
    pub fn note_restarted(&mut self) {
        self.restarted += 1;
    }

    /// Note a dynamic request served from the content cache.
    pub fn note_cache_hit(&mut self) {
        self.cache_hits += 1;
    }

    /// Record the end-of-run per-node busy times (CPU + disk seconds),
    /// for the load-imbalance diagnostics.
    pub fn set_node_busy(&mut self, busy: Vec<f64>) {
        self.node_busy = busy;
    }

    /// Close the current measurement window (called at each monitor
    /// tick): the window's mean stretch is appended to the series and
    /// returned, or `None` when the window completed nothing.
    ///
    /// Windows with no completions are *skipped entirely* rather than
    /// recorded: an empty accumulator's mean stretch is `0/0 = NaN`,
    /// and one NaN entry would poison every later consumer of
    /// [`Metrics::window_series`] (head/tail convergence averages, the
    /// experiment CSVs, telemetry JSON — where NaN is not even
    /// representable). Skipping, rather than carrying the previous
    /// window's value forward, keeps the series a record of *measured*
    /// windows; consumers that need wall-clock alignment should use the
    /// telemetry controller series, which samples every tick. The
    /// returned `Option` carries the same skip to the series recorder
    /// and the SLO engine, which render/treat it as unmeasured.
    pub fn close_window(&mut self) -> Option<f64> {
        if self.window_acc.count() > 0 {
            let stretch = self.window_acc.stretch();
            self.window_series.push(stretch);
            self.window_acc = StretchAccumulator::new();
            Some(stretch)
        } else {
            None
        }
    }

    /// Per-window mean stretch over the run so far.
    pub fn window_series(&self) -> &[f64] {
        &self.window_series
    }

    /// Completed request count.
    pub fn completed(&self) -> u64 {
        self.overall.count()
    }

    /// Requests lost to failures so far (cumulative).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Current mean stretch factor.
    pub fn stretch(&self) -> f64 {
        self.overall.stretch()
    }

    /// Finalise into a serialisable summary.
    pub fn summary(&mut self) -> RunSummary {
        RunSummary {
            completed: self.overall.count(),
            stretch: self.overall.stretch(),
            stretch_static: self.stat.stretch(),
            stretch_dynamic: self.dynamic.stretch(),
            stretch_dynamic_master: self.dynamic_master.stretch(),
            stretch_dynamic_slave: self.dynamic_slave.stretch(),
            median_static_response_s: self.resp_static.median(),
            median_dynamic_response_s: self.resp_dynamic.median(),
            p99_static_response_s: self.resp_static.quantile(0.99),
            dropped: self.dropped,
            restarted: self.restarted,
            completed_static: self.stat.count(),
            completed_dynamic: self.dynamic.count(),
            dynamic_on_master: self.dyn_on_master,
            cache_hits: self.cache_hits,
            node_busy_cv: cv(&self.node_busy),
            node_busy_peak_to_mean: peak_to_mean(&self.node_busy),
        }
    }
}

/// Coefficient of variation (std/mean); 0 for empty or zero-mean data.
fn cv(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    var.sqrt() / mean
}

/// Peak-to-mean ratio; 1 for empty or zero-mean data.
fn peak_to_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if mean <= 0.0 {
        return 1.0;
    }
    xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max) / mean
}

impl RunSummary {
    /// The paper's improvement metric:
    /// `(other.stretch / self.stretch − 1) × 100 %` — how much better
    /// `self` is than `other`.
    ///
    /// Returns 0.0 when either stretch is non-positive or non-finite
    /// (e.g. a baseline run that completed nothing): a ratio against a
    /// zero or NaN baseline is meaningless, and 0 % ("no measured
    /// improvement") is the answer that keeps downstream tables sane.
    pub fn improvement_over_pct(&self, other: &RunSummary) -> f64 {
        let measurable = |s: f64| s.is_finite() && s > 0.0;
        if !measurable(self.stretch) || !measurable(other.stretch) {
            return 0.0;
        }
        (other.stretch / self.stretch - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn empty_windows_never_reach_the_series() {
        let mut m = Metrics::new();
        // Zero-request windows before, between and after real ones must
        // be skipped, never pushed as 0/0 = NaN entries.
        m.close_window();
        m.record(ms(20), ms(10), None);
        m.close_window();
        m.close_window();
        m.record(ms(30), ms(10), None);
        m.close_window();
        assert_eq!(m.window_series().len(), 2);
        assert!(m.window_series().iter().all(|s| s.is_finite()));
    }

    #[test]
    fn improvement_over_degenerate_baseline_is_zero() {
        let mut a = Metrics::new();
        a.record(ms(20), ms(10), None);
        let good = a.summary();
        assert!(good.improvement_over_pct(&good).abs() < 1e-12);
        // A run that completed nothing has stretch 0; both directions
        // of the comparison must degrade to "no measured improvement".
        let empty = Metrics::new().summary();
        assert_eq!(good.improvement_over_pct(&empty), 0.0);
        assert_eq!(empty.improvement_over_pct(&good), 0.0);
        let mut broken = good.clone();
        broken.stretch = f64::NAN;
        assert_eq!(good.improvement_over_pct(&broken), 0.0);
        assert_eq!(broken.improvement_over_pct(&good), 0.0);
    }

    #[test]
    fn class_breakout() {
        let mut m = Metrics::new();
        m.record(ms(20), ms(10), None); // static, stretch 2
        m.record(ms(40), ms(10), Some(Level::Master)); // dyn master, 4
        m.record(ms(60), ms(10), Some(Level::Slave)); // dyn slave, 6
        let s = m.summary();
        assert_eq!(s.completed, 3);
        assert!((s.stretch - 4.0).abs() < 1e-9);
        assert!((s.stretch_static - 2.0).abs() < 1e-9);
        assert!((s.stretch_dynamic - 5.0).abs() < 1e-9);
        assert!((s.stretch_dynamic_master - 4.0).abs() < 1e-9);
        assert!((s.stretch_dynamic_slave - 6.0).abs() < 1e-9);
        assert!((s.median_static_response_s - 0.020).abs() < 1e-9);
    }

    #[test]
    fn improvement_metric() {
        let mut a = Metrics::new();
        a.record(ms(10), ms(10), None);
        let mut b = Metrics::new();
        b.record(ms(15), ms(10), None);
        let sa = a.summary();
        let sb = b.summary();
        assert!((sa.improvement_over_pct(&sb) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn drop_and_restart_counters() {
        let mut m = Metrics::new();
        m.note_dropped();
        m.note_dropped();
        m.note_restarted();
        let s = m.summary();
        assert_eq!(s.dropped, 2);
        assert_eq!(s.restarted, 1);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Metrics::new().summary();
        assert_eq!(s.completed, 0);
        assert_eq!(s.stretch, 0.0);
        assert_eq!(s.node_busy_cv, 0.0);
        assert_eq!(s.node_busy_peak_to_mean, 1.0);
    }

    #[test]
    fn imbalance_diagnostics() {
        let mut m = Metrics::new();
        m.set_node_busy(vec![1.0, 1.0, 1.0, 1.0]);
        let s = m.summary();
        assert!(s.node_busy_cv.abs() < 1e-12, "balanced load has CV 0");
        assert!((s.node_busy_peak_to_mean - 1.0).abs() < 1e-12);

        let mut m = Metrics::new();
        m.set_node_busy(vec![3.0, 1.0, 0.0, 0.0]);
        let s = m.summary();
        assert!(
            s.node_busy_cv > 1.0,
            "skewed load has high CV: {}",
            s.node_busy_cv
        );
        assert!((s.node_busy_peak_to_mean - 3.0).abs() < 1e-12);
    }
}
