//! The demand-knowledge layer: what the scheduler is *told* about a
//! request, kept separate from what is *true*.
//!
//! The paper assumes per-class CPU weights `w` from off-line sampling
//! (§3, Eq. 5) and an expected demand for charge-back — both treated as
//! reliable. That assumption used to be baked into every stage
//! signature as a bare `sampled_w: f64` plus an `expected` duration.
//! [`ReqKnowledge`] replaces those loose parameters with a single
//! *declared* estimate carrying its [`Provenance`], so a composition
//! can be honestly size-oblivious: ground truth (the request's actual
//! service demand) stays private to the driving substrate and reaches
//! the scheduler only through the channels that legitimately need it —
//! [`Scheduler::note_request`](super::Scheduler::note_request) for the
//! decision log's `demand_us` field, and
//! [`Schedule::note_service_end`](super::Schedule::note_service_end)
//! for closing the attained-service books at completion.
//!
//! [`AttainedService`] is the size-oblivious counterweight: per
//! in-flight request it accounts the service already received (fed from
//! tick accounting by both substrates), which is the only demand signal
//! the Gittins/SERPT/LAS scorers in [`super::stages`] consult.

use msweb_simcore::time::SimDuration;
use std::collections::BTreeMap;

/// How a declared demand estimate was produced — i.e. how much the
/// scheduler is entitled to trust it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Provenance {
    /// The declared values are the request's true values (the paper's
    /// idealised off-line sampling: per-request `w`, exact class mix).
    #[default]
    Exact,
    /// The declared values are per-class means — right on average,
    /// wrong per request.
    Sampled,
    /// The declared values are corrupted estimates (misconfigured
    /// sampling, stale tables, adversarial clients).
    Noisy,
    /// Nothing real was declared; the values are population fallbacks
    /// (`w = 0.5`, the running mean demand) and size-aware stages
    /// should expect them to carry no per-request signal.
    Hidden,
}

/// Everything the scheduling pipeline is allowed to know about one
/// request: the declared CPU weight, the declared expected demand, and
/// where those numbers came from.
///
/// This is a *declaration*, not a measurement — under
/// [`Provenance::Exact`] it happens to coincide with the truth, which
/// is exactly the paper's operating point and what the golden fixtures
/// pin down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReqKnowledge {
    /// Declared CPU cost share `w` of Eq. 5. Clamping and the
    /// no-sampling fallback are applied by
    /// [`RsrcPredictor::effective_w`](crate::rsrc::RsrcPredictor::effective_w),
    /// not here.
    pub w: f64,
    /// Declared expected service demand, used for charge-back and as
    /// the population prior of the size-oblivious scorers.
    pub expected: SimDuration,
    /// How the declaration was produced.
    pub provenance: Provenance,
}

impl ReqKnowledge {
    /// Exact declaration: the caller vouches the values are true.
    pub fn exact(w: f64, expected: SimDuration) -> Self {
        ReqKnowledge {
            w,
            expected,
            provenance: Provenance::Exact,
        }
    }

    /// Per-class sampled declaration (the paper's off-line sampling).
    pub fn sampled(w: f64, expected: SimDuration) -> Self {
        ReqKnowledge {
            w,
            expected,
            provenance: Provenance::Sampled,
        }
    }

    /// Noisy declaration: values are estimates of unknown quality.
    pub fn noisy(w: f64, expected: SimDuration) -> Self {
        ReqKnowledge {
            w,
            expected,
            provenance: Provenance::Noisy,
        }
    }

    /// Hidden declaration: the per-request size is unknown. `w` falls
    /// back to the paper's "if a value for w cannot be obtained, we
    /// assume w = 0.5"; `expected` should be a population mean so the
    /// charge-back stays calibrated in aggregate.
    pub fn hidden(expected: SimDuration) -> Self {
        ReqKnowledge {
            w: 0.5,
            expected,
            provenance: Provenance::Hidden,
        }
    }

    /// Whether the declared values carry per-request information (false
    /// only for [`Provenance::Hidden`]).
    pub fn size_aware(&self) -> bool {
        self.provenance != Provenance::Hidden
    }

    /// Copy of this knowledge with `w` replaced — used by the scheduler
    /// to hand the charge-back stage the *effective* weight
    /// (post-clamp, post-no-sampling-fallback) while scorers keep
    /// seeing the raw declaration.
    pub fn with_w(self, w: f64) -> Self {
        ReqKnowledge { w, ..self }
    }
}

/// Per-in-flight attained-service accounting, fed by the driving
/// substrate and read by size-oblivious stages through
/// [`StageCtx::attained`](super::StageCtx::attained).
///
/// The substrate — which alone knows the truth — feeds three calls per
/// request: [`start`](AttainedService::start) when service begins on a
/// node, [`progress`](AttainedService::progress) from its tick
/// accounting (values already capped at the true demand by the caller),
/// and [`finish`](AttainedService::finish) at completion with the true
/// total, which closes the books for that request. Attained time is
/// monotone by construction: `progress` never lowers a value, and
/// `finish` counts an overrun instead of exceeding the declared total.
///
/// All bookkeeping is integer microseconds and per-tag, so the
/// aggregates are independent of feed order within a tick.
#[derive(Debug, Clone)]
pub struct AttainedService {
    /// Per node: in-flight tag → attained microseconds.
    jobs: Vec<BTreeMap<u64, u64>>,
    /// Per node: sum of in-flight attained microseconds (kept in sync
    /// with `jobs` so scorers read totals in O(1)).
    totals: Vec<u64>,
    /// Requests finished via [`AttainedService::finish`].
    completed: u64,
    /// Sum of true totals over finished requests, microseconds.
    completed_us: u64,
    /// Finishes whose tracked attained exceeded the true total — an
    /// accounting bug in the feeding substrate if ever nonzero.
    overruns: u64,
}

impl AttainedService {
    /// Empty tracker for a `p`-node cluster.
    pub fn new(p: usize) -> Self {
        AttainedService {
            jobs: vec![BTreeMap::new(); p],
            totals: vec![0; p],
            completed: 0,
            completed_us: 0,
            overruns: 0,
        }
    }

    /// Begin tracking `tag` on `node` with zero attained service.
    /// Re-starting a live tag (a request re-placed after a failure)
    /// resets its attained time — the restart loses its progress.
    pub fn start(&mut self, node: usize, tag: u64) {
        if let Some(old) = self.jobs[node].insert(tag, 0) {
            self.totals[node] -= old;
        }
    }

    /// Raise `tag`'s attained service to `attained` (monotone: lower
    /// values are ignored). Unknown tags are ignored — the substrate
    /// may tick between admission and service start.
    pub fn progress(&mut self, node: usize, tag: u64, attained: SimDuration) {
        let Some(slot) = self.jobs[node].get_mut(&tag) else {
            return;
        };
        let new = attained.as_micros();
        if new > *slot {
            self.totals[node] += new - *slot;
            *slot = new;
        }
    }

    /// Close the books for `tag`: the request completed having received
    /// exactly `total` service. Removes the job and folds it into the
    /// completion counters. Unknown tags are ignored (a completion for
    /// a request lost to a crash).
    pub fn finish(&mut self, node: usize, tag: u64, total: SimDuration) {
        let Some(attained) = self.jobs[node].remove(&tag) else {
            return;
        };
        self.totals[node] -= attained;
        if attained > total.as_micros() {
            self.overruns += 1;
        }
        self.completed += 1;
        self.completed_us += total.as_micros();
    }

    /// Drop `tag` without completing it (the request was lost to a node
    /// failure; a restart calls [`AttainedService::start`] afresh).
    pub fn forget(&mut self, node: usize, tag: u64) {
        if let Some(attained) = self.jobs[node].remove(&tag) {
            self.totals[node] -= attained;
        }
    }

    /// Drop every in-flight job on `node` (whole-node failure).
    pub fn forget_node(&mut self, node: usize) {
        self.jobs[node].clear();
        self.totals[node] = 0;
    }

    /// Number of jobs currently tracked on `node`.
    pub fn jobs(&self, node: usize) -> usize {
        self.jobs[node].len()
    }

    /// Total attained service currently in flight on `node`.
    pub fn total(&self, node: usize) -> SimDuration {
        SimDuration::from_micros(self.totals[node])
    }

    /// Iterate the attained service of each in-flight job on `node`.
    pub fn per_job(&self, node: usize) -> impl Iterator<Item = SimDuration> + '_ {
        self.jobs[node]
            .values()
            .map(|&us| SimDuration::from_micros(us))
    }

    /// Jobs currently tracked across the whole cluster.
    pub fn in_flight(&self) -> usize {
        self.jobs.iter().map(BTreeMap::len).sum()
    }

    /// Requests closed via [`AttainedService::finish`].
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Sum of true totals over completed requests.
    pub fn completed_time(&self) -> SimDuration {
        SimDuration::from_micros(self.completed_us)
    }

    /// Finishes whose tracked attained exceeded the true total. Always
    /// zero when the feeding substrate caps progress at the truth.
    pub fn overruns(&self) -> u64 {
        self.overruns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn progress_is_monotone_and_totals_track() {
        let mut a = AttainedService::new(2);
        a.start(1, 7);
        a.progress(1, 7, us(100));
        a.progress(1, 7, us(50)); // lower: ignored
        assert_eq!(a.total(1), us(100));
        a.progress(1, 7, us(250));
        assert_eq!(a.total(1), us(250));
        assert_eq!(a.jobs(1), 1);
        assert_eq!(a.jobs(0), 0);
    }

    #[test]
    fn finish_closes_books() {
        let mut a = AttainedService::new(1);
        a.start(0, 1);
        a.progress(0, 1, us(300));
        a.finish(0, 1, us(400));
        assert_eq!(a.jobs(0), 0);
        assert_eq!(a.total(0), us(0));
        assert_eq!(a.completed(), 1);
        assert_eq!(a.completed_time(), us(400));
        assert_eq!(a.overruns(), 0);
        // Completing an unknown tag is a no-op.
        a.finish(0, 99, us(1));
        assert_eq!(a.completed(), 1);
    }

    #[test]
    fn overfed_finish_counts_an_overrun() {
        let mut a = AttainedService::new(1);
        a.start(0, 1);
        a.progress(0, 1, us(500));
        a.finish(0, 1, us(400));
        assert_eq!(a.overruns(), 1);
    }

    #[test]
    fn restart_resets_attained() {
        let mut a = AttainedService::new(2);
        a.start(0, 1);
        a.progress(0, 1, us(200));
        a.forget(0, 1);
        assert_eq!(a.total(0), us(0));
        a.start(1, 1);
        assert_eq!(a.total(1), us(0));
        a.start(1, 1); // double-start keeps totals consistent
        assert_eq!(a.jobs(1), 1);
        assert_eq!(a.total(1), us(0));
    }

    #[test]
    fn hidden_knowledge_has_no_size_signal() {
        let k = ReqKnowledge::hidden(us(1000));
        assert!(!k.size_aware());
        assert_eq!(k.w, 0.5);
        let e = ReqKnowledge::exact(0.9, us(1000));
        assert!(e.size_aware());
        assert_eq!(e.with_w(0.3).w, 0.3);
        assert_eq!(e.with_w(0.3).expected, us(1000));
    }
}
