//! String-keyed registry of pipeline stages.
//!
//! The registry lets the CLI and examples instantiate *custom* stage
//! compositions — including user-registered stages — without editing
//! this crate: look up five stage names, get a boxed [`DynScheduler`].
//! [`SchedulerRegistry::builtin`] pre-registers every stage the paper's
//! policies are built from.

use super::region::{GreedyRegion, NearestRegion, RegionSelector};
use super::stages::{
    AttainedAdmission, CpuOnlyCharge, EntryOnly, GittinsScorer, LasScorer, LeastConnectionsEntry,
    LeastConnectionsScorer, LevelCandidates, MinRsrcScorer, NoAdmission, PinnedCandidates,
    PowerOfKScorer, RandomScorer, ReservationAdmission, RotationEntry, SerptScorer,
    SplitDemandCharge,
};
use super::{
    Admission, CandidateSet, ChargeBack, DynScheduler, EntrySelector, Scheduler, Scorer, Stages,
};
use crate::config::{ClusterConfig, ConfigError, PolicyKind};
use std::collections::BTreeMap;

type RegionFactory = Box<dyn Fn(&ClusterConfig) -> Box<dyn RegionSelector>>;
type EntryFactory = Box<dyn Fn(&ClusterConfig) -> Box<dyn EntrySelector>>;
type AdmissionFactory = Box<dyn Fn(&ClusterConfig) -> Box<dyn Admission>>;
type CandidateFactory = Box<dyn Fn(&ClusterConfig) -> Box<dyn CandidateSet>>;
type ScorerFactory = Box<dyn Fn(&ClusterConfig) -> Box<dyn Scorer>>;
type ScorerFamilyFactory = Box<dyn Fn(&ClusterConfig, &str) -> Result<Box<dyn Scorer>, String>>;
type ChargeFactory = Box<dyn Fn(&ClusterConfig) -> Box<dyn ChargeBack>>;

/// Names of the stages a composition is assembled from.
///
/// Parse one from `"entry/admission/candidates/scorer/charge"` with
/// [`StageSpec::parse`], e.g.
/// `"least-connections/none/level-split/min-rsrc/split-demand"`.
/// Multi-region compositions prepend an optional sixth leading part,
/// `"region/entry/admission/candidates/scorer/charge"`, naming the
/// region-selector stage that runs before entry selection (e.g.
/// `"region-greedy/rotation/none/level-split/rsrc-indexed/split-demand"`);
/// it composes only over a configuration carrying a
/// [`crate::RegionTopology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSpec {
    /// Region-selector stage name, when the composition has a
    /// multi-region front tier. `None` renders back to the plain
    /// five-part form.
    pub region: Option<String>,
    /// Entry-selector stage name.
    pub entry: String,
    /// Admission stage name.
    pub admission: String,
    /// Candidate-set stage name.
    pub candidates: String,
    /// Scorer stage name.
    pub scorer: String,
    /// Charge-back stage name.
    pub charge: String,
}

impl StageSpec {
    /// Parse a `/`-separated stage spec: five parts, or six with a
    /// leading region-selector name.
    pub fn parse(spec: &str) -> Result<Self, ComposeError> {
        let parts: Vec<&str> = spec.split('/').map(str::trim).collect();
        let (region, rest): (Option<&str>, &[&str]) = match parts.as_slice() {
            [region, rest @ ..] if rest.len() == 5 => (Some(region), rest),
            rest if rest.len() == 5 => (None, rest),
            _ => return Err(ComposeError::BadSpec(spec.to_string())),
        };
        let [entry, admission, candidates, scorer, charge] = rest else {
            unreachable!("rest.len() == 5 checked above");
        };
        Ok(StageSpec {
            region: region.map(str::to_string),
            entry: entry.to_string(),
            admission: admission.to_string(),
            candidates: candidates.to_string(),
            scorer: scorer.to_string(),
            charge: charge.to_string(),
        })
    }

    /// The registry spec equivalent to a built-in [`PolicyKind`]'s stage
    /// table ([`super::stages::for_policy`]): composing this spec over
    /// the same configuration (which must keep `config.policy` set, as
    /// the policy also drives RSRC sampling and redirect accounting)
    /// yields placement-identical decisions. Used by the replay
    /// analyzer to express "same policy, different stage" counterfactual
    /// specs by swapping one part.
    pub fn for_policy(policy: PolicyKind) -> StageSpec {
        let (entry, admission, candidates, scorer, charge) = match policy {
            PolicyKind::Flat => (
                "rotation",
                "none",
                "entry-only",
                "rsrc-indexed",
                "split-demand",
            ),
            PolicyKind::MsPrime => (
                "rotation",
                "none",
                "pinned-slaves",
                "rsrc-indexed",
                "split-demand",
            ),
            PolicyKind::MsAllMasters => (
                "rotation",
                "reservation",
                "level-split",
                "rsrc-indexed-reserve",
                "split-demand",
            ),
            PolicyKind::Switch => (
                "least-connections",
                "none",
                "entry-only",
                "rsrc-indexed",
                "cpu-only",
            ),
            PolicyKind::MsNoReservation => (
                "rotation-masters",
                "reservation-observe",
                "level-split",
                "rsrc-indexed",
                "split-demand",
            ),
            PolicyKind::MasterSlave | PolicyKind::MsNoSampling | PolicyKind::Redirect => (
                "rotation-masters",
                "reservation",
                "level-split",
                "rsrc-indexed-reserve",
                "split-demand",
            ),
        };
        StageSpec {
            region: None,
            entry: entry.to_string(),
            admission: admission.to_string(),
            candidates: candidates.to_string(),
            scorer: scorer.to_string(),
            charge: charge.to_string(),
        }
    }

    /// Attach a region-selector stage (builder style).
    pub fn with_region(mut self, region: impl Into<String>) -> Self {
        self.region = Some(region.into());
        self
    }

    /// Render back to the `/`-separated form accepted by
    /// [`StageSpec::parse`].
    pub fn render(&self) -> String {
        let core = format!(
            "{}/{}/{}/{}/{}",
            self.entry, self.admission, self.candidates, self.scorer, self.charge
        );
        match &self.region {
            Some(region) => format!("{region}/{core}"),
            None => core,
        }
    }
}

/// Why a composition could not be built.
#[derive(Debug)]
pub enum ComposeError {
    /// A stage spec string did not have five `/`-separated parts (six
    /// with the optional leading region part).
    BadSpec(String),
    /// A stage name is not registered; lists what is.
    UnknownStage {
        /// Which of the five stage kinds was being looked up.
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
        /// The registered names for that kind.
        available: Vec<String>,
    },
    /// A parameterised stage (`family:arg`) rejected its argument.
    BadStageArg {
        /// Which of the five stage kinds was being looked up.
        kind: &'static str,
        /// The full `family:arg` name.
        name: String,
        /// Why the family rejected the argument.
        reason: String,
    },
    /// The cluster configuration itself is invalid.
    Invalid(ConfigError),
}

impl std::fmt::Display for ComposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComposeError::BadSpec(s) => write!(
                f,
                "bad stage spec {s:?}: expected \
                 [region/]entry/admission/candidates/scorer/charge"
            ),
            ComposeError::UnknownStage {
                kind,
                name,
                available,
            } => write!(
                f,
                "unknown {kind} stage {name:?}; registered: {}",
                available.join(", ")
            ),
            ComposeError::BadStageArg { kind, name, reason } => {
                write!(f, "bad {kind} stage {name:?}: {reason}")
            }
            ComposeError::Invalid(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for ComposeError {}

impl From<ConfigError> for ComposeError {
    fn from(e: ConfigError) -> Self {
        ComposeError::Invalid(e)
    }
}

/// String-keyed stage factories; see the [module docs](self).
pub struct SchedulerRegistry {
    regions: BTreeMap<String, RegionFactory>,
    entries: BTreeMap<String, EntryFactory>,
    admissions: BTreeMap<String, AdmissionFactory>,
    candidates: BTreeMap<String, CandidateFactory>,
    scorers: BTreeMap<String, ScorerFactory>,
    scorer_families: BTreeMap<String, ScorerFamilyFactory>,
    charges: BTreeMap<String, ChargeFactory>,
}

impl Default for SchedulerRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

impl SchedulerRegistry {
    /// An empty registry with no stages registered.
    pub fn empty() -> Self {
        SchedulerRegistry {
            regions: BTreeMap::new(),
            entries: BTreeMap::new(),
            admissions: BTreeMap::new(),
            candidates: BTreeMap::new(),
            scorers: BTreeMap::new(),
            scorer_families: BTreeMap::new(),
            charges: BTreeMap::new(),
        }
    }

    /// A registry pre-loaded with every built-in stage:
    ///
    /// | kind | names |
    /// |---|---|
    /// | region | `region-nearest`, `region-greedy` |
    /// | entry | `rotation`, `rotation-masters`, `least-connections` |
    /// | admission | `reservation`, `reservation-observe`, `attained`, `none` |
    /// | candidates | `level-split`, `pinned-slaves`, `entry-only` |
    /// | scorer | `min-rsrc`, `min-rsrc-reserve`, `rsrc-indexed`, `rsrc-indexed-reserve`, `rsrc-p2:<k>`, `least-connections`, `random`, `gittins`, `serpt`, `las` |
    /// | charge | `split-demand`, `cpu-only` |
    ///
    /// Parameterised stages read their parameters (DNS skew, master
    /// reserve, pin set) from the `ClusterConfig` they are built for.
    ///
    /// Scorer notes: `min-rsrc`/`min-rsrc-reserve` are the reference
    /// dense scans; `rsrc-indexed`/`rsrc-indexed-reserve` produce
    /// byte-identical placements through the O(log p) decision index
    /// ([`super::index`]); `rsrc-p2:<k>` is the approximate
    /// power-of-k-choices rule (`k ≥ 1` uniform samples per decision),
    /// registered as a *family* — the part after `:` is parsed as the
    /// sample count. `gittins`/`serpt`/`las` rank by attained service
    /// (see [`super::knowledge`]) and stay meaningful when demand
    /// declarations are hidden or noisy; `attained` admission is their
    /// size-oblivious master-protection counterpart.
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        r.register_region("region-nearest", |_| Box::new(NearestRegion));
        r.register_region("region-greedy", |_| Box::new(GreedyRegion));
        r.register_entry("rotation", |c| {
            Box::new(RotationEntry::over_all(c.dns_skew()))
        });
        r.register_entry("rotation-masters", |c| {
            Box::new(RotationEntry::over_masters(c.dns_skew()))
        });
        r.register_entry("least-connections", |_| Box::new(LeastConnectionsEntry));
        r.register_admission("reservation", |_| {
            Box::new(ReservationAdmission { enforce: true })
        });
        r.register_admission("reservation-observe", |_| {
            Box::new(ReservationAdmission { enforce: false })
        });
        r.register_admission("attained", |_| Box::new(AttainedAdmission));
        r.register_admission("none", |_| Box::new(NoAdmission));
        r.register_candidates("level-split", |_| Box::new(LevelCandidates));
        r.register_candidates("pinned-slaves", |c| Box::new(PinnedCandidates::slaves(c)));
        r.register_candidates("entry-only", |_| Box::new(EntryOnly));
        r.register_scorer("min-rsrc", |_| Box::new(MinRsrcScorer::dense(0.0)));
        r.register_scorer("min-rsrc-reserve", |c| {
            Box::new(MinRsrcScorer::dense(c.master_reserve()))
        });
        r.register_scorer("rsrc-indexed", |_| Box::new(MinRsrcScorer::indexed(0.0)));
        r.register_scorer("rsrc-indexed-reserve", |c| {
            Box::new(MinRsrcScorer::indexed(c.master_reserve()))
        });
        r.register_scorer_family("rsrc-p2", |c, arg| {
            let k: usize = arg
                .parse()
                .map_err(|_| format!("sample count {arg:?} is not an integer"))?;
            if k == 0 {
                return Err("sample count must be at least 1".to_string());
            }
            Ok(Box::new(PowerOfKScorer::new(k, c.master_reserve())))
        });
        r.register_scorer("least-connections", |_| Box::new(LeastConnectionsScorer));
        r.register_scorer("random", |_| Box::new(RandomScorer));
        r.register_scorer("gittins", |_| Box::new(GittinsScorer));
        r.register_scorer("serpt", |_| Box::new(SerptScorer));
        r.register_scorer("las", |_| Box::new(LasScorer));
        r.register_charge("split-demand", |_| Box::new(SplitDemandCharge));
        r.register_charge("cpu-only", |_| Box::new(CpuOnlyCharge));
        r
    }

    /// Register (or replace) a region-selector factory under `name`.
    /// Region stages only compose over configurations that carry a
    /// region topology ([`ClusterConfig::with_regions`]).
    pub fn register_region(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&ClusterConfig) -> Box<dyn RegionSelector> + 'static,
    ) {
        self.regions.insert(name.into(), Box::new(f));
    }

    /// Register (or replace) an entry-selector factory under `name`.
    pub fn register_entry(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&ClusterConfig) -> Box<dyn EntrySelector> + 'static,
    ) {
        self.entries.insert(name.into(), Box::new(f));
    }

    /// Register (or replace) an admission factory under `name`.
    pub fn register_admission(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&ClusterConfig) -> Box<dyn Admission> + 'static,
    ) {
        self.admissions.insert(name.into(), Box::new(f));
    }

    /// Register (or replace) a candidate-set factory under `name`.
    pub fn register_candidates(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&ClusterConfig) -> Box<dyn CandidateSet> + 'static,
    ) {
        self.candidates.insert(name.into(), Box::new(f));
    }

    /// Register (or replace) a scorer factory under `name`.
    pub fn register_scorer(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&ClusterConfig) -> Box<dyn Scorer> + 'static,
    ) {
        self.scorers.insert(name.into(), Box::new(f));
    }

    /// Register (or replace) a *parameterised* scorer family under
    /// `family`. A spec scorer named `family:arg` resolves through `f`
    /// with the text after the first `:` as `arg`; `f` returns a
    /// human-readable reason when the argument is invalid. Exact scorer
    /// names registered via [`SchedulerRegistry::register_scorer`] win
    /// over family matches.
    pub fn register_scorer_family(
        &mut self,
        family: impl Into<String>,
        f: impl Fn(&ClusterConfig, &str) -> Result<Box<dyn Scorer>, String> + 'static,
    ) {
        self.scorer_families.insert(family.into(), Box::new(f));
    }

    /// Registered entry-selector names, sorted (the registry is
    /// `BTreeMap`-keyed, so enumeration order is deterministic). The
    /// accessors exist so grid searches — `bench::pareto`'s
    /// `StageGrid` — can enumerate the composable stage space without
    /// this crate hard-coding it twice.
    pub fn entry_names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Registered region-selector names, sorted.
    pub fn region_names(&self) -> Vec<String> {
        self.regions.keys().cloned().collect()
    }

    /// Registered admission names, sorted.
    pub fn admission_names(&self) -> Vec<String> {
        self.admissions.keys().cloned().collect()
    }

    /// Registered candidate-set names, sorted.
    pub fn candidate_names(&self) -> Vec<String> {
        self.candidates.keys().cloned().collect()
    }

    /// Registered exact scorer names, sorted. Parameterised families
    /// are listed separately by
    /// [`SchedulerRegistry::scorer_family_names`] — an instance such as
    /// `rsrc-p2:2` only exists once an argument is chosen.
    pub fn scorer_names(&self) -> Vec<String> {
        self.scorers.keys().cloned().collect()
    }

    /// Registered scorer *family* names, sorted (resolve as
    /// `family:arg`).
    pub fn scorer_family_names(&self) -> Vec<String> {
        self.scorer_families.keys().cloned().collect()
    }

    /// Registered charge-back names, sorted.
    pub fn charge_names(&self) -> Vec<String> {
        self.charges.keys().cloned().collect()
    }

    /// Register (or replace) a charge-back factory under `name`.
    pub fn register_charge(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&ClusterConfig) -> Box<dyn ChargeBack> + 'static,
    ) {
        self.charges.insert(name.into(), Box::new(f));
    }

    /// Build a boxed scheduler for `config` from the named stages.
    /// `a0`/`r0` seed the reservation controller as in
    /// [`Scheduler::compose`].
    pub fn compose(
        &self,
        config: &ClusterConfig,
        spec: &StageSpec,
        a0: f64,
        r0: f64,
    ) -> Result<DynScheduler, ComposeError> {
        type Factory<T> = Box<dyn Fn(&ClusterConfig) -> Box<T>>;
        fn get<'a, T: ?Sized>(
            map: &'a BTreeMap<String, Factory<T>>,
            kind: &'static str,
            name: &str,
        ) -> Result<&'a Factory<T>, ComposeError> {
            map.get(name).ok_or_else(|| ComposeError::UnknownStage {
                kind,
                name: name.to_string(),
                available: map.keys().cloned().collect(),
            })
        }
        let stages = Stages {
            entry: get(&self.entries, "entry", &spec.entry)?(config),
            admission: get(&self.admissions, "admission", &spec.admission)?(config),
            candidates: get(&self.candidates, "candidates", &spec.candidates)?(config),
            scorer: self.resolve_scorer(config, &spec.scorer)?,
            charge: get(&self.charges, "charge", &spec.charge)?(config),
        };
        let mut scheduler = Scheduler::compose(config, stages, a0, r0)?;
        if let Some(region) = &spec.region {
            let factory = get(&self.regions, "region", region)?;
            let topo = config
                .regions()
                .ok_or_else(|| ComposeError::BadStageArg {
                    kind: "region",
                    name: region.clone(),
                    reason: "configuration has no region topology \
                             (ClusterConfig::with_regions)"
                        .to_string(),
                })?
                .clone();
            scheduler.set_region_stage(topo, factory(config));
        }
        Ok(scheduler)
    }

    /// Resolve a scorer name: exact registrations first, then
    /// `family:arg` parameterised families.
    fn resolve_scorer(
        &self,
        config: &ClusterConfig,
        name: &str,
    ) -> Result<Box<dyn Scorer>, ComposeError> {
        if let Some(f) = self.scorers.get(name) {
            return Ok(f(config));
        }
        if let Some((family, arg)) = name.split_once(':') {
            if let Some(f) = self.scorer_families.get(family) {
                return f(config, arg).map_err(|reason| ComposeError::BadStageArg {
                    kind: "scorer",
                    name: name.to_string(),
                    reason,
                });
            }
        }
        Err(ComposeError::UnknownStage {
            kind: "scorer",
            name: name.to_string(),
            available: self
                .scorers
                .keys()
                .cloned()
                .chain(self.scorer_families.keys().map(|f| format!("{f}:<arg>")))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClusterConfig {
        ClusterConfig::simulation(8, PolicyKind::MasterSlave).with_masters(2)
    }

    #[test]
    fn spec_parse_render_is_a_fixed_point() {
        for slug in [
            "rotation/none/entry-only/rsrc-indexed/split-demand",
            "least-connections/reservation/level-split/rsrc-p2:2/cpu-only",
            "rotation-masters/attained/pinned-slaves/las/split-demand",
            "region-greedy/rotation/none/level-split/rsrc-indexed/split-demand",
            "region-nearest/least-connections/none/entry-only/rsrc-indexed/cpu-only",
        ] {
            let spec = StageSpec::parse(slug).unwrap();
            assert_eq!(spec.render(), slug);
            assert_eq!(StageSpec::parse(&spec.render()).unwrap(), spec);
        }
    }

    #[test]
    fn builtin_policy_specs_round_trip() {
        for policy in [
            PolicyKind::Flat,
            PolicyKind::MsPrime,
            PolicyKind::MsAllMasters,
            PolicyKind::Switch,
            PolicyKind::MsNoReservation,
            PolicyKind::MasterSlave,
        ] {
            let spec = StageSpec::for_policy(policy);
            assert_eq!(
                StageSpec::parse(&spec.render()).unwrap(),
                spec,
                "{policy:?}"
            );
        }
    }

    #[test]
    fn malformed_specs_are_typed_errors_not_panics() {
        for bad in [
            "",
            "a/b/c/d",
            "a/b/c/d/e/f/g",
            "rotation/none/entry-only/min-rsrc",
        ] {
            match StageSpec::parse(bad) {
                Err(ComposeError::BadSpec(s)) => assert_eq!(s, bad),
                other => panic!("{bad:?}: expected BadSpec, got {other:?}"),
            }
        }
        // Trailing-empty part still has five segments and parses; the
        // empty *name* then fails stage lookup, not spec splitting. A
        // six-part spec parses with the first part as the region stage.
        let spec = StageSpec::parse("rotation/none/entry-only/min-rsrc/").unwrap();
        assert_eq!(spec.charge, "");
        let spec = StageSpec::parse("a/b/c/d/e/f").unwrap();
        assert_eq!(spec.region.as_deref(), Some("a"));
        assert_eq!(spec.entry, "b");
    }

    #[test]
    fn unknown_stage_errors_name_the_kind_and_list_alternatives() {
        let reg = SchedulerRegistry::builtin();
        let cases = [
            ("nope/none/entry-only/min-rsrc/split-demand", "entry"),
            (
                "rotation/nope/entry-only/min-rsrc/split-demand",
                "admission",
            ),
            ("rotation/none/nope/min-rsrc/split-demand", "candidates"),
            ("rotation/none/entry-only/nope/split-demand", "scorer"),
            ("rotation/none/entry-only/min-rsrc/nope", "charge"),
            (
                "nope/rotation/none/entry-only/min-rsrc/split-demand",
                "region",
            ),
        ];
        for (slug, expect_kind) in cases {
            let spec = StageSpec::parse(slug).unwrap();
            match reg.compose(&cfg(), &spec, 0.4, 0.025) {
                Err(ComposeError::UnknownStage {
                    kind,
                    name,
                    available,
                }) => {
                    assert_eq!(kind, expect_kind, "{slug}");
                    assert_eq!(name, "nope");
                    assert!(!available.is_empty(), "{slug}: empty alternatives");
                }
                Err(other) => panic!("{slug}: expected UnknownStage, got {other:?}"),
                Ok(_) => panic!("{slug}: unexpectedly composed"),
            }
        }
    }

    #[test]
    fn bad_family_arguments_are_typed_errors() {
        let reg = SchedulerRegistry::builtin();
        for scorer in ["rsrc-p2:0", "rsrc-p2:x", "rsrc-p2:"] {
            let slug = format!("rotation/none/entry-only/{scorer}/split-demand");
            let spec = StageSpec::parse(&slug).unwrap();
            match reg.compose(&cfg(), &spec, 0.4, 0.025) {
                Err(ComposeError::BadStageArg { kind, name, reason }) => {
                    assert_eq!(kind, "scorer");
                    assert_eq!(name, scorer);
                    assert!(!reason.is_empty());
                }
                Err(other) => panic!("{scorer}: expected BadStageArg, got {other:?}"),
                Ok(_) => panic!("{scorer}: unexpectedly composed"),
            }
        }
    }

    #[test]
    fn region_specs_compose_only_over_region_topologies() {
        use crate::RegionTopology;
        let reg = SchedulerRegistry::builtin();
        let spec =
            StageSpec::parse("region-nearest/rotation/none/level-split/rsrc-indexed/split-demand")
                .unwrap();
        // Without a topology the spec is a typed error, not a panic.
        match reg.compose(&cfg(), &spec, 0.4, 0.025) {
            Err(ComposeError::BadStageArg { kind, name, reason }) => {
                assert_eq!(kind, "region");
                assert_eq!(name, "region-nearest");
                assert!(reason.contains("region topology"), "{reason}");
            }
            Err(other) => panic!("expected BadStageArg, got {other:?}"),
            Ok(_) => panic!("composed without a region topology"),
        }
        // With one, both built-in selectors compose and the scheduler
        // reports the installed topology.
        let cfg = cfg().with_regions(RegionTopology::even(8, 2, 2));
        for region in reg.region_names() {
            let spec = spec.clone().with_region(region.clone());
            let sched = reg
                .compose(&cfg, &spec, 0.4, 0.025)
                .unwrap_or_else(|e| panic!("{region}: {e}"));
            let topo = sched.region_topology().expect("topology installed");
            assert_eq!(topo.regions(), 2);
        }
    }

    #[test]
    fn name_accessors_match_the_builtin_table() {
        let reg = SchedulerRegistry::builtin();
        assert_eq!(reg.region_names(), ["region-greedy", "region-nearest"]);
        assert_eq!(
            reg.entry_names(),
            ["least-connections", "rotation", "rotation-masters"]
        );
        assert_eq!(
            reg.admission_names(),
            ["attained", "none", "reservation", "reservation-observe"]
        );
        assert_eq!(
            reg.candidate_names(),
            ["entry-only", "level-split", "pinned-slaves"]
        );
        assert_eq!(reg.scorer_family_names(), ["rsrc-p2"]);
        assert_eq!(reg.charge_names(), ["cpu-only", "split-demand"]);
        // Every enumerable (entry, admission, candidates, scorer,
        // charge) combination composes: the accessors and the factory
        // maps cannot drift apart.
        let cfg = cfg();
        for entry in reg.entry_names() {
            for admission in reg.admission_names() {
                for candidates in reg.candidate_names() {
                    for scorer in reg.scorer_names() {
                        for charge in reg.charge_names() {
                            let spec = StageSpec {
                                region: None,
                                entry: entry.clone(),
                                admission: admission.clone(),
                                candidates: candidates.clone(),
                                scorer: scorer.clone(),
                                charge: charge.clone(),
                            };
                            reg.compose(&cfg, &spec, 0.4, 0.025).unwrap_or_else(|e| {
                                panic!("{} does not compose: {e}", spec.render())
                            });
                        }
                    }
                }
            }
        }
    }
}
