//! Multi-region front tier: the [`RegionTopology`] (per-region node
//! ranges, client→region latency matrix, per-region cost/carbon series)
//! and the [`RegionSelector`] stage that runs *before*
//! [`EntrySelector`](super::EntrySelector).
//!
//! The paper's entry tier picks a master inside one cluster; this
//! module generalises it to "pick a region, then a master", modelled on
//! CASPER-style geo-schedulers (request rates × capacities × latencies
//! × carbon intensities). A region owns a contiguous slice of the
//! master level `0..m` *and* of the slave level `m..p`, so the existing
//! five-stage pipeline runs unchanged inside the selected region: the
//! scheduler presents it a *masked* liveness view in which every node
//! outside the region is dead, and the rotation entry, level-split
//! candidates and RSRC scorer all behave exactly as in a single-region
//! cluster of that slice.
//!
//! Determinism: both built-in selectors ([`NearestRegion`],
//! [`GreedyRegion`]) are pure functions of the topology, the request's
//! origin and the scheduler's own liveness/in-flight state — they draw
//! nothing from the decision RNG, so adding a region stage perturbs no
//! existing RNG stream and regionless runs stay byte-identical.

use serde::Value;

/// Static description of a multi-region cluster: how the `p` nodes are
/// split into regions, what a client in region `i` pays to reach region
/// `j`, and an optional per-region cost/carbon-intensity time series.
///
/// Regions partition *both* levels: region `r` owns the master slice
/// `master_range(r)` of `0..m` and the slave slice `slave_range(r)` of
/// `m..p`. Master indices stay global (`node < m` ⇔ master) so every
/// existing stage and attribution rule is unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionTopology {
    /// Per-region `[start, end)` master slices partitioning `0..m`.
    master_ranges: Vec<(usize, usize)>,
    /// Per-region `[start, end)` slave slices partitioning `m..p`.
    slave_ranges: Vec<(usize, usize)>,
    /// `latency_us[i][j]`: one-way latency a request originating in
    /// region `i` pays to be served in region `j`, microseconds.
    latency_us: Vec<Vec<u64>>,
    /// Per-region cost/carbon-intensity phase series (`cost[r][phase]`);
    /// empty = unit cost everywhere.
    cost: Vec<Vec<f64>>,
    /// Length of one cost phase, microseconds (`at / period % len`
    /// selects the phase). Ignored when `cost` is empty.
    cost_period_us: u64,
    /// In-flight capacity of one node for the region guard; a region
    /// with `node_count * node_capacity` requests in flight is full.
    node_capacity: u32,
}

/// Same-region service latency used by [`RegionTopology::even`],
/// microseconds.
pub const LOCAL_LATENCY_US: u64 = 2_000;
/// Base cross-region latency used by [`RegionTopology::even`],
/// microseconds; each extra ring hop adds the same again.
pub const HOP_LATENCY_US: u64 = 20_000;

impl RegionTopology {
    /// Split a `p`-node cluster with `m` masters into `k` regions of
    /// near-equal size (region `r` gets the `r`-th contiguous chunk of
    /// both levels), with a ring-distance default latency matrix:
    /// serving in-region costs [`LOCAL_LATENCY_US`], each ring hop adds
    /// [`HOP_LATENCY_US`]. Refine with the `with_*` builders.
    pub fn even(p: usize, m: usize, k: usize) -> Self {
        assert!(k >= 1, "need at least one region");
        let m = m.min(p);
        let master_ranges: Vec<(usize, usize)> =
            (0..k).map(|r| (r * m / k, (r + 1) * m / k)).collect();
        let slave_ranges: Vec<(usize, usize)> = (0..k)
            .map(|r| (m + r * (p - m) / k, m + (r + 1) * (p - m) / k))
            .collect();
        let latency_us = (0..k)
            .map(|i| {
                (0..k)
                    .map(|j| {
                        let d = i.abs_diff(j).min(k - i.abs_diff(j));
                        if d == 0 {
                            LOCAL_LATENCY_US
                        } else {
                            HOP_LATENCY_US * d as u64
                        }
                    })
                    .collect()
            })
            .collect();
        RegionTopology {
            master_ranges,
            slave_ranges,
            latency_us,
            cost: Vec::new(),
            cost_period_us: 0,
            node_capacity: 64,
        }
    }

    /// Replace the latency matrix (`k × k`, microseconds).
    pub fn with_latency(mut self, latency_us: Vec<Vec<u64>>) -> Self {
        self.latency_us = latency_us;
        self
    }

    /// Install a per-region cost/carbon phase series: `cost[r]` is the
    /// series for region `r` and `period_us` the phase length.
    pub fn with_cost(mut self, cost: Vec<Vec<f64>>, period_us: u64) -> Self {
        self.cost = cost;
        self.cost_period_us = period_us;
        self
    }

    /// Set the per-node in-flight capacity used by the region guard.
    pub fn with_node_capacity(mut self, capacity: u32) -> Self {
        self.node_capacity = capacity;
        self
    }

    /// Number of regions `k`.
    pub fn regions(&self) -> usize {
        self.master_ranges.len()
    }

    /// Region `r`'s master slice `[start, end)` of `0..m`.
    pub fn master_range(&self, r: usize) -> (usize, usize) {
        self.master_ranges[r]
    }

    /// Region `r`'s slave slice `[start, end)` of `m..p`.
    pub fn slave_range(&self, r: usize) -> (usize, usize) {
        self.slave_ranges[r]
    }

    /// Which region owns `node` (panics when `node` is outside `0..p`,
    /// which validation makes impossible for in-range nodes).
    pub fn region_of(&self, node: usize) -> usize {
        for (r, &(ms, me)) in self.master_ranges.iter().enumerate() {
            if (ms..me).contains(&node) {
                return r;
            }
        }
        for (r, &(ss, se)) in self.slave_ranges.iter().enumerate() {
            if (ss..se).contains(&node) {
                return r;
            }
        }
        panic!("node {node} is outside every region");
    }

    /// Whether region `r` owns `node`.
    pub fn contains(&self, r: usize, node: usize) -> bool {
        let (ms, me) = self.master_ranges[r];
        let (ss, se) = self.slave_ranges[r];
        (ms..me).contains(&node) || (ss..se).contains(&node)
    }

    /// Nodes owned by region `r` (masters + slaves).
    pub fn node_count(&self, r: usize) -> usize {
        let (ms, me) = self.master_ranges[r];
        let (ss, se) = self.slave_ranges[r];
        (me - ms) + (se - ss)
    }

    /// In-flight capacity of region `r` for the region guard.
    pub fn capacity(&self, r: usize) -> u64 {
        self.node_count(r) as u64 * self.node_capacity as u64
    }

    /// Per-node in-flight capacity the guard multiplies by.
    pub fn node_capacity(&self) -> u32 {
        self.node_capacity
    }

    /// Requests currently in flight in region `r`, from the scheduler's
    /// per-node counters.
    pub fn region_in_flight(&self, r: usize, in_flight: &[u32]) -> u64 {
        let (ms, me) = self.master_ranges[r];
        let (ss, se) = self.slave_ranges[r];
        in_flight[ms..me]
            .iter()
            .chain(in_flight[ss..se].iter())
            .map(|&c| c as u64)
            .sum()
    }

    /// Latency a request originating in region `origin` pays to be
    /// served in region `r`, microseconds. Origins beyond `k` wrap
    /// (`origin % k`), so a workload tagged for more regions than the
    /// topology has stays well-defined.
    pub fn latency_us(&self, origin: usize, r: usize) -> u64 {
        self.latency_us[origin % self.regions()][r]
    }

    /// Cost/carbon intensity of region `r` at substrate time `at_us`
    /// (unit cost when no series is installed).
    pub fn cost_at(&self, r: usize, at_us: u64) -> f64 {
        if self.cost.is_empty() {
            return 1.0;
        }
        let series = &self.cost[r];
        if series.is_empty() {
            return 1.0;
        }
        series[((at_us / self.cost_period_us.max(1)) as usize) % series.len()]
    }

    /// Whether region `r` has at least one live master (`m > 0`), or at
    /// least one live node at all (`m == 0`, level-free policies).
    pub fn has_live_master(&self, r: usize, dead: &[bool], m: usize) -> bool {
        if m == 0 {
            return self.has_live_node(r, dead);
        }
        let (ms, me) = self.master_ranges[r];
        (ms..me).any(|n| !dead[n])
    }

    /// Whether region `r` has any live node.
    pub fn has_live_node(&self, r: usize, dead: &[bool]) -> bool {
        let (ms, me) = self.master_ranges[r];
        let (ss, se) = self.slave_ranges[r];
        (ms..me).chain(ss..se).any(|n| !dead[n])
    }

    /// Whether region `r` may receive a request right now: masters
    /// alive (the request must be able to enter) and in-flight below
    /// capacity (the guard the capacity proptest pins down).
    pub fn eligible(&self, r: usize, view: &RegionView<'_>) -> bool {
        self.has_live_master(r, view.dead, view.masters)
            && self.region_in_flight(r, view.in_flight) < self.capacity(r)
    }

    /// Check the topology against a cluster shape: ranges must
    /// partition both `0..m` and `m..p`, every region must own at least
    /// one master when `m > 0` and at least one node overall, and the
    /// latency/cost tables must match the region count.
    pub fn validate(&self, p: usize, m: usize) -> Result<(), String> {
        let k = self.master_ranges.len();
        if k == 0 {
            return Err("topology has no regions".to_string());
        }
        if self.slave_ranges.len() != k {
            return Err(format!(
                "{} slave ranges for {k} regions",
                self.slave_ranges.len()
            ));
        }
        let check_partition =
            |ranges: &[(usize, usize)], lo: usize, hi: usize, what: &str| -> Result<(), String> {
                let mut at = lo;
                for (i, &(s, e)) in ranges.iter().enumerate() {
                    if s != at || e < s || e > hi {
                        return Err(format!(
                            "region {i} {what} range [{s},{e}) does not partition [{lo},{hi})"
                        ));
                    }
                    at = e;
                }
                if at != hi {
                    return Err(format!("{what} ranges cover [{lo},{at}), want [{lo},{hi})"));
                }
                Ok(())
            };
        check_partition(&self.master_ranges, 0, m, "master")?;
        check_partition(&self.slave_ranges, m, p, "slave")?;
        for r in 0..k {
            if m > 0 && self.master_ranges[r].0 == self.master_ranges[r].1 {
                return Err(format!("region {r} owns no master (m = {m})"));
            }
            if self.node_count(r) == 0 {
                return Err(format!("region {r} owns no nodes"));
            }
        }
        if self.latency_us.len() != k || self.latency_us.iter().any(|row| row.len() != k) {
            return Err(format!("latency matrix is not {k}x{k}"));
        }
        if !self.cost.is_empty() {
            if self.cost.len() != k {
                return Err(format!("{} cost series for {k} regions", self.cost.len()));
            }
            if self.cost_period_us == 0 && self.cost.iter().any(|s| !s.is_empty()) {
                return Err("cost series installed with a zero phase period".to_string());
            }
            if let Some(bad) = self
                .cost
                .iter()
                .flatten()
                .find(|c| !(c.is_finite() && **c > 0.0))
            {
                return Err(format!("cost intensity {bad} is not positive and finite"));
            }
        }
        if self.node_capacity == 0 {
            return Err("node capacity must be at least 1".to_string());
        }
        Ok(())
    }

    /// Encode as a JSON value for the decision log's meta line.
    pub fn to_value(&self) -> Value {
        let ranges = |v: &[(usize, usize)]| {
            Value::Array(
                v.iter()
                    .map(|&(s, e)| Value::Array(vec![Value::UInt(s as u64), Value::UInt(e as u64)]))
                    .collect(),
            )
        };
        Value::Object(vec![
            ("masters".to_string(), ranges(&self.master_ranges)),
            ("slaves".to_string(), ranges(&self.slave_ranges)),
            (
                "latency_us".to_string(),
                Value::Array(
                    self.latency_us
                        .iter()
                        .map(|row| Value::Array(row.iter().map(|&l| Value::UInt(l)).collect()))
                        .collect(),
                ),
            ),
            (
                "cost".to_string(),
                Value::Array(
                    self.cost
                        .iter()
                        .map(|row| Value::Array(row.iter().map(|&c| Value::Float(c)).collect()))
                        .collect(),
                ),
            ),
            (
                "cost_period_us".to_string(),
                Value::UInt(self.cost_period_us),
            ),
            (
                "node_capacity".to_string(),
                Value::UInt(self.node_capacity as u64),
            ),
        ])
    }

    /// Decode a value written by [`RegionTopology::to_value`].
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let get = |key: &str| -> Result<&Value, String> {
            v.get(key)
                .ok_or_else(|| format!("regions object missing field {key:?}"))
        };
        let ranges = |key: &str| -> Result<Vec<(usize, usize)>, String> {
            get(key)?
                .as_array()
                .ok_or_else(|| format!("regions field {key:?} is not an array"))?
                .iter()
                .map(|pair| {
                    let cols = pair
                        .as_array()
                        .filter(|c| c.len() == 2)
                        .ok_or_else(|| format!("regions {key} range is not a 2-element array"))?;
                    let s = cols[0]
                        .as_u64()
                        .ok_or_else(|| format!("regions {key} range start not an integer"))?;
                    let e = cols[1]
                        .as_u64()
                        .ok_or_else(|| format!("regions {key} range end not an integer"))?;
                    Ok((s as usize, e as usize))
                })
                .collect()
        };
        let latency_us = get("latency_us")?
            .as_array()
            .ok_or_else(|| "regions field \"latency_us\" is not an array".to_string())?
            .iter()
            .map(|row| {
                row.as_array()
                    .ok_or_else(|| "latency row is not an array".to_string())?
                    .iter()
                    .map(|c| {
                        c.as_u64()
                            .ok_or_else(|| "latency entry not an integer".to_string())
                    })
                    .collect::<Result<Vec<u64>, String>>()
            })
            .collect::<Result<Vec<_>, String>>()?;
        let cost = get("cost")?
            .as_array()
            .ok_or_else(|| "regions field \"cost\" is not an array".to_string())?
            .iter()
            .map(|row| {
                row.as_array()
                    .ok_or_else(|| "cost row is not an array".to_string())?
                    .iter()
                    .map(|c| {
                        c.as_f64()
                            .ok_or_else(|| "cost entry not a number".to_string())
                    })
                    .collect::<Result<Vec<f64>, String>>()
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(RegionTopology {
            master_ranges: ranges("masters")?,
            slave_ranges: ranges("slaves")?,
            latency_us,
            cost,
            cost_period_us: get("cost_period_us")?
                .as_u64()
                .ok_or_else(|| "regions field \"cost_period_us\" not an integer".to_string())?,
            node_capacity: get("node_capacity")?
                .as_u64()
                .ok_or_else(|| "regions field \"node_capacity\" not an integer".to_string())?
                as u32,
        })
    }
}

/// Read-only scheduler state handed to a [`RegionSelector`]: the
/// *unmasked* liveness and in-flight views plus the decision time.
/// Deliberately smaller than [`StageCtx`](super::StageCtx) — region
/// selection happens before the masked per-region view exists, and
/// giving it no RNG handle keeps regionless runs byte-identical.
pub struct RegionView<'a> {
    /// Per-node liveness flags (`true` = dead), full cluster.
    pub dead: &'a [bool],
    /// Per-node in-flight counts, full cluster.
    pub in_flight: &'a [u32],
    /// Number of masters `m` (0 for level-free compositions).
    pub masters: usize,
    /// Decision time in microseconds of substrate time (0 when the
    /// driver did not annotate the request).
    pub at_us: u64,
}

/// Stage 0: pick the region a request is served in, given its tagged
/// origin region. Runs before [`EntrySelector`](super::EntrySelector);
/// the five classic stages then operate on the chosen region's slice.
///
/// Returning `None` means no region can take the request (every region
/// is dead or at capacity); the scheduler reports
/// [`PlacementError::NoLiveNodes`](super::PlacementError) and the
/// driver drops the request — the capacity guard is never overrun.
pub trait RegionSelector {
    /// Choose the serving region for a request originating in `origin`.
    fn select(
        &mut self,
        origin: usize,
        topo: &RegionTopology,
        view: &RegionView<'_>,
    ) -> Option<usize>;
}

impl RegionSelector for Box<dyn RegionSelector> {
    fn select(
        &mut self,
        origin: usize,
        topo: &RegionTopology,
        view: &RegionView<'_>,
    ) -> Option<usize> {
        (**self).select(origin, topo, view)
    }
}

/// `region-nearest`: latency argmin over eligible regions (live
/// masters, below the capacity guard), ties to the lowest region index.
#[derive(Debug, Clone, Copy, Default)]
pub struct NearestRegion;

impl RegionSelector for NearestRegion {
    fn select(
        &mut self,
        origin: usize,
        topo: &RegionTopology,
        view: &RegionView<'_>,
    ) -> Option<usize> {
        (0..topo.regions())
            .filter(|&r| topo.eligible(r, view))
            .min_by_key(|&r| (topo.latency_us(origin, r), r))
    }
}

/// `region-greedy`: CASPER-style score over latency × remaining
/// capacity × cost intensity. Each eligible region is scored
/// `latency_us · cost_at(r, t) / headroom(r)` where `headroom` is the
/// remaining capacity fraction; the argmin wins, ties to the lowest
/// region index. Under a flash crowd the headroom term moves traffic
/// off the saturating home region *before* the hard capacity guard
/// trips, which is exactly where it beats [`NearestRegion`] on
/// latency-weighted stretch.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyRegion;

impl RegionSelector for GreedyRegion {
    fn select(
        &mut self,
        origin: usize,
        topo: &RegionTopology,
        view: &RegionView<'_>,
    ) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        for r in 0..topo.regions() {
            if !topo.eligible(r, view) {
                continue;
            }
            let cap = topo.capacity(r) as f64;
            let headroom = (1.0 - topo.region_in_flight(r, view.in_flight) as f64 / cap).max(1e-6);
            let score =
                topo.latency_us(origin, r).max(1) as f64 * topo.cost_at(r, view.at_us) / headroom;
            if best.is_none_or(|(b, _)| score < b) {
                best = Some((score, r));
            }
        }
        best.map(|(_, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(dead: &'a [bool], in_flight: &'a [u32], m: usize) -> RegionView<'a> {
        RegionView {
            dead,
            in_flight,
            masters: m,
            at_us: 0,
        }
    }

    #[test]
    fn even_topology_partitions_both_levels() {
        let t = RegionTopology::even(32, 6, 3);
        assert!(t.validate(32, 6).is_ok());
        assert_eq!(t.regions(), 3);
        let masters: usize = (0..3)
            .map(|r| {
                let (s, e) = t.master_range(r);
                e - s
            })
            .sum();
        assert_eq!(masters, 6);
        let total: usize = (0..3).map(|r| t.node_count(r)).sum();
        assert_eq!(total, 32);
        for node in 0..32 {
            let r = t.region_of(node);
            assert!(t.contains(r, node), "node {node} region {r}");
        }
        // Ring latency: self is cheapest, symmetric.
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(t.latency_us(i, j), t.latency_us(j, i));
                if i != j {
                    assert!(t.latency_us(i, j) > t.latency_us(i, i));
                }
            }
        }
        // Origins beyond k wrap deterministically.
        assert_eq!(t.latency_us(4, 0), t.latency_us(1, 0));
    }

    #[test]
    fn validation_rejects_broken_topologies() {
        let good = RegionTopology::even(16, 4, 2);
        assert!(good.validate(16, 4).is_ok());
        // Wrong cluster shape.
        assert!(good.validate(16, 5).is_err());
        assert!(good.validate(17, 4).is_err());
        // More regions than masters: some region owns no master.
        let t = RegionTopology::even(16, 2, 4);
        let err = t.validate(16, 2).unwrap_err();
        assert!(err.contains("no master"), "{err}");
        // Latency matrix of the wrong shape.
        let t = RegionTopology::even(16, 4, 2).with_latency(vec![vec![1, 2, 3]]);
        assert!(t.validate(16, 4).is_err());
        // Cost series with a zero period.
        let t = RegionTopology::even(16, 4, 2).with_cost(vec![vec![1.0], vec![2.0]], 0);
        assert!(t.validate(16, 4).is_err());
        // Non-positive cost intensity.
        let t = RegionTopology::even(16, 4, 2).with_cost(vec![vec![1.0], vec![-2.0]], 1_000);
        assert!(t.validate(16, 4).is_err());
        // Zero capacity.
        let t = RegionTopology::even(16, 4, 2).with_node_capacity(0);
        assert!(t.validate(16, 4).is_err());
    }

    #[test]
    fn topology_value_round_trips() {
        let t = RegionTopology::even(32, 6, 3)
            .with_cost(
                vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![1.5, 1.5]],
                60_000_000,
            )
            .with_node_capacity(48);
        let v = t.to_value();
        let back = RegionTopology::from_value(&v).expect("decode own encoding");
        assert_eq!(back, t);
        // And through actual JSON text.
        let text = v.to_json();
        let reparsed = Value::parse(&text).expect("parse own JSON");
        assert_eq!(RegionTopology::from_value(&reparsed).unwrap(), t);
    }

    #[test]
    fn nearest_picks_home_until_guarded() {
        let t = RegionTopology::even(12, 3, 3).with_node_capacity(2);
        let dead = vec![false; 12];
        let mut idle = vec![0u32; 12];
        let mut sel = NearestRegion;
        assert_eq!(sel.select(1, &t, &view(&dead, &idle, 3)), Some(1));
        // Saturate region 1 (master 1 + slaves 6..9 ⇒ capacity 8).
        idle[1] = 2;
        idle[6..9].fill(2);
        let got = sel.select(1, &t, &view(&dead, &idle, 3)).unwrap();
        assert_ne!(got, 1, "full region must be skipped");
    }

    #[test]
    fn nearest_requires_a_live_master() {
        let t = RegionTopology::even(12, 3, 3);
        let mut dead = vec![false; 12];
        dead[1] = true; // region 1's only master
        let idle = vec![0u32; 12];
        let mut sel = NearestRegion;
        let got = sel.select(1, &t, &view(&dead, &idle, 3)).unwrap();
        assert_ne!(got, 1, "masterless region must be skipped");
        // All masters dead: nothing is eligible.
        dead[0..3].fill(true);
        assert_eq!(sel.select(0, &t, &view(&dead, &idle, 3)), None);
    }

    #[test]
    fn greedy_shifts_off_a_loaded_home_region() {
        let t = RegionTopology::even(12, 3, 3).with_node_capacity(8);
        let dead = vec![false; 12];
        let mut load = vec![0u32; 12];
        let mut greedy = GreedyRegion;
        let mut nearest = NearestRegion;
        // Lightly loaded: both pick the home region.
        assert_eq!(greedy.select(0, &t, &view(&dead, &load, 3)), Some(0));
        assert_eq!(nearest.select(0, &t, &view(&dead, &load, 3)), Some(0));
        // Pile load on region 0 (30 of capacity 32 — still below the
        // hard guard): nearest keeps going home, greedy leaves before
        // the guard trips.
        load[0] = 6;
        load[3..6].fill(8);
        assert_eq!(nearest.select(0, &t, &view(&dead, &load, 3)), Some(0));
        let g = greedy.select(0, &t, &view(&dead, &load, 3)).unwrap();
        assert_ne!(g, 0, "greedy must leave the saturating region");
    }

    #[test]
    fn greedy_weighs_cost_intensity() {
        // Two symmetric regions at equal latency cost from origin 0
        // except via cost intensity.
        let t = RegionTopology::even(8, 2, 2)
            .with_latency(vec![vec![1_000, 1_000], vec![1_000, 1_000]])
            .with_cost(vec![vec![3.0], vec![1.0]], 1_000_000);
        let dead = vec![false; 8];
        let load = vec![0u32; 8];
        let mut greedy = GreedyRegion;
        assert_eq!(greedy.select(0, &t, &view(&dead, &load, 2)), Some(1));
    }
}
