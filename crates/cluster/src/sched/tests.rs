use super::*;
use msweb_simcore::SimTime;

fn monitor(p: usize) -> LoadMonitor {
    LoadMonitor::new(p, SimDuration::from_millis(500), SimTime::ZERO)
}

/// Mean demand used by the tests' charging path.
fn svc() -> SimDuration {
    SimDuration::from_millis(10)
}

/// Exact declaration over the tests' standard demand.
fn k(w: f64) -> ReqKnowledge {
    ReqKnowledge::exact(w, svc())
}

fn dispatcher(policy: PolicyKind, p: usize, m: usize) -> Dispatcher {
    let cfg = ClusterConfig::simulation(p, policy).with_masters(m);
    Dispatcher::new(&cfg, 0.25, 0.025)
}

#[test]
fn static_requests_stay_on_masters_for_ms() {
    let mut d = dispatcher(PolicyKind::MasterSlave, 32, 8);
    let mut mon = monitor(32);
    for _ in 0..200 {
        let p = d.place(false, k(0.5), &mut mon).unwrap();
        assert!(p.node < 8, "static landed on slave {}", p.node);
        assert!(p.latency.is_zero());
        assert!(p.on_master);
    }
}

#[test]
fn static_requests_spread_everywhere_for_flat_and_msprime() {
    for kind in [
        PolicyKind::Flat,
        PolicyKind::MsPrime,
        PolicyKind::MsAllMasters,
    ] {
        let mut d = dispatcher(kind, 16, 4);
        let mut mon = monitor(16);
        let mut seen = [false; 16];
        for _ in 0..800 {
            seen[d.place(false, k(0.5), &mut mon).unwrap().node] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "{kind:?}: statics did not reach every node"
        );
    }
}

#[test]
fn flat_never_redirects_dynamics() {
    let mut d = dispatcher(PolicyKind::Flat, 8, 2);
    let mut mon = monitor(8);
    for _ in 0..100 {
        let p = d.place(true, k(0.9), &mut mon).unwrap();
        assert!(p.latency.is_zero());
    }
}

#[test]
fn msprime_pins_dynamics() {
    let mut d = dispatcher(PolicyKind::MsPrime, 16, 4);
    let mut mon = monitor(16);
    for _ in 0..200 {
        let p = d.place(true, k(0.9), &mut mon).unwrap();
        assert!(p.node >= 4, "dynamic on static node {}", p.node);
    }
}

#[test]
fn ms_reservation_caps_master_placements() {
    let mut d = dispatcher(PolicyKind::MasterSlave, 32, 8);
    let mut mon = monitor(32);
    let theta = d.reservation().theta2_star();
    let mut on_master = 0;
    let n = 2000;
    for _ in 0..n {
        if d.place(true, k(0.9), &mut mon).unwrap().on_master {
            on_master += 1;
        }
    }
    let frac = on_master as f64 / n as f64;
    assert!(
        frac <= theta + 0.05,
        "master fraction {frac} exceeds theta2* {theta}"
    );
}

#[test]
fn ms_nr_floods_masters_when_idle() {
    // Without reservation, an all-idle cluster gives masters the same
    // cost as slaves, so a material share of dynamics lands on them.
    let mut d = dispatcher(PolicyKind::MsNoReservation, 32, 8);
    let mut mon = monitor(32);
    let mut on_master = 0;
    for _ in 0..2000 {
        if d.place(true, k(0.9), &mut mon).unwrap().on_master {
            on_master += 1;
        }
    }
    let frac = on_master as f64 / 2000.0;
    // Uniform over 32 candidates would give 0.25.
    assert!(frac > 0.15, "M/S-nr placed only {frac} on masters");
}

#[test]
fn remote_latency_charged_only_when_moving() {
    let mut d = dispatcher(PolicyKind::MasterSlave, 4, 2);
    let mut mon = monitor(4);
    for _ in 0..200 {
        let p = d.place(true, k(0.9), &mut mon).unwrap();
        if p.node >= 2 {
            assert_eq!(p.latency, SimDuration::from_millis(1));
        }
    }
}

#[test]
fn redirect_pays_round_trip() {
    let mut d = dispatcher(PolicyKind::Redirect, 4, 1);
    let mut mon = monitor(4);
    let mut paid = false;
    for _ in 0..100 {
        let p = d.place(true, k(0.9), &mut mon).unwrap();
        if p.node != 0 {
            assert!(p.latency >= SimDuration::from_millis(80));
            paid = true;
        }
    }
    assert!(paid, "no dynamic request ever moved off the single master");
}

#[test]
fn dead_nodes_are_avoided() {
    let mut d = dispatcher(PolicyKind::MasterSlave, 8, 2);
    let mut mon = monitor(8);
    d.set_dead(5, true);
    d.set_dead(6, true);
    for _ in 0..300 {
        let p = d.place(true, k(0.5), &mut mon).unwrap();
        assert!(p.node != 5 && p.node != 6);
        let s = d.place(false, k(0.5), &mut mon).unwrap();
        assert!(s.node != 5 && s.node != 6);
    }
    d.set_dead(5, false);
    assert!(!d.is_dead(5));
}

#[test]
fn switch_balances_connection_counts() {
    let mut d = dispatcher(PolicyKind::Switch, 8, 1);
    let mut mon = monitor(8);
    // 64 placements with no completions: counts must be exactly even.
    for _ in 0..64 {
        d.place(false, k(0.5), &mut mon).unwrap();
    }
    for n in 0..8 {
        assert_eq!(d.in_flight(n), 8, "node {n} unbalanced");
    }
    // Completions free capacity and the switch reuses it first.
    d.note_completion(3);
    d.note_completion(3);
    let p = d.place(true, k(0.9), &mut mon).unwrap();
    assert_eq!(p.node, 3);
    assert!(p.latency.is_zero());
}

#[test]
fn dns_skew_concentrates_entries() {
    let cfg = ClusterConfig::simulation(16, PolicyKind::Flat).with_dns_skew(0.5);
    let mut d = Dispatcher::new(&cfg, 0.25, 0.025);
    let mut mon = monitor(16);
    let mut counts = [0u32; 16];
    for _ in 0..4000 {
        counts[d.place(false, k(0.5), &mut mon).unwrap().node] += 1;
    }
    // Geometric weights: node 0 should get about half the traffic and
    // the tail almost nothing.
    assert!(counts[0] > counts[4] * 4, "skew not applied: {counts:?}");
    assert!(counts[0] as f64 / 4000.0 > 0.3);
}

#[test]
fn zero_skew_is_uniform() {
    let mut d = dispatcher(PolicyKind::Flat, 16, 1);
    let mut mon = monitor(16);
    let mut counts = [0u32; 16];
    for _ in 0..8000 {
        counts[d.place(false, k(0.5), &mut mon).unwrap().node] += 1;
    }
    for (n, &c) in counts.iter().enumerate() {
        let freq = c as f64 / 8000.0;
        assert!((freq - 1.0 / 16.0).abs() < 0.02, "node {n} freq {freq}");
    }
}

#[test]
fn failure_replacement_pays_latency() {
    let mut d = dispatcher(PolicyKind::MasterSlave, 8, 2);
    let mut mon = monitor(8);
    for _ in 0..50 {
        let p = d.replace_after_failure(true, k(0.9), &mut mon).unwrap();
        assert!(!p.latency.is_zero());
    }
}

#[test]
fn dead_cluster_yields_typed_error_for_every_policy() {
    for kind in [
        PolicyKind::Flat,
        PolicyKind::MasterSlave,
        PolicyKind::MsNoSampling,
        PolicyKind::MsNoReservation,
        PolicyKind::MsAllMasters,
        PolicyKind::MsPrime,
        PolicyKind::Redirect,
        PolicyKind::Switch,
    ] {
        let mut d = dispatcher(kind, 4, 2);
        let mut mon = monitor(4);
        for n in 0..4 {
            d.set_dead(n, true);
        }
        for dynamic in [false, true] {
            assert_eq!(
                d.place(dynamic, k(0.5), &mut mon),
                Err(PlacementError::NoLiveNodes),
                "{kind:?} did not surface the dead cluster"
            );
        }
        assert_eq!(
            d.replace_after_failure(true, k(0.5), &mut mon),
            Err(PlacementError::NoLiveNodes)
        );
    }
}

#[test]
fn completion_bookkeeping_saturates_at_zero() {
    let mut d = dispatcher(PolicyKind::Switch, 4, 1);
    let mut mon = monitor(4);
    let p = d.place(true, k(0.5), &mut mon).unwrap();
    assert_eq!(d.in_flight(p.node), 1);
    d.note_completion(p.node);
    assert_eq!(d.in_flight(p.node), 0);
}

#[test]
fn observer_records_every_decision() {
    use std::cell::RefCell;
    use std::rc::Rc;
    let mut d = dispatcher(PolicyKind::MasterSlave, 8, 2);
    let mut mon = monitor(8);
    let collector = Rc::new(RefCell::new(CollectingObserver::default()));
    d.set_observer(Some(Box::new(Rc::clone(&collector))));
    for i in 0..20 {
        d.place(i % 2 == 0, k(0.7), &mut mon).unwrap();
    }
    d.set_observer(None);
    let records = std::mem::take(&mut collector.borrow_mut().records);
    assert_eq!(records.len(), 20);
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64 + 1);
        assert_eq!(r.dynamic, i % 2 == 0);
        assert!(r.chosen < 8);
        assert!(r.theta2_star.is_finite() && r.theta2_star >= 0.0);
        if r.dynamic {
            assert_eq!(
                r.candidates.len(),
                r.scores.len(),
                "scores must align with candidates"
            );
            assert!(!r.candidates.is_empty());
        } else {
            assert!(r.candidates.is_empty(), "statics never score candidates");
        }
    }
}

#[test]
fn registry_composes_a_working_scheduler() {
    let cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave);
    let registry = SchedulerRegistry::builtin();
    let spec = StageSpec::parse("least-connections/none/level-split/min-rsrc/split-demand")
        .expect("well-formed spec");
    let mut sched = registry
        .compose(&cfg, &spec, 0.25, 0.025)
        .expect("all stages registered");
    let mut mon = monitor(8);
    for _ in 0..100 {
        let p = sched.place(true, k(0.8), &mut mon).unwrap();
        assert!(p.node < 8);
    }
}

#[test]
fn registry_reports_unknown_stage_names() {
    let cfg = ClusterConfig::simulation(4, PolicyKind::Flat);
    let registry = SchedulerRegistry::builtin();
    let spec = StageSpec::parse("rotation/none/entry-only/does-not-exist/split-demand").unwrap();
    let err = match registry.compose(&cfg, &spec, 0.25, 0.025) {
        Ok(_) => panic!("unknown scorer must not compose"),
        Err(e) => e,
    };
    match err {
        ComposeError::UnknownStage {
            kind,
            name,
            available,
        } => {
            assert_eq!(kind, "scorer");
            assert_eq!(name, "does-not-exist");
            assert!(available.contains(&"min-rsrc".to_string()));
        }
        other => panic!("unexpected error: {other}"),
    }
}

#[test]
fn stage_spec_rejects_wrong_arity() {
    assert!(StageSpec::parse("a/b/c").is_err());
    assert!(StageSpec::parse("a/b/c/d/e/f/g").is_err());
    assert!(StageSpec::parse("rotation/none/entry-only/random/cpu-only").is_ok());
    // Six parts parse as region + the classic five.
    let spec = StageSpec::parse("region-nearest/rotation/none/entry-only/random/cpu-only").unwrap();
    assert_eq!(spec.region.as_deref(), Some("region-nearest"));
}

#[test]
fn pipeline_matches_legacy_dispatcher_draw_for_draw() {
    // A composed DynScheduler with the same stages as the built-in
    // PolicyScheduler must make identical decisions under the same seed.
    let cfg = ClusterConfig::simulation(12, PolicyKind::MasterSlave).with_masters(3);
    let mut builtin = Dispatcher::new(&cfg, 0.25, 0.025);
    let registry = SchedulerRegistry::builtin();
    let spec =
        StageSpec::parse("rotation-masters/reservation/level-split/min-rsrc-reserve/split-demand")
            .unwrap();
    let mut composed = registry.compose(&cfg, &spec, 0.25, 0.025).unwrap();
    let mut mon_a = monitor(12);
    let mut mon_b = monitor(12);
    for i in 0..500 {
        let dynamic = i % 3 == 0;
        let a = builtin.place(dynamic, k(0.8), &mut mon_a).unwrap();
        let b = composed.place(dynamic, k(0.8), &mut mon_b).unwrap();
        assert_eq!(a, b, "decision {i} diverged");
    }
}

/// Deterministic, monotone-in-time synthetic busy counters so ticks
/// produce varied (and mostly tie-free) per-node load views.
fn synthetic_snaps(p: usize, t: SimTime) -> Vec<msweb_ossim::LoadSnapshot> {
    (0..p)
        .map(|i| {
            let f_cpu = ((i * 37 + 11) % 90) as f64 / 100.0;
            let f_disk = ((i * 53 + 29) % 90) as f64 / 100.0;
            let elapsed = t.as_micros() as f64;
            msweb_ossim::LoadSnapshot {
                at: t,
                cpu_busy: SimDuration::from_micros((elapsed * f_cpu) as u64),
                disk_busy: SimDuration::from_micros((elapsed * f_disk) as u64),
                mem_free_ratio: 1.0,
                ready_len: 0,
                disk_queue_len: 0,
                processes: 0,
            }
        })
        .collect()
}

#[test]
fn indexed_scorer_matches_dense_scan_draw_for_draw() {
    // The decision index must reproduce the dense scan byte for byte —
    // same argmin, same tie-breaks — across ticks (rebuild), charges
    // (sift) and liveness changes (rebuild), at a cluster size where
    // the indexed path is actually taken (candidates >= 16).
    let cfg = ClusterConfig::simulation(48, PolicyKind::MasterSlave).with_masters(12);
    let registry = SchedulerRegistry::builtin();
    let dense_spec =
        StageSpec::parse("rotation-masters/reservation/level-split/min-rsrc-reserve/split-demand")
            .unwrap();
    let indexed_spec = StageSpec::parse(
        "rotation-masters/reservation/level-split/rsrc-indexed-reserve/split-demand",
    )
    .unwrap();
    let mut dense = registry.compose(&cfg, &dense_spec, 0.25, 0.025).unwrap();
    let mut indexed = registry.compose(&cfg, &indexed_spec, 0.25, 0.025).unwrap();
    let mut mon_a = monitor(48);
    let mut mon_b = monitor(48);
    for step in 0..1200usize {
        if step % 150 == 149 {
            let t = SimTime::from_millis(500 * (step as u64 / 150 + 1));
            mon_a.tick(t, &synthetic_snaps(48, t));
            mon_b.tick(t, &synthetic_snaps(48, t));
        }
        if step == 400 {
            dense.set_dead(20, true);
            indexed.set_dead(20, true);
        }
        if step == 800 {
            for (node, dead) in [(20, false), (3, true)] {
                dense.set_dead(node, dead);
                indexed.set_dead(node, dead);
            }
        }
        let dynamic = step % 3 != 0;
        let w = ((step * 13) % 101) as f64 / 100.0;
        let a = dense.place(dynamic, k(w), &mut mon_a).unwrap();
        let b = indexed.place(dynamic, k(w), &mut mon_b).unwrap();
        assert_eq!(a, b, "decision {step} diverged");
    }
}

#[test]
fn registry_resolves_parameterised_scorer_family() {
    let cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave);
    let registry = SchedulerRegistry::builtin();
    let spec = StageSpec::parse("rotation/none/level-split/rsrc-p2:4/split-demand").unwrap();
    let mut sched = registry
        .compose(&cfg, &spec, 0.25, 0.025)
        .expect("rsrc-p2:4 is a valid scorer spec");
    let mut mon = monitor(8);
    for _ in 0..50 {
        assert!(sched.place(true, k(0.6), &mut mon).unwrap().node < 8);
    }
}

#[test]
fn registry_rejects_bad_power_of_k_arguments() {
    let cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave);
    let registry = SchedulerRegistry::builtin();
    for bad in ["rsrc-p2:0", "rsrc-p2:", "rsrc-p2:three", "rsrc-p2:-2"] {
        let spec =
            StageSpec::parse(&format!("rotation/none/level-split/{bad}/split-demand")).unwrap();
        match registry.compose(&cfg, &spec, 0.25, 0.025) {
            Err(ComposeError::BadStageArg { kind, name, .. }) => {
                assert_eq!(kind, "scorer");
                assert_eq!(name, bad);
            }
            Ok(_) => panic!("{bad} must not compose"),
            Err(other) => panic!("{bad}: unexpected error {other}"),
        }
    }
    // A bare family name (no `:`) is an unknown scorer, and the hint
    // advertises the family syntax.
    let spec = StageSpec::parse("rotation/none/level-split/rsrc-p2/split-demand").unwrap();
    match registry.compose(&cfg, &spec, 0.25, 0.025) {
        Err(ComposeError::UnknownStage { available, .. }) => {
            assert!(available.contains(&"rsrc-p2:<arg>".to_string()));
            assert!(available.contains(&"rsrc-indexed".to_string()));
        }
        other => panic!("unexpected result: {:?}", other.map(|_| ())),
    }
}

#[test]
fn power_of_k_concentrates_on_the_cheap_node() {
    // With one idle node in a busy cluster, k = 32 samples over p = 16
    // nodes miss the idle node with probability (15/16)^32 ~ 0.13, so a
    // large majority of dynamics must land there.
    let cfg = ClusterConfig::simulation(16, PolicyKind::MasterSlave).with_masters(4);
    let registry = SchedulerRegistry::builtin();
    let spec = StageSpec::parse("rotation/none/level-split/rsrc-p2:32/split-demand").unwrap();
    let mut sched = registry.compose(&cfg, &spec, 0.25, 0.025).unwrap();
    let mut mon = monitor(16);
    let t = SimTime::from_millis(500);
    let snaps: Vec<_> = (0..16)
        .map(|i| {
            let busy_ms = if i == 9 { 0 } else { 450 };
            msweb_ossim::LoadSnapshot {
                at: t,
                cpu_busy: SimDuration::from_millis(busy_ms),
                disk_busy: SimDuration::from_millis(busy_ms),
                mem_free_ratio: 1.0,
                ready_len: 0,
                disk_queue_len: 0,
                processes: 0,
            }
        })
        .collect();
    mon.tick(t, &snaps);
    let mut on_nine = 0;
    let n = 400;
    for _ in 0..n {
        let node = sched
            .place(true, ReqKnowledge::exact(0.5, SimDuration::ZERO), &mut mon)
            .unwrap()
            .node;
        if node == 9 {
            on_nine += 1;
        }
    }
    assert!(
        on_nine as f64 / n as f64 > 0.6,
        "power-of-32 placed only {on_nine}/{n} on the idle node"
    );
}

#[test]
fn jsonl_sink_writes_one_line_per_record() {
    let mut buf: Vec<u8> = Vec::new();
    {
        let mut sink = JsonlSink::new(&mut buf);
        let record = DecisionRecord {
            seq: 1,
            dynamic: true,
            entry: 0,
            candidates: vec![2, 1],
            scores: vec![1.5, 2.5],
            theta_hat: 0.1,
            theta2_star: 0.4,
            chosen: 2,
            on_master: false,
            redirected: false,
            latency_us: 1000,
            req: 1,
            at_us: 0,
            demand_us: 0,
            w: 0.5,
            expected_us: 0,
            masters_ok: true,
            restart: false,
            origin: 0,
            region: None,
        };
        sink.observe(&record);
        sink.observe(&record);
    }
    let text = String::from_utf8(buf).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);
    for line in lines {
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"seq\""));
        assert!(line.contains("\"theta2_star\""));
    }
}
