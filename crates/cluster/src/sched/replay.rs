//! Counterfactual decision-log replay and stage-level attribution.
//!
//! A schema-v2 decision log (see [`super::trace`]) records every
//! scheduler-state mutation of a run: the placement decisions with
//! their inputs, the load-monitor ticks with the raw per-node counters,
//! request completions, node failures and drops. That makes the log a
//! complete *replay input*: this module re-drives a scheduler — the
//! same composition, or any [`SchedulerRegistry`] spec — over the
//! recorded request stream, reconstructing each placement's `StageCtx`
//! from the recorded snapshots, and diffs the decisions.
//!
//! The analysis answers three questions:
//!
//! 1. **Per-request counterfactual diff** — for each recorded
//!    placement, where would the replayed composition have put the
//!    request?
//! 2. **Stage attribution** — for each divergent placement, which
//!    pipeline stage *first* disagreed, checked in pipeline order:
//!    entry selection, admission (the `masters_ok` verdict and the
//!    reservation state θ̂/θ2*), candidate-set membership, charged-load
//!    view (per-node scores over the same candidates), and finally the
//!    scorer's choice itself.
//! 3. **Aggregate deltas** — divergence rate, node-busy coefficient of
//!    variation, and a stretch-factor estimate from a per-node
//!    processor-sharing model applied identically to the factual and
//!    counterfactual placements (so the *delta* is apples-to-apples).
//!
//! ## Replay fidelity
//!
//! Replaying a log under its own composition is a fixed point: the
//! scheduler RNG is reseeded from the recorded seed, failed placements
//! (drop events with `redrive: true`) are re-driven so their RNG draws
//! are consumed, monitor ticks are replayed from the recorded
//! cumulative counters, and the reservation controller is fed the
//! recorded completions and window utilisation. Under a *different*
//! composition the recorded ticks/completions stand in for the world's
//! response to the counterfactual placements — a deliberate
//! approximation (the log cannot know how the world would have
//! reacted), which is exactly what makes the per-stage diff
//! well-defined.

use std::collections::{BTreeMap, BTreeSet};

use msweb_simcore::{SimDuration, SimTime};

use super::registry::{SchedulerRegistry, StageSpec};
use super::trace::{DecisionRecord, TraceEvent, TraceLog, TRACE_SCHEMA_VERSION};
use super::{CollectingObserver, ComposeError, ReqKnowledge, RunMeta};
use crate::config::{ClusterConfig, PolicyKind};
use serde::Value;

/// Score differences below this are treated as equal when attributing a
/// divergence to the charged-load view.
const SCORE_EPSILON: f64 = 1e-9;

/// How many per-request divergence rows the report keeps verbatim.
const MAX_DIVERGENCE_ROWS: usize = 32;

/// How many parse warnings the report keeps verbatim.
const MAX_WARNINGS: usize = 16;

/// The pipeline stage a divergent placement is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StageKind {
    /// Region selection disagreed (only reachable when at least one of
    /// the compared compositions carries a region stage).
    Region,
    /// Entry selection disagreed.
    Entry,
    /// The admission verdict (`masters_ok`) or reservation state
    /// (θ̂/θ2*) disagreed.
    Admission,
    /// The candidate sets differ as sets.
    Candidates,
    /// Same candidates, but the charged-load view scored them
    /// differently (beyond [`SCORE_EPSILON`]).
    Charge,
    /// Same candidates and scores, different choice.
    Scorer,
}

impl StageKind {
    /// Stable lowercase name used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            StageKind::Region => "region",
            StageKind::Entry => "entry",
            StageKind::Admission => "admission",
            StageKind::Candidates => "candidates",
            StageKind::Charge => "charge",
            StageKind::Scorer => "scorer",
        }
    }
}

/// One divergent placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceRow {
    /// Decision sequence number (1-based, within the run).
    pub seq: u64,
    /// Driver request id.
    pub req: u64,
    /// Node the recorded run chose.
    pub factual: usize,
    /// Node the replayed composition chose (`None`: it found no live
    /// candidate and would have dropped the request).
    pub counterfactual: Option<usize>,
    /// First stage that disagreed, in pipeline order.
    pub stage: StageKind,
}

/// The first record where *any* replayed field disagreed (even when the
/// chosen node still coincided).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Disagreement {
    /// Decision sequence number.
    pub seq: u64,
    /// Driver request id.
    pub req: u64,
    /// First stage that disagreed.
    pub stage: StageKind,
}

/// Options for [`analyze`].
#[derive(Debug, Clone, Default)]
pub struct ReplayOptions {
    /// Replay under this registry spec instead of the recorded
    /// composition (the counterfactual). `None` replays the recorded
    /// composition itself, which must be a fixed point.
    pub spec: Option<StageSpec>,
    /// Which run (log segment, one per `meta` line) to analyze in an
    /// appended multi-run log. Defaults to the first.
    pub run: usize,
}

/// Why a log could not be replayed.
#[derive(Debug)]
pub enum ReplayError {
    /// The log contains no `meta` line (e.g. a schema-v1 log): there is
    /// no recorded scheduler identity to rebuild.
    NoMeta,
    /// The requested run index exceeds the number of `meta` segments.
    NoSuchRun {
        /// The run index requested.
        requested: usize,
        /// How many runs the log contains.
        available: usize,
    },
    /// The recorded policy name does not parse.
    Policy(String),
    /// The replay composition could not be built.
    Compose(ComposeError),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::NoMeta => write!(
                f,
                "log has no meta line; schema-v1 logs lack the scheduler \
                 identity needed for replay (re-record with --trace-decisions)"
            ),
            ReplayError::NoSuchRun {
                requested,
                available,
            } => write!(
                f,
                "run {requested} requested but log has {available} run(s)"
            ),
            ReplayError::Policy(p) => write!(f, "recorded policy {p:?} does not parse"),
            ReplayError::Compose(e) => write!(f, "cannot build replay composition: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<ComposeError> for ReplayError {
    fn from(e: ComposeError) -> Self {
        ReplayError::Compose(e)
    }
}

/// The replay analysis of one log segment; serialise with
/// [`AnalysisReport::to_json`]. Fully deterministic: analysing the same
/// log twice yields byte-identical JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// Trace schema version the analyzer speaks.
    pub schema_version: u64,
    /// Substrate that recorded the log (`"sim"` or `"live"`).
    pub substrate: String,
    /// Recorded policy slug.
    pub policy: String,
    /// Cluster size.
    pub p: usize,
    /// Resolved master count of the recorded run.
    pub m: usize,
    /// Recorded dispatch seed.
    pub seed: u64,
    /// Which run (segment) of the log was analyzed.
    pub run: usize,
    /// Total runs (segments) in the log.
    pub runs: usize,
    /// The recorded composition, as a registry spec string.
    pub baseline_spec: String,
    /// The composition that was replayed (equals `baseline_spec` for a
    /// self-replay).
    pub replay_spec: String,
    /// Placement decisions replayed.
    pub decisions: u64,
    /// Decisions whose chosen node differed (or that the replay would
    /// have dropped).
    pub divergent: u64,
    /// `divergent / decisions` (0 when the log has no decisions).
    pub divergence_rate: f64,
    /// First record where any stage output disagreed, if any.
    pub first_disagreement: Option<Disagreement>,
    /// Count of divergent placements attributed to each stage, keyed by
    /// [`StageKind::as_str`].
    pub stage_attribution: BTreeMap<&'static str, u64>,
    /// Drop events recorded in the log.
    pub drops_recorded: u64,
    /// Requests the replayed composition dropped (failed redrives plus
    /// bookkeeping drops it inherits).
    pub drops_replayed: u64,
    /// Recorded decisions flagged as post-failure restarts.
    pub restarts_recorded: u64,
    /// Completion events recorded in the log.
    pub completions: u64,
    /// Recorded drops that the replayed composition *could* place
    /// (counterfactual rescues).
    pub rescued: u64,
    /// Recorded placements the replayed composition could not place.
    pub counterfactual_dropped: u64,
    /// Mean response/demand stretch measured from the recorded
    /// completions (0 when the log carries no usable demands).
    pub recorded_stretch: f64,
    /// Processor-sharing model stretch of the factual placements.
    pub model_stretch_factual: f64,
    /// Processor-sharing model stretch of the counterfactual
    /// placements.
    pub model_stretch_counterfactual: f64,
    /// `model_stretch_counterfactual - model_stretch_factual`.
    pub model_stretch_delta: f64,
    /// Coefficient of variation of per-node assigned work, factual.
    pub node_busy_cv_factual: f64,
    /// Coefficient of variation of per-node assigned work,
    /// counterfactual.
    pub node_busy_cv_counterfactual: f64,
    /// `node_busy_cv_counterfactual - node_busy_cv_factual`.
    pub node_busy_cv_delta: f64,
    /// Up to [`MAX_DIVERGENCE_ROWS`] divergent placements, in order.
    pub divergences: Vec<DivergenceRow>,
    /// Whether `divergences` was truncated.
    pub divergences_truncated: bool,
    /// Up to [`MAX_WARNINGS`] parse warnings from the log.
    pub parse_warnings: Vec<String>,
    /// Total parse warnings (may exceed `parse_warnings.len()`).
    pub parse_warning_count: u64,
    /// Events with an unknown tag that were skipped.
    pub skipped_unknown_events: u64,
}

impl AnalysisReport {
    /// Serialise as a JSON object with a stable field order; identical
    /// reports render byte-identically.
    pub fn to_value(&self) -> Value {
        let obj = |fields: Vec<(&str, Value)>| {
            Value::Object(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        };
        let first = match &self.first_disagreement {
            None => Value::Null,
            Some(d) => obj(vec![
                ("seq", Value::UInt(d.seq)),
                ("req", Value::UInt(d.req)),
                ("stage", Value::Str(d.stage.as_str().to_string())),
            ]),
        };
        // The `region` key only appears when a region stage was in play
        // (a 6-part spec on either side); regionless reports keep the
        // historical 5-key attribution object byte-for-byte.
        let region_stage = self.baseline_spec.matches('/').count() == 5
            || self.replay_spec.matches('/').count() == 5;
        let mut stages = vec![
            StageKind::Entry,
            StageKind::Admission,
            StageKind::Candidates,
            StageKind::Charge,
            StageKind::Scorer,
        ];
        if region_stage {
            stages.insert(0, StageKind::Region);
        }
        let attribution = obj(stages
            .into_iter()
            .map(|s| {
                (
                    s.as_str(),
                    Value::UInt(self.stage_attribution.get(s.as_str()).copied().unwrap_or(0)),
                )
            })
            .collect());
        let rows = Value::Array(
            self.divergences
                .iter()
                .map(|r| {
                    obj(vec![
                        ("seq", Value::UInt(r.seq)),
                        ("req", Value::UInt(r.req)),
                        ("stage", Value::Str(r.stage.as_str().to_string())),
                        ("factual", Value::UInt(r.factual as u64)),
                        (
                            "counterfactual",
                            match r.counterfactual {
                                Some(n) => Value::UInt(n as u64),
                                None => Value::Null,
                            },
                        ),
                    ])
                })
                .collect(),
        );
        obj(vec![
            ("schema_version", Value::UInt(self.schema_version)),
            ("substrate", Value::Str(self.substrate.clone())),
            ("policy", Value::Str(self.policy.clone())),
            ("p", Value::UInt(self.p as u64)),
            ("m", Value::UInt(self.m as u64)),
            ("seed", Value::UInt(self.seed)),
            ("run", Value::UInt(self.run as u64)),
            ("runs", Value::UInt(self.runs as u64)),
            ("baseline_spec", Value::Str(self.baseline_spec.clone())),
            ("replay_spec", Value::Str(self.replay_spec.clone())),
            ("decisions", Value::UInt(self.decisions)),
            ("divergent", Value::UInt(self.divergent)),
            ("divergence_rate", Value::Float(self.divergence_rate)),
            ("first_disagreement", first),
            ("stage_attribution", attribution),
            ("drops_recorded", Value::UInt(self.drops_recorded)),
            ("drops_replayed", Value::UInt(self.drops_replayed)),
            ("restarts_recorded", Value::UInt(self.restarts_recorded)),
            ("completions", Value::UInt(self.completions)),
            ("rescued", Value::UInt(self.rescued)),
            (
                "counterfactual_dropped",
                Value::UInt(self.counterfactual_dropped),
            ),
            ("recorded_stretch", Value::Float(self.recorded_stretch)),
            (
                "model_stretch_factual",
                Value::Float(self.model_stretch_factual),
            ),
            (
                "model_stretch_counterfactual",
                Value::Float(self.model_stretch_counterfactual),
            ),
            (
                "model_stretch_delta",
                Value::Float(self.model_stretch_delta),
            ),
            (
                "node_busy_cv_factual",
                Value::Float(self.node_busy_cv_factual),
            ),
            (
                "node_busy_cv_counterfactual",
                Value::Float(self.node_busy_cv_counterfactual),
            ),
            ("node_busy_cv_delta", Value::Float(self.node_busy_cv_delta)),
            ("divergences", rows),
            (
                "divergences_truncated",
                Value::Bool(self.divergences_truncated),
            ),
            (
                "parse_warnings",
                Value::Array(
                    self.parse_warnings
                        .iter()
                        .map(|w| Value::Str(w.clone()))
                        .collect(),
                ),
            ),
            ("parse_warning_count", Value::UInt(self.parse_warning_count)),
            (
                "skipped_unknown_events",
                Value::UInt(self.skipped_unknown_events),
            ),
        ])
    }

    /// Pretty-printed JSON with a trailing newline.
    pub fn to_json(&self) -> String {
        let mut s = self.to_value().to_json_pretty();
        s.push('\n');
        s
    }
}

/// Split a log into runs: one segment per `meta` event, each spanning
/// to the next `meta`. Events before the first `meta` are unreachable
/// by replay and not part of any segment.
pub fn segments(events: &[TraceEvent]) -> Vec<&[TraceEvent]> {
    let starts: Vec<usize> = events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| matches!(e, TraceEvent::Meta(_)).then_some(i))
        .collect();
    starts
        .iter()
        .enumerate()
        .map(|(k, &s)| {
            let end = starts.get(k + 1).copied().unwrap_or(events.len());
            &events[s..end]
        })
        .collect()
}

/// Rebuild the recorded run's `ClusterConfig` from its meta line.
fn config_from_meta(meta: &RunMeta) -> Result<(ClusterConfig, PolicyKind), ReplayError> {
    let policy: PolicyKind = meta
        .policy
        .parse()
        .map_err(|_| ReplayError::Policy(meta.policy.clone()))?;
    let mut cfg = ClusterConfig::simulation(meta.p, policy)
        .with_masters(meta.m.max(1))
        .with_master_reserve(meta.master_reserve)
        .with_dns_skew(meta.dns_skew)
        .with_monitor_period(SimDuration::from_micros(meta.monitor_period_us))
        .with_remote_latency(SimDuration::from_micros(meta.remote_latency_us))
        .with_seed(meta.seed)
        .with_redirect_rtt(SimDuration::from_micros(meta.redirect_rtt_us));
    if let Some(speeds) = &meta.speeds {
        cfg = cfg.with_speeds(speeds.clone());
    }
    if let Some(regions) = &meta.regions {
        cfg = cfg.with_regions(regions.clone());
    }
    Ok((cfg, policy))
}

/// Compare a recorded decision against its replayed counterpart and
/// return the first stage that disagreed, in pipeline order.
fn first_divergent_stage(f: &DecisionRecord, c: &DecisionRecord) -> Option<StageKind> {
    if f.region != c.region {
        return Some(StageKind::Region);
    }
    if f.entry != c.entry {
        return Some(StageKind::Entry);
    }
    if f.masters_ok != c.masters_ok || f.theta_hat != c.theta_hat || f.theta2_star != c.theta2_star
    {
        return Some(StageKind::Admission);
    }
    let fs: BTreeSet<usize> = f.candidates.iter().copied().collect();
    let cs: BTreeSet<usize> = c.candidates.iter().copied().collect();
    if fs != cs {
        return Some(StageKind::Candidates);
    }
    let f_scores: BTreeMap<usize, f64> = f
        .candidates
        .iter()
        .copied()
        .zip(f.scores.iter().copied())
        .collect();
    let c_scores: BTreeMap<usize, f64> = c
        .candidates
        .iter()
        .copied()
        .zip(c.scores.iter().copied())
        .collect();
    for (node, fsc) in &f_scores {
        if let Some(csc) = c_scores.get(node) {
            if (fsc - csc).abs() > SCORE_EPSILON {
                return Some(StageKind::Charge);
            }
        }
    }
    if f.chosen != c.chosen {
        return Some(StageKind::Scorer);
    }
    None
}

/// Per-node processor-sharing stretch model: every request placed on a
/// node shares that node's (speed-scaled) capacity equally while
/// active. Returns the mean response/demand stretch over all placements
/// with a known demand, or 0 when there are none.
///
/// Both the factual and counterfactual placements run through this same
/// model, so the *difference* isolates the placement decisions from the
/// model's simplifications (no memory, no disk phases, no transfers).
fn ps_model_stretch(placements: &[(usize, u64, u64)], p: usize, speeds: Option<&[f64]>) -> f64 {
    model_stretch(placements, p, speeds)
}

/// Public entry to the replay analyzer's processor-sharing stretch
/// model, for experiments that compare placement lists produced outside
/// a decision log (e.g. the `unknown-sizes` sweep). `placements` is
/// `(node, arrival µs, true demand µs)` per request; `speeds` optionally
/// scales per-node capacity. See [`ReplayReport::model_stretch_factual`]
/// for the modelling caveats.
pub fn model_stretch(placements: &[(usize, u64, u64)], p: usize, speeds: Option<&[f64]>) -> f64 {
    // Per node: (arrival s, service s on this node, raw demand s).
    let mut per_node: Vec<Vec<(f64, f64, f64)>> = vec![Vec::new(); p];
    for &(node, at_us, demand_us) in placements {
        if node >= p || demand_us == 0 {
            continue;
        }
        let speed = speeds.map_or(1.0, |s| s[node]).max(1e-9);
        let demand = demand_us as f64 / 1e6;
        per_node[node].push((at_us as f64 / 1e6, demand / speed, demand));
    }
    let mut sum = 0.0;
    let mut count = 0u64;
    for jobs in &mut per_node {
        // Log order is time order within a run, but sort defensively
        // (stable, so equal-time jobs keep log order). total_cmp: a
        // degenerate log with NaN times must yield NaN stretch, not a
        // panic.
        jobs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let queue: Vec<(f64, f64)> = jobs.iter().map(|&(at, service, _)| (at, service)).collect();
        for (i, response) in simulate_ps(&queue).into_iter().enumerate() {
            // Stretch against the *raw* demand, like the recorded
            // stretch: a faster node genuinely lowers it.
            sum += response / jobs[i].2;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Egalitarian processor sharing on one node: jobs arrive at fixed
/// times, each active job receives `1/n` of capacity. Returns each
/// job's response time (completion - arrival), aligned with `jobs`.
fn simulate_ps(jobs: &[(f64, f64)]) -> Vec<f64> {
    let mut responses = vec![0.0; jobs.len()];
    let mut active: Vec<(usize, f64)> = Vec::new();
    let mut t = 0.0f64;
    let mut next = 0usize;
    loop {
        let arrival = jobs.get(next).map(|j| j.0);
        while !active.is_empty() {
            let n = active.len() as f64;
            let min_rem = active.iter().map(|a| a.1).fold(f64::INFINITY, f64::min);
            let finish_at = t + min_rem * n;
            if let Some(at) = arrival {
                if at < finish_at {
                    let dt = (at - t).max(0.0);
                    for a in &mut active {
                        a.1 -= dt / n;
                    }
                    t = at;
                    break;
                }
            }
            for a in &mut active {
                a.1 -= min_rem;
            }
            t = finish_at;
            active.retain(|&(idx, rem)| {
                if rem <= 1e-12 {
                    responses[idx] = t - jobs[idx].0;
                    false
                } else {
                    true
                }
            });
        }
        match arrival {
            Some(at) => {
                if active.is_empty() && t < at {
                    t = at;
                }
                active.push((next, jobs[next].1.max(1e-12)));
                next += 1;
            }
            None => {
                if active.is_empty() {
                    break;
                }
            }
        }
    }
    responses
}

/// Population coefficient of variation (σ/μ) of per-node busy work; 0
/// when the mean is 0.
fn busy_cv(busy: &[f64]) -> f64 {
    if busy.is_empty() {
        return 0.0;
    }
    let mean = busy.iter().sum::<f64>() / busy.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = busy.iter().map(|b| (b - mean).powi(2)).sum::<f64>() / busy.len() as f64;
    var.sqrt() / mean
}

/// Replay one run of `log` and produce the analysis; see the
/// [module docs](self).
pub fn analyze(log: &TraceLog, opts: &ReplayOptions) -> Result<AnalysisReport, ReplayError> {
    let segs = segments(&log.events);
    if segs.is_empty() {
        return Err(ReplayError::NoMeta);
    }
    if opts.run >= segs.len() {
        return Err(ReplayError::NoSuchRun {
            requested: opts.run,
            available: segs.len(),
        });
    }
    let segment = segs[opts.run];
    let TraceEvent::Meta(meta) = &segment[0] else {
        unreachable!("segments start at meta events");
    };
    let (cfg, policy) = config_from_meta(meta)?;

    // The recorded composition: the explicit spec when one was logged,
    // otherwise the policy's built-in stage table.
    let baseline_spec = match &meta.spec {
        Some(s) => StageSpec::parse(s)?,
        None => StageSpec::for_policy(policy),
    };
    let replay_spec = opts.spec.clone().unwrap_or_else(|| baseline_spec.clone());

    let registry = SchedulerRegistry::builtin();
    let mut scheduler = registry.compose(&cfg, &replay_spec, meta.a0, meta.r0)?;
    let collector = std::rc::Rc::new(std::cell::RefCell::new(CollectingObserver::default()));
    scheduler.set_observer(Some(Box::new(collector.clone())));
    let mut monitor =
        crate::loadinfo::LoadMonitor::new(meta.p, cfg.monitor_period(), SimTime::ZERO);

    let mut report = AnalysisReport {
        schema_version: TRACE_SCHEMA_VERSION,
        substrate: meta.substrate.clone(),
        policy: meta.policy.clone(),
        p: meta.p,
        m: meta.m,
        seed: meta.seed,
        run: opts.run,
        runs: segs.len(),
        baseline_spec: baseline_spec.render(),
        replay_spec: replay_spec.render(),
        decisions: 0,
        divergent: 0,
        divergence_rate: 0.0,
        first_disagreement: None,
        stage_attribution: BTreeMap::new(),
        drops_recorded: 0,
        drops_replayed: 0,
        restarts_recorded: 0,
        completions: 0,
        rescued: 0,
        counterfactual_dropped: 0,
        recorded_stretch: 0.0,
        model_stretch_factual: 0.0,
        model_stretch_counterfactual: 0.0,
        model_stretch_delta: 0.0,
        node_busy_cv_factual: 0.0,
        node_busy_cv_counterfactual: 0.0,
        node_busy_cv_delta: 0.0,
        divergences: Vec::new(),
        divergences_truncated: false,
        parse_warnings: log.warnings.iter().take(MAX_WARNINGS).cloned().collect(),
        parse_warning_count: log.warnings.len() as u64,
        skipped_unknown_events: 0,
    };

    // Counterfactual node per request id, for completion routing.
    let mut cf_node: BTreeMap<u64, usize> = BTreeMap::new();
    // (node, at_us, demand_us) placement lists for the models.
    let mut factual_placements: Vec<(usize, u64, u64)> = Vec::new();
    let mut cf_placements: Vec<(usize, u64, u64)> = Vec::new();
    let mut factual_busy = vec![0.0f64; meta.p];
    let mut cf_busy = vec![0.0f64; meta.p];
    let speeds = meta.speeds.as_deref();
    // (response/demand) accumulation from recorded completions.
    let mut demand_by_req: BTreeMap<u64, u64> = BTreeMap::new();
    let mut stretch_sum = 0.0f64;
    let mut stretch_n = 0u64;

    for event in &segment[1..] {
        match event {
            TraceEvent::Meta(_) => unreachable!("segment contains one meta"),
            TraceEvent::Decision(f) => {
                report.decisions += 1;
                if f.restart {
                    report.restarts_recorded += 1;
                }
                let effective_demand = if f.demand_us > 0 {
                    f.demand_us
                } else {
                    f.expected_us
                };
                demand_by_req.insert(f.req, effective_demand);
                scheduler.note_request(
                    f.req,
                    SimTime(f.at_us),
                    SimDuration::from_micros(f.demand_us),
                );
                scheduler.note_origin(f.origin);
                // Replay re-declares exactly what the recorded run
                // declared (`w`/`expected_us` are the declaration; the
                // truth lives in `demand_us` via `note_request`).
                let know = ReqKnowledge::exact(f.w, SimDuration::from_micros(f.expected_us));
                let placed = if f.restart {
                    scheduler.replace_after_failure(f.dynamic, know, &mut monitor)
                } else {
                    scheduler.place(f.dynamic, know, &mut monitor)
                };
                if f.chosen < meta.p {
                    let speed = speeds.map_or(1.0, |s| s[f.chosen]).max(1e-9);
                    factual_busy[f.chosen] += effective_demand as f64 / speed;
                }
                factual_placements.push((f.chosen, f.at_us, effective_demand));
                match placed {
                    Ok(_) => {
                        let c = collector
                            .borrow_mut()
                            .records
                            .pop()
                            .expect("observer records every placement");
                        cf_node.insert(f.req, c.chosen);
                        if c.chosen < meta.p {
                            let speed = speeds.map_or(1.0, |s| s[c.chosen]).max(1e-9);
                            cf_busy[c.chosen] += effective_demand as f64 / speed;
                        }
                        cf_placements.push((c.chosen, f.at_us, effective_demand));
                        let stage = first_divergent_stage(f, &c);
                        if let Some(stage) = stage {
                            if report.first_disagreement.is_none() {
                                report.first_disagreement = Some(Disagreement {
                                    seq: f.seq,
                                    req: f.req,
                                    stage,
                                });
                            }
                        }
                        if f.chosen != c.chosen {
                            report.divergent += 1;
                            let stage = stage.unwrap_or(StageKind::Scorer);
                            *report.stage_attribution.entry(stage.as_str()).or_insert(0) += 1;
                            if report.divergences.len() < MAX_DIVERGENCE_ROWS {
                                report.divergences.push(DivergenceRow {
                                    seq: f.seq,
                                    req: f.req,
                                    factual: f.chosen,
                                    counterfactual: Some(c.chosen),
                                    stage,
                                });
                            } else {
                                report.divergences_truncated = true;
                            }
                        }
                    }
                    Err(_) => {
                        // The counterfactual composition found no live
                        // node where the recorded run placed one.
                        report.divergent += 1;
                        report.counterfactual_dropped += 1;
                        report.drops_replayed += 1;
                        let stage = StageKind::Candidates;
                        *report.stage_attribution.entry(stage.as_str()).or_insert(0) += 1;
                        if report.first_disagreement.is_none() {
                            report.first_disagreement = Some(Disagreement {
                                seq: f.seq,
                                req: f.req,
                                stage,
                            });
                        }
                        if report.divergences.len() < MAX_DIVERGENCE_ROWS {
                            report.divergences.push(DivergenceRow {
                                seq: f.seq,
                                req: f.req,
                                factual: f.chosen,
                                counterfactual: None,
                                stage,
                            });
                        } else {
                            report.divergences_truncated = true;
                        }
                    }
                }
            }
            TraceEvent::Complete {
                req,
                dynamic,
                response_us,
                ..
            } => {
                report.completions += 1;
                if let Some(&node) = cf_node.get(req) {
                    scheduler.note_completion(node);
                    cf_node.remove(req);
                }
                scheduler
                    .reservation_mut()
                    .note_response(*dynamic, SimDuration::from_micros(*response_us));
                if let Some(&demand) = demand_by_req.get(req) {
                    if demand > 0 {
                        stretch_sum += *response_us as f64 / demand as f64;
                        stretch_n += 1;
                    }
                }
            }
            TraceEvent::Tick { at_us, rho, nodes } => {
                let snaps: Vec<_> = nodes.iter().map(|n| n.to_snapshot(*at_us)).collect();
                monitor.tick(SimTime(*at_us), &snaps);
                scheduler.reservation_mut().update(*rho);
            }
            TraceEvent::NodeDown { node } => scheduler.set_dead(*node, true),
            TraceEvent::NodeUp { node } => scheduler.set_dead(*node, false),
            TraceEvent::Drop(d) => {
                report.drops_recorded += 1;
                if d.redrive {
                    // The recorded run invoked the scheduler (consuming
                    // RNG draws) before dropping; re-drive to stay in
                    // lockstep. A different composition may even manage
                    // to place the request.
                    scheduler.note_request(d.req, SimTime(d.at_us), SimDuration::ZERO);
                    scheduler.note_origin(d.origin);
                    let know = ReqKnowledge::exact(d.w, SimDuration::from_micros(d.expected_us));
                    let placed = if d.restart {
                        scheduler.replace_after_failure(d.dynamic, know, &mut monitor)
                    } else {
                        scheduler.place(d.dynamic, know, &mut monitor)
                    };
                    match placed {
                        Ok(_) => {
                            let c = collector
                                .borrow_mut()
                                .records
                                .pop()
                                .expect("observer records every placement");
                            report.rescued += 1;
                            cf_node.insert(d.req, c.chosen);
                            if c.chosen < meta.p {
                                let speed = speeds.map_or(1.0, |s| s[c.chosen]).max(1e-9);
                                cf_busy[c.chosen] += d.expected_us as f64 / speed;
                            }
                            cf_placements.push((c.chosen, d.at_us, d.expected_us));
                        }
                        Err(_) => report.drops_replayed += 1,
                    }
                } else {
                    // Bookkeeping drop that never reached the
                    // scheduler; the replay inherits it as-is.
                    report.drops_replayed += 1;
                }
            }
            // SLO alerts are derived data (re-computable from the
            // surrounding events by `msweb slo-check`): they mutate no
            // scheduler state and replay skips them without touching
            // the report, so logs with and without rules attached
            // analyze byte-identically.
            TraceEvent::Alert { .. } => {}
            TraceEvent::Unknown { .. } => report.skipped_unknown_events += 1,
        }
    }

    report.divergence_rate = if report.decisions == 0 {
        0.0
    } else {
        report.divergent as f64 / report.decisions as f64
    };
    report.recorded_stretch = if stretch_n == 0 {
        0.0
    } else {
        stretch_sum / stretch_n as f64
    };
    report.model_stretch_factual = ps_model_stretch(&factual_placements, meta.p, speeds);
    report.model_stretch_counterfactual = ps_model_stretch(&cf_placements, meta.p, speeds);
    report.model_stretch_delta = report.model_stretch_counterfactual - report.model_stretch_factual;
    report.node_busy_cv_factual = busy_cv(&factual_busy);
    report.node_busy_cv_counterfactual = busy_cv(&cf_busy);
    report.node_busy_cv_delta = report.node_busy_cv_counterfactual - report.node_busy_cv_factual;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ps_model_single_job_has_unit_stretch() {
        let s = ps_model_stretch(&[(0, 0, 1_000_000)], 2, None);
        assert!((s - 1.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn ps_model_contention_raises_stretch() {
        // Two simultaneous 1s jobs on one node: each takes 2s.
        let together = ps_model_stretch(&[(0, 0, 1_000_000), (0, 0, 1_000_000)], 2, None);
        assert!((together - 2.0).abs() < 1e-9, "{together}");
        // Spread over two nodes: no contention.
        let spread = ps_model_stretch(&[(0, 0, 1_000_000), (1, 0, 1_000_000)], 2, None);
        assert!((spread - 1.0).abs() < 1e-9, "{spread}");
    }

    #[test]
    fn ps_model_staggered_overlap() {
        // Job A (2s) at t=0, job B (1s) at t=1. A runs alone for 1s,
        // leaving 1s; from t=1 both have 1s left at half rate each, so
        // both finish at t=3 (responses 3 and 2).
        let jobs = vec![(0.0, 2.0), (1.0, 1.0)];
        let resp = simulate_ps(&jobs);
        assert!((resp[0] - 3.0).abs() < 1e-9, "{resp:?}");
        assert!((resp[1] - 2.0).abs() < 1e-9, "{resp:?}");
    }

    #[test]
    fn busy_cv_balanced_is_zero() {
        assert_eq!(busy_cv(&[2.0, 2.0, 2.0]), 0.0);
        assert!(busy_cv(&[1.0, 3.0]) > 0.4);
        assert_eq!(busy_cv(&[]), 0.0);
    }

    #[test]
    fn speeds_scale_model_service_times() {
        // Same demand on a 2x node halves the service time.
        let slow = ps_model_stretch(&[(0, 0, 1_000_000), (0, 0, 1_000_000)], 1, None);
        let fast = ps_model_stretch(&[(0, 0, 1_000_000), (0, 0, 1_000_000)], 1, Some(&[2.0]));
        // Stretch is response/demand with demand unscaled, so the fast
        // node halves the ratio.
        assert!((slow - 2.0).abs() < 1e-9);
        assert!((fast - 1.0).abs() < 1e-9);
    }
}
