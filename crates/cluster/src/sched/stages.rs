//! Concrete pipeline stages and the [`PolicyKind`] factory.
//!
//! Each paper policy is a composition of the stages below (built by
//! [`for_policy`]); the same types are exposed through the
//! [registry](super::registry) for custom compositions. The
//! implementations reproduce the former monolithic dispatcher *draw
//! for draw*: under a fixed seed a composed scheduler makes exactly
//! the RNG draws the old `match self.policy` arms made, which is what
//! keeps the golden `RunSummary` fixtures byte-identical.

use super::index::{RsrcIndex, INDEX_MIN_CANDIDATES};
use super::{
    Admission, CandidateDecision, CandidateSet, ChargeBack, EntrySelector, PlacementError,
    ReqKnowledge, Scorer, StageCtx, Stages,
};
use crate::config::{ClusterConfig, PolicyKind};
use crate::loadinfo::LoadMonitor;
use crate::reservation::ReservationController;
use crate::telemetry::ScorerPaths;
use msweb_simcore::rng::SimRng;
use msweb_simcore::time::SimDuration;
use std::cell::{Cell, RefCell};

/// Draw an index in `[0, n)` with DNS-cache skew: weight of slot i is
/// `(1 − skew)^i` (geometric concentration on the low-numbered,
/// longest-cached addresses). skew = 0 degenerates to uniform.
fn skewed_index(rng: &mut SimRng, skew: f64, n: usize) -> usize {
    debug_assert!(n > 0);
    if skew <= 0.0 {
        return rng.gen_index(n);
    }
    let q = 1.0 - skew;
    // Inverse CDF of the truncated geometric.
    let total = 1.0 - q.powi(n as i32);
    let u = rng.next_f64() * total;
    let idx = ((1.0 - u).ln() / q.ln()).floor() as usize;
    idx.min(n - 1)
}

/// Which slice of the cluster a [`RotationEntry`] rotates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotationScope {
    /// All `p` nodes (Flat, M/S-1, M/S′, Switch-less front ends).
    All,
    /// The master level `0..m` (the M/S family's DNS view).
    Masters,
}

/// DNS-rotation entry selection with optional cache skew: a skewed
/// random pick over the scope, retried up to 8 times past dead nodes,
/// then a dense scan over the live set (whole cluster as last resort).
#[derive(Debug, Clone)]
pub struct RotationEntry {
    scope: RotationScope,
    skew: f64,
}

impl RotationEntry {
    /// Rotate over every node.
    pub fn over_all(skew: f64) -> Self {
        RotationEntry {
            scope: RotationScope::All,
            skew,
        }
    }

    /// Rotate over the master level. Falls back to the whole cluster
    /// when the composition resolves zero masters.
    pub fn over_masters(skew: f64) -> Self {
        RotationEntry {
            scope: RotationScope::Masters,
            skew,
        }
    }
}

impl EntrySelector for RotationEntry {
    fn select_entry(&mut self, ctx: &mut StageCtx<'_>) -> Result<usize, PlacementError> {
        let p = ctx.nodes();
        let hi = match self.scope {
            RotationScope::All => p,
            RotationScope::Masters if ctx.masters == 0 => p,
            RotationScope::Masters => ctx.masters,
        };
        for _ in 0..8 {
            let n = skewed_index(ctx.rng, self.skew, hi);
            if !ctx.dead[n] {
                return Ok(n);
            }
        }
        // Dense fallback.
        let live: Vec<usize> = (0..hi).filter(|&n| !ctx.dead[n]).collect();
        if live.is_empty() {
            let any: Vec<usize> = (0..p).filter(|&n| !ctx.dead[n]).collect();
            if any.is_empty() {
                return Err(PlacementError::NoLiveNodes);
            }
            Ok(*ctx.rng.choose(&any))
        } else {
            Ok(*ctx.rng.choose(&live))
        }
    }
}

/// LB-switch entry selection: fewest open connections over all live
/// nodes, scanning from a random start so ties break randomly — the
/// switch sees connection counts in real time.
#[derive(Debug, Clone, Default)]
pub struct LeastConnectionsEntry;

impl EntrySelector for LeastConnectionsEntry {
    fn select_entry(&mut self, ctx: &mut StageCtx<'_>) -> Result<usize, PlacementError> {
        let p = ctx.nodes();
        let mut best = usize::MAX;
        let mut best_count = u32::MAX;
        let start = ctx.rng.gen_index(p);
        for off in 0..p {
            let n = (start + off) % p;
            if !ctx.dead[n] && ctx.in_flight[n] < best_count {
                best = n;
                best_count = ctx.in_flight[n];
            }
        }
        if best == usize::MAX {
            return Err(PlacementError::NoLiveNodes);
        }
        Ok(best)
    }
}

/// Reservation-controller admission (§4.2): masters receive dynamic
/// requests only while the observed master share stays under θ2*.
/// With `enforce = false` the controller still measures (and the stage
/// still records placements) but never blocks — the M/S-nr ablation.
#[derive(Debug, Clone)]
pub struct ReservationAdmission {
    /// Whether the θ2* cap actually blocks master placements.
    pub enforce: bool,
}

impl Admission for ReservationAdmission {
    fn enforces_reservation(&self) -> bool {
        self.enforce
    }
    fn master_eligible(&self, ctx: &StageCtx<'_>, _know: ReqKnowledge) -> bool {
        // With m = p there is no slave level to protect.
        ctx.masters == ctx.nodes() || ctx.reservation.master_eligible()
    }
    fn note_placement(&self, reservation: &mut ReservationController, on_master: bool) {
        reservation.note_placement(on_master);
    }
}

/// No admission control: masters always eligible, placements not
/// recorded (Flat, M/S′, Switch).
#[derive(Debug, Clone, Default)]
pub struct NoAdmission;

impl Admission for NoAdmission {
    fn enforces_reservation(&self) -> bool {
        false
    }
    fn master_eligible(&self, _ctx: &StageCtx<'_>, _know: ReqKnowledge) -> bool {
        true
    }
    fn note_placement(&self, _reservation: &mut ReservationController, _on_master: bool) {}
}

/// Attained-service-aware admission: masters take dynamic requests only
/// while their per-node attained backlog (service already sunk into
/// in-flight work) stays at or below the slave level's. A size-oblivious
/// stand-in for the reservation controller — it needs no demand
/// declarations at all, only the [`AttainedService`](super::AttainedService)
/// feed, so it composes honestly with `Hidden` demands.
#[derive(Debug, Clone, Default)]
pub struct AttainedAdmission;

impl Admission for AttainedAdmission {
    fn enforces_reservation(&self) -> bool {
        false
    }
    fn master_eligible(&self, ctx: &StageCtx<'_>, _know: ReqKnowledge) -> bool {
        let p = ctx.nodes();
        let m = ctx.masters;
        if m == 0 || m >= p {
            return true;
        }
        let level_mean = |lo: usize, hi: usize| {
            let sum: u64 = (lo..hi).map(|n| ctx.attained.total(n).as_micros()).sum();
            sum as f64 / (hi - lo) as f64
        };
        level_mean(0, m) <= level_mean(m, p)
    }
    fn note_placement(&self, _reservation: &mut ReservationController, _on_master: bool) {}
}

/// Level-split candidate formation for the M/S family: statics stay on
/// their entry node; dynamics consider all live slaves, plus the live
/// masters when admission allows, falling back to any live node when
/// the preferred set is empty.
#[derive(Debug, Clone, Default)]
pub struct LevelCandidates;

impl CandidateSet for LevelCandidates {
    fn collect(
        &self,
        ctx: &StageCtx<'_>,
        dynamic: bool,
        masters_ok: bool,
        out: &mut Vec<usize>,
    ) -> CandidateDecision {
        if !dynamic {
            // Static requests are never re-scheduled: "it only takes a
            // very small amount of time to process".
            return CandidateDecision::Stay;
        }
        let p = ctx.nodes();
        let m = ctx.masters;
        out.extend((m..p).filter(|&n| !ctx.dead[n]));
        if masters_ok {
            out.extend((0..m).filter(|&n| !ctx.dead[n]));
        }
        if out.is_empty() {
            out.extend((0..p).filter(|&n| !ctx.dead[n]));
        }
        CandidateDecision::Remote
    }
}

/// Fixed pin set for dynamic requests (M/S′: the would-be slave
/// nodes), with the usual liveness fallback. Pinned placements never
/// count as master placements.
#[derive(Debug, Clone)]
pub struct PinnedCandidates {
    nodes: Vec<usize>,
}

impl PinnedCandidates {
    /// Pin dynamics to an explicit node list.
    pub fn new(nodes: Vec<usize>) -> Self {
        PinnedCandidates { nodes }
    }

    /// Pin dynamics to the would-be slave set of `config` (the last
    /// `p − m` nodes; all nodes when `m = p`).
    pub fn slaves(config: &ClusterConfig) -> Self {
        let p = config.p();
        let m = config.resolve_masters();
        let nodes = if m < p {
            (m..p).collect()
        } else {
            (0..p).collect()
        };
        PinnedCandidates { nodes }
    }
}

impl CandidateSet for PinnedCandidates {
    fn collect(
        &self,
        ctx: &StageCtx<'_>,
        dynamic: bool,
        _masters_ok: bool,
        out: &mut Vec<usize>,
    ) -> CandidateDecision {
        if !dynamic {
            return CandidateDecision::Stay;
        }
        out.extend(self.nodes.iter().copied().filter(|&n| !ctx.dead[n]));
        if out.is_empty() {
            out.extend((0..ctx.nodes()).filter(|&n| !ctx.dead[n]));
        }
        CandidateDecision::Remote
    }
    fn attributes_masters(&self) -> bool {
        false
    }
}

/// Every request runs where it entered (Flat dynamics, the LB switch).
#[derive(Debug, Clone, Default)]
pub struct EntryOnly;

impl CandidateSet for EntryOnly {
    fn collect(
        &self,
        _ctx: &StageCtx<'_>,
        _dynamic: bool,
        _masters_ok: bool,
        _out: &mut Vec<usize>,
    ) -> CandidateDecision {
        CandidateDecision::Stay
    }
}

/// Minimum-RSRC scoring (Eq. 5) with a per-node capacity reserve held
/// back on masters; ties keep the first (shuffled) candidate.
///
/// Comes in two flavours with identical placements:
///
/// * [`MinRsrcScorer::dense`] — the reference O(p) scan;
/// * [`MinRsrcScorer::indexed`] — backed by an incrementally
///   maintained [`RsrcIndex`], answering the same argmin in O(log p)
///   typical time. The index recognises the candidate sets the
///   built-in stages produce (*all* live nodes, or the live slave
///   level `[m, p)` — checked via live counts) and falls back to the
///   dense scan for anything else, as well as for candidate sets
///   smaller than [`INDEX_MIN_CANDIDATES`].
#[derive(Debug, Clone)]
pub struct MinRsrcScorer {
    /// CPU fraction withheld from master nodes (0 disables the
    /// reserve, reproducing the plain RSRC rule).
    pub master_reserve: f64,
    /// Lazily synced decision index; `None` = always scan densely.
    /// Interior mutability keeps `Scorer::choose`'s `&self` contract.
    index: Option<RefCell<RsrcIndex>>,
    /// Which path answered each `choose` call. Maintained
    /// unconditionally (a `Cell` add on a branch already taken), read
    /// back through [`Scorer::path_counts`].
    paths: PathCells,
}

/// Interior-mutable path counters (the `&self` `choose` contract again).
#[derive(Debug, Clone, Default)]
struct PathCells {
    indexed: Cell<u64>,
    dense_unindexed: Cell<u64>,
    dense_small: Cell<u64>,
    dense_degenerate: Cell<u64>,
    dense_no_range: Cell<u64>,
}

impl PathCells {
    fn snapshot(&self) -> ScorerPaths {
        ScorerPaths {
            indexed: self.indexed.get(),
            dense_unindexed: self.dense_unindexed.get(),
            dense_small: self.dense_small.get(),
            dense_degenerate: self.dense_degenerate.get(),
            dense_no_range: self.dense_no_range.get(),
        }
    }
}

fn bump(cell: &Cell<u64>) {
    cell.set(cell.get() + 1);
}

impl MinRsrcScorer {
    /// Dense-scan scorer (the reference implementation).
    pub fn dense(master_reserve: f64) -> Self {
        MinRsrcScorer {
            master_reserve,
            index: None,
            paths: PathCells::default(),
        }
    }

    /// Index-backed scorer; placements are byte-identical to
    /// [`MinRsrcScorer::dense`].
    pub fn indexed(master_reserve: f64) -> Self {
        MinRsrcScorer {
            master_reserve,
            index: Some(RefCell::new(RsrcIndex::new(master_reserve))),
            paths: PathCells::default(),
        }
    }

    /// Whether this scorer carries a decision index.
    pub fn is_indexed(&self) -> bool {
        self.index.is_some()
    }

    fn dense_choose(
        &self,
        ctx: &mut StageCtx<'_>,
        candidates: &[usize],
        sampled_w: f64,
    ) -> Option<usize> {
        let m = ctx.masters;
        let reserve = self.master_reserve;
        ctx.rsrc
            .select_with_reserve(candidates.iter(), ctx.loads, sampled_w, |n| {
                if n < m {
                    reserve
                } else {
                    0.0
                }
            })
    }
}

impl Scorer for MinRsrcScorer {
    fn choose(
        &self,
        ctx: &mut StageCtx<'_>,
        candidates: &[usize],
        know: ReqKnowledge,
    ) -> Option<usize> {
        let sampled_w = know.w;
        let Some(cell) = &self.index else {
            bump(&self.paths.dense_unindexed);
            return self.dense_choose(ctx, candidates, sampled_w);
        };
        if candidates.len() < INDEX_MIN_CANDIDATES {
            bump(&self.paths.dense_small);
            return self.dense_choose(ctx, candidates, sampled_w);
        }
        let mut index = cell.borrow_mut();
        index.sync(ctx);
        if index.degenerate() {
            // The window's charge plateau grew past the point where the
            // tree can prune; scan densely until the next tick rebuilds
            // (identical placements either way — this is purely a cost
            // switch).
            drop(index);
            bump(&self.paths.dense_degenerate);
            return self.dense_choose(ctx, candidates, sampled_w);
        }
        // Structural check: the built-in candidate stages produce
        // either every live node or the live slave level. Matching
        // live counts identify which (a proper subset of equal size
        // cannot exist — candidate sets never contain dead nodes).
        let p = ctx.nodes();
        let m = ctx.masters.min(p);
        let range = if candidates.len() == index.live_count(0, p) {
            Some((0, p))
        } else if m > 0 && candidates.len() == index.live_count(m, p) {
            Some((m, p))
        } else {
            None
        };
        let Some((lo, hi)) = range else {
            // A custom candidate stage produced some other shape; the
            // index cannot answer for it, so score densely.
            bump(&self.paths.dense_no_range);
            return self.dense_choose(ctx, candidates, sampled_w);
        };
        debug_assert!(
            candidates
                .iter()
                .all(|&c| (lo..hi).contains(&c) && !ctx.dead[c]),
            "candidate set size matched range [{lo}, {hi}) but members differ; \
             custom candidate stages must produce whole-cluster or slave-level \
             live sets for indexed scoring"
        );
        bump(&self.paths.indexed);
        index.choose_in_range(lo, hi, ctx.rsrc.effective_w(sampled_w), candidates)
    }
    fn score(&self, ctx: &StageCtx<'_>, node: usize, know: ReqKnowledge) -> f64 {
        let reserve = if node < ctx.masters {
            self.master_reserve
        } else {
            0.0
        };
        ctx.rsrc
            .cost_reserved(node, &ctx.loads[node], know.w, reserve)
    }
    fn path_counts(&self) -> Option<ScorerPaths> {
        Some(self.paths.snapshot())
    }
}

/// Power-of-k-choices over the reserved RSRC cost: sample `k`
/// candidates uniformly *with replacement* (always exactly `k` RNG
/// draws, keeping the decision sequence independent of the candidate
/// count) and keep the cheapest — the classic Azar et al. trade-off as
/// a pipeline stage. O(k) load inspections per decision regardless of
/// cluster size, at a modest placement-quality cost; the approximate
/// alternative to [`MinRsrcScorer::indexed`].
#[derive(Debug, Clone)]
pub struct PowerOfKScorer {
    /// Number of uniform samples per decision (`k ≥ 1`).
    pub k: usize,
    /// CPU fraction withheld from master nodes, as in
    /// [`MinRsrcScorer`].
    pub master_reserve: f64,
}

impl PowerOfKScorer {
    /// Sample-`k` scorer with a master reserve.
    pub fn new(k: usize, master_reserve: f64) -> Self {
        assert!(k >= 1, "power-of-k needs k >= 1");
        PowerOfKScorer { k, master_reserve }
    }
}

impl Scorer for PowerOfKScorer {
    fn choose(
        &self,
        ctx: &mut StageCtx<'_>,
        candidates: &[usize],
        know: ReqKnowledge,
    ) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let m = ctx.masters;
        let mut best: Option<(usize, f64)> = None;
        for _ in 0..self.k {
            let n = candidates[ctx.rng.gen_index(candidates.len())];
            let reserve = if n < m { self.master_reserve } else { 0.0 };
            let c = ctx.rsrc.cost_reserved(n, &ctx.loads[n], know.w, reserve);
            match best {
                Some((_, bc)) if bc <= c => {}
                _ => best = Some((n, c)),
            }
        }
        best.map(|(n, _)| n)
    }
    fn score(&self, ctx: &StageCtx<'_>, node: usize, know: ReqKnowledge) -> f64 {
        let reserve = if node < ctx.masters {
            self.master_reserve
        } else {
            0.0
        };
        ctx.rsrc
            .cost_reserved(node, &ctx.loads[node], know.w, reserve)
    }
}

/// Fewest-open-connections scoring over the candidate set; ties keep
/// the first (shuffled) candidate.
#[derive(Debug, Clone, Default)]
pub struct LeastConnectionsScorer;

impl Scorer for LeastConnectionsScorer {
    fn choose(
        &self,
        ctx: &mut StageCtx<'_>,
        candidates: &[usize],
        _know: ReqKnowledge,
    ) -> Option<usize> {
        candidates.iter().copied().min_by_key(|&n| ctx.in_flight[n])
    }
    fn score(&self, ctx: &StageCtx<'_>, node: usize, _know: ReqKnowledge) -> f64 {
        ctx.in_flight[node] as f64
    }
}

/// Uniform-random scoring: one RNG draw over the candidate set.
#[derive(Debug, Clone, Default)]
pub struct RandomScorer;

impl Scorer for RandomScorer {
    fn choose(
        &self,
        ctx: &mut StageCtx<'_>,
        candidates: &[usize],
        _know: ReqKnowledge,
    ) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        Some(candidates[ctx.rng.gen_index(candidates.len())])
    }
}

/// Floor on per-job expected remaining work, keeping SERPT scores
/// strictly positive even when attained service has overtaken the
/// declared expectation.
const SERPT_FLOOR_US: u64 = 1;

/// Gittins-style scoring under a heavy-tailed (Pareto-like) demand
/// prior: a job that has already attained `a` has posterior mean
/// remaining work growing with `a`, so a node's penalty is
/// `Σ_j (expected + attained_j)` over its in-flight jobs — the node
/// whose backlog is *least likely to clear soon* scores worst. Uses the
/// declared `expected` only as a population prior (identical for every
/// candidate under `Hidden`), never per-request truth.
///
/// See PAPERS.md: "Optimal Multiserver Scheduling with Unknown Job
/// Sizes in Heavy Traffic" (Scully, Grosof, Harchol-Balter) for why
/// attained-service indices are the right primitive when sampling fails.
#[derive(Debug, Clone, Default)]
pub struct GittinsScorer;

impl Scorer for GittinsScorer {
    fn choose(
        &self,
        ctx: &mut StageCtx<'_>,
        candidates: &[usize],
        know: ReqKnowledge,
    ) -> Option<usize> {
        choose_min(self, ctx, candidates, know)
    }
    fn score(&self, ctx: &StageCtx<'_>, node: usize, know: ReqKnowledge) -> f64 {
        let prior = know.expected.as_micros();
        ctx.attained
            .per_job(node)
            .map(|a| (prior + a.as_micros()) as f64)
            .sum()
    }
}

/// Shortest-expected-remaining-processing-time scoring: a node's
/// penalty is `Σ_j max(expected − attained_j, floor)` — the work the
/// population prior says is still owed to its in-flight jobs. The
/// light-tail counterpart of [`GittinsScorer`] (under exponential-ish
/// demands, service already attained mostly *reduces* what remains).
#[derive(Debug, Clone, Default)]
pub struct SerptScorer;

impl Scorer for SerptScorer {
    fn choose(
        &self,
        ctx: &mut StageCtx<'_>,
        candidates: &[usize],
        know: ReqKnowledge,
    ) -> Option<usize> {
        choose_min(self, ctx, candidates, know)
    }
    fn score(&self, ctx: &StageCtx<'_>, node: usize, know: ReqKnowledge) -> f64 {
        let prior = know.expected.as_micros();
        ctx.attained
            .per_job(node)
            .map(|a| prior.saturating_sub(a.as_micros()).max(SERPT_FLOOR_US) as f64)
            .sum()
    }
}

/// Least-attained-service scoring: a node's penalty is the raw attained
/// service of its in-flight jobs, `Σ_j attained_j`. Fully
/// size-oblivious — it ignores the declaration entirely, so its
/// placements are invariant under every [`Provenance`](super::Provenance).
#[derive(Debug, Clone, Default)]
pub struct LasScorer;

impl Scorer for LasScorer {
    fn choose(
        &self,
        ctx: &mut StageCtx<'_>,
        candidates: &[usize],
        know: ReqKnowledge,
    ) -> Option<usize> {
        choose_min(self, ctx, candidates, know)
    }
    fn score(&self, ctx: &StageCtx<'_>, node: usize, _know: ReqKnowledge) -> f64 {
        ctx.attained.total(node).as_micros() as f64
    }
}

/// Shared argmin for the attained-service scorers: first strict minimum
/// over the (pre-shuffled) candidate order, no RNG draws.
fn choose_min<S: Scorer + ?Sized>(
    scorer: &S,
    ctx: &mut StageCtx<'_>,
    candidates: &[usize],
    know: ReqKnowledge,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for &n in candidates {
        let s = scorer.score(ctx, n, know);
        match best {
            Some((_, bs)) if bs <= s => {}
            _ => best = Some((n, s)),
        }
    }
    best.map(|(n, _)| n)
}

/// Debit the expected demand split into CPU and disk shares by the
/// request's effective CPU weight `w`.
#[derive(Debug, Clone, Default)]
pub struct SplitDemandCharge;

impl ChargeBack for SplitDemandCharge {
    fn debit(&self, monitor: &mut LoadMonitor, node: usize, know: ReqKnowledge) {
        let cpu = know.expected.mul_f64(know.w);
        let disk = know.expected.saturating_sub(cpu);
        monitor.charge(node, cpu, disk);
    }
}

/// Debit only the CPU share (the LB switch cannot see disk demand).
#[derive(Debug, Clone, Default)]
pub struct CpuOnlyCharge;

impl ChargeBack for CpuOnlyCharge {
    fn debit(&self, monitor: &mut LoadMonitor, node: usize, know: ReqKnowledge) {
        monitor.charge(node, know.expected.mul_f64(know.w), SimDuration::ZERO);
    }
}

/// Statically dispatched entry stage covering every built-in policy.
#[derive(Debug, Clone)]
pub enum EntryStage {
    /// DNS rotation (optionally skewed) over a scope.
    Rotation(RotationEntry),
    /// LB-switch least-connections scan.
    LeastConnections(LeastConnectionsEntry),
}

impl EntrySelector for EntryStage {
    fn select_entry(&mut self, ctx: &mut StageCtx<'_>) -> Result<usize, PlacementError> {
        match self {
            EntryStage::Rotation(s) => s.select_entry(ctx),
            EntryStage::LeastConnections(s) => s.select_entry(ctx),
        }
    }
}

/// Statically dispatched admission stage covering every built-in policy.
#[derive(Debug, Clone)]
pub enum AdmissionStage {
    /// Reservation-controller admission.
    Reservation(ReservationAdmission),
    /// Attained-service-backlog admission.
    Attained(AttainedAdmission),
    /// No admission control.
    None(NoAdmission),
}

impl Admission for AdmissionStage {
    fn enforces_reservation(&self) -> bool {
        match self {
            AdmissionStage::Reservation(s) => s.enforces_reservation(),
            AdmissionStage::Attained(s) => s.enforces_reservation(),
            AdmissionStage::None(s) => s.enforces_reservation(),
        }
    }
    fn master_eligible(&self, ctx: &StageCtx<'_>, know: ReqKnowledge) -> bool {
        match self {
            AdmissionStage::Reservation(s) => s.master_eligible(ctx, know),
            AdmissionStage::Attained(s) => s.master_eligible(ctx, know),
            AdmissionStage::None(s) => s.master_eligible(ctx, know),
        }
    }
    fn note_placement(&self, reservation: &mut ReservationController, on_master: bool) {
        match self {
            AdmissionStage::Reservation(s) => s.note_placement(reservation, on_master),
            AdmissionStage::Attained(s) => s.note_placement(reservation, on_master),
            AdmissionStage::None(s) => s.note_placement(reservation, on_master),
        }
    }
}

/// Statically dispatched candidate stage covering every built-in policy.
#[derive(Debug, Clone)]
pub enum CandidateStage {
    /// Level-split candidates.
    Level(LevelCandidates),
    /// Pinned candidate set.
    Pinned(PinnedCandidates),
    /// Entry-only (no re-scheduling).
    EntryOnly(EntryOnly),
}

impl CandidateSet for CandidateStage {
    fn collect(
        &self,
        ctx: &StageCtx<'_>,
        dynamic: bool,
        masters_ok: bool,
        out: &mut Vec<usize>,
    ) -> CandidateDecision {
        match self {
            CandidateStage::Level(s) => s.collect(ctx, dynamic, masters_ok, out),
            CandidateStage::Pinned(s) => s.collect(ctx, dynamic, masters_ok, out),
            CandidateStage::EntryOnly(s) => s.collect(ctx, dynamic, masters_ok, out),
        }
    }
    fn attributes_masters(&self) -> bool {
        match self {
            CandidateStage::Level(s) => s.attributes_masters(),
            CandidateStage::Pinned(s) => s.attributes_masters(),
            CandidateStage::EntryOnly(s) => s.attributes_masters(),
        }
    }
}

/// Statically dispatched scoring stage covering every built-in policy.
// One instance per scheduler, so the MinRsrc variant's size is not worth
// a pointer chase on the per-decision `choose` path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum ScoreStage {
    /// Minimum-RSRC scoring.
    MinRsrc(MinRsrcScorer),
    /// Least-connections scoring.
    LeastConnections(LeastConnectionsScorer),
    /// Uniform-random scoring.
    Random(RandomScorer),
    /// Gittins-style attained-service scoring.
    Gittins(GittinsScorer),
    /// Shortest-expected-remaining scoring.
    Serpt(SerptScorer),
    /// Least-attained-service scoring.
    Las(LasScorer),
}

impl Scorer for ScoreStage {
    fn choose(
        &self,
        ctx: &mut StageCtx<'_>,
        candidates: &[usize],
        know: ReqKnowledge,
    ) -> Option<usize> {
        match self {
            ScoreStage::MinRsrc(s) => s.choose(ctx, candidates, know),
            ScoreStage::LeastConnections(s) => s.choose(ctx, candidates, know),
            ScoreStage::Random(s) => s.choose(ctx, candidates, know),
            ScoreStage::Gittins(s) => s.choose(ctx, candidates, know),
            ScoreStage::Serpt(s) => s.choose(ctx, candidates, know),
            ScoreStage::Las(s) => s.choose(ctx, candidates, know),
        }
    }
    fn score(&self, ctx: &StageCtx<'_>, node: usize, know: ReqKnowledge) -> f64 {
        match self {
            ScoreStage::MinRsrc(s) => s.score(ctx, node, know),
            ScoreStage::LeastConnections(s) => s.score(ctx, node, know),
            ScoreStage::Random(s) => s.score(ctx, node, know),
            ScoreStage::Gittins(s) => s.score(ctx, node, know),
            ScoreStage::Serpt(s) => s.score(ctx, node, know),
            ScoreStage::Las(s) => s.score(ctx, node, know),
        }
    }
    fn path_counts(&self) -> Option<ScorerPaths> {
        match self {
            ScoreStage::MinRsrc(s) => s.path_counts(),
            _ => None,
        }
    }
}

/// Statically dispatched charge-back stage covering every built-in
/// policy.
#[derive(Debug, Clone)]
pub enum ChargeStage {
    /// CPU/disk split by effective weight.
    Split(SplitDemandCharge),
    /// CPU-only charge.
    CpuOnly(CpuOnlyCharge),
}

impl ChargeBack for ChargeStage {
    fn debit(&self, monitor: &mut LoadMonitor, node: usize, know: ReqKnowledge) {
        match self {
            ChargeStage::Split(s) => s.debit(monitor, node, know),
            ChargeStage::CpuOnly(s) => s.debit(monitor, node, know),
        }
    }
}

/// The [`PolicyKind`] → stage-composition factory: maps each paper
/// variant onto the pipeline stages that reproduce it exactly.
pub fn for_policy(
    config: &ClusterConfig,
) -> Stages<EntryStage, AdmissionStage, CandidateStage, ScoreStage, ChargeStage> {
    let skew = config.dns_skew();
    let enforce = !matches!(
        config.policy(),
        PolicyKind::MsNoReservation | PolicyKind::Flat | PolicyKind::MsPrime
    );
    let master_reserve = if enforce {
        config.master_reserve()
    } else {
        0.0
    };
    match config.policy() {
        PolicyKind::Flat => Stages {
            entry: EntryStage::Rotation(RotationEntry::over_all(skew)),
            admission: AdmissionStage::None(NoAdmission),
            candidates: CandidateStage::EntryOnly(EntryOnly),
            scorer: ScoreStage::MinRsrc(MinRsrcScorer::indexed(0.0)),
            charge: ChargeStage::Split(SplitDemandCharge),
        },
        PolicyKind::MsPrime => Stages {
            entry: EntryStage::Rotation(RotationEntry::over_all(skew)),
            admission: AdmissionStage::None(NoAdmission),
            candidates: CandidateStage::Pinned(PinnedCandidates::slaves(config)),
            scorer: ScoreStage::MinRsrc(MinRsrcScorer::indexed(0.0)),
            charge: ChargeStage::Split(SplitDemandCharge),
        },
        PolicyKind::MsAllMasters => Stages {
            entry: EntryStage::Rotation(RotationEntry::over_all(skew)),
            admission: AdmissionStage::Reservation(ReservationAdmission { enforce }),
            candidates: CandidateStage::Level(LevelCandidates),
            scorer: ScoreStage::MinRsrc(MinRsrcScorer::indexed(master_reserve)),
            charge: ChargeStage::Split(SplitDemandCharge),
        },
        PolicyKind::Switch => Stages {
            entry: EntryStage::LeastConnections(LeastConnectionsEntry),
            admission: AdmissionStage::None(NoAdmission),
            candidates: CandidateStage::EntryOnly(EntryOnly),
            scorer: ScoreStage::MinRsrc(MinRsrcScorer::indexed(0.0)),
            charge: ChargeStage::CpuOnly(CpuOnlyCharge),
        },
        // The M/S family proper: M/S, M/S-ns, M/S-nr, Redirect.
        PolicyKind::MasterSlave
        | PolicyKind::MsNoSampling
        | PolicyKind::MsNoReservation
        | PolicyKind::Redirect => Stages {
            entry: EntryStage::Rotation(RotationEntry::over_masters(skew)),
            admission: AdmissionStage::Reservation(ReservationAdmission { enforce }),
            candidates: CandidateStage::Level(LevelCandidates),
            scorer: ScoreStage::MinRsrc(MinRsrcScorer::indexed(master_reserve)),
            charge: ChargeStage::Split(SplitDemandCharge),
        },
    }
}
