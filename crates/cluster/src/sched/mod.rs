//! Composable scheduling pipeline.
//!
//! The paper's §4 dispatcher is really a *pipeline*: front-end entry
//! selection (DNS rotation, LB switch), reservation admission (the θ2*
//! cap of Theorem 1), candidate-set formation by cluster level, RSRC
//! cost scoring (Eq. 5) and an expected-demand charge-back against the
//! stale load view. This module decomposes the former monolithic
//! `Dispatcher` into five stage traits — [`EntrySelector`],
//! [`Admission`], [`CandidateSet`], [`Scorer`] and [`ChargeBack`] —
//! composed into a [`Scheduler`] value that both the event-driven
//! simulator (`ClusterSim`) and the live emulation (`emu::emulate`)
//! consume unchanged.
//!
//! [`PolicyKind`] is now a thin factory: [`PolicyScheduler::new`] maps
//! each paper variant to a stage composition (see [`stages`]), and the
//! string-keyed [`SchedulerRegistry`] lets examples and the CLI build
//! custom compositions — including user-defined stages — without
//! touching this crate.
//!
//! Every placement can be observed through a [`DecisionObserver`]
//! ([`trace`]): the scheduler emits one [`DecisionRecord`] per decision
//! with the entry node, the candidate set considered, per-candidate
//! RSRC scores, the reservation state (θ̂, θ2*) and the chosen node.
//! The hot path pays only an `Option` check when no observer is
//! installed.

pub mod index;
pub mod knowledge;
pub mod region;
pub mod registry;
pub mod replay;
pub mod stages;
pub mod trace;

use crate::config::ClusterConfig;
use crate::config::PolicyKind;
use crate::loadinfo::{LoadMonitor, NodeLoad};
use crate::reservation::ReservationController;
use crate::rsrc::RsrcPredictor;
use crate::telemetry::{SchedTelemetry, ScorerPaths, SpanTimer, Stage, SPAN_SAMPLE_MASK};
use msweb_simcore::rng::SimRng;
use msweb_simcore::time::{SimDuration, SimTime};

pub use index::RsrcIndex;
pub use knowledge::{AttainedService, Provenance, ReqKnowledge};
pub use region::{GreedyRegion, NearestRegion, RegionSelector, RegionTopology, RegionView};
pub use registry::{ComposeError, SchedulerRegistry, StageSpec};
pub use replay::{analyze, model_stretch, AnalysisReport, ReplayError, ReplayOptions, StageKind};
pub use stages::{AdmissionStage, CandidateStage, ChargeStage, EntryStage, ScoreStage};
pub use trace::{
    encode_event, parse_line, CollectingObserver, DecisionObserver, DecisionRecord, DropRecord,
    JsonlSink, NodeSample, RunMeta, TraceEvent, TraceLog, TRACE_SCHEMA_VERSION,
};

/// Outcome of a scheduling decision: where the request runs and what it
/// costs to get it there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Node index the request is assigned to.
    pub node: usize,
    /// Transfer latency paid before service starts (zero when the
    /// request stays on the entry node).
    pub latency: SimDuration,
    /// Whether the target counts as a master for accounting purposes.
    pub on_master: bool,
}

/// Typed error returned when a scheduling stage cannot produce a
/// placement, replacing the former `panic!("entire cluster is dead")`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementError {
    /// Every node in the cluster is marked dead; there is nowhere to
    /// place the request. Drivers should drop the request and count it.
    NoLiveNodes,
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NoLiveNodes => write!(f, "no live node available for placement"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Read-mostly view of scheduler state handed to every stage.
///
/// Stages receive disjoint borrows of the scheduler's internals so that
/// concrete stage types stay plain data (unit structs or small
/// parameter bags) and the composition can be instantiated both with
/// static dispatch (the built-in policies) and boxed trait objects
/// (the registry).
pub struct StageCtx<'a> {
    /// Deterministic RNG; every draw must go through this handle so the
    /// decision sequence is reproducible.
    pub rng: &'a mut SimRng,
    /// Per-node liveness flags (`true` = dead). Length is the cluster
    /// size `p`.
    pub dead: &'a [bool],
    /// Per-node in-flight request counts (LB-switch connection view).
    pub in_flight: &'a [u32],
    /// Number of master nodes `m` (0 for level-free policies).
    pub masters: usize,
    /// RSRC cost predictor (Eq. 5) over the current load view.
    pub rsrc: &'a RsrcPredictor,
    /// Reservation controller state (θ̂ estimates and θ2* cap).
    pub reservation: &'a ReservationController,
    /// Most recent per-node load view from the monitor.
    pub loads: &'a [NodeLoad],
    /// Instance id of the monitor `loads` came from; see
    /// [`LoadMonitor::id`](crate::loadinfo::LoadMonitor::id).
    pub monitor_id: u64,
    /// Monitor view-replacement counter; see
    /// [`LoadMonitor::epoch`](crate::loadinfo::LoadMonitor::epoch).
    pub load_epoch: u64,
    /// Nodes charged since the monitor's last tick, in charge order;
    /// see [`LoadMonitor::charges`](crate::loadinfo::LoadMonitor::charges).
    pub charge_log: &'a [u32],
    /// Bumped by the scheduler whenever node liveness changes, so
    /// load-state mirrors (the decision index) can detect deaths and
    /// revivals without scanning `dead`.
    pub liveness_epoch: u64,
    /// Per-in-flight attained-service accounting fed by the driving
    /// substrate; the demand signal size-oblivious stages rank by.
    pub attained: &'a AttainedService,
}

impl StageCtx<'_> {
    /// Cluster size `p`.
    pub fn nodes(&self) -> usize {
        self.dead.len()
    }
}

/// Whether the candidate stage kept the request on its entry node or
/// produced a remote candidate set to score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateDecision {
    /// Serve on the entry node; no candidate scoring happens.
    Stay,
    /// Score the collected candidate set and transfer if needed.
    Remote,
}

/// Stage 1: pick the node a request arrives at (DNS rotation with
/// optional skew, or an LB switch's least-connections scan).
pub trait EntrySelector {
    /// Select the entry node, or fail if the whole cluster is dead.
    fn select_entry(&mut self, ctx: &mut StageCtx<'_>) -> Result<usize, PlacementError>;
}

/// Stage 2: admission control for master nodes (the reservation
/// controller of §4.2, an attained-service backlog gate, or a no-op).
pub trait Admission {
    /// Whether the composed scheduler should run its reservation
    /// controller in enforcing mode (used at construction time).
    fn enforces_reservation(&self) -> bool;
    /// Whether masters may receive dynamic requests right now, given
    /// the declared knowledge about the request.
    fn master_eligible(&self, ctx: &StageCtx<'_>, know: ReqKnowledge) -> bool;
    /// Record the final placement level with the controller.
    fn note_placement(&self, reservation: &mut ReservationController, on_master: bool);
}

/// Stage 3: form the candidate set for a request (level split, M/S′
/// pin set, entry-only), including the liveness fallback.
pub trait CandidateSet {
    /// Collect live candidate nodes into `out`, or decide the request
    /// stays on its entry node. `out` arrives cleared.
    fn collect(
        &self,
        ctx: &StageCtx<'_>,
        dynamic: bool,
        masters_ok: bool,
        out: &mut Vec<usize>,
    ) -> CandidateDecision;
    /// Whether placements from this candidate set should be attributed
    /// to the master level when the chosen node index is below `m`
    /// (false for M/S′, whose pinned nodes never count as masters).
    fn attributes_masters(&self) -> bool {
        true
    }
}

/// Stage 4: pick one node from the (shuffled) candidate set.
pub trait Scorer {
    /// Choose the best candidate, or `None` when the set is empty.
    /// `know` is the request's *declared* demand knowledge; scorers
    /// that rank by attained service read [`StageCtx::attained`]
    /// instead of trusting it.
    fn choose(
        &self,
        ctx: &mut StageCtx<'_>,
        candidates: &[usize],
        know: ReqKnowledge,
    ) -> Option<usize>;
    /// Score a single node for tracing purposes (lower is better for
    /// cost-based scorers). Never called on the hot path.
    fn score(&self, ctx: &StageCtx<'_>, node: usize, know: ReqKnowledge) -> f64 {
        let _ = (ctx, node, know);
        0.0
    }
    /// Cumulative counts of which internal path resolved each `choose`
    /// call (tournament index vs dense-scan fallbacks), for scorers
    /// that track them. `None` for scorers without internal paths.
    fn path_counts(&self) -> Option<ScorerPaths> {
        None
    }
}

/// Stage 5: debit the expected demand of a placed request against the
/// stale load view so back-to-back decisions within one monitor window
/// see the earlier commitments.
pub trait ChargeBack {
    /// Charge the request's declared expected demand to `node`. The
    /// scheduler hands this stage knowledge whose `w` has already been
    /// passed through [`RsrcPredictor::effective_w`] (clamped, with the
    /// no-sampling fallback applied).
    fn debit(&self, monitor: &mut LoadMonitor, node: usize, know: ReqKnowledge);
}

impl EntrySelector for Box<dyn EntrySelector> {
    fn select_entry(&mut self, ctx: &mut StageCtx<'_>) -> Result<usize, PlacementError> {
        (**self).select_entry(ctx)
    }
}

impl Admission for Box<dyn Admission> {
    fn enforces_reservation(&self) -> bool {
        (**self).enforces_reservation()
    }
    fn master_eligible(&self, ctx: &StageCtx<'_>, know: ReqKnowledge) -> bool {
        (**self).master_eligible(ctx, know)
    }
    fn note_placement(&self, reservation: &mut ReservationController, on_master: bool) {
        (**self).note_placement(reservation, on_master)
    }
}

impl CandidateSet for Box<dyn CandidateSet> {
    fn collect(
        &self,
        ctx: &StageCtx<'_>,
        dynamic: bool,
        masters_ok: bool,
        out: &mut Vec<usize>,
    ) -> CandidateDecision {
        (**self).collect(ctx, dynamic, masters_ok, out)
    }
    fn attributes_masters(&self) -> bool {
        (**self).attributes_masters()
    }
}

impl Scorer for Box<dyn Scorer> {
    fn choose(
        &self,
        ctx: &mut StageCtx<'_>,
        candidates: &[usize],
        know: ReqKnowledge,
    ) -> Option<usize> {
        (**self).choose(ctx, candidates, know)
    }
    fn score(&self, ctx: &StageCtx<'_>, node: usize, know: ReqKnowledge) -> f64 {
        (**self).score(ctx, node, know)
    }
    fn path_counts(&self) -> Option<ScorerPaths> {
        (**self).path_counts()
    }
}

impl ChargeBack for Box<dyn ChargeBack> {
    fn debit(&self, monitor: &mut LoadMonitor, node: usize, know: ReqKnowledge) {
        (**self).debit(monitor, node, know)
    }
}

/// Optional stage 0 state: a region selector plus the topology it
/// selects over, and a scratch liveness mask restricting the rest of
/// the pipeline to the chosen region.
struct RegionState {
    selector: Box<dyn RegionSelector>,
    topo: RegionTopology,
    /// `masked[i] = dead[i] || i ∉ chosen region`, refilled per
    /// placement and handed to the downstream stages as their `dead`
    /// view, so entry/candidates/scorer confine themselves to the
    /// region without knowing regions exist.
    masked: Vec<bool>,
}

/// Bundle of the five pipeline stages handed to [`Scheduler::compose`].
pub struct Stages<E, A, C, S, G> {
    /// Entry selection stage.
    pub entry: E,
    /// Admission stage.
    pub admission: A,
    /// Candidate-set stage.
    pub candidates: C,
    /// Scoring stage.
    pub scorer: S,
    /// Charge-back stage.
    pub charge: G,
}

/// A scheduling pipeline: five stages plus the shared state they
/// operate on (RNG, liveness, in-flight counts, reservation controller,
/// RSRC predictor).
///
/// Built-in policies use the statically dispatched
/// [`PolicyScheduler`] alias; registry compositions use the boxed
/// [`DynScheduler`]. Both implement [`Schedule`], the driver-facing
/// surface consumed by `ClusterSim` and `emu::emulate`.
pub struct Scheduler<E, A, C, S, G> {
    entry: E,
    admission: A,
    candidates: C,
    scorer: S,
    charge: G,
    p: usize,
    m: usize,
    rsrc: RsrcPredictor,
    reservation: ReservationController,
    remote_latency: SimDuration,
    redirect_rtt: SimDuration,
    pay_redirect: bool,
    rng: SimRng,
    buf: Vec<usize>,
    dead: Vec<bool>,
    in_flight: Vec<u32>,
    /// Bumped on every liveness change; exposed to stages through
    /// [`StageCtx::liveness_epoch`] so load-state mirrors can
    /// invalidate themselves.
    liveness: u64,
    seq: u64,
    observer: Option<Box<dyn DecisionObserver>>,
    /// Live telemetry; `None` (the default) costs the hot path a single
    /// pointer check, mirroring the observer.
    telemetry: Option<Box<SchedTelemetry>>,
    /// Driver annotation for the next `place` call: (request id, decision
    /// time, actual service demand). Consumed (and cleared) by `place`
    /// whether or not the placement succeeds.
    pending: Option<(u64, SimTime, SimDuration)>,
    /// Set while `replace_after_failure` runs so the emitted record is
    /// marked as a post-failure restart.
    restarting: bool,
    /// Optional region front tier (stage 0); `None` keeps the classic
    /// five-stage pipeline byte-identical.
    region: Option<RegionState>,
    /// Client origin tag for the next `place` call, set by the driver
    /// through [`Schedule::note_origin`]; consumed (reset to 0) by
    /// `place`.
    pending_origin: usize,
    /// Attained-service books, fed by the driver through the
    /// [`Schedule::note_service_*`](Schedule::note_service_start)
    /// calls and read by stages through [`StageCtx::attained`].
    attained: AttainedService,
}

/// Statically dispatched scheduler covering every built-in
/// [`PolicyKind`]; the per-request hot path involves no boxing.
pub type PolicyScheduler =
    Scheduler<EntryStage, AdmissionStage, CandidateStage, ScoreStage, ChargeStage>;

/// Boxed-stage scheduler produced by the [`SchedulerRegistry`]; used
/// for custom compositions where stage types are chosen at runtime.
pub type DynScheduler = Scheduler<
    Box<dyn EntrySelector>,
    Box<dyn Admission>,
    Box<dyn CandidateSet>,
    Box<dyn Scorer>,
    Box<dyn ChargeBack>,
>;

/// Backwards-compatible name for the per-policy scheduler: the former
/// monolithic dispatcher is now the statically composed pipeline.
pub type Dispatcher = PolicyScheduler;

impl<E, A, C, S, G> Scheduler<E, A, C, S, G>
where
    E: EntrySelector,
    A: Admission,
    C: CandidateSet,
    S: Scorer,
    G: ChargeBack,
{
    /// Compose a scheduler from explicit stages over a validated
    /// cluster configuration. `a0`/`r0` seed the reservation
    /// controller's arrival-ratio and demand-ratio estimates.
    pub fn compose(
        config: &ClusterConfig,
        stages: Stages<E, A, C, S, G>,
        a0: f64,
        r0: f64,
    ) -> Result<Self, crate::config::ConfigError> {
        config.validate()?;
        let p = config.p();
        let m = config.resolve_masters();
        let use_sampling = config.policy() != PolicyKind::MsNoSampling;
        let rsrc = match config.speeds() {
            Some(s) => RsrcPredictor::with_speeds(s.to_vec(), use_sampling),
            None => RsrcPredictor::homogeneous(p, use_sampling),
        };
        let enforce = stages.admission.enforces_reservation();
        let m_for_bound = m.clamp(1, p);
        let reservation = ReservationController::new(m_for_bound, p, a0, r0, enforce);
        Ok(Self {
            entry: stages.entry,
            admission: stages.admission,
            candidates: stages.candidates,
            scorer: stages.scorer,
            charge: stages.charge,
            p,
            m,
            rsrc,
            reservation,
            remote_latency: config.remote_latency(),
            redirect_rtt: config.redirect_rtt(),
            pay_redirect: config.policy() == PolicyKind::Redirect,
            rng: SimRng::seed_from_u64(config.seed() ^ 0xd15b),
            buf: Vec::with_capacity(p),
            dead: vec![false; p],
            in_flight: vec![0; p],
            liveness: 0,
            seq: 0,
            observer: None,
            telemetry: None,
            pending: None,
            restarting: false,
            region: None,
            pending_origin: 0,
            attained: AttainedService::new(p),
        })
    }

    /// Install a region front tier: every subsequent placement first
    /// picks a region with `selector`, then runs the five classic
    /// stages confined to that region's nodes. The topology must
    /// already have been validated against this scheduler's
    /// configuration (the registry path does this via
    /// [`ClusterConfig::with_regions`]).
    pub fn set_region_stage(&mut self, topo: RegionTopology, selector: Box<dyn RegionSelector>) {
        self.region = Some(RegionState {
            selector,
            topo,
            masked: vec![false; self.p],
        });
    }

    /// The installed region topology, when a region stage is active.
    pub fn region_topology(&self) -> Option<&RegionTopology> {
        self.region.as_ref().map(|rs| &rs.topo)
    }

    /// Tag the next [`Scheduler::place`] call with the client origin
    /// region index. Ignored when no region stage is installed.
    pub fn note_origin(&mut self, origin: usize) {
        self.pending_origin = origin;
    }

    /// Number of master nodes (0 for level-free compositions).
    pub fn masters(&self) -> usize {
        self.m
    }

    /// Cluster size `p`.
    pub fn nodes(&self) -> usize {
        self.p
    }

    /// Mark a node dead or alive for future placements. Emits a
    /// [`TraceEvent::NodeDown`]/[`TraceEvent::NodeUp`] to the installed
    /// observer on an actual state change, so failure scenarios are
    /// replayable from the log alone.
    pub fn set_dead(&mut self, node: usize, dead: bool) {
        if self.dead[node] != dead {
            self.liveness += 1;
            let event = if dead {
                TraceEvent::NodeDown { node }
            } else {
                TraceEvent::NodeUp { node }
            };
            self.emit(&event);
        }
        self.dead[node] = dead;
    }

    /// Whether a node is currently marked dead.
    pub fn is_dead(&self, node: usize) -> bool {
        self.dead[node]
    }

    /// Record a request completion on `node`, releasing its in-flight
    /// slot. Saturates at zero: completions for requests that were lost
    /// to a crash (and hence never released) must not underflow the
    /// counter for subsequent placements.
    pub fn note_completion(&mut self, node: usize) {
        let slot = &mut self.in_flight[node];
        debug_assert!(
            *slot > 0,
            "note_completion on node {node} with zero in-flight requests"
        );
        *slot = slot.saturating_sub(1);
    }

    /// Current in-flight count for `node`.
    pub fn in_flight(&self, node: usize) -> u32 {
        self.in_flight[node]
    }

    /// Shared reservation controller state.
    pub fn reservation(&self) -> &ReservationController {
        &self.reservation
    }

    /// Mutable access to the reservation controller (drivers feed it
    /// responses and monitor-window ρ updates).
    pub fn reservation_mut(&mut self) -> &mut ReservationController {
        &mut self.reservation
    }

    /// Install (or remove) a per-decision observer. The scheduler emits
    /// one [`DecisionRecord`] per successful placement plus liveness
    /// events; drivers forward run-level events through
    /// [`Scheduler::emit`].
    pub fn set_observer(&mut self, observer: Option<Box<dyn DecisionObserver>>) {
        self.observer = observer;
    }

    /// Whether an observer is installed (drivers skip building trace
    /// events entirely when not).
    pub fn tracing(&self) -> bool {
        self.observer.is_some()
    }

    /// Forward a non-decision event to the installed observer (no-op
    /// without one).
    pub fn emit(&mut self, event: &TraceEvent) {
        if let Some(obs) = self.observer.as_mut() {
            obs.event(event);
        }
    }

    /// Enable (allocating fresh counters) or disable telemetry. When
    /// disabled — the default — `place` pays only an `Option` check.
    pub fn set_telemetry_enabled(&mut self, on: bool) {
        if on {
            if self.telemetry.is_none() {
                self.telemetry = Some(Box::new(SchedTelemetry::new(self.p)));
            }
        } else {
            self.telemetry = None;
        }
    }

    /// The accumulated scheduler-side telemetry, when enabled.
    pub fn telemetry(&self) -> Option<&SchedTelemetry> {
        self.telemetry.as_deref()
    }

    /// The scorer's internal path counters (indexed vs dense-scan
    /// fallbacks), when the composed scorer tracks them. Always
    /// available — the counters are maintained unconditionally because
    /// they cost a `Cell` add on paths already chosen.
    pub fn scorer_path_counts(&self) -> Option<ScorerPaths> {
        self.scorer.path_counts()
    }

    /// Annotate the next [`Scheduler::place`] call with the driver's
    /// request identity: request id, decision time, and the request's
    /// actual service demand. The annotation is consumed by the next
    /// `place` (successful or not) and enriches its [`DecisionRecord`]
    /// so a log line carries everything replay needs.
    pub fn note_request(&mut self, req: u64, at: SimTime, demand: SimDuration) {
        self.pending = Some((req, at, demand));
    }

    /// Run the pipeline for one request.
    ///
    /// `dynamic` distinguishes CGI-class requests from statics, `know`
    /// carries the request's *declared* demand knowledge (Eq. 5 `w`,
    /// the expected demand for charge-back, and its provenance), and
    /// `monitor` is the shared (stale) load view.
    pub fn place(
        &mut self,
        dynamic: bool,
        know: ReqKnowledge,
        monitor: &mut LoadMonitor,
    ) -> Result<Placement, PlacementError> {
        let pending = self.pending.take();
        let origin = std::mem::take(&mut self.pending_origin);
        // Wall-clock span timing is sampled (1 in SPAN_SAMPLE_EVERY
        // decisions): an Instant pair per stage costs more than an
        // uncontended placement, so timing every call would dominate.
        let mut spans = match &self.telemetry {
            Some(_) if self.seq & SPAN_SAMPLE_MASK == 0 => Some(SpanTimer::start()),
            _ => None,
        };
        // Stage 0: region selection. The selector sees the *unmasked*
        // cluster; its choice is then folded into a masked liveness
        // view so every downstream stage operates inside the region.
        let region_sel = match &mut self.region {
            Some(rs) => {
                let view = RegionView {
                    dead: &self.dead,
                    in_flight: &self.in_flight,
                    masters: self.m,
                    at_us: pending.map_or(0, |(_, at, _)| at.0),
                };
                let Some(r) = rs.selector.select(origin, &rs.topo, &view) else {
                    if let Some(tel) = &mut self.telemetry {
                        tel.stage_calls[Stage::Entry as usize] += 1;
                        tel.no_live_nodes += 1;
                    }
                    return Err(PlacementError::NoLiveNodes);
                };
                for (i, slot) in rs.masked.iter_mut().enumerate() {
                    *slot = self.dead[i] || !rs.topo.contains(r, i);
                }
                Some(r)
            }
            None => None,
        };
        // Downstream stages read liveness through the region mask. The
        // mask changes per placement, so the effective liveness epoch
        // must change too (the RSRC index caches its live set by
        // epoch); `seq` increments every placement, making the blend
        // strictly increasing. Regionless pipelines keep the plain
        // epoch and are byte-identical to before.
        let (eff_dead, eff_epoch): (&[bool], u64) = match &self.region {
            Some(rs) => (
                &rs.masked,
                self.liveness.wrapping_add(self.seq).wrapping_add(1),
            ),
            None => (&self.dead, self.liveness),
        };
        let entry = {
            let mut ctx = StageCtx {
                rng: &mut self.rng,
                dead: eff_dead,
                in_flight: &self.in_flight,
                masters: self.m,
                rsrc: &self.rsrc,
                reservation: &self.reservation,
                loads: monitor.all(),
                monitor_id: monitor.id(),
                load_epoch: monitor.epoch(),
                charge_log: monitor.charges(),
                liveness_epoch: eff_epoch,
                attained: &self.attained,
            };
            match self.entry.select_entry(&mut ctx) {
                Ok(entry) => entry,
                Err(e) => {
                    if let Some(tel) = &mut self.telemetry {
                        tel.stage_calls[Stage::Entry as usize] += 1;
                        tel.no_live_nodes += 1;
                    }
                    return Err(e);
                }
            }
        };
        if let Some(t) = &mut spans {
            t.mark(Stage::Entry);
        }
        self.reservation.note_arrival(dynamic);
        // The charge-back stage sees the *effective* weight (clamped,
        // no-sampling fallback applied); scorers keep the declaration.
        let charge_know = know.with_w(self.rsrc.effective_w(know.w));

        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        let (masters_ok, decision) = {
            let ctx = StageCtx {
                rng: &mut self.rng,
                dead: eff_dead,
                in_flight: &self.in_flight,
                masters: self.m,
                rsrc: &self.rsrc,
                reservation: &self.reservation,
                loads: monitor.all(),
                monitor_id: monitor.id(),
                load_epoch: monitor.epoch(),
                charge_log: monitor.charges(),
                liveness_epoch: eff_epoch,
                attained: &self.attained,
            };
            let masters_ok = self.admission.master_eligible(&ctx, know);
            if let Some(t) = &mut spans {
                t.mark(Stage::Admission);
            }
            let decision = self.candidates.collect(&ctx, dynamic, masters_ok, &mut buf);
            if let Some(t) = &mut spans {
                t.mark(Stage::Candidates);
            }
            (masters_ok, decision)
        };

        let mut trace_scores: Vec<f64> = Vec::new();
        let mut placement = match decision {
            CandidateDecision::Stay => {
                self.charge.debit(monitor, entry, charge_know);
                if let Some(t) = &mut spans {
                    t.mark(Stage::Charge);
                }
                self.in_flight[entry] += 1;
                Placement {
                    node: entry,
                    latency: SimDuration::ZERO,
                    on_master: entry < self.m,
                }
            }
            CandidateDecision::Remote => {
                self.rng.shuffle(&mut buf);
                let chosen = {
                    let mut ctx = StageCtx {
                        rng: &mut self.rng,
                        dead: eff_dead,
                        in_flight: &self.in_flight,
                        masters: self.m,
                        rsrc: &self.rsrc,
                        reservation: &self.reservation,
                        loads: monitor.all(),
                        monitor_id: monitor.id(),
                        load_epoch: monitor.epoch(),
                        charge_log: monitor.charges(),
                        liveness_epoch: eff_epoch,
                        attained: &self.attained,
                    };
                    if self.observer.is_some() {
                        trace_scores.extend(buf.iter().map(|&n| self.scorer.score(&ctx, n, know)));
                    }
                    self.scorer.choose(&mut ctx, &buf, know)
                };
                if let Some(t) = &mut spans {
                    t.mark(Stage::Scorer);
                }
                let Some(node) = chosen else {
                    if let Some(tel) = &mut self.telemetry {
                        tel.stage_calls[Stage::Entry as usize] += 1;
                        tel.stage_calls[Stage::Admission as usize] += 1;
                        tel.stage_calls[Stage::Candidates as usize] += 1;
                        tel.stage_calls[Stage::Scorer as usize] += 1;
                        tel.no_live_nodes += 1;
                    }
                    self.buf = buf;
                    return Err(PlacementError::NoLiveNodes);
                };
                self.charge.debit(monitor, node, charge_know);
                if let Some(t) = &mut spans {
                    t.mark(Stage::Charge);
                }
                self.in_flight[node] += 1;
                let on_master = self.candidates.attributes_masters() && node < self.m;
                self.admission
                    .note_placement(&mut self.reservation, on_master);
                let latency = if node == entry {
                    SimDuration::ZERO
                } else if self.pay_redirect {
                    self.redirect_rtt + self.remote_latency
                } else {
                    self.remote_latency
                };
                Placement {
                    node,
                    latency,
                    on_master,
                }
            }
        };
        // The origin→region hop is paid by every request entering the
        // region, on top of any intra-cluster transfer latency.
        if let (Some(rs), Some(r)) = (&self.region, region_sel) {
            placement.latency += SimDuration::from_micros(rs.topo.latency_us(origin, r));
        }

        if let Some(tel) = &mut self.telemetry {
            tel.place_calls += 1;
            tel.stage_calls[Stage::Entry as usize] += 1;
            tel.stage_calls[Stage::Admission as usize] += 1;
            tel.stage_calls[Stage::Candidates as usize] += 1;
            tel.stage_calls[Stage::Charge as usize] += 1;
            match decision {
                CandidateDecision::Stay => tel.stay_local += 1,
                CandidateDecision::Remote => {
                    tel.remote += 1;
                    tel.stage_calls[Stage::Scorer as usize] += 1;
                    tel.candidates_hist.record(buf.len() as u64);
                }
            }
            if self.restarting {
                tel.restarts += 1;
            }
            tel.node_charges[placement.node] += 1;
            if let (Some(rs), Some(r)) = (&self.region, region_sel) {
                if tel.region_charges.is_empty() {
                    tel.region_charges = vec![0; rs.topo.regions()];
                }
                tel.region_charges[r] += 1;
            }
            tel.latency_us_hist.record(placement.latency.as_micros());
            if let Some(t) = &spans {
                tel.fold_spans(t);
            }
        }

        self.seq += 1;
        if let Some(mut obs) = self.observer.take() {
            let (req, at, demand) = pending.unwrap_or((self.seq, SimTime(0), SimDuration::ZERO));
            let record = DecisionRecord {
                seq: self.seq,
                dynamic,
                entry,
                candidates: buf.clone(),
                scores: trace_scores,
                theta_hat: self.reservation.master_fraction(),
                theta2_star: self.reservation.theta2_star(),
                chosen: placement.node,
                on_master: placement.on_master,
                redirected: self.pay_redirect && placement.node != entry,
                latency_us: placement.latency.as_micros(),
                req,
                at_us: at.0,
                demand_us: demand.as_micros(),
                w: know.w,
                expected_us: know.expected.as_micros(),
                masters_ok,
                restart: self.restarting,
                origin,
                region: region_sel,
            };
            obs.observe(&record);
            self.observer = Some(obs);
        }
        self.buf = buf;
        Ok(placement)
    }

    /// Re-place a request that was lost to a node failure. Identical to
    /// [`Scheduler::place`] except the transfer latency is never zero:
    /// the request must at least travel back from the failed node.
    pub fn replace_after_failure(
        &mut self,
        dynamic: bool,
        know: ReqKnowledge,
        monitor: &mut LoadMonitor,
    ) -> Result<Placement, PlacementError> {
        self.restarting = true;
        let placed = self.place(dynamic, know, monitor);
        self.restarting = false;
        let mut placement = placed?;
        if placement.latency.is_zero() {
            placement.latency = self.remote_latency;
        }
        Ok(placement)
    }

    /// Begin attained-service accounting for request `tag` on `node`
    /// (service has started; attained time is zero).
    pub fn note_service_start(&mut self, node: usize, tag: u64) {
        self.attained.start(node, tag);
    }

    /// Raise request `tag`'s attained service (from the driver's tick
    /// accounting; monotone, and the driver caps it at the truth).
    pub fn note_service_progress(&mut self, node: usize, tag: u64, attained: SimDuration) {
        self.attained.progress(node, tag, attained);
    }

    /// Close the attained-service books for request `tag`: it completed
    /// having received exactly `total` service. This is a sanctioned
    /// truth leak — at completion the size is observable by definition.
    pub fn note_service_end(&mut self, node: usize, tag: u64, total: SimDuration) {
        self.attained.finish(node, tag, total);
    }

    /// Drop request `tag`'s attained-service entry without completing
    /// it (the request was lost to a node failure).
    pub fn note_service_lost(&mut self, node: usize, tag: u64) {
        self.attained.forget(node, tag);
    }

    /// The attained-service books (read-only; tests and size-oblivious
    /// analysis).
    pub fn attained(&self) -> &AttainedService {
        &self.attained
    }
}

/// Driver-facing surface of a composed scheduler: everything
/// `ClusterSim` and `emu::emulate` need, independent of the concrete
/// stage types. Implemented by every [`Scheduler`] instantiation.
pub trait Schedule {
    /// See [`Scheduler::place`].
    fn place(
        &mut self,
        dynamic: bool,
        know: ReqKnowledge,
        monitor: &mut LoadMonitor,
    ) -> Result<Placement, PlacementError>;
    /// See [`Scheduler::replace_after_failure`].
    fn replace_after_failure(
        &mut self,
        dynamic: bool,
        know: ReqKnowledge,
        monitor: &mut LoadMonitor,
    ) -> Result<Placement, PlacementError>;
    /// See [`Scheduler::masters`].
    fn masters(&self) -> usize;
    /// See [`Scheduler::set_dead`].
    fn set_dead(&mut self, node: usize, dead: bool);
    /// See [`Scheduler::is_dead`].
    fn is_dead(&self, node: usize) -> bool;
    /// See [`Scheduler::note_completion`].
    fn note_completion(&mut self, node: usize);
    /// See [`Scheduler::in_flight`].
    fn in_flight(&self, node: usize) -> u32;
    /// See [`Scheduler::reservation`].
    fn reservation(&self) -> &ReservationController;
    /// See [`Scheduler::reservation_mut`].
    fn reservation_mut(&mut self) -> &mut ReservationController;
    /// See [`Scheduler::set_observer`].
    fn set_observer(&mut self, observer: Option<Box<dyn DecisionObserver>>);
    /// See [`Scheduler::tracing`].
    fn tracing(&self) -> bool;
    /// See [`Scheduler::emit`].
    fn emit(&mut self, event: &TraceEvent);
    /// See [`Scheduler::note_request`].
    fn note_request(&mut self, req: u64, at: SimTime, demand: SimDuration);
    /// See [`Scheduler::note_origin`]. Defaults to a no-op so
    /// third-party `Schedule` impls (and region-free pipelines) keep
    /// compiling unchanged.
    fn note_origin(&mut self, origin: usize) {
        let _ = origin;
    }
    /// See [`Scheduler::region_topology`]. Defaults to `None`.
    fn region_topology(&self) -> Option<&RegionTopology> {
        None
    }
    /// See [`Scheduler::set_telemetry_enabled`]. Defaults to a no-op so
    /// third-party `Schedule` impls keep compiling.
    fn set_telemetry_enabled(&mut self, on: bool) {
        let _ = on;
    }
    /// See [`Scheduler::telemetry`]. Defaults to `None`.
    fn telemetry(&self) -> Option<&SchedTelemetry> {
        None
    }
    /// See [`Scheduler::scorer_path_counts`]. Defaults to `None`.
    fn scorer_path_counts(&self) -> Option<ScorerPaths> {
        None
    }
    /// See [`Scheduler::note_service_start`]. Defaults to a no-op so
    /// third-party `Schedule` impls keep compiling.
    fn note_service_start(&mut self, node: usize, tag: u64) {
        let _ = (node, tag);
    }
    /// See [`Scheduler::note_service_progress`]. Defaults to a no-op.
    fn note_service_progress(&mut self, node: usize, tag: u64, attained: SimDuration) {
        let _ = (node, tag, attained);
    }
    /// See [`Scheduler::note_service_end`]. Defaults to a no-op.
    fn note_service_end(&mut self, node: usize, tag: u64, total: SimDuration) {
        let _ = (node, tag, total);
    }
    /// See [`Scheduler::note_service_lost`]. Defaults to a no-op.
    fn note_service_lost(&mut self, node: usize, tag: u64) {
        let _ = (node, tag);
    }
    /// See [`Scheduler::attained`]. Defaults to `None` for impls that
    /// do not track attained service.
    fn attained(&self) -> Option<&AttainedService> {
        None
    }
}

impl<E, A, C, S, G> Schedule for Scheduler<E, A, C, S, G>
where
    E: EntrySelector,
    A: Admission,
    C: CandidateSet,
    S: Scorer,
    G: ChargeBack,
{
    fn place(
        &mut self,
        dynamic: bool,
        know: ReqKnowledge,
        monitor: &mut LoadMonitor,
    ) -> Result<Placement, PlacementError> {
        Scheduler::place(self, dynamic, know, monitor)
    }
    fn replace_after_failure(
        &mut self,
        dynamic: bool,
        know: ReqKnowledge,
        monitor: &mut LoadMonitor,
    ) -> Result<Placement, PlacementError> {
        Scheduler::replace_after_failure(self, dynamic, know, monitor)
    }
    fn masters(&self) -> usize {
        Scheduler::masters(self)
    }
    fn set_dead(&mut self, node: usize, dead: bool) {
        Scheduler::set_dead(self, node, dead)
    }
    fn is_dead(&self, node: usize) -> bool {
        Scheduler::is_dead(self, node)
    }
    fn note_completion(&mut self, node: usize) {
        Scheduler::note_completion(self, node)
    }
    fn in_flight(&self, node: usize) -> u32 {
        Scheduler::in_flight(self, node)
    }
    fn reservation(&self) -> &ReservationController {
        Scheduler::reservation(self)
    }
    fn reservation_mut(&mut self) -> &mut ReservationController {
        Scheduler::reservation_mut(self)
    }
    fn set_observer(&mut self, observer: Option<Box<dyn DecisionObserver>>) {
        Scheduler::set_observer(self, observer)
    }
    fn tracing(&self) -> bool {
        Scheduler::tracing(self)
    }
    fn emit(&mut self, event: &TraceEvent) {
        Scheduler::emit(self, event)
    }
    fn note_request(&mut self, req: u64, at: SimTime, demand: SimDuration) {
        Scheduler::note_request(self, req, at, demand)
    }
    fn note_origin(&mut self, origin: usize) {
        Scheduler::note_origin(self, origin)
    }
    fn region_topology(&self) -> Option<&RegionTopology> {
        Scheduler::region_topology(self)
    }
    fn set_telemetry_enabled(&mut self, on: bool) {
        Scheduler::set_telemetry_enabled(self, on)
    }
    fn telemetry(&self) -> Option<&SchedTelemetry> {
        Scheduler::telemetry(self)
    }
    fn scorer_path_counts(&self) -> Option<ScorerPaths> {
        Scheduler::scorer_path_counts(self)
    }
    fn note_service_start(&mut self, node: usize, tag: u64) {
        Scheduler::note_service_start(self, node, tag)
    }
    fn note_service_progress(&mut self, node: usize, tag: u64, attained: SimDuration) {
        Scheduler::note_service_progress(self, node, tag, attained)
    }
    fn note_service_end(&mut self, node: usize, tag: u64, total: SimDuration) {
        Scheduler::note_service_end(self, node, tag, total)
    }
    fn note_service_lost(&mut self, node: usize, tag: u64) {
        Scheduler::note_service_lost(self, node, tag)
    }
    fn attained(&self) -> Option<&AttainedService> {
        Some(Scheduler::attained(self))
    }
}

impl PolicyScheduler {
    /// Build the stage composition for `config.policy` — the
    /// [`PolicyKind`] factory. Panics on an invalid configuration,
    /// matching the former `Dispatcher::new` contract; use
    /// [`Scheduler::compose`] for a fallible constructor.
    pub fn new(config: &ClusterConfig, a0: f64, r0: f64) -> Self {
        let stages = stages::for_policy(config);
        Scheduler::compose(config, stages, a0, r0).expect("invalid cluster configuration")
    }
}

#[cfg(test)]
mod tests;
