//! Per-decision observability: the [`DecisionObserver`] hook, the
//! [`DecisionRecord`] emitted for every placement, and sinks.
//!
//! Both execution substrates — the event-driven simulator and the live
//! emulation — thread the observer through the *same* `Scheduler`
//! value, so the JSONL a [`JsonlSink`] writes is schema-identical
//! regardless of which substrate drove the run.

use serde::Serialize;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Everything the scheduler knew (and decided) for one placement.
///
/// Serialised one-per-line by [`JsonlSink`]. `candidates` is the
/// post-shuffle candidate set the scorer saw (empty when the request
/// stayed on its entry node) and `scores` the per-candidate scorer
/// values sampled *before* the charge-back debit, i.e. exactly what the
/// decision was based on.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DecisionRecord {
    /// 1-based decision sequence number within the scheduler.
    pub seq: u64,
    /// Whether the request was dynamic (CGI-class).
    pub dynamic: bool,
    /// Entry node chosen by the front end.
    pub entry: usize,
    /// Candidate nodes considered, in scoring order.
    pub candidates: Vec<usize>,
    /// Per-candidate scores aligned with `candidates` (RSRC cost for
    /// the built-in policies; lower is better).
    pub scores: Vec<f64>,
    /// Measured fraction of dynamic requests routed to masters (θ̂).
    pub theta_hat: f64,
    /// Current reservation admission cap (θ2*, Theorem 1).
    pub theta2_star: f64,
    /// Node the request was placed on.
    pub chosen: usize,
    /// Whether the placement counts toward the master level.
    pub on_master: bool,
    /// Whether the move was an HTTP redirection (client round trip)
    /// rather than an in-cluster transfer.
    pub redirected: bool,
    /// Transfer latency paid, in microseconds.
    pub latency_us: u64,
}

/// Observer invoked once per successful placement.
///
/// Implementations should be cheap: the scheduler calls this on the
/// per-request path (though only when an observer is installed).
pub trait DecisionObserver {
    /// Handle one decision record.
    fn observe(&mut self, record: &DecisionRecord);
}

/// In-memory observer collecting every record; useful for tests and
/// programmatic analysis.
#[derive(Debug, Default)]
pub struct CollectingObserver {
    /// Records observed so far, in decision order.
    pub records: Vec<DecisionRecord>,
}

impl DecisionObserver for CollectingObserver {
    fn observe(&mut self, record: &DecisionRecord) {
        self.records.push(record.clone());
    }
}

/// Shared-handle observer: lets a test (or analysis code) keep a clone
/// of the collector while the scheduler owns the installed copy.
impl DecisionObserver for std::rc::Rc<std::cell::RefCell<CollectingObserver>> {
    fn observe(&mut self, record: &DecisionRecord) {
        self.borrow_mut().observe(record);
    }
}

/// JSONL sink: one [`DecisionRecord`] serialised per line.
///
/// Write errors after creation are reported once to stderr and further
/// records are discarded — tracing must never abort an experiment.
pub struct JsonlSink<W: Write> {
    writer: W,
    errored: bool,
}

impl JsonlSink<BufWriter<File>> {
    /// Create (truncate) the JSONL file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }

    /// Open the JSONL file at `path` for appending, creating it if
    /// missing — lets several runs trace into one file.
    pub fn append(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink::new(BufWriter::new(file)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wrap an arbitrary writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            errored: false,
        }
    }
}

impl<W: Write> DecisionObserver for JsonlSink<W> {
    fn observe(&mut self, record: &DecisionRecord) {
        if self.errored {
            return;
        }
        let line = serde::to_json_string(record);
        if let Err(e) = writeln!(self.writer, "{line}") {
            eprintln!("trace-decisions: write failed, disabling sink: {e}");
            self.errored = true;
        }
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}
